#!/usr/bin/env python3
"""Bring your own workload: evaluate CAMEO on a custom access pattern.

The Table II registry is just data — any :class:`WorkloadSpec` drives the
same machinery. This example defines a synthetic "key-value store"
workload (small hot index, large cold log, sparse pages, write-heavy)
that is not in the paper, and asks the usual question: cache, TLM, or
CAMEO?

It also shows the lower-level API: building a machine by hand and
feeding it a generator, which is what you would do to replay *real*
traces through :mod:`repro.workloads.trace`.

Run:  python examples/custom_workload.py
"""

from repro import scaled_paper_system
from repro.analysis.report import format_bar_chart, format_table
from repro.orgs.factory import build_organization
from repro.sim.engine import run_trace
from repro.sim.machine import Machine
from repro.sim.runner import run_configs, run_workload
from repro.units import GIB
from repro.workloads.mixes import rate_mode_generators
from repro.workloads.spec import LATENCY, WorkloadSpec
from repro.workloads.synthetic import SyntheticTraceGenerator

KVSTORE = WorkloadSpec(
    name="kvstore",
    category=LATENCY,
    l3_mpki=18.0,
    footprint_bytes=6 * GIB,
    hot_fraction=0.10,          # the index
    hot_access_prob=0.60,
    stream_prob=0.15,           # log scans
    lines_used_per_page=12,     # values are small: sparse pages
    write_fraction=0.45,        # write-heavy
)


def high_level() -> None:
    config = scaled_paper_system()
    baseline = run_workload("baseline", KVSTORE, config)
    results = run_configs(
        ["cache", "tlm-static", "tlm-dynamic", "cameo"], KVSTORE, config
    )
    print(
        format_bar_chart(
            [(org, r.speedup_over(baseline)) for org, r in results.items()],
            title="kvstore: speedup over no-stacked baseline",
        )
    )


def low_level() -> None:
    """The same run assembled by hand (the trace-replay entry point)."""
    config = scaled_paper_system()
    org = build_organization("cameo", config)
    machine = Machine(config, org)
    generators = rate_mode_generators(KVSTORE, config)
    result = run_trace(machine, generators, KVSTORE)
    print(
        format_table(
            ["metric", "value"],
            [
                ["IPC", f"{result.ipc:.2f}"],
                ["stacked service", f"{result.stacked_service_fraction:.0%}"],
                ["LLP accuracy", f"{result.llp_cases.accuracy:.0%}"],
                ["line swaps", result.line_swaps],
            ],
            title="\nkvstore under CAMEO (hand-assembled machine)",
        )
    )
    # The permutation invariant is cheap to check after any run.
    org.check_invariants()
    print("LLT permutation invariant: OK")


def main() -> None:
    high_level()
    low_level()


if __name__ == "__main__":
    main()
