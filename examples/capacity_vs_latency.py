#!/usr/bin/env python3
"""The paper's motivating dichotomy: capacity- vs latency-limited workloads.

Section II: a DRAM cache helps latency-limited workloads but wastes the
stacked capacity on capacity-limited ones; a Two-Level Memory does the
opposite. CAMEO is built to win both. This example reproduces that story
on one workload from each category and prints where the time goes
(page faults vs DRAM latency).

Run:  python examples/capacity_vs_latency.py
"""

from repro import run_workload, scaled_paper_system, workload
from repro.analysis.report import format_table

ORGS = ("cache", "tlm-static", "cameo")


def study(workload_name: str) -> None:
    spec = workload(workload_name)
    config = scaled_paper_system()
    baseline = run_workload("baseline", spec, config)
    rows = [
        [
            "baseline", 1.0, baseline.page_faults,
            f"{baseline.stacked_service_fraction:.0%}",
        ]
    ]
    for org in ORGS:
        result = run_workload(org, spec, config)
        rows.append(
            [
                org,
                result.speedup_over(baseline),
                result.page_faults,
                f"{result.stacked_service_fraction:.0%}",
            ]
        )
    print(
        format_table(
            ["organization", "speedup", "page faults", "stacked service"],
            rows,
            title=f"{spec.name} ({spec.category}-limited)",
        )
    )
    print()


def main() -> None:
    print("A capacity-limited workload: the win comes from *capacity*")
    print("(fewer page faults), which a cache cannot provide.\n")
    study("lbm")

    print("A latency-limited workload: the win comes from *locality*")
    print("(stacked service fraction), which static TLM cannot provide.\n")
    study("xalancbmk")

    print("CAMEO is the only design with both columns in its favour.")


if __name__ == "__main__":
    main()
