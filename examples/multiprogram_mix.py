#!/usr/bin/env python3
"""Beyond rate mode: heterogeneous multi-programmed mixes.

The paper evaluates homogeneous rate mode (every core runs the same
benchmark). Real consolidated machines mix workloads, and the
interesting question becomes interference: does a capacity-hungry
neighbour (lbm) evict a latency-sensitive tenant's (gcc's) hot set from
stacked DRAM? This example runs a mixed workload under each design and
compares against the rate-mode runs of its constituents.

Run:  python examples/multiprogram_mix.py
"""

from repro import scaled_paper_system
from repro.analysis.report import format_table
from repro.sim.runner import run_mix, run_workload

MIX = ("gcc", "lbm", "gcc", "lbm")  # two latency tenants, two capacity hogs
ORGS = ("cache", "tlm-static", "cameo")


def main() -> None:
    config = scaled_paper_system(num_contexts=len(MIX))

    print(f"Mix: {', '.join(MIX)} (one per context)\n")
    base_mix = run_mix("baseline", MIX, config)
    rows = []
    for org in ORGS:
        result = run_mix(org, MIX, config)
        rows.append(
            [
                org,
                result.speedup_over(base_mix),
                f"{result.stacked_service_fraction:.0%}",
                result.page_faults,
            ]
        )
    print(
        format_table(
            ["organization", "mix speedup", "stacked service", "faults"],
            rows,
            title="Heterogeneous mix",
        )
    )

    print("\nFor contrast, the same designs in homogeneous rate mode:")
    for name in dict.fromkeys(MIX):
        base = run_workload("baseline", name, config)
        cells = [
            f"{org}={run_workload(org, name, config).speedup_over(base):.2f}"
            for org in ORGS
        ]
        print(f"  {name:8s} " + "  ".join(cells))


if __name__ == "__main__":
    main()
