#!/usr/bin/env python3
"""Does the reproduction's scaling methodology actually hold?

DESIGN.md claims that shrinking every capacity by the same factor while
keeping timings and ratios preserves the paper's comparisons. This
example tests that claim directly: it runs the same workload at several
capacity scales and shows that the *relative* results (who wins, by
roughly what factor, the stacked service fraction) are stable even as
the machine shrinks 4x per step.

Run:  python examples/scaling_study.py [workload]
"""

import sys

from repro import run_workload, scaled_paper_system
from repro.analysis.report import format_table
from repro.units import format_bytes

SCALES = (10, 11, 12, 13)   # 4 MiB ... 512 KiB of stacked DRAM
ORGS = ("cache", "cameo")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "xalancbmk"
    rows = []
    for shift in SCALES:
        config = scaled_paper_system(scale_shift=shift)
        # Trace length scales with the footprint: a bigger machine needs a
        # proportionally longer slice to reach the same steady state.
        accesses = 3000 << max(0, 12 - shift)
        baseline = run_workload("baseline", name, config,
                                accesses_per_context=accesses)
        cells = [format_bytes(config.stacked_bytes)]
        for org in ORGS:
            result = run_workload(org, name, config,
                                  accesses_per_context=accesses)
            cells.append(f"{result.speedup_over(baseline):.2f}x")
            if org == "cameo":
                cells.append(f"{result.stacked_service_fraction:.0%}")
        rows.append(cells)
    print(
        format_table(
            ["stacked DRAM", "cache", "cameo", "cameo stacked svc"],
            rows,
            title=f"{name}: the comparison is scale-stable "
                  "(each row is a 2x smaller machine, same ratios)",
        )
    )
    print(
        "\nIf the speedups wandered with scale, the 1/4096 default would be\n"
        "suspect; their stability is what justifies the scaled reproduction."
    )


if __name__ == "__main__":
    main()
