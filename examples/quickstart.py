#!/usr/bin/env python3
"""Quickstart: simulate one workload under the paper's main designs.

Builds the scaled Table I machine, runs the `milc` rate-mode workload
under the no-stacked baseline, the Alloy Cache, TLM, and CAMEO, and
prints the speedups plus the CAMEO-specific telemetry (stacked service
fraction, LLP accuracy, line swaps).

Run:  python examples/quickstart.py [workload]
"""

import sys

from repro import run_configs, run_workload, scaled_paper_system, workload
from repro.analysis.report import format_bar_chart, format_table
from repro.units import format_bytes, percent


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "milc"
    spec = workload(name)
    config = scaled_paper_system()

    print("=== System (Table I, scaled 1/4096) ===")
    print(
        format_table(
            ["component", "value"],
            [
                ["stacked DRAM", format_bytes(config.stacked_bytes)],
                ["off-chip DRAM", format_bytes(config.offchip_bytes)],
                ["congruence group size", config.group_size],
                ["congruence groups", config.num_groups],
                ["LLT size", format_bytes(config.llt_bytes)],
                ["contexts (rate mode)", config.num_contexts],
            ],
        )
    )

    print(f"\n=== Workload: {spec.name} (Table II) ===")
    print(
        format_table(
            ["metric", "value"],
            [
                ["category", spec.category],
                ["L3 MPKI", spec.l3_mpki],
                ["footprint (paper)", format_bytes(spec.footprint_bytes)],
                ["footprint (scaled)", f"{spec.footprint_pages(config.scale_shift)} pages"],
            ],
        )
    )

    print("\nSimulating", name, "under five memory organizations...")
    baseline = run_workload("baseline", spec, config)
    results = run_configs(
        ["cache", "tlm-static", "tlm-dynamic", "cameo"], spec, config
    )

    print("\n=== Speedup over the no-stacked baseline ===")
    print(
        format_bar_chart(
            [(org, r.speedup_over(baseline)) for org, r in results.items()]
        )
    )

    cameo = results["cameo"]
    print("\n=== CAMEO telemetry ===")
    print(
        format_table(
            ["metric", "value"],
            [
                ["stacked service fraction", percent(cameo.stacked_service_fraction)],
                ["LLP accuracy", percent(cameo.llp_cases.accuracy)],
                ["line swaps", cameo.line_swaps],
                ["page faults", cameo.page_faults],
                ["stacked traffic", format_bytes(cameo.dram_bytes["stacked"])],
                ["off-chip traffic", format_bytes(cameo.dram_bytes["offchip"])],
            ],
        )
    )


if __name__ == "__main__":
    main()
