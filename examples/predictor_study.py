#!/usr/bin/env python3
"""A deep dive on the Line Location Predictor (Section V).

Reproduces the Table III case breakdown for one workload and sweeps the
LLP table size to show why the paper's 256-entry/64-byte-per-core design
point is enough.

Run:  python examples/predictor_study.py [workload]
"""

import sys

from repro import run_workload, scaled_paper_system, workload
from repro.analysis.report import format_table
from repro.core.llp import LastLocationPredictor
from repro.units import percent


def case_breakdown(name: str) -> None:
    spec = workload(name)
    config = scaled_paper_system()
    rows = []
    for org, label in (
        ("cameo-sam", "SAM (no prediction)"),
        ("cameo", "LLP (paper design)"),
        ("cameo-perfect", "Perfect"),
    ):
        result = run_workload(org, spec, config)
        cases = result.llp_cases.as_fractions()
        rows.append(
            [
                label,
                percent(cases["stacked/stacked"]),
                percent(cases["stacked/offchip"]),
                percent(cases["offchip/stacked"]),
                percent(cases["offchip/offchip-ok"]),
                percent(cases["offchip/offchip-wrong"]),
                percent(result.llp_cases.accuracy),
            ]
        )
    print(
        format_table(
            ["predictor", "S/S", "S/O", "O/S", "O/O ok", "O/O wrong", "accuracy"],
            rows,
            title=f"Table III-style breakdown for {name} "
                  "(actual location / predicted location)",
        )
    )


def table_size_sweep(name: str) -> None:
    spec = workload(name)
    config = scaled_paper_system()
    baseline = run_workload("baseline", spec, config)
    rows = []
    for entries in (1, 16, 64, 256, 1024):
        result = run_workload(
            "cameo", spec, config,
            org_kwargs={"predictor": LastLocationPredictor(entries=entries)},
        )
        rows.append(
            [
                entries,
                f"{entries * 2 / 8:.0f} B/core",
                result.speedup_over(baseline),
                percent(result.llp_cases.accuracy),
            ]
        )
    print(
        format_table(
            ["LLP entries", "storage", "speedup", "accuracy"],
            rows,
            title=f"\nLLP table-size sweep for {name} "
                  "(1 entry = the single shared LLR of Section V-B)",
        )
    )


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "xalancbmk"
    case_breakdown(name)
    table_size_sweep(name)


if __name__ == "__main__":
    main()
