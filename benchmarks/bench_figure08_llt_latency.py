"""Regenerates Figure 8: analytical LLT access-latency comparison."""

from repro.experiments import run_figure8

from conftest import emit


def test_figure8_llt_latency_model(benchmark):
    result = benchmark.pedantic(run_figure8, rounds=1, iterations=1)
    emit("Figure 8 (LLT latency, analytical)", result.render())

    model = result.model
    # Exact paper values with 1/2-unit devices.
    assert (model["ideal"].hit_units, model["ideal"].miss_units) == (1, 2)
    assert (model["embedded"].hit_units, model["embedded"].miss_units) == (2, 3)
    assert (model["colocated"].hit_units, model["colocated"].miss_units) == (1, 3)
