"""Extension study: set-associative congruence groups.

Footnote 3 of the paper blames libquantum's DoubleUse/CAMEO losses on
direct-mapped conflict misses. This bench compares 1-way (the paper's
structure, SAM timing) against 2- and 4-way super-groups, reporting the
conflict relief (stacked service fraction) against the associativity tax
(second stacked probes).
"""

from repro.analysis.report import format_table
from repro.sim.runner import run_workload

from conftest import emit

WAYS = (1, 2, 4)
WORKLOAD = "libquantum"


def run_study():
    baseline = run_workload("baseline", WORKLOAD)
    reference = run_workload("cameo-sam", WORKLOAD)
    rows = [["cameo-sam (paper)", reference.speedup_over(baseline),
             reference.stacked_service_fraction, "n/a"]]
    for ways in WAYS:
        result = run_workload("cameo-assoc", WORKLOAD, org_kwargs={"ways": ways})
        rows.append(
            [f"cameo-assoc ways={ways}", result.speedup_over(baseline),
             result.stacked_service_fraction, f"{result.line_swaps} swaps"]
        )
    return rows


def test_extension_associative_cameo(benchmark):
    rows = benchmark.pedantic(run_study, rounds=1, iterations=1)
    emit(
        f"Extension: associative CAMEO ({WORKLOAD})",
        format_table(
            ["configuration", "speedup", "stacked service", "notes"], rows
        ),
    )
    by_name = {row[0]: row for row in rows}
    one_way = by_name["cameo-assoc ways=1"]
    two_way = by_name["cameo-assoc ways=2"]
    # Associativity must not lose stacked residency.
    assert two_way[2] >= one_way[2] - 0.02
