"""Regenerates Table III: LLP accuracy breakdown.

Paper: SAM 70.3% (= stacked service fraction), LLP 91.7%, perfect 100%.
"""

from repro.experiments import run_table3

from conftest import emit, selected_workloads


def test_table3_llp_accuracy(benchmark):
    result = benchmark.pedantic(
        run_table3, args=(selected_workloads(),), rounds=1, iterations=1
    )
    emit("Table III (LLP accuracy)", result.render())

    assert result.accuracy("cameo-perfect") == 1.0
    # SAM's accuracy equals its stacked-residency fraction by construction.
    sam = result.aggregate_fractions("cameo-sam")
    assert sam["stacked/offchip"] == 0.0
    assert sam["offchip/offchip-ok"] == 0.0
    # The LLP must recover most off-chip accesses (paper: 23.3 of 29.7).
    llp = result.aggregate_fractions("cameo")
    offchip_total = (
        llp["offchip/stacked"] + llp["offchip/offchip-ok"] + llp["offchip/offchip-wrong"]
    )
    if offchip_total:
        assert llp["offchip/offchip-ok"] / offchip_total > 0.5
    assert result.accuracy("cameo") > result.accuracy("cameo-sam")
