"""Regenerates Table IV: normalised bandwidth in memory and storage.

Paper shapes: Cache cuts off-chip traffic roughly in half; TLM-Dynamic
*multiplies* both memories' traffic (page migration); CAMEO sits between
— near-cache stacked traffic, more off-chip than cache (victim
writebacks), and a storage reduction for capacity workloads.
"""

from repro.experiments import run_table4
from repro.workloads.spec import CAPACITY, LATENCY

from conftest import emit, selected_workloads


def test_table4_bandwidth_usage(benchmark):
    result = benchmark.pedantic(
        run_table4, args=(selected_workloads(),), rounds=1, iterations=1
    )
    emit("Table IV (bandwidth usage)", result.render())

    matrix = result.matrix
    if matrix.workloads(LATENCY):
        cache = result.normalized("cache", LATENCY)
        cameo = result.normalized("cameo", LATENCY)
        tlm_dyn = result.normalized("tlm-dynamic", LATENCY)
        # Cache reduces off-chip traffic; CAMEO reduces it less (victim
        # installs); TLM-Dynamic inflates it.
        assert cache["offchip"] < 1.0
        assert cameo["offchip"] < 1.2
        assert cameo["offchip"] > cache["offchip"]
        assert tlm_dyn["offchip"] > cameo["offchip"]
    if matrix.workloads(CAPACITY):
        cameo_cap = result.normalized("cameo", CAPACITY)
        cache_cap = result.normalized("cache", CAPACITY)
        # CAMEO saves storage bandwidth; a cache cannot (paper: 0.79x vs 1x).
        assert cameo_cap["storage"] < 1.0
        assert cache_cap["storage"] >= 0.95
