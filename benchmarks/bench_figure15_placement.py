"""Regenerates Figure 15: frequency/oracle TLM placement vs CAMEO.

Paper: CAMEO 1.78x beats TLM-Freq 1.61x without any page-frequency
tracking hardware or OS sorting support.
"""

from repro.experiments import run_figure15

from conftest import emit, selected_workloads


def test_figure15_optimized_placement(benchmark):
    result = benchmark.pedantic(
        run_figure15, args=(selected_workloads(),), rounds=1, iterations=1
    )
    emit("Figure 15 (optimised TLM placement)", result.render())

    matrix = result.matrix
    cameo = matrix.gmean_speedup("cameo")
    freq = matrix.gmean_speedup("tlm-freq")
    dyn = matrix.gmean_speedup("tlm-dynamic")
    # Informed placement beats blind swap-on-touch on average; CAMEO
    # beats the frequency scheme without its hardware support.
    assert freq >= dyn * 0.95
    assert cameo > freq * 0.95
