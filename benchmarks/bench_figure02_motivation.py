"""Regenerates Figure 2: the motivation comparison (no CAMEO yet).

Paper: Cache helps latency-limited workloads (~1.8x) but not
capacity-limited ones (~1.05x); TLM helps capacity but much less on
latency; DoubleUse wins both — the gap CAMEO closes.
"""

from repro.experiments import run_figure2
from repro.workloads.spec import CAPACITY, LATENCY

from conftest import emit, selected_workloads


def test_figure2_motivation(benchmark):
    result = benchmark.pedantic(
        run_figure2, args=(selected_workloads(),), rounds=1, iterations=1
    )
    emit("Figure 2 (motivation)", result.render())

    matrix = result.matrix
    if matrix.workloads(CAPACITY) and matrix.workloads(LATENCY):
        # Cache barely helps capacity-limited workloads...
        assert matrix.gmean_speedup("cache", CAPACITY) < 1.25
        # ...while TLM barely helps latency-limited ones relative to cache.
        assert matrix.gmean_speedup("tlm-static", LATENCY) < matrix.gmean_speedup(
            "cache", LATENCY
        )
        # DoubleUse dominates both single-purpose designs overall.
        assert matrix.gmean_speedup("doubleuse") >= matrix.gmean_speedup("cache") * 0.95
        assert matrix.gmean_speedup("doubleuse") > matrix.gmean_speedup("tlm-static")
