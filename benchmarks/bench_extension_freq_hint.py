"""Extension study: CAMEO with page-frequency hints (Section VI-D).

"the two optimizations are orthogonal and can be combined for further
improvement. For example, if page frequency information is available,
CAMEO can retain lines from only heavily used pages in stacked DRAM."
This bench gives CAMEO the same profiled hot-page set TLM-Oracle gets
and filters the swap accordingly — streaming workloads should stop
churning the stacked hot set.
"""

from repro.analysis.report import format_table
from repro.config.system import scaled_paper_system
from repro.experiments.common import profile_hot_vpages
from repro.sim.runner import run_workload
from repro.workloads.spec import workload

from conftest import emit

WORKLOADS = ("lbm", "milc", "xalancbmk")


def run_study():
    config = scaled_paper_system()
    rows = []
    for name in WORKLOADS:
        spec = workload(name)
        hot = profile_hot_vpages(spec, config, budget_pages=config.stacked_pages)
        baseline = run_workload("baseline", spec, config)
        plain = run_workload("cameo-sam", spec, config)
        hinted = run_workload(
            "cameo-freq-hint", spec, config, org_kwargs={"hot_vpages": hot}
        )
        rows.append(
            [
                name,
                plain.speedup_over(baseline),
                hinted.speedup_over(baseline),
                plain.line_swaps,
                hinted.line_swaps,
            ]
        )
    return rows


def test_extension_frequency_hinted_cameo(benchmark):
    rows = benchmark.pedantic(run_study, rounds=1, iterations=1)
    emit(
        "Extension: frequency-hinted CAMEO",
        format_table(
            ["workload", "cameo-sam", "cameo-freq-hint", "swaps (plain)",
             "swaps (hinted)"],
            rows,
        ),
    )
    # The filter must cut swap traffic on every workload...
    for _name, _plain, _hinted, swaps_plain, swaps_hinted in rows:
        assert swaps_hinted <= swaps_plain
    # ...without a large performance regression anywhere.
    for _name, plain, hinted, *_ in rows:
        assert hinted > 0.85 * plain
