"""Regenerates Figure 14: normalised power and energy-delay product.

Paper: every stacked design raises power (Cache +14%, CAMEO +37%,
TLM-Dynamic +51%) but CAMEO's speedup wins EDP (-49%).
"""

from repro.experiments import run_figure14

from conftest import emit, selected_workloads


def test_figure14_power_and_edp(benchmark):
    result = benchmark.pedantic(
        run_figure14, args=(selected_workloads(),), rounds=1, iterations=1
    )
    emit("Figure 14 (power and EDP)", result.render())

    # Adding a stacked die always costs power...
    for org in ("cache", "cameo", "tlm-dynamic"):
        assert result.gmean_power(org) > 1.0
    # ...but CAMEO's performance buys the best efficiency of the real
    # designs, and its EDP beats the baseline.
    assert result.gmean_edp("cameo") < 1.0
    assert result.gmean_edp("cameo") < result.gmean_edp("tlm-static")
    assert result.gmean_edp("cameo") < result.gmean_edp("tlm-dynamic")
