"""Shared helpers for the per-figure benchmarks.

Each benchmark regenerates one table or figure of the paper and prints
it. Two environment knobs control the cost/fidelity trade-off:

* ``REPRO_ACCESSES_PER_CONTEXT`` — trace length (default 12000).
* ``REPRO_WORKLOADS`` — comma-separated subset of Table II names
  (default: all 17).
"""

from __future__ import annotations

import os
from typing import List

from repro.workloads.spec import WORKLOADS, WorkloadSpec, workload

WORKLOADS_ENV_VAR = "REPRO_WORKLOADS"


def selected_workloads() -> List[WorkloadSpec]:
    """The workloads to evaluate, from the environment or all of Table II."""
    raw = os.environ.get(WORKLOADS_ENV_VAR)
    if not raw:
        return list(WORKLOADS)
    return [workload(name.strip()) for name in raw.split(",") if name.strip()]


def emit(title: str, text: str) -> None:
    """Print a figure/table with a banner (pytest -s shows it)."""
    banner = "=" * 72
    print(f"\n{banner}\n{title}\n{banner}\n{text}\n")
