"""Regenerates Figure 12: SAM vs LLP vs perfect prediction.

Paper (Section V-C text): SAM 1.74x, LLP 1.78x, perfect 1.80x — the LLP
recovers most of the serialisation gap.
"""

from repro.experiments import run_figure12

from conftest import emit, selected_workloads


def test_figure12_location_prediction(benchmark):
    result = benchmark.pedantic(
        run_figure12, args=(selected_workloads(),), rounds=1, iterations=1
    )
    emit("Figure 12 (location prediction)", result.render())

    matrix = result.matrix
    sam = matrix.gmean_speedup("cameo-sam")
    llp = matrix.gmean_speedup("cameo")
    perfect = matrix.gmean_speedup("cameo-perfect")
    # Prediction must never lose to serial access on average, and the
    # oracle bounds it from above.
    assert perfect >= llp
    assert llp >= 0.95 * sam
