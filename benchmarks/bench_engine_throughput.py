"""Simulator throughput microbenchmarks (not a paper figure).

Measures simulated-accesses-per-second for the heaviest organizations so
regressions in the hot path are visible. These use normal
pytest-benchmark statistics (several rounds) since each run is short.

The standing, committed record of throughput across PRs lives in
``BENCH_<n>.json`` at the repo root, written by ``repro bench`` (see
:mod:`repro.sim.bench`); this file is the interactive/pytest-benchmark
view of the same hot path and uses the same organization grid.
"""

import pytest

from repro.config.system import scaled_paper_system
from repro.orgs.factory import build_organization
from repro.sim.engine import run_trace
from repro.sim.machine import Machine
from repro.workloads.mixes import rate_mode_generators
from repro.workloads.spec import workload

N = 1500


def simulate(org_name: str):
    config = scaled_paper_system()
    spec = workload("sphinx3")
    org = build_organization(org_name, config)
    machine = Machine(config, org, seed=1)
    generators = rate_mode_generators(spec, config, base_seed=1)
    return run_trace(machine, generators, spec, accesses_per_context=N)


@pytest.mark.parametrize("org_name", ["baseline", "cache", "cameo", "tlm-dynamic"])
def test_engine_throughput(benchmark, org_name):
    result = benchmark(simulate, org_name)
    assert result.total_cycles > 0
