"""End-to-end verification: measured headline numbers vs the paper's.

Runs Figure 13 and Table III and renders a claim-by-claim verdict table
(the same machinery EXPERIMENTS.md is built from). Scalar claims carry
tolerances acknowledging the synthetic-trace substitution; the shape
claims are strict.
"""

from repro.analysis.verification import headline_claims, llp_claims, render_claims
from repro.experiments import run_figure13, run_table3

from conftest import emit, selected_workloads


def run_verification():
    workloads = selected_workloads()
    fig13 = run_figure13(workloads)
    table3 = run_table3(workloads)
    claims = headline_claims(fig13.gmeans())
    claims += llp_claims(
        sam_accuracy=table3.accuracy("cameo-sam"),
        llp_accuracy=table3.accuracy("cameo"),
    )
    return claims


def test_verification_against_paper(benchmark):
    claims = benchmark.pedantic(run_verification, rounds=1, iterations=1)
    emit("Paper-vs-measured verification", render_claims(claims))

    # Every qualitative (shape) claim must hold outright.
    for claim in claims:
        if claim.paper_value is None:
            assert claim.holds, f"shape claim failed: {claim.description}"
    # And the central quantitative claim — CAMEO's headline speedup —
    # must be within its (tight) tolerance.
    cameo = next(c for c in claims if c.description == "CAMEO overall speedup")
    assert cameo.holds, f"CAMEO gmean {cameo.measured_value} vs paper 1.78"
