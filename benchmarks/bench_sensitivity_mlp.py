"""Sensitivity: memory-level parallelism of the core model.

The engine divides demand-read latency by an MLP factor (an OOO core
overlaps independent misses). The paper's conclusions should not hinge
on that modelling constant: CAMEO must beat the cache and TLM baselines
whether the cores overlap little (MLP 1) or a lot (MLP 4).
"""

from repro.analysis.report import format_table
from repro.config.system import scaled_paper_system
from repro.sim.runner import run_workload

from conftest import emit

MLPS = (1.0, 2.0, 4.0)
WORKLOAD = "xalancbmk"
ORGS = ("cache", "tlm-static", "cameo")


def run_study():
    rows = []
    for mlp in MLPS:
        config = scaled_paper_system(memory_level_parallelism=mlp)
        baseline = run_workload("baseline", WORKLOAD, config)
        row = [mlp]
        for org in ORGS:
            result = run_workload(org, WORKLOAD, config)
            row.append(result.speedup_over(baseline))
        rows.append(row)
    return rows


def test_sensitivity_to_mlp(benchmark):
    rows = benchmark.pedantic(run_study, rounds=1, iterations=1)
    emit(
        f"Sensitivity: MLP factor ({WORKLOAD})",
        format_table(["MLP"] + list(ORGS), rows),
    )
    # The ordering CAMEO > cache > tlm-static must hold at every MLP.
    for row in rows:
        _mlp, cache, tlm_static, cameo = row
        assert cameo > tlm_static
        assert cache > tlm_static
        assert cameo > 0.9 * cache
