"""Ablation: LLP table size (Section V-B's 256-entry choice).

A single shared LLR (1 entry) vs progressively larger PC-indexed tables.
The paper picked 256 entries x 2 bits = 64 bytes per core as "quite
effective"; this sweep shows the knee.
"""

from repro.experiments.ablations import run_llp_size_ablation

from conftest import emit

WORKLOAD = "xalancbmk"


def test_ablation_llp_table_size(benchmark):
    result = benchmark.pedantic(
        run_llp_size_ablation, kwargs={"workload": WORKLOAD}, rounds=1, iterations=1
    )
    emit(f"Ablation: LLP table size ({WORKLOAD})", result.render())

    # The paper's 256-entry table must beat the single shared register.
    assert result.accuracy_of(256) > result.accuracy_of(1)
    # And the knee is at or before 256: quadrupling past it buys little.
    assert result.accuracy_of(1024) - result.accuracy_of(256) < 0.05
