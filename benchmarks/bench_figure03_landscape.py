"""Regenerates Figure 3: the DRAM capacity/bandwidth landscape."""

from repro.experiments import run_figure3

from conftest import emit


def test_figure3_dram_landscape(benchmark):
    result = benchmark.pedantic(run_figure3, rounds=1, iterations=1)
    emit("Figure 3 (DRAM landscape)", result.render())

    # Paper: stacked DRAM offers ~8x the bandwidth but far less capacity.
    assert 6.0 <= result.bandwidth_gap <= 14.0
    assert result.capacity_gap > 1.0
