"""Regenerates Figure 13: the headline speedup comparison.

Paper numbers (Gmean-ALL): Cache 1.50x, TLM-Static 1.33x,
TLM-Dynamic 1.50x, CAMEO 1.78x, DoubleUse 1.82x.

Run: ``pytest benchmarks/bench_figure13_speedup.py --benchmark-only -s``
"""

from repro.experiments import run_figure13

from conftest import emit, selected_workloads


def test_figure13_headline_speedups(benchmark):
    result = benchmark.pedantic(
        run_figure13, args=(selected_workloads(),), rounds=1, iterations=1
    )
    emit("Figure 13 (headline comparison)", result.render())

    gmeans = result.gmeans()
    # The paper's ordering must hold: CAMEO beats every baseline design
    # and lands close to the idealistic DoubleUse.
    assert gmeans["cameo"] > gmeans["tlm-static"]
    assert gmeans["cameo"] > gmeans["cache"]
    assert gmeans["cameo"] > gmeans["tlm-dynamic"]
    assert gmeans["cameo"] > 0.85 * gmeans["doubleuse"]
