"""Ablation: TLM-Dynamic's migration threshold.

The paper's TLM-Dynamic swaps a page on its first off-chip touch
(threshold 1), which Section II-C blames for its bandwidth collapse on
sparse workloads. Raising the threshold trades locality capture for
migration traffic — milc (10 of 64 lines used per page) is the paper's
worst case.
"""

from repro.experiments.ablations import run_threshold_ablation

from conftest import emit

WORKLOAD = "milc"


def test_ablation_tlm_migration_threshold(benchmark):
    result = benchmark.pedantic(
        run_threshold_ablation, kwargs={"workload": WORKLOAD}, rounds=1, iterations=1
    )
    emit(f"Ablation: TLM-Dynamic migration threshold ({WORKLOAD})", result.render())

    by_threshold = {p.value: p for p in result.points}
    # Higher thresholds migrate less...
    assert (
        by_threshold[16].result.page_migrations
        < by_threshold[1].result.page_migrations
    )
    # ...and on milc, swap-on-first-touch sits at (or within noise of) the
    # bottom: the paper's "severe slowdown" policy point.
    best = max(p.speedup for p in result.points)
    worst = min(p.speedup for p in result.points)
    assert by_threshold[1].speedup <= worst * 1.05
    assert by_threshold[16].speedup >= by_threshold[1].speedup
