"""Regenerates Figure 9: CAMEO speedup under the three LLT designs.

Paper: Embedded-LLT ~ slowdowns on latency-sensitive workloads;
Co-Located 1.74x; Ideal 1.80x.
"""

from repro.experiments import run_figure9
from repro.workloads.spec import LATENCY

from conftest import emit, selected_workloads


def test_figure9_llt_designs(benchmark):
    result = benchmark.pedantic(
        run_figure9, args=(selected_workloads(),), rounds=1, iterations=1
    )
    emit("Figure 9 (LLT designs)", result.render())

    matrix = result.matrix
    ideal = matrix.gmean_speedup("cameo-ideal-llt")
    colocated = matrix.gmean_speedup("cameo-sam")
    embedded = matrix.gmean_speedup("cameo-embedded-llt")
    # Paper ordering: embedded < co-located <= ideal.
    assert embedded < colocated
    assert colocated <= ideal * 1.02
