"""Ablation: congruence-group size K (stacked fraction of total DRAM).

The paper evaluates K = 4 (stacked is one quarter of total capacity).
This sweep holds *total* DRAM constant and moves the stacked:off-chip
split, which simultaneously changes the congruence-group size and the
baseline's memory capacity — the design point the introduction argues
will drift toward bigger stacked fractions.
"""

from repro.experiments.ablations import run_group_size_ablation

from conftest import emit

WORKLOAD = "xalancbmk"


def test_ablation_congruence_group_size(benchmark):
    result = benchmark.pedantic(
        run_group_size_ablation, kwargs={"workload": WORKLOAD}, rounds=1, iterations=1
    )
    emit(f"Ablation: stacked fraction / group size ({WORKLOAD})", result.render())

    for point in result.points:
        assert point.speedup > 0
    # More stacked capacity captures more of the working set.
    fractions = [p.result.stacked_service_fraction for p in result.points]
    assert fractions == sorted(fractions)
