"""CAMEO reproduction: a two-level stacked-DRAM memory-organization simulator.

Reproduces *CAMEO: A Two-Level Memory Organization with Capacity of Main
Memory and Flexibility of Hardware-Managed Cache* (Chou, Jaleel, Qureshi;
MICRO 2014) as a pure-Python, trace-driven memory-system simulator.

Quickstart::

    from repro import run_workload

    baseline = run_workload("baseline", "milc")
    cameo = run_workload("cameo", "milc")
    print(f"CAMEO speedup on milc: {cameo.speedup_over(baseline):.2f}x")

The main layers:

* :mod:`repro.config` — Table I parameters and scaled system geometry.
* :mod:`repro.core` — the paper's contribution: congruence groups, the
  Line Location Table and its three storage designs, and the Line
  Location Predictor.
* :mod:`repro.orgs` — every evaluated organization (Alloy Cache, the TLM
  family, DoubleUse, the no-stacked baseline).
* :mod:`repro.workloads` — the Table II workload registry and synthetic
  SPEC-like trace generation.
* :mod:`repro.sim` — the trace-driven engine and high-level runners.
* :mod:`repro.experiments` — one function per paper table/figure.
"""

from .config import SystemConfig, scaled_paper_system
from .core import (
    CongruenceSpace,
    LastLocationPredictor,
    LineLocationTable,
    PerfectPredictor,
    SamPredictor,
)
from .errors import (
    CampaignError,
    ConfigurationError,
    FaultError,
    RecoveryExhaustedError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from .faults import FaultConfig, FaultInjector, FaultStats, RetryPolicy
from .orgs import MemoryOrganization, build_organization, organization_names
from .sim import (
    CampaignPoint,
    CampaignResult,
    CampaignSpec,
    RunResult,
    SpeedupReport,
    build_speedup_report,
    run_campaign,
    run_configs,
    run_workload,
)
from .workloads import WORKLOADS, WorkloadSpec, workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "CampaignError",
    "CampaignPoint",
    "CampaignResult",
    "CampaignSpec",
    "ConfigurationError",
    "CongruenceSpace",
    "FaultConfig",
    "FaultError",
    "FaultInjector",
    "FaultStats",
    "LastLocationPredictor",
    "LineLocationTable",
    "MemoryOrganization",
    "PerfectPredictor",
    "RecoveryExhaustedError",
    "ReproError",
    "RetryPolicy",
    "RunResult",
    "SamPredictor",
    "SimulationError",
    "SpeedupReport",
    "SystemConfig",
    "WORKLOADS",
    "WorkloadError",
    "WorkloadSpec",
    "build_organization",
    "build_speedup_report",
    "organization_names",
    "run_campaign",
    "run_configs",
    "run_workload",
    "scaled_paper_system",
    "workload",
    "workload_names",
    "__version__",
]
