"""Per-channel bus occupancy tracking with read-priority write buffering.

A channel's data bus is a serially-shared resource: only one transfer
streams at a time regardless of how many banks work in parallel. Reads
(demand fetches) reserve the bus directly; writes model a real memory
controller's write queue: their transfer time accumulates as *debt* that
is drained into idle bus gaps, and only delays reads once the debt
exceeds the write-buffer depth. This is what lets fine-granularity swap
writebacks (CAMEO's whole design bet) ride in idle slots while bulk page
migrations — which use :meth:`reserve_bus` directly — saturate the bus
the way Section II-C describes.

Bandwidth is conserved: every cycle of write debt is eventually paid,
either inside a gap or by pushing the horizon when the buffer overflows.
"""

from __future__ import annotations

from typing import List

from .bank import Bank


class Channel:
    """One DRAM channel: a bus horizon, a write-debt buffer, its banks.

    ``__slots__`` — like :class:`Bank`, this sits on the per-access path.
    """

    __slots__ = ("banks", "bus_busy_until", "write_debt")

    def __init__(
        self,
        banks: List[Bank],
        bus_busy_until: float = 0.0,
        write_debt: float = 0.0,
    ):
        self.banks = banks
        self.bus_busy_until = bus_busy_until
        self.write_debt = write_debt

    @classmethod
    def with_banks(cls, n_banks: int) -> "Channel":
        """Build a channel with ``n_banks`` idle banks."""
        return cls(banks=[Bank() for _ in range(n_banks)])

    def _drain_debt_until(self, time: float) -> None:
        """Pay buffered write cycles into the idle gap before ``time``."""
        if self.write_debt > 0.0 and time > self.bus_busy_until:
            drained = min(self.write_debt, time - self.bus_busy_until)
            self.bus_busy_until += drained
            self.write_debt -= drained

    def reserve_bus(self, earliest: float, duration: float) -> float:
        """Hard-reserve the bus (reads, bulk streams): blocks later traffic.

        Returns the transfer's start time; the horizon advances past it.
        """
        self._drain_debt_until(earliest)
        start = max(earliest, self.bus_busy_until)
        self.bus_busy_until = start + duration
        return start

    def buffer_write(self, earliest: float, duration: float, buffer_cycles: float) -> float:
        """Queue a write's transfer time behind demand traffic.

        The write sits in the controller's write buffer; only overflow
        beyond ``buffer_cycles`` pushes the shared horizon (stalling
        subsequent reads). Returns the nominal service start time.
        """
        self._drain_debt_until(earliest)
        self.write_debt += duration
        overflow = self.write_debt - buffer_cycles
        if overflow > 0.0:
            self.bus_busy_until = max(self.bus_busy_until, earliest) + overflow
            self.write_debt = buffer_cycles
        return max(earliest, self.bus_busy_until)
