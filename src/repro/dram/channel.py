"""Per-channel bus occupancy tracking with read-priority write buffering.

A channel's data bus is a serially-shared resource: only one transfer
streams at a time regardless of how many banks work in parallel. Reads
(demand fetches) reserve the bus directly; writes model a real memory
controller's write queue: their transfer time accumulates as *debt* that
is drained into idle bus gaps, and only delays reads once the debt
exceeds the write-buffer depth. This is what lets fine-granularity swap
writebacks (CAMEO's whole design bet) ride in idle slots while bulk page
migrations — which use :meth:`reserve_bus` directly — saturate the bus
the way Section II-C describes.

Bandwidth is conserved: every cycle of write debt is eventually paid,
either inside a gap or by pushing the horizon when the buffer overflows.

Like :class:`~repro.dram.bank.Bank`, a :class:`Channel` is a view over
one slot of the owning device's columnar state (one ``float64`` bus
horizon and one write-debt slot per channel) so the object API and the
compiled kernel share storage. Standalone channels own their slots.
"""

from __future__ import annotations

from array import array
from typing import List

from .bank import Bank


class Channel:
    """One DRAM channel: a bus horizon, a write-debt buffer, its banks."""

    __slots__ = ("banks", "_bus", "_debt", "_idx")

    def __init__(
        self,
        banks: List[Bank],
        bus_busy_until: float = 0.0,
        write_debt: float = 0.0,
    ):
        self.banks = banks
        self._bus = array("d", (bus_busy_until,))
        self._debt = array("d", (write_debt,))
        self._idx = 0

    @classmethod
    def with_banks(cls, n_banks: int) -> "Channel":
        """Build a standalone channel with ``n_banks`` idle banks."""
        return cls(banks=[Bank() for _ in range(n_banks)])

    @classmethod
    def view(cls, bus: array, debt: array, idx: int, banks: List[Bank]) -> "Channel":
        """A view over slot ``idx`` of a device's columnar channel state."""
        channel = cls.__new__(cls)
        channel.banks = banks
        channel._bus = bus
        channel._debt = debt
        channel._idx = idx
        return channel

    @property
    def bus_busy_until(self) -> float:
        return self._bus[self._idx]

    @bus_busy_until.setter
    def bus_busy_until(self, value: float) -> None:
        self._bus[self._idx] = value

    @property
    def write_debt(self) -> float:
        return self._debt[self._idx]

    @write_debt.setter
    def write_debt(self, value: float) -> None:
        self._debt[self._idx] = value

    def _drain_debt_until(self, time: float) -> None:
        """Pay buffered write cycles into the idle gap before ``time``."""
        idx = self._idx
        debt = self._debt[idx]
        busy = self._bus[idx]
        if debt > 0.0 and time > busy:
            drained = min(debt, time - busy)
            self._bus[idx] = busy + drained
            self._debt[idx] = debt - drained

    def reserve_bus(self, earliest: float, duration: float) -> float:
        """Hard-reserve the bus (reads, bulk streams): blocks later traffic.

        Returns the transfer's start time; the horizon advances past it.
        """
        self._drain_debt_until(earliest)
        idx = self._idx
        start = max(earliest, self._bus[idx])
        self._bus[idx] = start + duration
        return start

    def buffer_write(self, earliest: float, duration: float, buffer_cycles: float) -> float:
        """Queue a write's transfer time behind demand traffic.

        The write sits in the controller's write buffer; only overflow
        beyond ``buffer_cycles`` pushes the shared horizon (stalling
        subsequent reads). Returns the nominal service start time.
        """
        self._drain_debt_until(earliest)
        idx = self._idx
        debt = self._debt[idx] + duration
        overflow = debt - buffer_cycles
        if overflow > 0.0:
            self._bus[idx] = max(self._bus[idx], earliest) + overflow
            debt = buffer_cycles
        self._debt[idx] = debt
        return max(earliest, self._bus[idx])
