"""DRAM substrate: banks, channels, and timed device models."""

from .bank import Bank, RowOutcome
from .channel import Channel
from .device import DramAccessResult, DramDevice
from .stats import DramStats

__all__ = [
    "Bank",
    "Channel",
    "DramAccessResult",
    "DramDevice",
    "DramStats",
    "RowOutcome",
]
