"""Per-bank row-buffer state.

Each DRAM bank owns one row buffer. An access is classified against that
buffer as a *hit* (row already open), *closed* (no open row, e.g. after a
refresh or at start-up), or *conflict* (a different row is open and must
be precharged first). The bank also tracks when it next becomes free so
back-to-back requests to the same bank queue behind each other.

Storage is columnar: a :class:`~repro.dram.device.DramDevice` keeps every
bank's open row and busy horizon in two flat arrays (one ``int64`` and
one ``float64`` slot per bank), which is what the vectorized engine hands
to its compiled kernel. A :class:`Bank` is a *view* over one slot of
those arrays — the object API below reads and writes the same storage the
kernel does, so there is a single source of truth. A standalone
``Bank()`` (tests, exploration) simply owns one-element backing arrays.
"""

from __future__ import annotations

import enum
from array import array
from typing import Optional

#: Sentinel in the open-row column for "no row open" (rows are >= 0).
NO_OPEN_ROW = -1


class RowOutcome(enum.Enum):
    """Row-buffer classification of one access."""

    HIT = "hit"
    CLOSED = "closed"
    CONFLICT = "conflict"


class Bank:
    """One DRAM bank: an open-row register plus a busy-until horizon.

    A lightweight view over one slot of the columnar bank state; the
    device hot path bypasses these properties and indexes the arrays
    directly, so the property overhead is paid only by tests and
    diagnostic code.
    """

    __slots__ = ("_open_rows", "_busy", "_idx")

    def __init__(self, open_row: Optional[int] = None, busy_until: float = 0.0):
        self._open_rows = array("q", (NO_OPEN_ROW if open_row is None else open_row,))
        self._busy = array("d", (busy_until,))
        self._idx = 0

    @classmethod
    def view(cls, open_rows: array, busy: array, idx: int) -> "Bank":
        """A view over slot ``idx`` of a device's columnar bank state."""
        bank = cls.__new__(cls)
        bank._open_rows = open_rows
        bank._busy = busy
        bank._idx = idx
        return bank

    @property
    def open_row(self) -> Optional[int]:
        row = self._open_rows[self._idx]
        return None if row == NO_OPEN_ROW else row

    @open_row.setter
    def open_row(self, row: Optional[int]) -> None:
        self._open_rows[self._idx] = NO_OPEN_ROW if row is None else row

    @property
    def busy_until(self) -> float:
        return self._busy[self._idx]

    @busy_until.setter
    def busy_until(self, value: float) -> None:
        self._busy[self._idx] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bank(open_row={self.open_row}, busy_until={self.busy_until})"

    def classify(self, row: int) -> RowOutcome:
        """Classify an access to ``row`` against the current open row."""
        open_row = self._open_rows[self._idx]
        if open_row == NO_OPEN_ROW:
            return RowOutcome.CLOSED
        if open_row == row:
            return RowOutcome.HIT
        return RowOutcome.CONFLICT

    def open_and_occupy(self, row: int, until: float) -> None:
        """Record that ``row`` is now open and the bank is busy until ``until``.

        Open-page policy: the row stays open after the access completes,
        which is what gives spatially-local streams their row-hit benefit.
        """
        idx = self._idx
        self._open_rows[idx] = row
        if until > self._busy[idx]:
            self._busy[idx] = until

    def precharge(self) -> None:
        """Close the open row (used by refresh modelling and tests)."""
        self._open_rows[self._idx] = NO_OPEN_ROW
