"""Per-bank row-buffer state.

Each DRAM bank owns one row buffer. An access is classified against that
buffer as a *hit* (row already open), *closed* (no open row, e.g. after a
refresh or at start-up), or *conflict* (a different row is open and must
be precharged first). The bank also tracks when it next becomes free so
back-to-back requests to the same bank queue behind each other.
"""

from __future__ import annotations

import enum
from typing import Optional


class RowOutcome(enum.Enum):
    """Row-buffer classification of one access."""

    HIT = "hit"
    CLOSED = "closed"
    CONFLICT = "conflict"


class Bank:
    """One DRAM bank: an open-row register plus a busy-until horizon.

    ``__slots__`` because a device owns channels x banks of these and
    the engine touches one per simulated access.
    """

    __slots__ = ("open_row", "busy_until")

    def __init__(self, open_row: Optional[int] = None, busy_until: float = 0.0):
        self.open_row = open_row
        self.busy_until = busy_until

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bank(open_row={self.open_row}, busy_until={self.busy_until})"

    def classify(self, row: int) -> RowOutcome:
        """Classify an access to ``row`` against the current open row."""
        if self.open_row is None:
            return RowOutcome.CLOSED
        if self.open_row == row:
            return RowOutcome.HIT
        return RowOutcome.CONFLICT

    def open_and_occupy(self, row: int, until: float) -> None:
        """Record that ``row`` is now open and the bank is busy until ``until``.

        Open-page policy: the row stays open after the access completes,
        which is what gives spatially-local streams their row-hit benefit.
        """
        self.open_row = row
        if until > self.busy_until:
            self.busy_until = until

    def precharge(self) -> None:
        """Close the open row (used by refresh modelling and tests)."""
        self.open_row = None
