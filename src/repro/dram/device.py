"""The DRAM device model: address mapping, timing, and contention.

One :class:`DramDevice` models either the stacked or the off-chip DRAM.
It owns the channels/banks described by a
:class:`~repro.config.timing.DramTimingParams`, maps line addresses onto
them, and returns per-access latencies that include queueing behind busy
banks and busy buses. Memory organizations never compute latency
themselves; they ask their devices.

Address mapping (fixed, documented policy):

* channels are interleaved at line granularity (consecutive lines hit
  different channels, maximising bandwidth, as DRAM caches assume);
* within a channel, the row is the line's position in that channel's
  slice of the address space divided by lines-per-row;
* banks are interleaved by row (consecutive rows of one channel land in
  different banks).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING, Tuple

from ..config.timing import DramTimingParams
from ..errors import ConfigurationError, FaultError, RecoveryExhaustedError
from ..faults.model import FaultKind
from .bank import Bank, NO_OPEN_ROW, RowOutcome
from .channel import Channel
from .stats import DramStats

if TYPE_CHECKING:
    from ..faults.injector import FaultInjector


class DramAccessResult:
    """Outcome of one device access.

    A plain ``__slots__`` record: results are allocated per access (the
    fault pipeline and tests may hold several from one device at once)
    but carry no dataclass machinery.
    """

    __slots__ = ("latency", "finish_time", "outcome")

    def __init__(self, latency: float, finish_time: float, outcome: RowOutcome):
        self.latency = latency
        self.finish_time = finish_time
        self.outcome = outcome

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DramAccessResult(latency={self.latency}, "
                f"finish_time={self.finish_time}, outcome={self.outcome})")


class DramDevice:
    """A timing-accurate (bank/bus-level) model of one DRAM module."""

    def __init__(self, timing: DramTimingParams, capacity_bytes: int, line_bytes: int = 64):
        if capacity_bytes <= 0 or capacity_bytes % line_bytes:
            raise ConfigurationError("device capacity must be a positive multiple of the line size")
        if timing.row_buffer_bytes % line_bytes:
            raise ConfigurationError("row buffer must hold a whole number of lines")
        self.timing = timing
        self.capacity_bytes = capacity_bytes
        self.line_bytes = line_bytes
        self.lines_per_row = timing.row_buffer_bytes // line_bytes
        # Columnar timing state: one slot per bank (open row / busy
        # horizon, flattened channel-major) and one per channel (bus
        # horizon / write debt). These buffers are the single source of
        # truth — the Bank/Channel objects below are views over them, and
        # the vectorized engine hands the very same buffers to its
        # compiled kernel (see columnar_state).
        n_flat = timing.channels * timing.banks_per_channel
        self._bank_open_row = array("q", (NO_OPEN_ROW,)) * n_flat
        self._bank_busy_until = array("d", (0.0,)) * n_flat
        self._bus_busy_until = array("d", (0.0,)) * timing.channels
        self._write_debt = array("d", (0.0,)) * timing.channels
        self.channels: List[Channel] = [
            Channel.view(
                self._bus_busy_until,
                self._write_debt,
                ci,
                [
                    Bank.view(
                        self._bank_open_row,
                        self._bank_busy_until,
                        ci * timing.banks_per_channel + bi,
                    )
                    for bi in range(timing.banks_per_channel)
                ],
            )
            for ci in range(timing.channels)
        ]
        # Controller write buffer: writes only delay reads once this many
        # cycles of write transfer are pending per channel (~16 lines).
        self.write_buffer_cycles = 16 * timing.transfer_cycles(line_bytes)
        self._next_refresh = timing.refresh_interval_cycles
        # Hot-path caches: the timing params are frozen, so geometry and
        # per-size cycle counts are computed once instead of per access.
        self._capacity_lines = capacity_bytes // line_bytes
        self._n_channels = timing.channels
        self._n_banks = timing.banks_per_channel
        self._refresh_enabled = timing.refresh_enabled
        #: n_bytes -> (row_hit, row_closed, row_conflict, transfer) cycles.
        self._cycles_cache: dict = {}
        self.stats = DramStats()
        #: Optional shared fault injector (see :mod:`repro.faults`); when
        #: None (the default) the fault pipeline is skipped entirely.
        self.fault_injector: Optional["FaultInjector"] = None

    @property
    def capacity_lines(self) -> int:
        return self._capacity_lines

    # -- Address mapping -----------------------------------------------------

    def map_address(self, line_addr: int) -> Tuple[int, int, int]:
        """Map a device-local line address to (channel, bank, row)."""
        if line_addr < 0 or line_addr >= self._capacity_lines:
            raise ConfigurationError(
                f"{self.timing.name}: line {line_addr} outside device of "
                f"{self._capacity_lines} lines"
            )
        n_channels = self._n_channels
        channel = line_addr % n_channels
        line_in_channel = line_addr // n_channels
        row = line_in_channel // self.lines_per_row
        bank = row % self._n_banks
        return channel, bank, row

    def _cycles(self, n_bytes: int) -> Tuple[float, float, float, float]:
        """(row-hit, row-closed, row-conflict, transfer) cycles, cached."""
        cached = self._cycles_cache.get(n_bytes)
        if cached is None:
            timing = self.timing
            cached = (
                timing.row_hit_cycles(n_bytes),
                timing.row_closed_cycles(n_bytes),
                timing.row_conflict_cycles(n_bytes),
                timing.transfer_cycles(n_bytes),
            )
            self._cycles_cache[n_bytes] = cached
        return cached

    # -- Timed access ----------------------------------------------------------

    def access(
        self,
        now: float,
        line_addr: int,
        n_bytes: int,
        is_write: bool = False,
    ) -> DramAccessResult:
        """Perform one access at time ``now``; returns latency and finish time.

        A read waits for its bank, pays the row-outcome latency, then
        streams its burst over the channel bus (waiting for the bus if
        another transfer is in flight). Bank and bus horizons advance so
        later requests observe the contention.

        A write goes through the controller's write buffer
        (:meth:`Channel.buffer_write`): it consumes bus bandwidth but only
        delays demand reads once the per-channel buffer overflows, and it
        does not occupy its bank from the perspective of later reads.

        With a fault injector attached, the result additionally passes
        through the ECC/retry pipeline (see :meth:`_apply_faults`); reads
        of permanently failed rows raise :class:`FaultError`.
        """
        result = self._timed_access(now, line_addr, n_bytes, is_write)
        if self.fault_injector is None:
            return result
        return self._apply_faults(now, result, line_addr, n_bytes, is_write)

    def _timed_access(
        self,
        now: float,
        line_addr: int,
        n_bytes: int,
        is_write: bool,
    ) -> DramAccessResult:
        """The raw (fault-free) timing model behind :meth:`access`.

        This is the innermost frame of the whole simulator; address
        mapping, row classification, channel arbitration, and stats
        accumulation operate directly on the columnar arrays (see
        :meth:`map_address`, :class:`~repro.dram.bank.Bank`, and
        :class:`~repro.dram.channel.Channel` for readable equivalents —
        the arithmetic here mirrors those methods operation for
        operation, which is what keeps the compiled kernel and the views
        bit-identical).
        """
        if self._refresh_enabled:
            self._apply_refresh(now)

        if line_addr < 0 or line_addr >= self._capacity_lines:
            raise ConfigurationError(
                f"{self.timing.name}: line {line_addr} outside device of "
                f"{self._capacity_lines} lines"
            )
        channel_idx = line_addr % self._n_channels
        row = (line_addr // self._n_channels) // self.lines_per_row
        flat = channel_idx * self._n_banks + row % self._n_banks

        hit_cycles, closed_cycles, conflict_cycles, transfer = self._cycles(n_bytes)
        open_rows = self._bank_open_row
        open_row = open_rows[flat]
        stats = self.stats
        if open_row == NO_OPEN_ROW:
            outcome = RowOutcome.CLOSED
            core = closed_cycles
            stats.row_closed += 1
        elif open_row == row:
            outcome = RowOutcome.HIT
            core = hit_cycles
            stats.row_hits += 1
        else:
            outcome = RowOutcome.CONFLICT
            core = conflict_cycles
            stats.row_conflicts += 1

        bus = self._bus_busy_until
        debts = self._write_debt
        if is_write:
            # Channel.buffer_write, inlined: drain debt into the idle
            # gap, queue this transfer, push the horizon only on overflow.
            busy = bus[channel_idx]
            debt = debts[channel_idx]
            if debt > 0.0 and now > busy:
                drained = min(debt, now - busy)
                busy += drained
                debt -= drained
            debt += transfer
            overflow = debt - self.write_buffer_cycles
            if overflow > 0.0:
                busy = (busy if busy >= now else now) + overflow
                debt = self.write_buffer_cycles
            bus[channel_idx] = busy
            debts[channel_idx] = debt
            start = now if now >= busy else busy
            finish = start + core
            # The write leaves its row open for later reads but does not
            # hold the bank (drained opportunistically by the controller).
            open_rows[flat] = row
            stats.writes += 1
            stats.bytes_written += n_bytes
            stats.service_cycles += core
            return DramAccessResult(latency=core, finish_time=finish, outcome=outcome)

        bank_busy = self._bank_busy_until
        bank_free = bank_busy[flat]
        start = now if now > bank_free else bank_free
        data_ready = start + (core - transfer)
        # Channel.reserve_bus, inlined: drain debt, hard-reserve the bus.
        busy = bus[channel_idx]
        debt = debts[channel_idx]
        if debt > 0.0 and data_ready > busy:
            drained = min(debt, data_ready - busy)
            busy += drained
            debts[channel_idx] = debt - drained
        bus_start = data_ready if data_ready >= busy else busy
        bus[channel_idx] = bus_start + transfer
        finish = bus_start + transfer

        # Open-page policy: the row stays open, the bank stays occupied.
        open_rows[flat] = row
        if finish > bank_busy[flat]:
            bank_busy[flat] = finish
        stats.reads += 1
        stats.bytes_read += n_bytes
        stats.queue_wait_cycles += start - now
        stats.service_cycles += finish - start
        return DramAccessResult(latency=finish - now, finish_time=finish, outcome=outcome)

    def access_line(self, now: float, line_addr: int, is_write: bool = False) -> DramAccessResult:
        """Access one full cache line (the common case)."""
        return self.access(now, line_addr, self.line_bytes, is_write)

    # -- Fault pipeline (active only with an injector attached) ---------------

    def _row_key(self, line_addr: int):
        channel, bank, row = self.map_address(line_addr)
        return (self.timing.name, channel, bank, row)

    def is_stuck_line(self, line_addr: int) -> bool:
        """Does ``line_addr`` live in a permanently failed row?"""
        if self.fault_injector is None:
            return False
        return self.fault_injector.is_stuck_row(self._row_key(line_addr))

    def _apply_faults(
        self,
        now: float,
        result: DramAccessResult,
        line_addr: int,
        n_bytes: int,
        is_write: bool,
    ) -> DramAccessResult:
        """SECDED + retry recovery over one completed access.

        Writes never fault here: a write to a healthy row succeeds, and a
        write to a stuck row is silently lost (counted; the corruption
        surfaces on the next read). Reads draw a fault event: corrected
        transients add the ECC latency, uncorrectable transients and
        timeouts enter bounded retry, and stuck rows — new or previously
        registered — raise a permanent :class:`FaultError` for the
        organization to handle (decommission/remap).
        """
        injector = self.fault_injector
        key = self._row_key(line_addr)
        if is_write:
            if injector.is_stuck_row(key):
                injector.stats.dropped_writes += 1
            return result
        if injector.is_stuck_row(key):
            injector.stats.ecc_detected += 1
            raise FaultError(
                f"{self.timing.name}: read of stuck row {key[1:]} "
                f"(line {line_addr})",
                device=self.timing.name,
                line_addr=line_addr,
                permanent=True,
            )
        event = injector.draw_read_fault(key)
        if event is None:
            return result
        if event.kind is FaultKind.TRANSIENT_FLIP:
            if event.correctable:
                injector.stats.ecc_corrected += 1
                extra = injector.config.ecc_correction_cycles
                return DramAccessResult(
                    latency=result.latency + extra,
                    finish_time=result.finish_time + extra,
                    outcome=result.outcome,
                )
            injector.stats.ecc_detected += 1
            return self._retry_read(now, result, line_addr, n_bytes)
        if event.kind is FaultKind.STUCK_ROW:
            injector.stats.ecc_detected += 1
            raise FaultError(
                f"{self.timing.name}: row {key[1:]} failed permanently "
                f"(line {line_addr})",
                device=self.timing.name,
                line_addr=line_addr,
                permanent=True,
            )
        # Channel timeout: stall the full timeout window, then retry.
        return self._retry_read(
            now,
            result,
            line_addr,
            n_bytes,
            initial_penalty=injector.config.timeout_penalty_cycles,
        )

    def _retry_read(
        self,
        now: float,
        failed: DramAccessResult,
        line_addr: int,
        n_bytes: int,
        initial_penalty: float = 0.0,
    ) -> DramAccessResult:
        """Bounded retry with exponential backoff after a failed read.

        Each attempt re-runs the full timing model (it is a real second
        access: bank/bus state advances) and re-draws faults, so a retry
        can itself fail or even discover a stuck row. Success returns the
        end-to-end latency including every failed attempt and backoff.
        """
        injector = self.fault_injector
        policy = injector.config.retry
        key = self._row_key(line_addr)
        t = failed.finish_time + initial_penalty
        for attempt in range(policy.max_retries):
            t += policy.backoff_cycles(attempt)
            injector.stats.retries += 1
            res = self._timed_access(t, line_addr, n_bytes, False)
            t = res.finish_time
            event = injector.draw_read_fault(key)
            if event is not None and event.kind is FaultKind.STUCK_ROW:
                injector.stats.ecc_detected += 1
                raise FaultError(
                    f"{self.timing.name}: row {key[1:]} failed permanently "
                    f"during retry (line {line_addr})",
                    device=self.timing.name,
                    line_addr=line_addr,
                    permanent=True,
                )
            if event is None or event.correctable:
                if event is not None:
                    injector.stats.ecc_corrected += 1
                    t += injector.config.ecc_correction_cycles
                injector.stats.retry_successes += 1
                return DramAccessResult(
                    latency=t - now, finish_time=t, outcome=res.outcome
                )
            if event.kind is FaultKind.CHANNEL_TIMEOUT:
                t += injector.config.timeout_penalty_cycles
            else:  # another uncorrectable transient
                injector.stats.ecc_detected += 1
        injector.stats.recoveries_exhausted += 1
        raise RecoveryExhaustedError(
            f"{self.timing.name}: line {line_addr} still failing after "
            f"{policy.max_retries} retries",
            device=self.timing.name,
            line_addr=line_addr,
        )

    def _apply_refresh(self, now: float) -> None:
        """Run any refresh cycles due by ``now`` (all banks held busy).

        All-bank refresh: every ``refresh_interval_cycles`` the whole
        device pauses for ``refresh_duration_cycles``, rows close, and
        in-flight horizons push out — the classic tREFI/tRFC behaviour.
        """
        interval = self.timing.refresh_interval_cycles
        duration = self.timing.refresh_duration_cycles
        open_rows = self._bank_open_row
        bank_busy = self._bank_busy_until
        while self._next_refresh <= now:
            start = self._next_refresh
            for flat in range(len(open_rows)):
                open_rows[flat] = NO_OPEN_ROW
                busy_from = max(start, bank_busy[flat])
                bank_busy[flat] = busy_from + duration
            self._next_refresh += interval

    def speculative_access(self, now: float, line_addr: int, n_bytes: int) -> None:
        """A mispredicted speculative read, squashed when found useless.

        CAMEO's LLP (and Alloy's MAP-I) launch off-chip fetches in
        parallel with the stacked probe; when the probe reveals the guess
        was wrong the controller cancels the request. The cancelled
        request still held a queue slot and its data burst may already be
        in flight, so it charges its bus transfer (the paper's "wastes
        off-chip memory bandwidth", Section V-D) but no bank occupancy
        and no row-state disturbance.
        """
        if line_addr < 0 or line_addr >= self._capacity_lines:
            raise ConfigurationError(
                f"{self.timing.name}: line {line_addr} outside device of "
                f"{self._capacity_lines} lines"
            )
        transfer = self._cycles(n_bytes)[3]
        # Channel.reserve_bus, inlined (this path fires on every LLP
        # misprediction, which can be most accesses under SAM).
        channel_idx = line_addr % self._n_channels
        bus = self._bus_busy_until
        debts = self._write_debt
        busy = bus[channel_idx]
        debt = debts[channel_idx]
        if debt > 0.0 and now > busy:
            drained = min(debt, now - busy)
            busy += drained
            debts[channel_idx] = debt - drained
        start = now if now >= busy else busy
        bus[channel_idx] = start + transfer
        self.stats.reads += 1
        self.stats.bytes_read += n_bytes
        self.stats.service_cycles += transfer

    def stream(self, now: float, first_line: int, n_lines: int, is_write: bool = False) -> float:
        """Bulk-transfer ``n_lines`` consecutive lines (page fill/migration).

        Page-granularity traffic is the whole story of TLM-Dynamic's
        bandwidth problem, so it must occupy the buses: the lines are
        spread round-robin over the channels (matching the line-interleaved
        map), each channel's bus is reserved for its share, and subsequent
        demand accesses queue behind the stream. Returns the completion
        latency; per-line bank state is not updated (a whole-row stream
        leaves rows open for itself, not for later demand lines).
        """
        if n_lines <= 0:
            raise ConfigurationError("stream length must be positive")
        n_channels = self.timing.channels
        base_share, extra = divmod(n_lines, n_channels)
        transfer = self.timing.transfer_cycles(self.line_bytes)
        activation = self.timing.row_closed_cycles(self.line_bytes) - transfer
        finish_max = now
        total_rows = 0
        for offset in range(min(n_channels, n_lines)):
            share = base_share + (1 if offset < extra else 0)
            if share == 0:
                continue
            rows = -(-share // self.lines_per_row)
            total_rows += rows
            channel = self.channels[(first_line + offset) % n_channels]
            duration = share * transfer + rows * activation
            start = channel.reserve_bus(now, duration)
            finish_max = max(finish_max, start + duration)

        n_bytes = n_lines * self.line_bytes
        if is_write:
            self.stats.writes += n_lines
            self.stats.bytes_written += n_bytes
        else:
            self.stats.reads += n_lines
            self.stats.bytes_read += n_bytes
        self.stats.row_closed += total_rows
        self.stats.row_hits += n_lines - total_rows
        self.stats.service_cycles += finish_max - now
        return finish_max - now

    def reset_stats(self) -> None:
        """Clear counters without disturbing bank/bus state."""
        self.stats = DramStats()

    def columnar_state(self) -> Tuple[array, array, array, array]:
        """The flat timing-state buffers, for the vectorized engine.

        ``(bank_open_row, bank_busy_until, bus_busy_until, write_debt)``
        — the same storage the Bank/Channel views wrap, so mutations by
        a compiled kernel are immediately visible to the object API and
        vice versa. Bank slots are flattened channel-major
        (``channel * banks_per_channel + bank``).
        """
        return (
            self._bank_open_row,
            self._bank_busy_until,
            self._bus_busy_until,
            self._write_debt,
        )
