"""Traffic and locality counters for one DRAM device."""

from __future__ import annotations

from dataclasses import dataclass, field

from .bank import RowOutcome


@dataclass
class DramStats:
    """Cumulative counters, reset per simulation run.

    ``bytes_transferred`` is the figure Table IV normalises: every byte
    that crosses the device's pins, reads and writes alike.
    """

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    row_hits: int = 0
    row_closed: int = 0
    row_conflicts: int = 0
    queue_wait_cycles: float = 0.0
    service_cycles: float = 0.0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def bytes_transferred(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def row_hit_rate(self) -> float:
        """Fraction of accesses that hit an open row (0 when idle)."""
        if not self.accesses:
            return 0.0
        return self.row_hits / self.accesses

    @property
    def average_latency(self) -> float:
        """Mean cycles from arrival to data return (0 when idle)."""
        if not self.accesses:
            return 0.0
        return (self.queue_wait_cycles + self.service_cycles) / self.accesses

    def record(
        self,
        is_write: bool,
        n_bytes: int,
        outcome: RowOutcome,
        wait: float,
        service: float,
    ) -> None:
        """Accumulate one access."""
        if is_write:
            self.writes += 1
            self.bytes_written += n_bytes
        else:
            self.reads += 1
            self.bytes_read += n_bytes
        if outcome is RowOutcome.HIT:
            self.row_hits += 1
        elif outcome is RowOutcome.CLOSED:
            self.row_closed += 1
        else:
            self.row_conflicts += 1
        self.queue_wait_cycles += wait
        self.service_cycles += service
