"""Figure 8: analytical access-latency comparison of the LLT designs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..analysis.latency_model import LltLatency, llt_latency_model
from ..analysis.report import format_table


@dataclass
class Figure8Result:
    """Hit (H) / miss (M) latencies per design, in abstract units."""

    model: Dict[str, LltLatency]

    def render(self) -> str:
        order = ["baseline", "ideal", "embedded", "colocated"]
        return format_table(
            ["design", "H (stacked-resident)", "M (off-chip resident)"],
            [[d, self.model[d].hit_units, self.model[d].miss_units] for d in order],
            title=(
                "Figure 8: isolated-request latency "
                "(stacked = 1 unit, off-chip = 2 units)"
            ),
        )


def run_figure8(stacked_unit: float = 1.0, offchip_unit: float = 2.0) -> Figure8Result:
    """Regenerate Figure 8's four bars."""
    return Figure8Result(llt_latency_model(stacked_unit, offchip_unit))
