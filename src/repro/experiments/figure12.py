"""Figure 12: CAMEO with no prediction (SAM), the LLP, and a perfect LLP.

"On average, no prediction provides 68%, LLP provides 89%, and perfect
prediction provides 94%" (figure caption; the surrounding text quotes
74%/78%/80% for the final configuration)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..analysis.report import format_table
from ..config.system import SystemConfig
from ..workloads.spec import CAPACITY, LATENCY, WorkloadSpec
from ..sim.plan import PlannedExperiment
from .common import ResultMatrix, category_gmean_rows, planned_matrix, run_matrix

FIGURE12_ORGS = ("cameo-sam", "cameo", "cameo-perfect")
_LABELS = {
    "cameo-sam": "No Prediction (SAM)",
    "cameo": "LLP",
    "cameo-perfect": "Perfect Prediction",
}


@dataclass
class Figure12Result:
    matrix: ResultMatrix

    def rows(self):
        for workload in self.matrix.workloads():
            yield [workload, self.matrix.categories[workload]] + [
                self.matrix.speedup(workload, org) for org in FIGURE12_ORGS
            ]
        yield from category_gmean_rows(self.matrix, FIGURE12_ORGS)

    def render(self) -> str:
        return format_table(
            ["workload", "category"] + [_LABELS[o] for o in FIGURE12_ORGS],
            self.rows(),
            title="Figure 12: location prediction (SAM vs LLP vs perfect)",
        )


def run_figure12(
    workloads: Optional[Iterable[WorkloadSpec]] = None,
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
    n_jobs: Optional[int] = 1,
) -> Figure12Result:
    """Regenerate Figure 12."""
    return Figure12Result(
        run_matrix(FIGURE12_ORGS, workloads, config, accesses_per_context, seed,
                   n_jobs=n_jobs)
    )


def plan_figure12(
    workloads: Optional[Iterable[WorkloadSpec]] = None,
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
) -> PlannedExperiment:
    """Declare Figure 12's grid for the ``repro paper`` planner."""
    return planned_matrix(
        "figure12", FIGURE12_ORGS, workloads, config, accesses_per_context,
        seed, wrap=Figure12Result,
    )
