"""Table IV: bandwidth usage in memory and storage.

"To measure bandwidth consumption of different designs, we calculate the
number of bytes transferred on the bus in respective systems and
normalize it to the number in the baseline." Rows are per category:
stacked and off-chip DRAM bytes normalised to the baseline's off-chip
bytes, and storage bytes normalised to the baseline's storage bytes
(capacity-limited workloads only — latency workloads do not page).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..analysis.report import format_table
from ..config.system import SystemConfig
from ..units import mean
from ..workloads.spec import CAPACITY, LATENCY, WorkloadSpec
from ..sim.plan import PlannedExperiment
from .common import HEADLINE_ORGS, ResultMatrix, planned_matrix, run_matrix


@dataclass
class Table4Result:
    matrix: ResultMatrix

    def normalized(self, org: str, category: str) -> Dict[str, Optional[float]]:
        """Mean normalised traffic of ``org`` over one workload category."""
        stacked, offchip, storage = [], [], []
        for workload in self.matrix.workloads(category):
            result = self.matrix.results[workload][org]
            base = self.matrix.baseline(workload)
            base_offchip = base.dram_bytes.get("offchip", 0)
            if base_offchip:
                stacked.append(result.dram_bytes.get("stacked", 0) / base_offchip)
                offchip.append(result.dram_bytes.get("offchip", 0) / base_offchip)
            if base.storage_bytes:
                storage.append(result.storage_bytes / base.storage_bytes)
        return {
            "stacked": mean(stacked) if stacked else None,
            "offchip": mean(offchip) if offchip else None,
            "storage": mean(storage) if storage else None,
        }

    def rows(self):
        for org in HEADLINE_ORGS:
            cap = self.normalized(org, CAPACITY)
            lat = self.normalized(org, LATENCY)
            yield [
                org,
                _fmt(cap["stacked"]), _fmt(cap["offchip"]), _fmt(cap["storage"]),
                _fmt(lat["stacked"]), _fmt(lat["offchip"]),
            ]

    def render(self) -> str:
        return format_table(
            [
                "design",
                "cap:stacked", "cap:offchip", "cap:storage",
                "lat:stacked", "lat:offchip",
            ],
            self.rows(),
            title=(
                "Table IV: bytes transferred, normalised to the baseline "
                "(baseline off-chip = 1x; storage normalised to baseline storage)"
            ),
        )


def _fmt(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{value:.2f}x"


def run_table4(
    workloads: Optional[Iterable[WorkloadSpec]] = None,
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
    n_jobs: Optional[int] = 1,
) -> Table4Result:
    """Regenerate Table IV."""
    return Table4Result(
        run_matrix(HEADLINE_ORGS, workloads, config, accesses_per_context, seed,
                   n_jobs=n_jobs)
    )


def plan_table4(
    workloads: Optional[Iterable[WorkloadSpec]] = None,
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
) -> PlannedExperiment:
    """Declare Table IV's grid for the ``repro paper`` planner."""
    return planned_matrix(
        "table4", HEADLINE_ORGS, workloads, config, accesses_per_context, seed,
        wrap=Table4Result,
    )
