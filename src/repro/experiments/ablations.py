"""Ablation studies over CAMEO's design choices (DESIGN.md section 5).

These are not paper figures; they probe the design decisions the paper
fixes by construction: the stacked fraction (congruence-group size),
the LLP table size, and TLM-Dynamic's migration threshold. The
`benchmarks/bench_ablation_*.py` files print and assert these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analysis.report import format_table
from ..config.system import SystemConfig, scaled_paper_system
from ..core.llp import LastLocationPredictor
from ..sim.parallel import SimJob, raise_on_failures, run_many
from ..sim.sweep import SweepPoint, sweep_org_parameter, sweep_system
from ..units import MIB, format_bytes


@dataclass
class GroupSizeAblation:
    """CAMEO at several stacked:total splits of a fixed-size memory."""

    workload: str
    points: List[SweepPoint]

    def render(self) -> str:
        return format_table(
            ["split", "CAMEO speedup", "stacked service"],
            [
                [str(p.value), p.speedup, p.result.stacked_service_fraction]
                for p in self.points
            ],
            title=f"Ablation: stacked fraction / group size ({self.workload})",
        )


def run_group_size_ablation(
    workload: str = "xalancbmk",
    total_bytes: int = 4 * MIB,
    splits: Sequence[int] = (8, 4, 2),
    accesses_per_context: Optional[int] = None,
    n_jobs: Optional[int] = 1,
) -> GroupSizeAblation:
    """Hold total DRAM fixed; move the stacked:off-chip boundary.

    ``splits`` are group sizes K (stacked = total / K).
    """
    configs = {}
    for k in splits:
        stacked = total_bytes // k
        label = f"1:{k - 1} (K={k})"
        configs[label] = scaled_paper_system().replace(
            stacked_bytes=stacked, offchip_bytes=total_bytes - stacked
        )
    points = sweep_system("cameo", workload, configs, accesses_per_context,
                          n_jobs=n_jobs)
    return GroupSizeAblation(workload=workload, points=points)


@dataclass
class LlpSizeAblation:
    """LLP accuracy/speedup vs predictor table size."""

    workload: str
    rows: List[Tuple[int, float, float]]  # (entries, speedup, accuracy)

    def render(self) -> str:
        return format_table(
            ["entries", "bytes/core", "speedup", "accuracy"],
            [[e, e * 2 // 8, s, a] for e, s, a in self.rows],
            title=f"Ablation: LLP table size ({self.workload})",
        )

    def accuracy_of(self, entries: int) -> float:
        for e, _s, a in self.rows:
            if e == entries:
                return a
        raise KeyError(entries)


def run_llp_size_ablation(
    workload: str = "xalancbmk",
    table_sizes: Sequence[int] = (1, 16, 64, 256, 1024),
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    n_jobs: Optional[int] = 1,
) -> LlpSizeAblation:
    """Sweep the LLP's PC-indexed table from one shared LLR upward."""
    jobs = [SimJob("baseline", workload, config, accesses_per_context)]
    jobs.extend(
        SimJob(
            "cameo", workload, config, accesses_per_context,
            org_kwargs={"predictor": LastLocationPredictor(entries=entries)},
            tag=f"entries={entries}",
        )
        for entries in table_sizes
    )
    outcomes = run_many(jobs, n_jobs=n_jobs)
    raise_on_failures(outcomes, "llp-size ablation")
    baseline = outcomes[0].result
    rows = []
    for entries, outcome in zip(table_sizes, outcomes[1:]):
        result = outcome.result
        rows.append(
            (entries, result.speedup_over(baseline), result.llp_cases.accuracy)
        )
    return LlpSizeAblation(workload=workload, rows=rows)


@dataclass
class ThresholdAblation:
    """TLM-Dynamic speedup/migrations vs touch threshold."""

    workload: str
    points: List[SweepPoint]

    def render(self) -> str:
        return format_table(
            ["threshold", "speedup", "page migrations"],
            [[p.value, p.speedup, p.result.page_migrations] for p in self.points],
            title=f"Ablation: TLM-Dynamic migration threshold ({self.workload})",
        )


def run_threshold_ablation(
    workload: str = "milc",
    thresholds: Sequence[int] = (1, 2, 4, 8, 16),
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    baseline=None,
    n_jobs: Optional[int] = 1,
) -> ThresholdAblation:
    """Sweep TLM-Dynamic's swap-on-Nth-touch threshold.

    ``baseline`` optionally reuses an already-simulated baseline
    :class:`~repro.sim.results.RunResult` instead of re-running it.
    """
    points = sweep_org_parameter(
        "tlm-dynamic", "migration_threshold", list(thresholds),
        workload, config, accesses_per_context, baseline=baseline,
        n_jobs=n_jobs,
    )
    return ThresholdAblation(workload=workload, points=points)
