"""Table III: accuracy of the Line Location Predictor.

Five scenarios per Section V-D, reported as percentages of all demand
reads, for SAM (serial access), the LLP, and a perfect predictor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..analysis.report import format_table
from ..config.system import SystemConfig
from ..workloads.spec import WorkloadSpec
from ..sim.plan import PlannedExperiment
from .common import ResultMatrix, planned_matrix, run_matrix

TABLE3_ORGS = ("cameo-sam", "cameo", "cameo-perfect")
_COLUMNS = {"cameo-sam": "SAM", "cameo": "LLP", "cameo-perfect": "Perfect"}
_CASE_ROWS = (
    ("stacked/stacked", "Stacked  / Stacked"),
    ("stacked/offchip", "Stacked  / Off-chip"),
    ("offchip/stacked", "Off-chip / Stacked"),
    ("offchip/offchip-ok", "Off-chip / Off-chip (OK)"),
    ("offchip/offchip-wrong", "Off-chip / Off-chip (Wrong)"),
)


@dataclass
class Table3Result:
    matrix: ResultMatrix

    def aggregate_fractions(self, org: str) -> Dict[str, float]:
        """Access-weighted average of the five cases across workloads."""
        totals = {key: 0 for key, _label in _CASE_ROWS}
        n = 0
        for workload in self.matrix.workloads():
            cases = self.matrix.results[workload][org].llp_cases
            totals["stacked/stacked"] += cases.case1_stacked_correct
            totals["stacked/offchip"] += cases.case2_stacked_predicted_offchip
            totals["offchip/stacked"] += cases.case3_offchip_predicted_stacked
            totals["offchip/offchip-ok"] += cases.case4_offchip_correct
            totals["offchip/offchip-wrong"] += cases.case5_offchip_wrong_slot
            n += cases.total
        return {key: value / n for key, value in totals.items()} if n else totals

    def accuracy(self, org: str) -> float:
        fractions = self.aggregate_fractions(org)
        return fractions["stacked/stacked"] + fractions["offchip/offchip-ok"]

    def rows(self):
        fractions = {org: self.aggregate_fractions(org) for org in TABLE3_ORGS}
        for key, label in _CASE_ROWS:
            yield [label] + [100 * fractions[org][key] for org in TABLE3_ORGS]
        yield ["Overall Accuracy"] + [100 * self.accuracy(org) for org in TABLE3_ORGS]

    def render(self) -> str:
        return format_table(
            ["Serviced by / Prediction"] + [_COLUMNS[o] for o in TABLE3_ORGS],
            self.rows(),
            title="Table III: Line Location Predictor accuracy (% of reads)",
        )


def run_table3(
    workloads: Optional[Iterable[WorkloadSpec]] = None,
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
    n_jobs: Optional[int] = 1,
) -> Table3Result:
    """Regenerate Table III."""
    return Table3Result(
        run_matrix(TABLE3_ORGS, workloads, config, accesses_per_context, seed,
                   n_jobs=n_jobs)
    )


def plan_table3(
    workloads: Optional[Iterable[WorkloadSpec]] = None,
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
) -> PlannedExperiment:
    """Declare Table III's grid for the ``repro paper`` planner."""
    return planned_matrix(
        "table3", TABLE3_ORGS, workloads, config, accesses_per_context, seed,
        wrap=Table3Result,
    )
