"""Figure 3: the DRAM capacity/bandwidth landscape (spec-sheet data)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis.dram_landscape import DramPart, bandwidth_gap, capacity_gap, landscape
from ..analysis.report import format_table
from ..units import format_bytes


@dataclass
class Figure3Result:
    """The scatter points plus the two headline gaps."""

    parts: List[DramPart]
    bandwidth_gap: float
    capacity_gap: float

    def render(self) -> str:
        table = format_table(
            ["part", "family", "capacity", "bandwidth (GB/s)"],
            [
                [p.name, p.family, format_bytes(p.capacity_bytes), p.bandwidth_gbs]
                for p in self.parts
            ],
            title="Figure 3: DRAM capacity vs bandwidth (datasheet points)",
        )
        return (
            f"{table}\n"
            f"stacked:commodity bandwidth gap = {self.bandwidth_gap:.1f}x "
            f"(paper: ~8x)\n"
            f"commodity:stacked capacity gap  = {self.capacity_gap:.1f}x"
        )


def run_figure3() -> Figure3Result:
    """Regenerate Figure 3 from the tabulated datasheet numbers."""
    return Figure3Result(
        parts=landscape(),
        bandwidth_gap=bandwidth_gap(),
        capacity_gap=capacity_gap(),
    )
