"""Figure 9: speedup of CAMEO under the three LLT storage designs.

"Embedded-LLT has high latency overheads, hence the slowdowns.
Co-Located LLT has low latency for data lines in stacked DRAM, however
because of higher off-chip latency the performance is lower than
Ideal-LLT." The co-located design here runs with SAM (no predictor),
matching the paper's Section IV evaluation order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..analysis.report import format_table
from ..config.system import SystemConfig
from ..workloads.spec import CAPACITY, LATENCY, WorkloadSpec
from ..sim.plan import PlannedExperiment
from .common import ResultMatrix, category_gmean_rows, planned_matrix, run_matrix

FIGURE9_ORGS = ("cameo-embedded-llt", "cameo-sam", "cameo-ideal-llt")
_LABELS = {
    "cameo-embedded-llt": "Embedded-LLT",
    "cameo-sam": "Co-Located LLT",
    "cameo-ideal-llt": "Ideal-LLT",
}


@dataclass
class Figure9Result:
    matrix: ResultMatrix

    def rows(self):
        for workload in self.matrix.workloads():
            yield [workload, self.matrix.categories[workload]] + [
                self.matrix.speedup(workload, org) for org in FIGURE9_ORGS
            ]
        yield from category_gmean_rows(self.matrix, FIGURE9_ORGS)

    def render(self) -> str:
        return format_table(
            ["workload", "category"] + [_LABELS[o] for o in FIGURE9_ORGS],
            self.rows(),
            title="Figure 9: speedup of the three LLT designs",
        )


def run_figure9(
    workloads: Optional[Iterable[WorkloadSpec]] = None,
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
    n_jobs: Optional[int] = 1,
) -> Figure9Result:
    """Regenerate Figure 9."""
    return Figure9Result(
        run_matrix(FIGURE9_ORGS, workloads, config, accesses_per_context, seed,
                   n_jobs=n_jobs)
    )


def plan_figure9(
    workloads: Optional[Iterable[WorkloadSpec]] = None,
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
) -> PlannedExperiment:
    """Declare Figure 9's grid for the ``repro paper`` planner."""
    return planned_matrix(
        "figure9", FIGURE9_ORGS, workloads, config, accesses_per_context, seed,
        wrap=Figure9Result,
    )
