"""Figure 15: optimised page placement for TLM vs CAMEO (Section VI-D).

TLM-Freq tracks page access frequency in hardware and migrates per
epoch; TLM-Oracle places profiled-hot pages statically. "CAMEO
outperforms frequency-based page placement without requiring the
tracking support."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..analysis.report import format_table
from ..config.system import SystemConfig
from ..workloads.spec import CAPACITY, LATENCY, WorkloadSpec
from ..sim.plan import PlannedExperiment
from .common import ResultMatrix, category_gmean_rows, planned_matrix, run_matrix

FIGURE15_ORGS = ("tlm-dynamic", "tlm-freq", "tlm-oracle", "cameo")


@dataclass
class Figure15Result:
    matrix: ResultMatrix

    def rows(self):
        for workload in self.matrix.workloads():
            yield [workload, self.matrix.categories[workload]] + [
                self.matrix.speedup(workload, org) for org in FIGURE15_ORGS
            ]
        yield from category_gmean_rows(self.matrix, FIGURE15_ORGS)

    def render(self) -> str:
        return format_table(
            ["workload", "category"] + list(FIGURE15_ORGS),
            self.rows(),
            title="Figure 15: optimised TLM page placement vs CAMEO",
        )


def run_figure15(
    workloads: Optional[Iterable[WorkloadSpec]] = None,
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
    n_jobs: Optional[int] = 1,
) -> Figure15Result:
    """Regenerate Figure 15 (the oracle's profile comes from a pre-pass)."""
    return Figure15Result(
        run_matrix(FIGURE15_ORGS, workloads, config, accesses_per_context, seed,
                   n_jobs=n_jobs)
    )


def plan_figure15(
    workloads: Optional[Iterable[WorkloadSpec]] = None,
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
) -> PlannedExperiment:
    """Declare Figure 15's grid for the ``repro paper`` planner.

    The oracle's hot-page profile runs at declaration time (a pre-pass
    over the trace cache); the profile canonicalizes into the cell
    fingerprint, so oracle cells cache like any other.
    """
    return planned_matrix(
        "figure15", FIGURE15_ORGS, workloads, config, accesses_per_context,
        seed, wrap=Figure15Result,
    )
