"""Figure 14: normalised power and energy-delay product (Section VI-C)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..analysis.report import format_table
from ..config.system import SystemConfig
from ..energy.power import PowerModel
from ..units import geomean
from ..workloads.spec import CAPACITY, LATENCY, WorkloadSpec
from ..sim.plan import PlannedExperiment
from .common import HEADLINE_ORGS, ResultMatrix, planned_matrix, run_matrix


@dataclass
class Figure14Result:
    matrix: ResultMatrix

    def _per_workload(self, org: str, metric: str):
        values = []
        for workload in self.matrix.workloads():
            model = PowerModel(self.matrix.categories[workload])
            result = self.matrix.results[workload][org]
            base = self.matrix.baseline(workload)
            if metric == "power":
                values.append(model.normalized_power(result, base))
            else:
                values.append(model.normalized_edp(result, base))
        return values

    def gmean_power(self, org: str) -> float:
        return geomean(self._per_workload(org, "power"))

    def gmean_edp(self, org: str) -> float:
        return geomean(self._per_workload(org, "edp"))

    def rows(self):
        for org in HEADLINE_ORGS:
            yield [org, self.gmean_power(org), self.gmean_edp(org)]

    def render(self) -> str:
        return format_table(
            ["design", "normalized power", "normalized EDP"],
            self.rows(),
            title=(
                "Figure 14: power and energy-delay product, normalised to the "
                "baseline (EDP < 1.0 is better)"
            ),
        )


def run_figure14(
    workloads: Optional[Iterable[WorkloadSpec]] = None,
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
    n_jobs: Optional[int] = 1,
) -> Figure14Result:
    """Regenerate Figure 14 from the headline runs plus the power model."""
    return Figure14Result(
        run_matrix(HEADLINE_ORGS, workloads, config, accesses_per_context, seed,
                   n_jobs=n_jobs)
    )


def plan_figure14(
    workloads: Optional[Iterable[WorkloadSpec]] = None,
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
) -> PlannedExperiment:
    """Declare Figure 14's grid for the ``repro paper`` planner."""
    return planned_matrix(
        "figure14", HEADLINE_ORGS, workloads, config, accesses_per_context,
        seed, wrap=Figure14Result,
    )
