"""Shared machinery for the per-figure experiment functions.

Every experiment runs a matrix of (workload x organization) simulations
against the default scaled system and returns structured results the
benchmarks print and EXPERIMENTS.md records. Trace length follows
``REPRO_ACCESSES_PER_CONTEXT`` so the same code scales from smoke test
to full reproduction.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..config.system import SystemConfig, scaled_paper_system
from ..sim.parallel import SimJob, raise_on_failures
from ..sim.plan import PlannedExperiment, run_jobs_cached
from ..sim.results import RunResult, SpeedupReport
from ..units import geomean
from ..vm.page_table import VirtualPage
from ..workloads.mixes import per_context_footprint_pages, rate_mode_generators
from ..workloads.spec import CAPACITY, LATENCY, WORKLOADS, WorkloadSpec

#: The paper's five headline configurations (Figures 2 and 13).
HEADLINE_ORGS = ("cache", "tlm-static", "tlm-dynamic", "cameo", "doubleuse")


def default_config() -> SystemConfig:
    """The evaluation machine: scaled Table I geometry."""
    return scaled_paper_system()


def default_workloads() -> Sequence[WorkloadSpec]:
    """All 17 Table II workloads, in paper order."""
    return WORKLOADS


@dataclass
class ResultMatrix:
    """All runs of one experiment: results[workload][org] -> RunResult."""

    results: Dict[str, Dict[str, RunResult]] = field(default_factory=dict)
    categories: Dict[str, str] = field(default_factory=dict)

    def add(self, spec: WorkloadSpec, org_name: str, result: RunResult) -> None:
        self.results.setdefault(spec.name, {})[org_name] = result
        self.categories[spec.name] = spec.category

    def baseline(self, workload: str) -> RunResult:
        return self.results[workload]["baseline"]

    def speedup(self, workload: str, org_name: str) -> float:
        return self.results[workload][org_name].speedup_over(self.baseline(workload))

    def workloads(self, category: Optional[str] = None) -> List[str]:
        return [
            w for w in self.results
            if category is None or self.categories[w] == category
        ]

    def organizations(self) -> List[str]:
        names: List[str] = []
        for per_org in self.results.values():
            for name in per_org:
                if name != "baseline" and name not in names:
                    names.append(name)
        return names

    def gmean_speedup(self, org_name: str, category: Optional[str] = None) -> float:
        return geomean(
            [self.speedup(w, org_name) for w in self.workloads(category)]
        )

    def to_json(self, indent: int = 2) -> str:
        """Every cell's full JSON export, as one stable document.

        Shaped ``{workload: {org: result_dict}}`` with sorted keys, so
        two matrices over the same grid are byte-comparable — the CI
        warm-vs-cold check diffs exactly this.
        """
        import json

        from ..sim.export import result_to_dict

        payload = {
            workload: {
                org: result_to_dict(result)
                for org, result in per_org.items()
            }
            for workload, per_org in self.results.items()
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    def to_speedup_report(self) -> SpeedupReport:
        report = SpeedupReport()
        for workload in self.workloads():
            for org_name in self.organizations():
                if org_name in self.results[workload]:
                    report.add(
                        workload,
                        self.categories[workload],
                        org_name,
                        self.speedup(workload, org_name),
                    )
        return report


def profile_hot_vpages(
    spec: WorkloadSpec,
    config: SystemConfig,
    budget_pages: int,
    accesses_per_context: int = 4000,
    seed: int = 0,
) -> FrozenSet[VirtualPage]:
    """TLM-Oracle's oracular knowledge: the hottest virtual pages.

    Replays the same deterministic generators the run will use and ranks
    pages by access count, keeping the ``budget_pages`` hottest (the
    stacked-DRAM capacity). The pre-pass stream comes from the trace
    cache when one is active, so the two oracle-style organizations of a
    matrix profile from one materialized trace.
    """
    from ..workloads.trace_cache import materialized_rate_mode_sources

    counts: Counter = Counter()
    per_page = config.lines_per_page
    sources = materialized_rate_mode_sources(
        spec, config, seed, accesses_per_context
    )
    for ctx, gen in enumerate(sources):
        for virtual_line, _pc, _w in gen.generate(accesses_per_context):
            counts[(ctx, virtual_line // per_page)] += 1
    hottest = [vpage for vpage, _count in counts.most_common(budget_pages)]
    return frozenset(hottest)


def matrix_jobs(
    org_names: Sequence[str],
    workloads: Optional[Iterable[WorkloadSpec]] = None,
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
) -> Tuple[List[SimJob], List[Tuple[WorkloadSpec, str]]]:
    """Declare a matrix grid: (jobs, slots) with ``slots[i]`` naming job i.

    ``tlm-oracle``/``cameo-freq-hint`` get their hot-page profile from a
    pre-pass over the same trace, computed here at declaration time so
    the picklable jobs already carry their profiles.
    """
    if config is None:
        config = default_config()
    if workloads is None:
        workloads = default_workloads()
    jobs: List[SimJob] = []
    slots: List[Tuple[WorkloadSpec, str]] = []
    for spec in workloads:
        slots.append((spec, "baseline"))
        jobs.append(SimJob("baseline", spec, config, accesses_per_context, seed))
        for org_name in org_names:
            kwargs: Mapping[str, object] = {}
            if org_name in ("tlm-oracle", "cameo-freq-hint"):
                kwargs = {
                    "hot_vpages": profile_hot_vpages(
                        spec, config, budget_pages=config.stacked_pages, seed=seed
                    )
                }
            slots.append((spec, org_name))
            jobs.append(SimJob(
                org_name, spec, config, accesses_per_context, seed,
                org_kwargs=kwargs,
            ))
    return jobs, slots


def assemble_matrix(
    slots: Sequence[Tuple[WorkloadSpec, str]],
    results: Sequence[RunResult],
) -> ResultMatrix:
    """Fold finished cell results back into a :class:`ResultMatrix`."""
    matrix = ResultMatrix()
    for (spec, org_name), result in zip(slots, results):
        matrix.add(spec, org_name, result)
    return matrix


def planned_matrix(
    name: str,
    org_names: Sequence[str],
    workloads: Optional[Iterable[WorkloadSpec]] = None,
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
    wrap=None,
) -> PlannedExperiment:
    """A matrix as a planner-consumable declaration (``repro paper``).

    The assembler returns the :class:`ResultMatrix`, passed through
    ``wrap`` when given — experiment modules pass their result dataclass
    (e.g. ``wrap=Figure13Result``) so the planner hands back the same
    object their ``run_*`` function would.
    """
    jobs, slots = matrix_jobs(
        org_names, workloads, config, accesses_per_context, seed
    )

    def assemble(results: Sequence[RunResult]) -> object:
        matrix = assemble_matrix(slots, results)
        return matrix if wrap is None else wrap(matrix)

    return PlannedExperiment(name=name, jobs=jobs, assemble=assemble)


def run_matrix(
    org_names: Sequence[str],
    workloads: Optional[Iterable[WorkloadSpec]] = None,
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
    n_jobs: Optional[int] = 1,
) -> ResultMatrix:
    """Run baseline + every named org on every workload.

    ``tlm-oracle`` is handled specially: its hot-page profile is computed
    by a pre-pass over the same trace before the timed run.

    ``n_jobs`` fans the grid's independent cells out over subprocess
    workers (:mod:`repro.sim.parallel`); the assembled matrix is
    identical to the serial run whatever the worker count, and the
    default stays serial. A failed cell is reported together with every
    other failure after the rest of the grid has completed.

    Cells go through :func:`repro.sim.plan.run_jobs_cached`: with the
    result store active (the default), already-stored cells are served
    without simulating and identical cells within the grid execute once
    — byte-identical results either way.
    """
    jobs, slots = matrix_jobs(
        org_names, workloads, config, accesses_per_context, seed
    )
    outcomes = run_jobs_cached(jobs, n_jobs=n_jobs)
    raise_on_failures(outcomes, "matrix")
    return assemble_matrix(slots, [outcome.result for outcome in outcomes])


def category_gmean_rows(matrix: "ResultMatrix", orgs):
    """Gmean summary rows, skipping categories with no workloads run."""
    for category, label in (
        (CAPACITY, "Gmean-Capacity"),
        (LATENCY, "Gmean-Latency"),
        (None, "Gmean-ALL"),
    ):
        if matrix.workloads(category):
            yield [label, ""] + [
                matrix.gmean_speedup(org, category) for org in orgs
            ]
