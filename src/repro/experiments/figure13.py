"""Figure 13: the headline speedup comparison.

"On average, Cache provides an improvement of 50%, TLM-Static provides
33%, TLM-Dynamic provides 50%, CAMEO provides 78%, and DoubleUse
provides 82%."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..analysis.report import format_bar_chart, format_table
from ..config.system import SystemConfig
from ..workloads.spec import CAPACITY, LATENCY, WorkloadSpec
from ..sim.plan import PlannedExperiment
from .common import (
    HEADLINE_ORGS,
    ResultMatrix,
    category_gmean_rows,
    planned_matrix,
    run_matrix,
)


@dataclass
class Figure13Result:
    matrix: ResultMatrix

    def gmeans(self, category: Optional[str] = None) -> Dict[str, float]:
        return {
            org: self.matrix.gmean_speedup(org, category) for org in HEADLINE_ORGS
        }

    def rows(self):
        for workload in self.matrix.workloads():
            yield [workload, self.matrix.categories[workload]] + [
                self.matrix.speedup(workload, org) for org in HEADLINE_ORGS
            ]
        yield from category_gmean_rows(self.matrix, HEADLINE_ORGS)

    def render(self) -> str:
        table = format_table(
            ["workload", "category"] + list(HEADLINE_ORGS),
            self.rows(),
            title="Figure 13: speedup with stacked memory (vs no-stacked baseline)",
        )
        chart = format_bar_chart(
            list(self.gmeans().items()), title="Gmean-ALL:", scale=2.5
        )
        return f"{table}\n\n{chart}"


def run_figure13(
    workloads: Optional[Iterable[WorkloadSpec]] = None,
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
    n_jobs: Optional[int] = 1,
) -> Figure13Result:
    """Regenerate Figure 13 (and with it the numbers quoted in Figure 2)."""
    return Figure13Result(
        run_matrix(HEADLINE_ORGS, workloads, config, accesses_per_context, seed,
                   n_jobs=n_jobs)
    )


def plan_figure13(
    workloads: Optional[Iterable[WorkloadSpec]] = None,
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
) -> PlannedExperiment:
    """Declare Figure 13's grid for the ``repro paper`` planner."""
    return planned_matrix(
        "figure13", HEADLINE_ORGS, workloads, config, accesses_per_context,
        seed, wrap=Figure13Result,
    )
