"""Figure 2: motivation — cache vs TLM vs the idealistic DoubleUse.

"Performance evaluation of a system, where stacked DRAM is one quarter
of total DRAM capacity, implemented as hardware cache, or Two-Level
Memory (with and without page migration), or an idealistic 'DoubleUse'
system." CAMEO itself is deliberately absent — this is the gap the paper
sets out to close.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..analysis.report import format_table
from ..config.system import SystemConfig
from ..workloads.spec import CAPACITY, LATENCY, WorkloadSpec
from ..sim.plan import PlannedExperiment
from .common import ResultMatrix, category_gmean_rows, planned_matrix, run_matrix

FIGURE2_ORGS = ("cache", "tlm-static", "tlm-dynamic", "doubleuse")


@dataclass
class Figure2Result:
    """Speedups of the four motivation configurations."""

    matrix: ResultMatrix

    def rows(self):
        for workload in self.matrix.workloads():
            yield [workload, self.matrix.categories[workload]] + [
                self.matrix.speedup(workload, org) for org in FIGURE2_ORGS
            ]
        yield from category_gmean_rows(self.matrix, FIGURE2_ORGS)

    def render(self) -> str:
        return format_table(
            ["workload", "category"] + list(FIGURE2_ORGS),
            self.rows(),
            title="Figure 2: speedup over no-stacked baseline (motivation)",
        )


def run_figure2(
    workloads: Optional[Iterable[WorkloadSpec]] = None,
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
    n_jobs: Optional[int] = 1,
) -> Figure2Result:
    """Regenerate Figure 2."""
    return Figure2Result(
        run_matrix(FIGURE2_ORGS, workloads, config, accesses_per_context, seed,
                   n_jobs=n_jobs)
    )


def plan_figure2(
    workloads: Optional[Iterable[WorkloadSpec]] = None,
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
) -> PlannedExperiment:
    """Declare Figure 2's grid for the ``repro paper`` planner."""
    return planned_matrix(
        "figure2", FIGURE2_ORGS, workloads, config, accesses_per_context, seed,
        wrap=Figure2Result,
    )
