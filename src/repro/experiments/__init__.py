"""One runnable function per paper table/figure (see DESIGN.md index)."""

from .ablations import (
    GroupSizeAblation,
    LlpSizeAblation,
    ThresholdAblation,
    run_group_size_ablation,
    run_llp_size_ablation,
    run_threshold_ablation,
)
from .common import (
    HEADLINE_ORGS,
    ResultMatrix,
    default_config,
    default_workloads,
    profile_hot_vpages,
    run_matrix,
)
from .figure02 import FIGURE2_ORGS, Figure2Result, run_figure2
from .figure03 import Figure3Result, run_figure3
from .figure08 import Figure8Result, run_figure8
from .figure09 import FIGURE9_ORGS, Figure9Result, run_figure9
from .figure12 import FIGURE12_ORGS, Figure12Result, run_figure12
from .figure13 import Figure13Result, run_figure13
from .figure14 import Figure14Result, run_figure14
from .figure15 import FIGURE15_ORGS, Figure15Result, run_figure15
from .table03 import TABLE3_ORGS, Table3Result, run_table3
from .table04 import Table4Result, run_table4

__all__ = [
    "FIGURE12_ORGS",
    "GroupSizeAblation",
    "LlpSizeAblation",
    "ThresholdAblation",
    "run_group_size_ablation",
    "run_llp_size_ablation",
    "run_threshold_ablation",
    "FIGURE15_ORGS",
    "FIGURE2_ORGS",
    "FIGURE9_ORGS",
    "Figure12Result",
    "Figure13Result",
    "Figure14Result",
    "Figure15Result",
    "Figure2Result",
    "Figure3Result",
    "Figure8Result",
    "Figure9Result",
    "HEADLINE_ORGS",
    "ResultMatrix",
    "TABLE3_ORGS",
    "Table3Result",
    "Table4Result",
    "default_config",
    "default_workloads",
    "profile_hot_vpages",
    "run_figure12",
    "run_figure13",
    "run_figure14",
    "run_figure15",
    "run_figure2",
    "run_figure3",
    "run_figure8",
    "run_figure9",
    "run_matrix",
    "run_table3",
    "run_table4",
]
