"""One runnable function per paper table/figure (see DESIGN.md index)."""

from .ablations import (
    GroupSizeAblation,
    LlpSizeAblation,
    ThresholdAblation,
    run_group_size_ablation,
    run_llp_size_ablation,
    run_threshold_ablation,
)
from .common import (
    HEADLINE_ORGS,
    ResultMatrix,
    assemble_matrix,
    default_config,
    default_workloads,
    matrix_jobs,
    planned_matrix,
    profile_hot_vpages,
    run_matrix,
)
from .figure02 import FIGURE2_ORGS, Figure2Result, plan_figure2, run_figure2
from .figure03 import Figure3Result, run_figure3
from .figure08 import Figure8Result, run_figure8
from .figure09 import FIGURE9_ORGS, Figure9Result, plan_figure9, run_figure9
from .figure12 import FIGURE12_ORGS, Figure12Result, plan_figure12, run_figure12
from .figure13 import Figure13Result, plan_figure13, run_figure13
from .figure14 import Figure14Result, plan_figure14, run_figure14
from .figure15 import FIGURE15_ORGS, Figure15Result, plan_figure15, run_figure15
from .table03 import TABLE3_ORGS, Table3Result, plan_table3, run_table3
from .table04 import Table4Result, plan_table4, run_table4

#: Every matrix experiment the ``repro paper`` planner can schedule, in
#: paper order. Values declare the experiment's grid (a
#: :class:`repro.sim.plan.PlannedExperiment`); the planner unions the
#: grids, dedupes identical cells, and runs each unique cell once.
PAPER_PLANNERS = {
    "figure2": plan_figure2,
    "figure9": plan_figure9,
    "figure12": plan_figure12,
    "figure13": plan_figure13,
    "figure14": plan_figure14,
    "figure15": plan_figure15,
    "table3": plan_table3,
    "table4": plan_table4,
}

__all__ = [
    "FIGURE12_ORGS",
    "PAPER_PLANNERS",
    "assemble_matrix",
    "matrix_jobs",
    "plan_figure12",
    "plan_figure13",
    "plan_figure14",
    "plan_figure15",
    "plan_figure2",
    "plan_figure9",
    "plan_table3",
    "plan_table4",
    "planned_matrix",
    "GroupSizeAblation",
    "LlpSizeAblation",
    "ThresholdAblation",
    "run_group_size_ablation",
    "run_llp_size_ablation",
    "run_threshold_ablation",
    "FIGURE15_ORGS",
    "FIGURE2_ORGS",
    "FIGURE9_ORGS",
    "Figure12Result",
    "Figure13Result",
    "Figure14Result",
    "Figure15Result",
    "Figure2Result",
    "Figure3Result",
    "Figure8Result",
    "Figure9Result",
    "HEADLINE_ORGS",
    "ResultMatrix",
    "TABLE3_ORGS",
    "Table3Result",
    "Table4Result",
    "default_config",
    "default_workloads",
    "profile_hot_vpages",
    "run_figure12",
    "run_figure13",
    "run_figure14",
    "run_figure15",
    "run_figure2",
    "run_figure3",
    "run_figure8",
    "run_figure9",
    "run_matrix",
    "run_table3",
    "run_table4",
]
