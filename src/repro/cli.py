"""Command-line interface: run simulations and regenerate paper artifacts.

Installed as the ``repro`` console script (also ``python -m repro``)::

    repro list                      # organizations and workloads
    repro run cameo milc            # one simulation, with telemetry
    repro compare milc              # all headline designs on one workload
    repro figure 13                 # regenerate a paper figure/table
    repro paper --jobs 4            # every matrix figure/table, deduped
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional

from .analysis.report import format_bar_chart, format_table
from .config.system import scaled_paper_system
from .errors import InterruptedRunError, ReproError
from .experiments import (
    run_figure2,
    run_figure3,
    run_figure8,
    run_figure9,
    run_figure12,
    run_figure13,
    run_figure14,
    run_figure15,
    run_table3,
    run_table4,
)
from .experiments.common import HEADLINE_ORGS
from .orgs.factory import organization_names
from .sim.runner import run_workload
from .units import format_bytes, percent
from .workloads.spec import WORKLOADS, workload

#: Exit code of a gracefully interrupted run (SIGINT/SIGTERM): distinct
#: from 2 (ReproError) so wrappers can tell "resume me" from "fix me".
EXIT_INTERRUPTED = 3

#: Experiment registry for ``repro figure <id>``.
FIGURES: Dict[str, Callable] = {
    "2": run_figure2,
    "3": run_figure3,
    "8": run_figure8,
    "9": run_figure9,
    "12": run_figure12,
    "13": run_figure13,
    "14": run_figure14,
    "15": run_figure15,
    "table3": run_table3,
    "table4": run_table4,
}


def _positive_int(text: str) -> int:
    """argparse type: an integer strictly greater than zero."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _non_negative_int(text: str) -> int:
    """argparse type: an integer that is zero or more."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be non-negative, got {value}")
    return value


def _positive_float(text: str) -> float:
    """argparse type: a float strictly greater than zero."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _rate(text: str) -> float:
    """argparse type: a probability in [0, 1]."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(f"must be within [0, 1], got {value}")
    return value


def _name_list(text: str) -> List[str]:
    """argparse type: a non-empty comma-separated name list."""
    names = [part.strip() for part in text.split(",") if part.strip()]
    if not names:
        raise argparse.ArgumentTypeError("expected a comma-separated list")
    return names


def _int_list(text: str) -> List[int]:
    """argparse type: a non-empty comma-separated list of integers."""
    try:
        return [int(part) for part in _name_list(text)]
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a comma-separated "
                                         "list of integers")


def _endpoint_list(text: str) -> List[str]:
    """argparse type: comma-separated ``host:port`` endpoint specs."""
    from .errors import RemoteError
    from .sim.remote import parse_endpoints

    try:
        return [endpoint.address for endpoint in parse_endpoints(text)]
    except RemoteError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CAMEO (MICRO 2014) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list organizations and workloads")

    run_p = sub.add_parser("run", help="simulate one workload under one design")
    run_p.add_argument("organization", choices=organization_names())
    run_p.add_argument("workload")
    run_p.add_argument("--json", action="store_true",
                       help="emit the full result as JSON instead of a table")
    _add_common(run_p)

    cmp_p = sub.add_parser("compare", help="all headline designs on one workload")
    cmp_p.add_argument("workload")
    _add_common(cmp_p)

    fig_p = sub.add_parser("figure", help="regenerate a paper figure/table")
    fig_p.add_argument("which", choices=sorted(FIGURES))
    fig_p.add_argument("--accesses", type=_positive_int, default=None,
                       help="trace length per context")
    fig_p.add_argument("--json", action="store_true",
                       help="emit every grid cell's RunResult as JSON "
                            "instead of the rendered table")
    _add_jobs(fig_p)
    _add_no_result_cache(fig_p)
    _add_supervision(fig_p)

    paper_p = sub.add_parser(
        "paper",
        help="regenerate every matrix figure/table through the deduplicating "
             "planner: shared cells simulate once",
    )
    paper_p.add_argument("--experiments", type=_name_list, default=None,
                         help="comma-separated experiment names "
                              "(default: all matrix figures/tables)")
    paper_p.add_argument("--accesses", type=_positive_int, default=None,
                         help="trace length per context")
    paper_p.add_argument("--seed", type=_non_negative_int, default=0)
    paper_p.add_argument("--dry-run", action="store_true",
                         help="print the plan (total cells, unique cells, "
                              "predicted store hits) without simulating")
    paper_p.add_argument("--resume", metavar="MANIFEST", default=None,
                         help="seed the result store from a resume manifest "
                              "written by an interrupted run, then simulate "
                              "only the missing cells")
    paper_p.add_argument("--manifest", default="repro-resume.json",
                         help="where to write the resume manifest if this "
                              "run is interrupted (default: %(default)s)")
    _add_jobs(paper_p)
    _add_no_result_cache(paper_p)
    _add_supervision(paper_p, default_attempts=2)

    mix_p = sub.add_parser("mix", help="heterogeneous mix: one workload per context")
    mix_p.add_argument("workloads", nargs="+",
                       help="one Table II name per context")
    mix_p.add_argument("--org", default="cameo", choices=organization_names())
    mix_p.add_argument("--accesses", type=_positive_int, default=None)
    mix_p.add_argument("--seed", type=_non_negative_int, default=0)

    abl_p = sub.add_parser("ablation", help="run a design-choice ablation")
    abl_p.add_argument("which", choices=["group-size", "llp-size", "threshold"])
    abl_p.add_argument("--workload", default=None)
    abl_p.add_argument("--accesses", type=_positive_int, default=None)
    _add_jobs(abl_p)
    _add_no_result_cache(abl_p)
    _add_supervision(abl_p)

    trace_p = sub.add_parser("trace", help="dump a synthetic trace to a file")
    trace_p.add_argument("workload")
    trace_p.add_argument("output", help="destination trace file")
    trace_p.add_argument("-n", "--records", type=_positive_int, default=10000)
    trace_p.add_argument("--footprint-pages", type=_positive_int, default=None)
    trace_p.add_argument("--seed", type=_non_negative_int, default=0)

    flt_p = sub.add_parser(
        "faults", help="one simulation under fault injection, with recovery telemetry"
    )
    flt_p.add_argument("organization", choices=organization_names())
    flt_p.add_argument("workload")
    flt_p.add_argument("--transient-rate", type=_rate, default=1e-3,
                       help="per-read probability of a transient bit flip")
    flt_p.add_argument("--uncorrectable", type=_rate, default=0.1,
                       help="fraction of flips that defeat SECDED correction")
    flt_p.add_argument("--stuck-rate", type=_rate, default=1e-4,
                       help="per-read probability of a permanent row failure")
    flt_p.add_argument("--timeout-rate", type=_rate, default=0.0,
                       help="per-read probability of a channel timeout")
    flt_p.add_argument("--llt-rate", type=_rate, default=1e-4,
                       help="per-access probability of LLT entry corruption")
    flt_p.add_argument("--fault-seed", type=_non_negative_int, default=0,
                       help="seed of the injector's private RNG")
    flt_p.add_argument("--json", action="store_true",
                       help="emit the full result (with fault counters) as JSON")
    _add_common(flt_p)

    bench_p = sub.add_parser(
        "bench",
        help="measure simulator throughput; extends the BENCH_<n>.json trajectory",
    )
    bench_p.add_argument("--quick", action="store_true",
                         help="CI smoke sizing: short traces, one repeat")
    bench_p.add_argument("--orgs", type=_name_list, default=None,
                         help="comma-separated organization names")
    bench_p.add_argument("--workloads", type=_name_list, default=None,
                         help="comma-separated Table II workload names")
    bench_p.add_argument("--accesses", type=_positive_int, default=None,
                         help="trace length per context")
    bench_p.add_argument("--repeats", type=_positive_int, default=None,
                         help="runs per grid cell (best-of)")
    bench_p.add_argument("--scale-shift", type=int, default=12,
                         help="capacity scale (0 = paper size)")
    bench_p.add_argument("--output", default=None,
                         help="destination JSON (default: next BENCH_<n>.json "
                              "in the current directory)")
    bench_p.add_argument("--compare", default=None,
                         help="baseline BENCH_*.json to diff against "
                              "(default: the newest committed one)")
    bench_p.add_argument("--threshold", type=_rate, default=0.30,
                         help="regression-warning threshold (fraction)")
    bench_p.add_argument("--engine", choices=("python", "vector"), default=None,
                         help="engine backend for this run (overrides the "
                              "REPRO_ENGINE environment variable)")
    bench_p.add_argument("--require-kernel", action="store_true",
                         help="exit 2 when any cell expected to lower to the "
                              "compiled kernel was served by the python loop "
                              "(implies --engine vector unless --engine is "
                              "given)")
    _add_jobs(bench_p)
    _add_no_result_cache(bench_p)
    _add_supervision(bench_p, default_attempts=1)

    plan_p = sub.add_parser(
        "plan",
        help="declarative campaign plans: DAG of stages with per-stage "
             "failure policy, interrupt-safe resume",
    )
    plan_sub = plan_p.add_subparsers(dest="plan_command", required=True)
    val_p = plan_sub.add_parser(
        "validate", help="parse and validate a plan file without running it"
    )
    val_p.add_argument("plan_file", help="YAML/JSON campaign plan")
    prun_p = plan_sub.add_parser(
        "run", help="execute a plan (re-run with --resume after an interrupt)"
    )
    prun_p.add_argument("plan_file", help="YAML/JSON campaign plan")
    prun_p.add_argument("--status", default=None, metavar="PATH",
                        help="atomic status JSON (default: "
                             "<plan>.status.json next to the plan file)")
    prun_p.add_argument("--resume", action="store_true",
                        help="continue from the status file: banked cells "
                             "replay from the result store, changed stages "
                             "(and their dependents) re-run")
    prun_p.add_argument("--export", default=None, metavar="PATH",
                        help="write a deterministic results JSON on "
                             "completion (byte-identical whether or not the "
                             "run was interrupted and resumed)")
    prun_p.add_argument("--journal", default=None, metavar="PATH",
                        help="append supervision incidents (retries, kills, "
                             "fallbacks) to this JSONL file")
    _add_jobs(prun_p)
    _add_no_result_cache(prun_p)
    pstat_p = plan_sub.add_parser(
        "status", help="show per-stage states from a plan status file"
    )
    pstat_p.add_argument("status_file", help="status JSON written by plan run")

    ing_p = sub.add_parser(
        "ingest",
        help="strictly validate an external trace file (quarantine report, "
             "checksum/truncation checks)",
    )
    ing_p.add_argument("trace_file", help="v1 text trace file")
    ing_p.add_argument("--name", default=None,
                       help="workload name for the ingested trace "
                            "(default: the header's, or the file stem)")
    ing_p.add_argument("--error-budget", type=_non_negative_int, default=None,
                       help="malformed records tolerated (quarantined) "
                            "before the file is rejected whole")
    ing_p.add_argument("--json", action="store_true",
                       help="emit the ingestion report as JSON")
    ing_p.add_argument("--quarantine", default=None, metavar="PATH",
                       help="also write quarantined lines (with line numbers "
                            "and reasons) to this file")

    camp_p = sub.add_parser(
        "campaign",
        help="crash-safe (org x workload x seed) sweep with checkpoint/resume",
    )
    camp_p.add_argument("--checkpoint", required=True,
                        help="JSON checkpoint path (also the output file); "
                             "re-run with the same path to resume")
    camp_p.add_argument("--orgs", type=_name_list, default=["baseline", "cameo"],
                        help="comma-separated organization names")
    camp_p.add_argument("--workloads", type=_name_list, default=["milc", "astar"],
                        help="comma-separated Table II workload names")
    camp_p.add_argument("--seeds", type=_int_list, default=[0],
                        help="comma-separated seeds")
    camp_p.add_argument("--timeout", type=float, default=300.0,
                        help="per-run wall-clock budget in seconds")
    camp_p.add_argument("--attempts", type=_positive_int, default=3,
                        help="tries per point before giving up")
    camp_p.add_argument("--workers", type=_positive_int, default=1,
                        help="concurrent subprocess workers")
    camp_p.add_argument("--hang-timeout", type=_positive_float, default=None,
                        metavar="SECONDS",
                        help="kill a worker reporting no progress for this "
                             "long (heartbeat-based; unlike --timeout it "
                             "never kills a slow-but-advancing point)")
    camp_p.add_argument("--journal", default=None, metavar="PATH",
                        help="append supervision incidents (retries, kills, "
                             "fallbacks) to this JSONL file")
    _add_common(camp_p)

    worker_p = sub.add_parser(
        "worker",
        help="remote worker host: serve supervised grid cells to a parent "
             "over TCP (pair with --endpoints)",
    )
    worker_sub = worker_p.add_subparsers(dest="worker_command", required=True)
    serve_p = worker_sub.add_parser(
        "serve",
        help="listen for a parent's --endpoints dispatch; one session at a "
             "time, survives parent disconnects",
    )
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="interface to bind (default: %(default)s)")
    serve_p.add_argument("--port", type=_non_negative_int, default=0,
                         help="TCP port (0 picks an ephemeral port; the "
                              "bound address is printed on startup)")
    serve_p.add_argument("--once", action="store_true",
                         help="exit after the first session ends instead of "
                              "returning to accept")
    return parser


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--accesses", type=_positive_int, default=None,
                        help="trace length per context")
    parser.add_argument("--scale-shift", type=int, default=12,
                        help="capacity scale (0 = paper size)")
    parser.add_argument("--seed", type=_non_negative_int, default=0)


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=_non_negative_int, default=1,
                        help="subprocess workers for independent runs "
                             "(0 = one per CPU; results are identical "
                             "whatever the count)")
    parser.add_argument("--dispatch", choices=("pool", "per-cell", "remote"),
                        default=None,
                        help="worker lifecycle for --jobs > 1: 'pool' "
                             "(persistent workers, the default) amortizes "
                             "spawn/import/kernel-load across cells; "
                             "'per-cell' spawns one subprocess per cell; "
                             "'remote' requires --endpoints; results are "
                             "byte-identical in every mode")
    parser.add_argument("--endpoints", type=_endpoint_list, default=None,
                        metavar="HOST:PORT,...",
                        help="running `repro worker serve` hosts to dispatch "
                             "cells to, with host-level retry/quarantine and "
                             "local fallback (results identical)")


def _apply_dispatch(args: argparse.Namespace) -> None:
    """Export ``--dispatch``/``--endpoints`` so nested fan-out inherits them."""
    mode = getattr(args, "dispatch", None)
    if mode:
        from .sim.supervisor import DISPATCH_ENV_VAR

        os.environ[DISPATCH_ENV_VAR] = mode
    endpoints = getattr(args, "endpoints", None)
    if endpoints:
        from .sim.remote import ENDPOINTS_ENV_VAR

        os.environ[ENDPOINTS_ENV_VAR] = ",".join(endpoints)


def _add_no_result_cache(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--no-result-cache", action="store_true",
                        help="bypass the content-addressed result store and "
                             "simulate every cell (results are identical "
                             "either way)")


def _add_supervision(
    parser: argparse.ArgumentParser, default_attempts: Optional[int] = None
) -> None:
    parser.add_argument("--max-attempts", type=_positive_int,
                        default=default_attempts,
                        help="tries per grid cell: transient worker failures "
                             "(crashes, timeouts, hangs) retry with backoff; "
                             "deterministic errors fail fast"
                             + (" (default: %(default)s)"
                                if default_attempts is not None else ""))
    parser.add_argument("--hang-timeout", type=_positive_float, default=None,
                        metavar="SECONDS",
                        help="kill a worker reporting no progress for this "
                             "long (heartbeat-based; never kills a "
                             "slow-but-advancing cell)")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="append supervision incidents (retries, kills, "
                             "fallbacks) to this JSONL file")


def _journal_from_args(args: argparse.Namespace):
    """The command's incident journal: --journal or the env default."""
    from .sim.supervisor import IncidentJournal, journal_from_env

    path = getattr(args, "journal", None)
    if path:
        return IncidentJournal(path)
    return journal_from_env()


def _maybe_supervision(args: argparse.Namespace):
    """An ambient supervision policy for commands whose fan-out is nested.

    Figure/ablation runners call ``run_many`` several layers down; this
    context makes their ``--max-attempts``/``--hang-timeout`` reach it
    without threading knobs through every runner signature.
    """
    import contextlib

    from .sim.supervisor import SupervisorPolicy, use_supervision

    overrides = {}
    if getattr(args, "max_attempts", None) is not None:
        overrides["max_attempts"] = args.max_attempts
    if getattr(args, "hang_timeout", None) is not None:
        overrides["hang_timeout_seconds"] = args.hang_timeout
    if getattr(args, "journal", None):
        import os as _os

        from .sim.supervisor import JOURNAL_ENV_VAR

        # The ambient policy carries no journal; the env knob does.
        _os.environ[JOURNAL_ENV_VAR] = args.journal
    if not overrides:
        return contextlib.nullcontext()
    return use_supervision(SupervisorPolicy(**overrides))


def _maybe_no_result_cache(args: argparse.Namespace):
    """The command's result-store context: disabled or left as configured."""
    import contextlib

    from .sim.result_store import result_store_disabled

    if getattr(args, "no_result_cache", False):
        return result_store_disabled()
    return contextlib.nullcontext()


def _cmd_list() -> int:
    print(format_table(
        ["organization"], [[name] for name in organization_names()],
        title="Organizations:",
    ))
    print()
    print(format_table(
        ["workload", "category", "L3 MPKI", "footprint"],
        [
            [w.name, w.category, w.l3_mpki, format_bytes(w.footprint_bytes)]
            for w in WORKLOADS
        ],
        title="Workloads (Table II):",
    ))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = scaled_paper_system(scale_shift=args.scale_shift)
    spec = workload(args.workload)
    baseline = run_workload("baseline", spec, config, args.accesses, args.seed)
    result = run_workload(args.organization, spec, config, args.accesses, args.seed)
    if args.json:
        from .sim.export import result_to_json

        print(result_to_json(result, baseline))
        return 0
    rows = [
        ["speedup over baseline", f"{result.speedup_over(baseline):.3f}x"],
        ["IPC", f"{result.ipc:.3f}"],
        ["stacked service fraction", percent(result.stacked_service_fraction)],
        ["page faults", result.page_faults],
        ["line swaps", result.line_swaps],
        ["page migrations", result.page_migrations],
        ["storage traffic", format_bytes(result.storage_bytes)],
    ]
    for device, n_bytes in result.dram_bytes.items():
        rows.append([f"{device} traffic", format_bytes(n_bytes)])
    if result.llp_cases is not None and result.llp_cases.total:
        rows.append(["LLP accuracy", percent(result.llp_cases.accuracy)])
    print(format_table(
        ["metric", "value"], rows,
        title=f"{args.organization} on {spec.name}",
    ))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    config = scaled_paper_system(scale_shift=args.scale_shift)
    spec = workload(args.workload)
    baseline = run_workload("baseline", spec, config, args.accesses, args.seed)
    bars = []
    for org in HEADLINE_ORGS:
        result = run_workload(org, spec, config, args.accesses, args.seed)
        bars.append((org, result.speedup_over(baseline)))
    print(format_bar_chart(bars, title=f"{spec.name}: speedup over baseline"))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    fn = FIGURES[args.which]
    if args.json and args.which in ("3", "8"):
        raise ReproError(
            f"figure {args.which} is analytical (no simulation grid); "
            "--json only applies to matrix figures/tables"
        )
    _apply_dispatch(args)
    with _maybe_no_result_cache(args), _maybe_supervision(args):
        if args.which in ("3", "8"):
            # Analytical figures: no simulation grid, nothing to fan out.
            result = fn()
        else:
            result = fn(accesses_per_context=args.accesses, n_jobs=args.jobs)
    if args.json:
        print(result.matrix.to_json())
    else:
        print(result.render())
    return 0


def _cmd_paper(args: argparse.Namespace) -> int:
    import contextlib

    from .experiments import PAPER_PLANNERS
    from .sim.plan import (
        build_grid_plan,
        execute_grid_plan,
        load_resume_manifest,
        seed_store_from_manifest,
        write_resume_manifest,
    )
    from .sim.result_store import (
        ResultStore,
        default_result_store,
        use_result_store,
    )

    names = args.experiments or list(PAPER_PLANNERS)
    unknown = [name for name in names if name not in PAPER_PLANNERS]
    if unknown:
        known = ", ".join(PAPER_PLANNERS)
        raise ReproError(
            f"unknown experiment(s): {', '.join(unknown)} (known: {known})"
        )
    if args.resume and args.no_result_cache:
        raise ReproError(
            "--resume serves completed cells through the result store; "
            "it cannot be combined with --no-result-cache"
        )
    _apply_dispatch(args)
    manifest = load_resume_manifest(args.resume) if args.resume else None
    store_context = contextlib.nullcontext()
    if manifest is not None and default_result_store() is None:
        # Result caching is off (REPRO_RESULT_CACHE=off): serve the
        # manifest's cells from a temporary in-memory store instead.
        store_context = use_result_store(ResultStore())
    journal = _journal_from_args(args)
    with _maybe_no_result_cache(args), store_context:
        if manifest is not None:
            seeded = seed_store_from_manifest(manifest, default_result_store())
            print(f"resume: seeded {seeded} completed cell(s) from "
                  f"{args.resume}")
        print(f"declaring {len(names)} experiment grid(s)...")
        planned = [
            PAPER_PLANNERS[name](
                accesses_per_context=args.accesses, seed=args.seed
            )
            for name in names
        ]
        plan = build_grid_plan(planned)
        print(plan.describe())
        if args.dry_run:
            return 0
        try:
            report = execute_grid_plan(
                plan,
                n_jobs=args.jobs,
                log=print,
                max_attempts=args.max_attempts,
                hang_timeout_seconds=args.hang_timeout,
                journal=journal,
                dispatch=args.dispatch,
                endpoints=args.endpoints,
            )
        except InterruptedRunError as exc:
            saved = write_resume_manifest(
                args.manifest,
                exc.outcomes or [],
                exc.signal_name,
                recipe={
                    "experiments": names,
                    "accesses": args.accesses,
                    "seed": args.seed,
                },
                pending_keys=exc.pending_keys,
            )
            print(f"\ninterrupted by {exc.signal_name}: {saved} completed "
                  f"cell(s) saved to {args.manifest}", file=sys.stderr)
            print(f"resume with: repro paper --resume {args.manifest}",
                  file=sys.stderr)
            return EXIT_INTERRUPTED
        for result in report.results:
            print()
            print(result.render())
        print()
        print(report.describe())
    return 0


def _cmd_mix(args: argparse.Namespace) -> int:
    from .sim.runner import run_mix

    config = scaled_paper_system(num_contexts=len(args.workloads))
    baseline = run_mix("baseline", args.workloads, config, args.accesses, args.seed)
    result = run_mix(args.org, args.workloads, config, args.accesses, args.seed)
    print(format_table(
        ["metric", "value"],
        [
            ["mix", result.workload],
            ["speedup over baseline", f"{result.speedup_over(baseline):.3f}x"],
            ["stacked service fraction", percent(result.stacked_service_fraction)],
            ["page faults", result.page_faults],
        ],
        title=f"{args.org} on the mix",
    ))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .workloads.ingest import write_trace_file
    from .workloads.mixes import per_context_footprint_pages
    from .workloads.replay import record_synthetic_trace
    from .workloads.synthetic import SyntheticTraceGenerator

    spec = workload(args.workload)
    config = scaled_paper_system()
    footprint = (
        args.footprint_pages
        if args.footprint_pages is not None
        else per_context_footprint_pages(spec, config)
    )
    generator = SyntheticTraceGenerator(spec, footprint, seed=args.seed)
    records = record_synthetic_trace(generator, args.records)
    # The v1 header (checksum, record count, geometry) makes the dump
    # directly ingestable by `repro ingest` / plan trace stages.
    count = write_trace_file(
        args.output, records,
        footprint_pages=footprint, mpki=spec.l3_mpki, name=spec.name,
    )
    print(f"wrote {count} records to {args.output} "
          f"(v1 header; ingestable with `repro ingest {args.output}`)")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from .sim.planfile import (
        describe_status, load_plan, load_status, run_plan,
    )

    if args.plan_command == "status":
        print(describe_status(load_status(args.status_file)))
        return 0
    plan = load_plan(args.plan_file)
    if args.plan_command == "validate":
        print(plan.describe())
        print("plan is valid")
        return 0
    status_path = args.status or (
        os.path.splitext(args.plan_file)[0] + ".status.json"
    )
    _apply_dispatch(args)
    with _maybe_no_result_cache(args):
        try:
            report = run_plan(
                plan,
                status_path,
                n_jobs=args.jobs,
                log=print,
                journal=_journal_from_args(args),
                resume=args.resume,
                export_path=args.export,
                dispatch=args.dispatch,
                endpoints=args.endpoints,
            )
        except InterruptedRunError as exc:
            print(f"interrupted: {exc}", file=sys.stderr)
            print(
                f"completed cells are banked in {status_path}; continue "
                f"with: repro plan run {args.plan_file} --status "
                f"{status_path} --resume",
                file=sys.stderr,
            )
            return EXIT_INTERRUPTED
    print()
    print(report.describe())
    print(f"status: {status_path}")
    failed = any(
        entry["state"] != "completed"
        for entry in report.status["stages"].values()
    )
    return 1 if failed else 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    import json as _json

    from .workloads.ingest import ingest_trace_file

    kwargs = {}
    if args.error_budget is not None:
        kwargs["error_budget"] = args.error_budget
    report = ingest_trace_file(args.trace_file, name=args.name, **kwargs)
    if args.quarantine and report.quarantine:
        with open(args.quarantine, "w") as fp:
            for line_no, reason, text in report.quarantine:
                fp.write(f"{args.trace_file}:{line_no}: {reason}: {text}\n")
    if args.json:
        trace = report.trace
        print(_json.dumps({
            "name": trace.name,
            "source_path": trace.source_path,
            "checksum": trace.checksum,
            "checksum_verified": trace.checksum_verified,
            "records": trace.n_records,
            "lines_per_page": trace.lines_per_page,
            "footprint_pages": trace.footprint_pages,
            "mpki": trace.mpki,
            "quarantined": trace.quarantined,
            "quarantine": [
                {"line": line_no, "reason": reason, "text": text}
                for line_no, reason, text in report.quarantine
            ],
            "warnings": list(report.warnings),
        }, indent=2, sort_keys=True))
        return 0
    print(report.describe())
    if args.quarantine and report.quarantine:
        print(f"quarantined lines written to {args.quarantine}")
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from .experiments.ablations import (
        run_group_size_ablation,
        run_llp_size_ablation,
        run_threshold_ablation,
    )

    runners = {
        "group-size": (run_group_size_ablation, "xalancbmk"),
        "llp-size": (run_llp_size_ablation, "xalancbmk"),
        "threshold": (run_threshold_ablation, "milc"),
    }
    runner, default_workload = runners[args.which]
    _apply_dispatch(args)
    with _maybe_no_result_cache(args), _maybe_supervision(args):
        result = runner(
            workload=args.workload or default_workload,
            accesses_per_context=args.accesses,
            n_jobs=args.jobs,
        )
    print(result.render())
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from .faults import FaultConfig
    from .sim.export import result_to_json

    config = scaled_paper_system(scale_shift=args.scale_shift)
    spec = workload(args.workload)
    fault_config = FaultConfig(
        seed=args.fault_seed,
        transient_flip_rate=args.transient_rate,
        uncorrectable_fraction=args.uncorrectable,
        stuck_row_rate=args.stuck_rate,
        channel_timeout_rate=args.timeout_rate,
        llt_corruption_rate=args.llt_rate,
    )
    result = run_workload(
        args.organization, spec, config, args.accesses, args.seed,
        fault_config=fault_config,
    )
    if args.json:
        print(result_to_json(result))
        return 0
    print(format_table(
        ["metric", "value"],
        [
            ["IPC", f"{result.ipc:.3f}"],
            ["stacked service fraction", percent(result.stacked_service_fraction)],
            ["line swaps", result.line_swaps],
            ["page faults", result.page_faults],
        ],
        title=f"{args.organization} on {spec.name} (fault injection on)",
    ))
    print()
    print(format_table(
        ["fault counter", "count"],
        [[name, count] for name, count in result.fault_summary.items()],
        title="Fault and recovery telemetry:",
    ))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .sim import bench

    orgs = args.orgs or list(bench.DEFAULT_ORGS)
    workloads = args.workloads or list(bench.DEFAULT_WORKLOADS)
    if args.accesses is not None:
        accesses = args.accesses
    else:
        accesses = bench.QUICK_ACCESSES if args.quick else bench.DEFAULT_ACCESSES
    if args.repeats is not None:
        repeats = args.repeats
    else:
        repeats = 1 if args.quick else bench.DEFAULT_REPEATS

    engine = args.engine
    if engine is None and args.require_kernel:
        # Requiring the kernel on the python backend would fail every
        # cell; the flag means "vector, and prove it engaged".
        engine = "vector"
    if engine is not None:
        # The knob is an env var so it reaches subprocess workers too
        # (the parallel grid pass re-resolves it in each worker).
        from .sim.engine import ENGINE_ENV_VAR
        os.environ[ENGINE_ENV_VAR] = engine
    _apply_dispatch(args)

    print(f"bench: {len(orgs)} orgs x {len(workloads)} workloads, "
          f"{accesses} accesses/context, best of {repeats}")
    with _maybe_no_result_cache(args):
        payload = bench.run_bench(
            orgs=orgs,
            workloads=workloads,
            accesses_per_context=accesses,
            repeats=repeats,
            scale_shift=args.scale_shift,
            n_jobs=args.jobs,
            log=print,
            max_attempts=args.max_attempts,
            hang_timeout_seconds=args.hang_timeout,
            journal=_journal_from_args(args),
        )
    output = args.output or bench.next_bench_path()
    bench.write_bench(payload, output)
    print(f"wrote {output}")

    baseline_path = args.compare
    if baseline_path is None:
        committed = [p for p in bench.bench_files() if os.path.abspath(p)
                     != os.path.abspath(output)]
        baseline_path = committed[-1] if committed else None
    if baseline_path is not None:
        warning = bench.compare_to_baseline(
            payload, bench.load_bench(baseline_path), threshold=args.threshold
        )
        if warning is not None:
            print(f"{warning} ({baseline_path})")
        else:
            print(f"throughput held versus {baseline_path} "
                  f"(threshold {args.threshold:.0%})")

    if args.require_kernel:
        failures = bench.require_kernel_failures(payload)
        if failures:
            for failure in failures:
                print(f"require-kernel: {failure}")
            print(f"require-kernel: {len(failures)} cell(s) expected to "
                  "lower were served by the python loop")
            return 2
        print("require-kernel: every lowerable cell ran on the compiled kernel")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from .sim.remote import serve

    serve(host=args.host, port=args.port, log=print, once=args.once)
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .sim.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(
        organizations=tuple(args.orgs),
        workloads=tuple(args.workloads),
        seeds=tuple(args.seeds),
        accesses_per_context=args.accesses,
        scale_shift=args.scale_shift,
        timeout_seconds=args.timeout,
        max_attempts=args.attempts,
    )
    result = run_campaign(
        spec, args.checkpoint, max_workers=args.workers, log=print,
        hang_timeout_seconds=args.hang_timeout,
        journal=_journal_from_args(args),
    )
    print()
    print(result.render())
    print(f"\ncheckpoint (and results): {args.checkpoint}")
    return 0 if result.all_completed else 1


_COMMANDS: Dict[str, Callable[[argparse.Namespace], int]] = {
    "list": lambda args: _cmd_list(),
    "run": _cmd_run,
    "compare": _cmd_compare,
    "figure": _cmd_figure,
    "paper": _cmd_paper,
    "mix": _cmd_mix,
    "trace": _cmd_trace,
    "plan": _cmd_plan,
    "ingest": _cmd_ingest,
    "ablation": _cmd_ablation,
    "faults": _cmd_faults,
    "bench": _cmd_bench,
    "campaign": _cmd_campaign,
    "worker": _cmd_worker,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Library errors (:class:`~repro.errors.ReproError`) are reported as a
    one-line message on stderr with exit code 2 — bad input and broken
    checkpoints should not look like simulator crashes. A graceful
    SIGINT/SIGTERM shutdown exits with :data:`EXIT_INTERRUPTED` (3):
    completed cells were flushed (result store / checkpoint) and the run
    can be resumed, so wrappers must not treat it like an error.
    """
    args = _build_parser().parse_args(argv)
    command = _COMMANDS.get(args.command)
    if command is None:
        raise AssertionError("unreachable")
    try:
        return command(args)
    except InterruptedRunError as exc:
        # Commands with richer resume flows (repro paper) catch this
        # themselves; everything else gets the generic contract.
        print(f"interrupted: {exc}", file=sys.stderr)
        return EXIT_INTERRUPTED
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
