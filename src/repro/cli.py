"""Command-line interface: run simulations and regenerate paper artifacts.

Installed as the ``repro`` console script (also ``python -m repro``)::

    repro list                      # organizations and workloads
    repro run cameo milc            # one simulation, with telemetry
    repro compare milc              # all headline designs on one workload
    repro figure 13                 # regenerate a paper figure/table
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from .analysis.report import format_bar_chart, format_table
from .config.system import scaled_paper_system
from .experiments import (
    run_figure2,
    run_figure3,
    run_figure8,
    run_figure9,
    run_figure12,
    run_figure13,
    run_figure14,
    run_figure15,
    run_table3,
    run_table4,
)
from .experiments.common import HEADLINE_ORGS
from .orgs.factory import organization_names
from .sim.runner import run_workload
from .units import format_bytes, percent
from .workloads.spec import WORKLOADS, workload

#: Experiment registry for ``repro figure <id>``.
FIGURES: Dict[str, Callable] = {
    "2": run_figure2,
    "3": run_figure3,
    "8": run_figure8,
    "9": run_figure9,
    "12": run_figure12,
    "13": run_figure13,
    "14": run_figure14,
    "15": run_figure15,
    "table3": run_table3,
    "table4": run_table4,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CAMEO (MICRO 2014) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list organizations and workloads")

    run_p = sub.add_parser("run", help="simulate one workload under one design")
    run_p.add_argument("organization", choices=organization_names())
    run_p.add_argument("workload")
    run_p.add_argument("--json", action="store_true",
                       help="emit the full result as JSON instead of a table")
    _add_common(run_p)

    cmp_p = sub.add_parser("compare", help="all headline designs on one workload")
    cmp_p.add_argument("workload")
    _add_common(cmp_p)

    fig_p = sub.add_parser("figure", help="regenerate a paper figure/table")
    fig_p.add_argument("which", choices=sorted(FIGURES))
    fig_p.add_argument("--accesses", type=int, default=None,
                       help="trace length per context")

    mix_p = sub.add_parser("mix", help="heterogeneous mix: one workload per context")
    mix_p.add_argument("workloads", nargs="+",
                       help="one Table II name per context")
    mix_p.add_argument("--org", default="cameo", choices=organization_names())
    mix_p.add_argument("--accesses", type=int, default=None)
    mix_p.add_argument("--seed", type=int, default=0)

    abl_p = sub.add_parser("ablation", help="run a design-choice ablation")
    abl_p.add_argument("which", choices=["group-size", "llp-size", "threshold"])
    abl_p.add_argument("--workload", default=None)
    abl_p.add_argument("--accesses", type=int, default=None)

    trace_p = sub.add_parser("trace", help="dump a synthetic trace to a file")
    trace_p.add_argument("workload")
    trace_p.add_argument("output", help="destination trace file")
    trace_p.add_argument("-n", "--records", type=int, default=10000)
    trace_p.add_argument("--footprint-pages", type=int, default=None)
    trace_p.add_argument("--seed", type=int, default=0)
    return parser


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--accesses", type=int, default=None,
                        help="trace length per context")
    parser.add_argument("--scale-shift", type=int, default=12,
                        help="capacity scale (0 = paper size)")
    parser.add_argument("--seed", type=int, default=0)


def _cmd_list() -> int:
    print(format_table(
        ["organization"], [[name] for name in organization_names()],
        title="Organizations:",
    ))
    print()
    print(format_table(
        ["workload", "category", "L3 MPKI", "footprint"],
        [
            [w.name, w.category, w.l3_mpki, format_bytes(w.footprint_bytes)]
            for w in WORKLOADS
        ],
        title="Workloads (Table II):",
    ))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = scaled_paper_system(scale_shift=args.scale_shift)
    spec = workload(args.workload)
    baseline = run_workload("baseline", spec, config, args.accesses, args.seed)
    result = run_workload(args.organization, spec, config, args.accesses, args.seed)
    if args.json:
        from .sim.export import result_to_json

        print(result_to_json(result, baseline))
        return 0
    rows = [
        ["speedup over baseline", f"{result.speedup_over(baseline):.3f}x"],
        ["IPC", f"{result.ipc:.3f}"],
        ["stacked service fraction", percent(result.stacked_service_fraction)],
        ["page faults", result.page_faults],
        ["line swaps", result.line_swaps],
        ["page migrations", result.page_migrations],
        ["storage traffic", format_bytes(result.storage_bytes)],
    ]
    for device, n_bytes in result.dram_bytes.items():
        rows.append([f"{device} traffic", format_bytes(n_bytes)])
    if result.llp_cases is not None and result.llp_cases.total:
        rows.append(["LLP accuracy", percent(result.llp_cases.accuracy)])
    print(format_table(
        ["metric", "value"], rows,
        title=f"{args.organization} on {spec.name}",
    ))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    config = scaled_paper_system(scale_shift=args.scale_shift)
    spec = workload(args.workload)
    baseline = run_workload("baseline", spec, config, args.accesses, args.seed)
    bars = []
    for org in HEADLINE_ORGS:
        result = run_workload(org, spec, config, args.accesses, args.seed)
        bars.append((org, result.speedup_over(baseline)))
    print(format_bar_chart(bars, title=f"{spec.name}: speedup over baseline"))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    fn = FIGURES[args.which]
    if args.which in ("3", "8"):
        result = fn()
    else:
        result = fn(accesses_per_context=args.accesses)
    print(result.render())
    return 0


def _cmd_mix(args: argparse.Namespace) -> int:
    from .sim.runner import run_mix

    config = scaled_paper_system(num_contexts=len(args.workloads))
    baseline = run_mix("baseline", args.workloads, config, args.accesses, args.seed)
    result = run_mix(args.org, args.workloads, config, args.accesses, args.seed)
    print(format_table(
        ["metric", "value"],
        [
            ["mix", result.workload],
            ["speedup over baseline", f"{result.speedup_over(baseline):.3f}x"],
            ["stacked service fraction", percent(result.stacked_service_fraction)],
            ["page faults", result.page_faults],
        ],
        title=f"{args.org} on the mix",
    ))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .workloads.mixes import per_context_footprint_pages
    from .workloads.replay import record_synthetic_trace
    from .workloads.synthetic import SyntheticTraceGenerator
    from .workloads.trace import write_trace

    spec = workload(args.workload)
    config = scaled_paper_system()
    footprint = (
        args.footprint_pages
        if args.footprint_pages is not None
        else per_context_footprint_pages(spec, config)
    )
    generator = SyntheticTraceGenerator(spec, footprint, seed=args.seed)
    records = record_synthetic_trace(generator, args.records)
    with open(args.output, "w") as fp:
        fp.write(f"# {spec.name} synthetic trace: {args.records} records, "
                 f"{footprint} pages, seed {args.seed}\n")
        count = write_trace(fp, records)
    print(f"wrote {count} records to {args.output}")
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from .experiments.ablations import (
        run_group_size_ablation,
        run_llp_size_ablation,
        run_threshold_ablation,
    )

    runners = {
        "group-size": (run_group_size_ablation, "xalancbmk"),
        "llp-size": (run_llp_size_ablation, "xalancbmk"),
        "threshold": (run_threshold_ablation, "milc"),
    }
    runner, default_workload = runners[args.which]
    result = runner(
        workload=args.workload or default_workload,
        accesses_per_context=args.accesses,
    )
    print(result.render())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "mix":
        return _cmd_mix(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "ablation":
        return _cmd_ablation(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
