"""The deterministic, seeded fault injector.

One :class:`FaultInjector` is shared by every DRAM device and the memory
organization of a run. It owns a *private* RNG (never the simulation's),
so attaching an injector does not perturb trace generation or page
reclaim, and a zero-rate configuration reproduces the fault-free run
bit-for-bit. Every draw is guarded by its rate, so zero-rate paths do
not even consume injector randomness.

The injector is pure policy + bookkeeping: it decides *that* a fault
happens and remembers permanent damage (stuck rows); the timing cost of
recovery lives in :class:`~repro.dram.device.DramDevice` (ECC adders,
retry/backoff) and :class:`~repro.core.cameo.CameoController`
(decommission and remap).
"""

from __future__ import annotations

import random
from typing import Optional, Set, Tuple

from .model import FaultConfig, FaultEvent, FaultKind
from .stats import FaultStats

#: A physical row: (device name, channel, bank, row).
RowKey = Tuple[str, int, int, int]


class FaultInjector:
    """Draws fault events against a :class:`FaultConfig`, deterministically."""

    def __init__(self, config: Optional[FaultConfig] = None):
        self.config = config if config is not None else FaultConfig()
        self.stats = FaultStats()
        self._rng = random.Random(self.config.seed)
        self._stuck: Set[RowKey] = set()

    # -- Permanent damage registry ------------------------------------------

    def is_stuck_row(self, key: RowKey) -> bool:
        """Has this row failed permanently earlier in the run?"""
        return key in self._stuck

    def mark_stuck_row(self, key: RowKey) -> None:
        """Record a permanent row failure (idempotent)."""
        if key not in self._stuck:
            self._stuck.add(key)
            self.stats.stuck_rows += 1

    @property
    def stuck_row_count(self) -> int:
        return len(self._stuck)

    # -- Per-access draws ------------------------------------------------------

    def draw_read_fault(self, key: RowKey) -> Optional[FaultEvent]:
        """Roll the dice for one DRAM read; may register permanent damage.

        Returns ``None`` for the overwhelmingly common fault-free case.
        At most one fault kind fires per access (priority: transient,
        stuck, timeout) — multi-fault coincidences are beyond this
        model's resolution.
        """
        cfg = self.config
        rng = self._rng
        if cfg.transient_flip_rate > 0.0 and rng.random() < cfg.transient_flip_rate:
            self.stats.transient_flips += 1
            correctable = rng.random() >= cfg.uncorrectable_fraction
            return FaultEvent(FaultKind.TRANSIENT_FLIP, correctable=correctable)
        if cfg.stuck_row_rate > 0.0 and rng.random() < cfg.stuck_row_rate:
            self.mark_stuck_row(key)
            return FaultEvent(FaultKind.STUCK_ROW)
        if cfg.channel_timeout_rate > 0.0 and rng.random() < cfg.channel_timeout_rate:
            self.stats.channel_timeouts += 1
            return FaultEvent(FaultKind.CHANNEL_TIMEOUT)
        return None

    def maybe_corrupt_llt(self, llt) -> Optional[int]:
        """Possibly flip one LLT entry; returns the damaged group (or None).

        The corrupted entry is set to a *valid-looking* slot value — the
        table still answers lookups, it just silently stops being a
        permutation, exactly like a real flipped location entry. The
        damage stays latent until the invariant audit (or a failing swap)
        finds it.
        """
        cfg = self.config
        if cfg.llt_corruption_rate <= 0.0 or self._rng.random() >= cfg.llt_corruption_rate:
            return None
        space = llt.space
        group = self._rng.randrange(space.num_groups)
        slot = self._rng.randrange(space.group_size)
        value = self._rng.randrange(space.group_size)
        llt.corrupt_entry(group, slot, value)
        self.stats.llt_corruptions += 1
        return group
