"""Periodic LLT invariant auditing (the metadata patrol scrubber).

CAMEO's correctness hangs on every congruence group's LLT record being a
permutation of ``0..K-1`` — a corrupted location entry silently aliases
two lines onto one physical slot. The auditor models a background patrol
scrubber: every ``interval`` demand accesses it verifies a rotating
window of groups and hands corrupted ones to the controller's repair
callback (which rebuilds the entry from the lines' self-identifying tags
and charges the scrub traffic).

The audit reads themselves are free: a real patrol scrubber rides idle
cycles, and keeping the checks costless means a zero-fault run with an
attached auditor stays bit-for-bit identical to one without.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.llt import LineLocationTable
from ..errors import SimulationError
from .stats import FaultStats

#: Callback signature: repair(now, group) — fix one corrupted group.
RepairFn = Callable[[float, int], None]


class InvariantAuditor:
    """Rotating permutation checks over the LLT, with repair dispatch."""

    def __init__(
        self,
        llt: LineLocationTable,
        repair: RepairFn,
        interval: int = 256,
        groups_per_audit: int = 16,
        stats: Optional[FaultStats] = None,
    ):
        if interval <= 0:
            raise SimulationError("audit interval must be positive")
        self.llt = llt
        self.repair = repair
        self.interval = interval
        self.groups_per_audit = groups_per_audit
        self.stats = stats if stats is not None else FaultStats()
        self._accesses = 0
        self._cursor = 0

    def tick(self, now: float) -> None:
        """Note one demand access; audit when the interval elapses."""
        self._accesses += 1
        if self._accesses % self.interval == 0:
            self.audit(now)

    def audit(self, now: float) -> int:
        """Verify the next window of groups; returns repairs performed."""
        num_groups = self.llt.space.num_groups
        repaired = 0
        for _ in range(min(self.groups_per_audit, num_groups)):
            group = self._cursor
            self._cursor = (self._cursor + 1) % num_groups
            try:
                self.llt.check_group_invariant(group)
            except SimulationError:
                self.repair(now, group)
                repaired += 1
        self.stats.audits += 1
        return repaired

    def full_sweep(self, now: float) -> int:
        """Audit every group once (end-of-run hygiene, tests)."""
        repaired = 0
        for group in range(self.llt.space.num_groups):
            try:
                self.llt.check_group_invariant(group)
            except SimulationError:
                self.repair(now, group)
                repaired += 1
        return repaired
