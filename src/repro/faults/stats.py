"""Fault and recovery accounting.

One :class:`FaultStats` instance is shared by the injector, the devices,
and the organization's recovery logic, so a single dict in
:class:`~repro.sim.results.RunResult` tells the whole degradation story:
how much was injected, how much SECDED absorbed, how often retry saved
the day, and how much capacity was decommissioned.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class FaultStats:
    """Counters for every injected fault and every recovery action."""

    # -- Injection side -----------------------------------------------------
    transient_flips: int = 0
    stuck_rows: int = 0
    channel_timeouts: int = 0
    llt_corruptions: int = 0

    # -- ECC (SECDED) accounting --------------------------------------------
    ecc_corrected: int = 0
    #: Detected-uncorrectable events (DUEs): double-bit flips + stuck reads.
    ecc_detected: int = 0

    # -- Retry path ----------------------------------------------------------
    retries: int = 0
    retry_successes: int = 0
    recoveries_exhausted: int = 0

    # -- Structural degradation ----------------------------------------------
    decommissioned_groups: int = 0
    #: Posted (off-critical-path) operations aborted by a fault.
    posted_aborts: int = 0
    #: Writes that landed on a stuck row (data lost until scrubbed).
    dropped_writes: int = 0
    #: Demand accesses served at nominal latency because every physical
    #: slot of the group has failed (the group is beyond salvage).
    dead_group_services: int = 0

    # -- Invariant audits -----------------------------------------------------
    audits: int = 0
    llt_repairs: int = 0

    def as_dict(self) -> dict:
        """Stable flat dict, for RunResult / JSON export."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def total_injected(self) -> int:
        return (
            self.transient_flips
            + self.stuck_rows
            + self.channel_timeouts
            + self.llt_corruptions
        )
