"""Modeled hardware faults and graceful degradation.

A :class:`FaultInjector` (deterministic, seeded, private RNG) injects
transient bit flips, stuck-at rows, channel timeouts, and LLT-entry
corruption into the DRAM devices and the CAMEO controller; the recovery
model — SECDED correct/detect, bounded retry with backoff, congruence-
group decommission/remap, and periodic LLT invariant audits — lets a run
degrade gracefully instead of dying. See ``docs/robustness.md``.

Quickstart::

    from repro import run_workload
    from repro.faults import FaultConfig

    result = run_workload(
        "cameo", "milc",
        fault_config=FaultConfig(transient_flip_rate=1e-3, stuck_row_rate=1e-4),
    )
    print(result.fault_summary)
"""

from .auditor import InvariantAuditor
from .injector import FaultInjector, RowKey
from .model import FaultConfig, FaultEvent, FaultKind, RetryPolicy
from .stats import FaultStats

__all__ = [
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultStats",
    "InvariantAuditor",
    "RetryPolicy",
    "RowKey",
]
