"""Fault taxonomy and injection/recovery policy knobs.

The fault model covers the failure modes that matter for a memory-side
(OS-visible) use of stacked DRAM, where — unlike a cache — a bad line is
the *only* copy of its data:

* **transient bit flips** in a read burst, the SECDED bread-and-butter:
  most are corrected in-flight for a small latency adder, a configurable
  fraction defeats single-error correction and must be retried;
* **stuck-at rows**, permanent array failures: every subsequent read of
  the row detects uncorrectable corruption, so the organization must
  stop using it (CAMEO decommissions the affected congruence groups);
* **LLT entry corruption**: a flipped location entry silently breaks a
  group's permutation — the failure mode unique to CAMEO's metadata-in-
  DRAM design, caught by the periodic invariant audit;
* **channel timeouts**: a transfer that never completes (link retrain,
  lost response) and is resolved by timeout-then-retry.

Everything is driven by per-access probabilities from a private seeded
RNG, so fault campaigns are reproducible and a zero-rate configuration
is bit-for-bit identical to running with no injector at all.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ConfigurationError


class FaultKind(enum.Enum):
    """What kind of fault an injection event models."""

    TRANSIENT_FLIP = "transient_flip"
    STUCK_ROW = "stuck_row"
    CHANNEL_TIMEOUT = "channel_timeout"
    LLT_CORRUPTION = "llt_corruption"


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as seen by the component that must recover."""

    kind: FaultKind
    #: True when SECDED corrected the corruption in-flight (no retry needed).
    correctable: bool = False


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for non-permanent faults."""

    max_retries: int = 3
    backoff_base_cycles: float = 200.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if self.backoff_base_cycles < 0:
            raise ConfigurationError("backoff base must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff factor below 1 would shrink delays")

    def backoff_cycles(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (0-based)."""
        return self.backoff_base_cycles * self.backoff_factor**attempt


#: Probability-rate field names, validated to lie in [0, 1].
_RATE_FIELDS = (
    "transient_flip_rate",
    "uncorrectable_fraction",
    "stuck_row_rate",
    "channel_timeout_rate",
    "llt_corruption_rate",
)


@dataclass(frozen=True)
class FaultConfig:
    """Complete description of one fault-injection scenario.

    All ``*_rate`` fields are per-event probabilities: transient/stuck/
    timeout rates apply per DRAM *read* access, the LLT corruption rate
    per demand request reaching the CAMEO controller. The defaults are
    all-zero: attaching a default-config injector is a no-op.
    """

    seed: int = 0
    #: Per-read probability of a transient bit flip in the burst.
    transient_flip_rate: float = 0.0
    #: Fraction of transient flips that defeat SECDED correction.
    uncorrectable_fraction: float = 0.1
    #: Per-read probability that the accessed row fails permanently.
    stuck_row_rate: float = 0.0
    #: Per-read probability of a channel timeout (resolved by retry).
    channel_timeout_rate: float = 0.0
    #: Per-demand-access probability of corrupting one LLT entry.
    llt_corruption_rate: float = 0.0
    #: Latency adder when SECDED corrects a flip in-flight.
    ecc_correction_cycles: float = 3.0
    #: Stall charged before the first retry of a timed-out transfer.
    timeout_penalty_cycles: float = 2000.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Demand accesses between invariant audits of the LLT.
    audit_interval_accesses: int = 256
    #: Congruence groups verified per audit (rotating cursor).
    audit_groups: int = 16

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name}={value} must be within [0, 1]")
        if self.ecc_correction_cycles < 0 or self.timeout_penalty_cycles < 0:
            raise ConfigurationError("latency penalties must be non-negative")
        if self.audit_interval_accesses <= 0:
            raise ConfigurationError("audit interval must be positive")
        if self.audit_groups <= 0:
            raise ConfigurationError("audit group count must be positive")

    @property
    def injects_anything(self) -> bool:
        """False when every injection rate is zero (pure pass-through)."""
        return any(
            getattr(self, name) > 0.0
            for name in _RATE_FIELDS
            if name != "uncorrectable_fraction"
        )
