"""Replaying recorded traces through the simulator.

The synthetic generators are the default trace source, but any recorded
stream — e.g. one captured from a real application and saved with
:func:`repro.workloads.trace.write_trace` — can drive the engine. A
:class:`ReplayTraceSource` presents a list of records through the same
``generate(n)`` / ``footprint_pages`` interface the engine expects, so
the two sources are interchangeable.
"""

from __future__ import annotations

from typing import IO, Iterator, List, Sequence

from ..errors import WorkloadError
from ..units import LINES_PER_PAGE
from .trace import RawRecord, TraceRecord, read_trace


class ReplayTraceSource:
    """A fixed record sequence exposed through the generator interface.

    Replays loop when asked for more accesses than the trace holds (the
    usual convention for short traces driving long simulations); set
    ``allow_wrap=False`` to make exhaustion an error instead.
    """

    def __init__(self, records: Sequence[TraceRecord], allow_wrap: bool = True,
                 lines_per_page: int = LINES_PER_PAGE):
        if not records:
            raise WorkloadError("cannot replay an empty trace")
        self._raw: List[RawRecord] = [r.as_raw() for r in records]
        self.allow_wrap = allow_wrap
        self.lines_per_page = lines_per_page
        max_line = max(r[0] for r in self._raw)
        self.footprint_pages = max_line // lines_per_page + 1

    @classmethod
    def from_file(cls, fp: IO[str], allow_wrap: bool = True) -> "ReplayTraceSource":
        """Load a trace written by :func:`repro.workloads.trace.write_trace`."""
        return cls(read_trace(fp), allow_wrap=allow_wrap)

    def __len__(self) -> int:
        return len(self._raw)

    def generate(self, n_accesses: int) -> Iterator[RawRecord]:
        """Yield ``n_accesses`` records, wrapping around if permitted."""
        if not self.allow_wrap and n_accesses > len(self._raw):
            raise WorkloadError(
                f"trace holds {len(self._raw)} records, {n_accesses} requested "
                "and wrapping is disabled"
            )
        raw = self._raw
        length = len(raw)
        for i in range(n_accesses):
            yield raw[i % length]


def record_synthetic_trace(generator, n_accesses: int) -> List[TraceRecord]:
    """Materialise a synthetic generator's stream as replayable records."""
    return [
        TraceRecord(virtual_line, pc, is_write)
        for virtual_line, pc, is_write in generator.generate(n_accesses)
    ]
