"""Replaying recorded traces through the simulator.

The synthetic generators are the default trace source, but any recorded
stream — e.g. one captured from a real application and saved with
:func:`repro.workloads.trace.write_trace` — can drive the engine. A
:class:`ReplayTraceSource` presents a list of records through the same
``generate(n)`` / ``footprint_pages`` interface the engine expects, so
the two sources are interchangeable.
"""

from __future__ import annotations

from typing import IO, Iterator, List, Optional, Sequence

from ..errors import WorkloadError
from ..units import LINES_PER_PAGE
from .trace import RawRecord, TraceRecord, read_trace


class ReplayTraceSource:
    """A fixed record sequence exposed through the generator interface.

    Replays loop when asked for more accesses than the trace holds (the
    usual convention for short traces driving long simulations); set
    ``allow_wrap=False`` to make exhaustion an error instead.
    """

    def __init__(self, records: Sequence[TraceRecord], allow_wrap: bool = True,
                 lines_per_page: int = LINES_PER_PAGE,
                 footprint_pages: Optional[int] = None):
        if not records:
            raise WorkloadError("cannot replay an empty trace")
        self._raw: List[RawRecord] = [r.as_raw() for r in records]
        self.allow_wrap = allow_wrap
        self.lines_per_page = lines_per_page
        if footprint_pages is None:
            # Derived footprint: the smallest address space holding the
            # trace. Callers replaying a *generated* stream should pass
            # the generator's nominal footprint instead — high pages the
            # trace happened not to touch still belong to the workload.
            max_line = max(r[0] for r in self._raw)
            footprint_pages = max_line // lines_per_page + 1
        elif footprint_pages <= 0:
            raise WorkloadError("footprint_pages must be positive")
        self.footprint_pages = footprint_pages

    @classmethod
    def from_file(cls, fp: IO[str], allow_wrap: bool = True) -> "ReplayTraceSource":
        """Load a trace written by :func:`repro.workloads.trace.write_trace`."""
        return cls(read_trace(fp), allow_wrap=allow_wrap)

    @classmethod
    def from_raw(cls, raw: Sequence[RawRecord], allow_wrap: bool = True,
                 lines_per_page: int = LINES_PER_PAGE,
                 footprint_pages: Optional[int] = None) -> "ReplayTraceSource":
        """Wrap already-raw ``(virtual_line, pc, is_write)`` tuples.

        The hot-path constructor used by the trace cache: no
        ``TraceRecord`` boxing, and the stored sequence is shared, not
        copied — callers must not mutate it afterwards.
        """
        if not raw:
            raise WorkloadError("cannot replay an empty trace")
        source = cls.__new__(cls)
        source._raw = raw if isinstance(raw, list) else list(raw)
        source.allow_wrap = allow_wrap
        source.lines_per_page = lines_per_page
        if footprint_pages is None:
            max_line = max(r[0] for r in source._raw)
            footprint_pages = max_line // lines_per_page + 1
        elif footprint_pages <= 0:
            raise WorkloadError("footprint_pages must be positive")
        source.footprint_pages = footprint_pages
        return source

    def __len__(self) -> int:
        return len(self._raw)

    def generate(self, n_accesses: int) -> Iterator[RawRecord]:
        """Yield ``n_accesses`` records, wrapping around if permitted."""
        if not self.allow_wrap and n_accesses > len(self._raw):
            raise WorkloadError(
                f"trace holds {len(self._raw)} records, {n_accesses} requested "
                "and wrapping is disabled"
            )
        raw = self._raw
        length = len(raw)
        for i in range(n_accesses):
            yield raw[i % length]


def record_synthetic_trace(generator, n_accesses: int) -> List[TraceRecord]:
    """Materialise a synthetic generator's stream as replayable records."""
    return [
        TraceRecord(virtual_line, pc, is_write)
        for virtual_line, pc, is_write in generator.generate(n_accesses)
    ]
