"""Workloads: Table II registry, synthetic generators, traces, mixes."""

from .calibration import CalibrationReport, StreamProfile, calibrate, profile_stream
from .mixes import (
    mixed_generators,
    per_context_footprint_pages,
    rate_mode_generators,
    rate_mode_seed,
)
from .replay import ReplayTraceSource, record_synthetic_trace
from .trace_cache import (
    TraceCache,
    TraceCacheStats,
    clear_default_trace_cache,
    default_trace_cache,
    materialized_rate_mode_sources,
    trace_cache_disabled,
    trace_fingerprint,
)
from .spec import (
    CAPACITY,
    LATENCY,
    WORKLOADS,
    WorkloadSpec,
    capacity_workloads,
    latency_workloads,
    render_table2,
    workload,
    workload_names,
)
from .synthetic import SyntheticTraceGenerator
from .trace import RawRecord, TraceRecord, read_trace, records_from_raw, write_trace

__all__ = [
    "CAPACITY",
    "CalibrationReport",
    "ReplayTraceSource",
    "StreamProfile",
    "TraceCache",
    "TraceCacheStats",
    "calibrate",
    "clear_default_trace_cache",
    "default_trace_cache",
    "materialized_rate_mode_sources",
    "mixed_generators",
    "profile_stream",
    "rate_mode_seed",
    "record_synthetic_trace",
    "render_table2",
    "trace_cache_disabled",
    "trace_fingerprint",
    "LATENCY",
    "RawRecord",
    "SyntheticTraceGenerator",
    "TraceRecord",
    "WORKLOADS",
    "WorkloadSpec",
    "capacity_workloads",
    "latency_workloads",
    "per_context_footprint_pages",
    "rate_mode_generators",
    "read_trace",
    "records_from_raw",
    "workload",
    "workload_names",
    "write_trace",
]
