"""Workloads: Table II registry, synthetic generators, traces, mixes."""

from .calibration import CalibrationReport, StreamProfile, calibrate, profile_stream
from .mixes import mixed_generators, per_context_footprint_pages, rate_mode_generators
from .replay import ReplayTraceSource, record_synthetic_trace
from .spec import (
    CAPACITY,
    LATENCY,
    WORKLOADS,
    WorkloadSpec,
    capacity_workloads,
    latency_workloads,
    render_table2,
    workload,
    workload_names,
)
from .synthetic import SyntheticTraceGenerator
from .trace import RawRecord, TraceRecord, read_trace, records_from_raw, write_trace

__all__ = [
    "CAPACITY",
    "CalibrationReport",
    "ReplayTraceSource",
    "StreamProfile",
    "calibrate",
    "mixed_generators",
    "profile_stream",
    "record_synthetic_trace",
    "render_table2",
    "LATENCY",
    "RawRecord",
    "SyntheticTraceGenerator",
    "TraceRecord",
    "WORKLOADS",
    "WorkloadSpec",
    "capacity_workloads",
    "latency_workloads",
    "per_context_footprint_pages",
    "rate_mode_generators",
    "read_trace",
    "records_from_raw",
    "workload",
    "workload_names",
    "write_trace",
]
