"""Workloads: Table II registry, synthetic generators, traces, mixes."""

from .calibration import CalibrationReport, StreamProfile, calibrate, profile_stream
from .mixes import (
    mixed_generators,
    per_context_footprint_pages,
    rate_mode_generators,
    rate_mode_seed,
)
from .ingest import (
    IngestReport,
    IngestedTrace,
    ingest_trace_file,
    read_trace_header,
    records_checksum,
    replay_sources,
    replay_spec,
    write_trace_file,
)
from .replay import ReplayTraceSource, record_synthetic_trace
from .trace_cache import (
    TraceCache,
    TraceCacheStats,
    clear_default_trace_cache,
    default_trace_cache,
    materialized_rate_mode_sources,
    trace_cache_disabled,
    trace_fingerprint,
)
from .spec import (
    CAPACITY,
    LATENCY,
    WORKLOADS,
    WorkloadSpec,
    capacity_workloads,
    latency_workloads,
    render_table2,
    workload,
    workload_names,
)
from .synthetic import SyntheticTraceGenerator
from .trace import RawRecord, TraceRecord, read_trace, records_from_raw, write_trace

__all__ = [
    "CAPACITY",
    "CalibrationReport",
    "IngestReport",
    "IngestedTrace",
    "ReplayTraceSource",
    "StreamProfile",
    "TraceCache",
    "TraceCacheStats",
    "calibrate",
    "clear_default_trace_cache",
    "default_trace_cache",
    "ingest_trace_file",
    "materialized_rate_mode_sources",
    "mixed_generators",
    "profile_stream",
    "rate_mode_seed",
    "record_synthetic_trace",
    "render_table2",
    "trace_cache_disabled",
    "trace_fingerprint",
    "LATENCY",
    "RawRecord",
    "SyntheticTraceGenerator",
    "TraceRecord",
    "WORKLOADS",
    "WorkloadSpec",
    "capacity_workloads",
    "latency_workloads",
    "per_context_footprint_pages",
    "rate_mode_generators",
    "read_trace",
    "read_trace_header",
    "records_checksum",
    "records_from_raw",
    "replay_sources",
    "replay_spec",
    "workload",
    "workload_names",
    "write_trace",
    "write_trace_file",
]
