"""Hardened ingestion of externally captured trace files.

The synthetic generators stop being the only workload source here: a
miss trace captured outside this repo — from a real application, another
simulator, or a hybrid-design study (e.g. MemCache-style workloads) —
drops into every runner through a documented text format and a strict
validator. The contract is deliberately paranoid:

* **per-file header** — magic/version line, a sha256 checksum of the
  canonical record encoding, the declared record count, and optional
  geometry/pacing hints (``lines-per-page``, ``footprint-pages``,
  ``mpki``, ``name``);
* **strict record validation** — every malformed body line is reported
  with its 1-based line number and reason; malformed records are
  *quarantined* (dropped, loudly) up to a bounded error budget, beyond
  which the whole file is rejected;
* **truncation and corruption detection** — the body must hold exactly
  the declared number of records, and (when nothing was quarantined)
  must hash to the declared checksum; a truncated or bit-rotted file is
  rejected whole, never silently replayed as a partial trace;
* **content-addressed replay** — validated records are memoized
  in-process and, when the trace-cache directory is writable, as the
  same compact binary files :mod:`repro.workloads.trace_cache` uses, so
  workers replay one materialization instead of re-parsing text.

The :class:`IngestedTrace` handle this module returns is a small frozen
dataclass — picklable, content-addressed by checksum — that
:func:`repro.sim.runner.run_workload` (and therefore every grid,
campaign, and plan stage) accepts anywhere a workload name goes.
Falling back to a synthetic generator when ingestion fails is *never*
done here; only an explicit ``allow_synthetic_fallback`` in a campaign
plan may substitute a generator, and that substitution happens in
:mod:`repro.sim.planfile` where it is recorded as an incident.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import IO, Dict, List, Optional, Sequence, Tuple

from ..errors import IngestError
from ..units import LINES_PER_PAGE, PAGE_BYTES
from .replay import ReplayTraceSource
from .spec import CAPACITY, WorkloadSpec
from .trace import RawRecord, TraceRecord

#: First line of every v1 trace file.
TRACE_MAGIC = "# repro-trace v1"
#: Malformed body lines tolerated (quarantined) before the file is
#: rejected. Override per call; the plan format exposes it per stage.
DEFAULT_ERROR_BUDGET = 10
#: Pacing hint when the header offers no ``mpki`` (Table II median-ish).
DEFAULT_TRACE_MPKI = 10.0

#: Header keys the v1 format defines; anything else is rejected.
_HEADER_KEYS = ("checksum", "records", "lines-per-page", "footprint-pages",
                "mpki", "name")
_REQUIRED_HEADER_KEYS = ("checksum", "records")


def _canonical_line(virtual_line: int, pc: int, is_write: bool) -> str:
    """The checksummed form of one record — exactly what the writer emits."""
    return f"{virtual_line} {pc} {'W' if is_write else 'R'}\n"


def records_checksum(records: Sequence[RawRecord]) -> str:
    """sha256 over the canonical encoding of ``records``, as ``sha256:<hex>``."""
    digest = hashlib.sha256()
    for virtual_line, pc, is_write in records:
        digest.update(_canonical_line(virtual_line, pc, is_write).encode("ascii"))
    return f"sha256:{digest.hexdigest()}"


@dataclass(frozen=True)
class TraceHeader:
    """The parsed ``# key: value`` block of a v1 trace file."""

    checksum: str
    records: int
    lines_per_page: int = LINES_PER_PAGE
    footprint_pages: Optional[int] = None
    mpki: float = DEFAULT_TRACE_MPKI
    name: Optional[str] = None


@dataclass(frozen=True)
class IngestedTrace:
    """Picklable handle to one validated external trace.

    ``checksum`` addresses the records actually kept (it equals the
    declared checksum unless records were quarantined), so two handles
    with equal checksums replay byte-identical streams — which is what
    makes ingested cells content-addressable in the result store.
    """

    name: str
    source_path: str
    checksum: str
    n_records: int
    lines_per_page: int
    footprint_pages: int
    mpki: float = DEFAULT_TRACE_MPKI
    #: Malformed records dropped during ingestion (0 for a clean file).
    quarantined: int = 0
    #: The budget the ingest ran under — re-ingestion uses the same one.
    error_budget: int = DEFAULT_ERROR_BUDGET
    #: False when quarantined records made the declared checksum
    #: unverifiable; the kept-records checksum above still pins content.
    checksum_verified: bool = True


@dataclass
class IngestReport:
    """Everything :func:`ingest_trace_file` learned about one file."""

    trace: IngestedTrace
    header: TraceHeader
    #: ``(line_number, reason, line_text)`` for each quarantined record.
    quarantine: List[Tuple[int, str, str]] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    def describe(self) -> str:
        trace = self.trace
        lines = [
            f"ingested {trace.source_path}: {trace.n_records} record(s), "
            f"{trace.footprint_pages} page(s), "
            f"{trace.lines_per_page} lines/page",
            f"  checksum: {trace.checksum}"
            + ("" if trace.checksum_verified else " (recomputed; declared "
               "checksum unverifiable after quarantine)"),
        ]
        for warning in self.warnings:
            lines.append(f"  WARNING: {warning}")
        for line_no, reason, text in self.quarantine:
            lines.append(f"  quarantined line {line_no}: {reason}: {text!r}")
        return "\n".join(lines)


# -- Writing ---------------------------------------------------------------------


def write_trace_file(
    path: str,
    records: Sequence[TraceRecord],
    lines_per_page: int = LINES_PER_PAGE,
    footprint_pages: Optional[int] = None,
    mpki: Optional[float] = None,
    name: Optional[str] = None,
) -> int:
    """Write ``records`` as a v1 trace file; returns the record count.

    The inverse of :func:`ingest_trace_file`: the emitted header carries
    the checksum and count the ingestor verifies, so a round-trip is
    bit-exact and any later corruption or truncation is detected.
    """
    raw = [record.as_raw() for record in records]
    if not raw:
        raise IngestError(f"{path}: refusing to write an empty trace")
    with open(path, "w") as fp:
        fp.write(TRACE_MAGIC + "\n")
        fp.write(f"# checksum: {records_checksum(raw)}\n")
        fp.write(f"# records: {len(raw)}\n")
        fp.write(f"# lines-per-page: {lines_per_page}\n")
        if footprint_pages is not None:
            fp.write(f"# footprint-pages: {footprint_pages}\n")
        if mpki is not None:
            fp.write(f"# mpki: {mpki}\n")
        if name is not None:
            fp.write(f"# name: {name}\n")
        for virtual_line, pc, is_write in raw:
            fp.write(_canonical_line(virtual_line, pc, is_write))
    return len(raw)


# -- Header parsing --------------------------------------------------------------


def _parse_header_value(path: str, line_no: int, key: str, value: str):
    try:
        if key == "records":
            parsed = int(value)
            if parsed <= 0:
                raise ValueError
            return parsed
        if key in ("lines-per-page", "footprint-pages"):
            parsed = int(value)
            if parsed <= 0:
                raise ValueError
            return parsed
        if key == "mpki":
            parsed_f = float(value)
            if parsed_f <= 0:
                raise ValueError
            return parsed_f
    except ValueError:
        raise IngestError(
            f"{path}:{line_no}: header {key!r} must be a positive number, "
            f"got {value!r}"
        ) from None
    if key == "checksum":
        prefix, _, digest = value.partition(":")
        if prefix != "sha256" or len(digest) != 64 or any(
            c not in "0123456789abcdef" for c in digest
        ):
            raise IngestError(
                f"{path}:{line_no}: checksum must be 'sha256:<64 hex>', "
                f"got {value!r}"
            )
        return value
    return value  # name: free-form


def read_trace_header(path: str) -> TraceHeader:
    """Parse just the header block of a v1 trace file.

    Cheap enough to call at plan-fingerprint time: only the leading
    comment lines are read. Raises :class:`~repro.errors.IngestError`
    with the file and line named for any structural problem.
    """
    try:
        with open(path) as fp:
            return _read_header(fp, path)[0]
    except OSError as exc:
        raise IngestError(f"unreadable trace {path}: {exc}") from exc


def _read_header(fp: IO[str], path: str) -> Tuple[TraceHeader, int]:
    """Parse the header; returns it plus the line number it ended on."""
    fields: Dict[str, object] = {}
    line_no = 0
    saw_magic = False
    for line in fp:
        line_no += 1
        stripped = line.strip()
        if not stripped:
            if saw_magic:
                break  # blank line ends the header block
            continue
        if not saw_magic:
            if stripped != TRACE_MAGIC:
                raise IngestError(
                    f"{path}:{line_no}: not a v1 trace file (expected first "
                    f"line {TRACE_MAGIC!r}, got {stripped!r})"
                )
            saw_magic = True
            continue
        if not stripped.startswith("#"):
            break  # first record line ends the header block
        body = stripped.lstrip("#").strip()
        key, sep, value = body.partition(":")
        key = key.strip()
        value = value.strip()
        if not sep or not key or not value:
            raise IngestError(
                f"{path}:{line_no}: header line must be '# key: value', "
                f"got {stripped!r}"
            )
        if key not in _HEADER_KEYS:
            raise IngestError(
                f"{path}:{line_no}: unknown header key {key!r} "
                f"(known: {', '.join(_HEADER_KEYS)})"
            )
        if key in fields:
            raise IngestError(f"{path}:{line_no}: duplicate header key {key!r}")
        fields[key] = _parse_header_value(path, line_no, key, value)
    if not saw_magic:
        raise IngestError(f"{path}: empty file is not a v1 trace")
    missing = [key for key in _REQUIRED_HEADER_KEYS if key not in fields]
    if missing:
        raise IngestError(
            f"{path}: header is missing required key(s) {', '.join(missing)}"
        )
    header = TraceHeader(
        checksum=fields["checksum"],
        records=fields["records"],
        lines_per_page=fields.get("lines-per-page", LINES_PER_PAGE),
        footprint_pages=fields.get("footprint-pages"),
        mpki=fields.get("mpki", DEFAULT_TRACE_MPKI),
        name=fields.get("name"),
    )
    return header, line_no


# -- Strict ingestion ------------------------------------------------------------


def _parse_record(line: str, lines_per_page: int,
                  footprint_pages: Optional[int]) -> Tuple[Optional[RawRecord], str]:
    """One body line -> (record, "") or (None, reason)."""
    parts = line.split()
    if len(parts) != 3:
        return None, f"expected 3 fields, got {len(parts)}"
    if parts[2] not in ("R", "W"):
        return None, f"read/write flag must be R or W, got {parts[2]!r}"
    try:
        virtual_line, pc = int(parts[0]), int(parts[1])
    except ValueError:
        return None, "virtual line and pc must be integers"
    if virtual_line < 0 or pc < 0:
        return None, "negative address"
    if footprint_pages is not None and virtual_line // lines_per_page >= footprint_pages:
        return None, (
            f"line {virtual_line} falls outside the declared "
            f"{footprint_pages}-page footprint"
        )
    return (virtual_line, pc, parts[2] == "W"), ""


def ingest_trace_file(
    path: str,
    name: Optional[str] = None,
    error_budget: int = DEFAULT_ERROR_BUDGET,
) -> IngestReport:
    """Validate one external trace file end to end; returns the report.

    Rejection (always an :class:`~repro.errors.IngestError` naming the
    file and line) happens for: a malformed header, more quarantined
    records than ``error_budget``, a body record count that disagrees
    with the declared ``records`` (truncated or padded file), a checksum
    mismatch on a quarantine-free file, or zero surviving records.
    Within-budget quarantines *succeed* — with every dropped line
    reported in the returned :class:`IngestReport` — and the handle's
    checksum is recomputed over the records actually kept.
    """
    if error_budget < 0:
        raise IngestError(f"{path}: error budget must be non-negative")
    try:
        fp = open(path)
    except OSError as exc:
        raise IngestError(f"unreadable trace {path}: {exc}") from exc
    with fp:
        header, header_end = _read_header(fp, path)
        # _read_header consumed one body/blank line to find the header's
        # end; rewind and skip exactly the header lines it reported.
        fp.seek(0)
        records: List[RawRecord] = []
        quarantine: List[Tuple[int, str, str]] = []
        max_line = -1
        for line_no, line in enumerate(fp, start=1):
            stripped = line.strip()
            if line_no < header_end or not stripped or stripped.startswith("#"):
                continue
            record, reason = _parse_record(
                stripped, header.lines_per_page, header.footprint_pages
            )
            if record is None:
                quarantine.append((line_no, reason, stripped))
                if len(quarantine) > error_budget:
                    details = "; ".join(
                        f"line {n}: {r}" for n, r, _ in quarantine[:8]
                    )
                    raise IngestError(
                        f"{path}: {len(quarantine)} malformed record(s) "
                        f"exceed the error budget of {error_budget} "
                        f"({details})"
                    )
                continue
            records.append(record)
            if record[0] > max_line:
                max_line = record[0]
    seen = len(records) + len(quarantine)
    if seen != header.records:
        kind = "truncated" if seen < header.records else "padded"
        raise IngestError(
            f"{path}: {kind} trace: header declares {header.records} "
            f"record(s) but the body holds {seen} — refusing to replay a "
            "partial trace"
        )
    if not records:
        raise IngestError(f"{path}: no valid records survived ingestion")
    warnings: List[str] = []
    actual_checksum = records_checksum(records)
    verified = True
    if quarantine:
        verified = False
        warnings.append(
            f"{len(quarantine)} record(s) quarantined (budget "
            f"{error_budget}); declared checksum cannot be verified — "
            "content is addressed by the recomputed checksum instead"
        )
    elif actual_checksum != header.checksum:
        raise IngestError(
            f"{path}: checksum mismatch: header declares "
            f"{header.checksum}, body hashes to {actual_checksum} — the "
            "file is corrupt"
        )
    footprint_pages = header.footprint_pages
    if footprint_pages is None:
        footprint_pages = max_line // header.lines_per_page + 1
    trace = IngestedTrace(
        name=name or header.name or os.path.splitext(os.path.basename(path))[0],
        source_path=os.path.abspath(path),
        checksum=actual_checksum,
        n_records=len(records),
        lines_per_page=header.lines_per_page,
        footprint_pages=footprint_pages,
        mpki=header.mpki,
        quarantined=len(quarantine),
        error_budget=error_budget,
        checksum_verified=verified,
    )
    _remember(trace, records)
    return IngestReport(
        trace=trace, header=header, quarantine=quarantine, warnings=warnings
    )


# -- Content-addressed replay ----------------------------------------------------

#: In-process memo: checksum -> validated raw records.
_INGESTED_RECORDS: Dict[str, List[RawRecord]] = {}
#: Bound the memo: traces are big; keep only the most recent few.
_MEMO_MAX_ENTRIES = 8


def _binary_path(checksum: str) -> str:
    from .trace_cache import default_cache_dir

    digest = checksum.partition(":")[2] or checksum
    return os.path.join(default_cache_dir(), f"ingest-{digest}.trace")


def _remember(trace: IngestedTrace, records: List[RawRecord]) -> None:
    """Memoize in-process and opportunistically persist the binary form."""
    while len(_INGESTED_RECORDS) >= _MEMO_MAX_ENTRIES:
        _INGESTED_RECORDS.pop(next(iter(_INGESTED_RECORDS)))
    _INGESTED_RECORDS[trace.checksum] = records
    from .trace_cache import _encode_trace

    path = _binary_path(trace.checksum)
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp_path = f"{path}.tmp.{os.getpid()}"
        with open(tmp_path, "wb") as fp:
            fp.write(_encode_trace(records))
        os.replace(tmp_path, path)
    except OSError:
        pass  # The binary layer is an optimization, never a requirement.


def ingested_records(trace: IngestedTrace) -> List[RawRecord]:
    """The validated records behind a handle, from the cheapest source.

    Tries the in-process memo, then the binary materialization, then a
    full strict re-ingest of the source file. Every path re-checks the
    handle's checksum/record count, so a source file that changed since
    ingestion — or a corrupt binary — is an error, never a silently
    different trace.
    """
    records = _INGESTED_RECORDS.get(trace.checksum)
    if records is not None:
        return records
    from .trace_cache import _decode_trace

    try:
        with open(_binary_path(trace.checksum), "rb") as fp:
            payload = fp.read()
        decoded = _decode_trace(payload)
    except OSError:
        decoded = None
    if decoded is not None and len(decoded) == trace.n_records and (
        records_checksum(decoded) == trace.checksum
    ):
        _INGESTED_RECORDS[trace.checksum] = decoded
        return decoded
    report = ingest_trace_file(
        trace.source_path, name=trace.name, error_budget=trace.error_budget
    )
    if report.trace.checksum != trace.checksum:
        raise IngestError(
            f"{trace.source_path} changed since it was ingested: expected "
            f"checksum {trace.checksum}, re-ingestion produced "
            f"{report.trace.checksum}"
        )
    return _INGESTED_RECORDS[trace.checksum]


def replay_spec(trace: IngestedTrace) -> WorkloadSpec:
    """The surrogate :class:`WorkloadSpec` an ingested trace runs under.

    Only the *identity* (name, content checksum) and the pacing/geometry
    fields matter — the behaviour knobs exist to satisfy the spec's
    validator and are never consulted, because replay bypasses the
    synthetic generator entirely. The checksum in the name is what makes
    result-store fingerprints of ingested cells content-addressed.
    """
    return WorkloadSpec(
        name=f"trace:{trace.name}#{trace.checksum.partition(':')[2][:16]}",
        category=CAPACITY,
        l3_mpki=trace.mpki,
        footprint_bytes=max(PAGE_BYTES, trace.footprint_pages * PAGE_BYTES),
        hot_fraction=1.0,
        hot_access_prob=0.0,
        stream_prob=0.0,
        lines_used_per_page=min(64, max(1, trace.lines_per_page)),
    )


def replay_sources(trace: IngestedTrace, config, n_accesses: int):
    """One :class:`ReplayTraceSource` per context, all over the same records.

    Rate-mode convention, applied to a recorded stream: every context
    replays the same captured trace (the paper runs N copies of one
    benchmark), wrapping when the simulation asks for more accesses than
    the capture holds.
    """
    records = ingested_records(trace)
    return [
        ReplayTraceSource.from_raw(
            records,
            lines_per_page=trace.lines_per_page,
            footprint_pages=trace.footprint_pages,
        )
        for _ in range(config.num_contexts)
    ]
