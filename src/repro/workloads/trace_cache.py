"""Content-addressed materialization of synthetic traces.

Every run of a (workload, seed) pair regenerated its access stream from
scratch, even though the baseline/cache/tlm/cameo runs of one experiment
cell consume the *identical* trace. This module materializes the
per-context stream once per content key and replays it through the
existing :mod:`repro.workloads.replay` path:

* **key** — sha256 over (the full workload-spec knobs, footprint pages,
  generator seed, lines per page, trace length). Two requests share an
  entry exactly when the generator would emit byte-identical streams.
* **memory layer** — an LRU of raw record lists inside the process; this
  is what makes a five-organization sweep generate each trace once.
* **disk layer (optional)** — compact binary files under
  ``~/.cache/repro/traces`` (override with ``REPRO_TRACE_CACHE_DIR``),
  written atomically (tmp file + rename), so traces survive across
  processes and parallel workers. Unreadable or truncated files are
  treated as misses and regenerated, never trusted.

The default mode is selected by ``REPRO_TRACE_CACHE``: ``memory`` (the
default), ``disk`` (memory + disk), or ``off`` (every run regenerates,
the pre-cache behavior). Replaying a materialized trace is bit-for-bit
equivalent to running the generator: the cache stores exactly what
``SyntheticTraceGenerator.generate(n)`` yields, so ``RunResult``s are
unchanged whichever path served the stream.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import struct
import tempfile
from array import array
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import WorkloadError
from .mixes import per_context_footprint_pages, rate_mode_seed
from .replay import ReplayTraceSource
from .spec import WorkloadSpec
from .synthetic import SyntheticTraceGenerator
from .trace import RawRecord

#: Mode knob: "memory" (default), "disk", or "off".
MODE_ENV_VAR = "REPRO_TRACE_CACHE"
#: Disk-layer location override.
DIR_ENV_VAR = "REPRO_TRACE_CACHE_DIR"
#: Memory-layer entry budget (one entry = one context's trace).
DEFAULT_MAX_ENTRIES = 64

_VALID_MODES = ("memory", "disk", "off")
#: Disk file magic + format version; bump on layout changes.
_DISK_MAGIC = b"RTRC0001"


def default_cache_dir() -> str:
    """Where the disk layer lives (``REPRO_TRACE_CACHE_DIR`` overrides)."""
    override = os.environ.get(DIR_ENV_VAR)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "traces")


def trace_fingerprint(
    spec: WorkloadSpec,
    footprint_pages: int,
    seed: int,
    lines_per_page: int,
    n_accesses: int,
) -> str:
    """The content address of one materialized per-context trace.

    Covers every input the generator's output depends on, including all
    behaviour knobs of the spec — two specs that share a name but differ
    in any knob hash to different traces.
    """
    key = {
        "spec": dataclasses.asdict(spec),
        "footprint_pages": footprint_pages,
        "seed": seed,
        "lines_per_page": lines_per_page,
        "n_accesses": n_accesses,
    }
    blob = json.dumps(key, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


@dataclass
class TraceCacheStats:
    """Hit/miss accounting for one :class:`TraceCache`."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    disk_writes: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class TraceCache:
    """LRU of materialized traces, optionally backed by disk files."""

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        disk_dir: Optional[str] = None,
    ):
        if max_entries <= 0:
            raise WorkloadError("trace cache needs at least one entry")
        self.max_entries = max_entries
        self.disk_dir = disk_dir
        self.stats = TraceCacheStats()
        self._entries: "OrderedDict[str, List[RawRecord]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def materialize(
        self,
        spec: WorkloadSpec,
        footprint_pages: int,
        seed: int,
        lines_per_page: int,
        n_accesses: int,
    ) -> List[RawRecord]:
        """The trace for this key: cached when possible, generated once.

        The returned list is shared between callers and must be treated
        as immutable.
        """
        if n_accesses <= 0:
            raise WorkloadError("n_accesses must be positive")
        fingerprint = trace_fingerprint(
            spec, footprint_pages, seed, lines_per_page, n_accesses
        )
        records = self._entries.get(fingerprint)
        if records is not None:
            self._entries.move_to_end(fingerprint)
            self.stats.hits += 1
            if self.disk_dir and not os.path.exists(self._disk_path(fingerprint)):
                # A disk layer attached after this entry was generated
                # (or a deleted file): persist on the way out so other
                # processes can share what this one already has.
                self._store_disk(fingerprint, records)
            return records
        records = self._load_disk(fingerprint, n_accesses)
        if records is None:
            self.stats.misses += 1
            generator = SyntheticTraceGenerator(
                spec, footprint_pages, seed=seed, lines_per_page=lines_per_page
            )
            records = list(generator.generate(n_accesses))
            self._store_disk(fingerprint, records)
        else:
            self.stats.disk_hits += 1
        self._entries[fingerprint] = records
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return records

    def source(
        self,
        spec: WorkloadSpec,
        footprint_pages: int,
        seed: int,
        lines_per_page: int,
        n_accesses: int,
    ) -> ReplayTraceSource:
        """A replay source over the materialized trace.

        Exposes the generator's *nominal* footprint (not the touched
        span), so engine pretouch and paging behave identically to a
        live generator.
        """
        records = self.materialize(
            spec, footprint_pages, seed, lines_per_page, n_accesses
        )
        return ReplayTraceSource.from_raw(
            records,
            lines_per_page=lines_per_page,
            footprint_pages=footprint_pages,
        )

    def clear(self, disk: bool = False) -> None:
        """Drop the memory layer; with ``disk=True`` also the disk files."""
        self._entries.clear()
        if disk and self.disk_dir and os.path.isdir(self.disk_dir):
            for name in os.listdir(self.disk_dir):
                if name.endswith(".trace"):
                    with contextlib.suppress(OSError):
                        os.unlink(os.path.join(self.disk_dir, name))

    # -- Disk layer --------------------------------------------------------

    def _disk_path(self, fingerprint: str) -> str:
        return os.path.join(self.disk_dir, f"{fingerprint}.trace")

    def _load_disk(self, fingerprint: str, n_accesses: int) -> Optional[List[RawRecord]]:
        if not self.disk_dir:
            return None
        path = self._disk_path(fingerprint)
        try:
            with open(path, "rb") as fp:
                payload = fp.read()
        except OSError:
            return None
        records = _decode_trace(payload)
        if records is None or len(records) != n_accesses:
            # Corrupt/truncated/stale file: regenerate rather than trust it.
            with contextlib.suppress(OSError):
                os.unlink(path)
            return None
        return records

    def _store_disk(self, fingerprint: str, records: Sequence[RawRecord]) -> None:
        if not self.disk_dir:
            return
        os.makedirs(self.disk_dir, exist_ok=True)
        payload = _encode_trace(records)
        fd, tmp_path = tempfile.mkstemp(dir=self.disk_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fp:
                fp.write(payload)
            os.replace(tmp_path, self._disk_path(fingerprint))
            self.stats.disk_writes += 1
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_path)
            raise


def _encode_trace(records: Sequence[RawRecord]) -> bytes:
    """Compact binary form: magic, count, then line/pc/write arrays."""
    n = len(records)
    lines = array("q", (r[0] for r in records))
    pcs = array("q", (r[1] for r in records))
    writes = bytes(1 if r[2] else 0 for r in records)
    return b"".join(
        (_DISK_MAGIC, struct.pack("<Q", n), lines.tobytes(), pcs.tobytes(), writes)
    )


def _decode_trace(payload: bytes) -> Optional[List[RawRecord]]:
    """Inverse of :func:`_encode_trace`; None for anything malformed."""
    header = len(_DISK_MAGIC) + 8
    if len(payload) < header or not payload.startswith(_DISK_MAGIC):
        return None
    (n,) = struct.unpack_from("<Q", payload, len(_DISK_MAGIC))
    if len(payload) != header + 17 * n:
        return None
    lines = array("q")
    lines.frombytes(payload[header:header + 8 * n])
    pcs = array("q")
    pcs.frombytes(payload[header + 8 * n:header + 16 * n])
    writes = payload[header + 16 * n:]
    return [
        (lines[i], pcs[i], writes[i] != 0)
        for i in range(n)
    ]


# -- The process-wide default cache --------------------------------------------

_default_cache: Optional[TraceCache] = None
_default_cache_mode: Optional[str] = None
_mode_override: Optional[str] = None


def _env_mode() -> str:
    mode = os.environ.get(MODE_ENV_VAR, "memory").strip().lower()
    if mode not in _VALID_MODES:
        raise WorkloadError(
            f"{MODE_ENV_VAR}={mode!r} is not one of {_VALID_MODES}"
        )
    return mode


def default_trace_cache() -> Optional[TraceCache]:
    """The process-wide cache, or None when caching is off.

    The instance is created lazily from ``REPRO_TRACE_CACHE`` /
    ``REPRO_TRACE_CACHE_DIR`` and kept until the mode changes.
    """
    global _default_cache, _default_cache_mode
    mode = _mode_override if _mode_override is not None else _env_mode()
    if mode == "off":
        return None
    if _default_cache is None or _default_cache_mode != mode:
        _default_cache = TraceCache(
            disk_dir=default_cache_dir() if mode == "disk" else None
        )
        _default_cache_mode = mode
    return _default_cache


def clear_default_trace_cache(disk: bool = False) -> None:
    """Reset the process-wide cache (and optionally its disk files)."""
    global _default_cache, _default_cache_mode
    if _default_cache is not None:
        _default_cache.clear(disk=disk)
    _default_cache = None
    _default_cache_mode = None


def default_trace_cache_mode() -> str:
    """The mode the default cache resolves to right now."""
    return _mode_override if _mode_override is not None else _env_mode()


def set_default_trace_cache_mode(mode: Optional[str]) -> None:
    """Override the default cache's mode for the rest of this process.

    Worker processes use this to read the *disk* layer the parent
    pre-warmed, whatever the inherited ``REPRO_TRACE_CACHE`` says —
    under ``spawn``/``forkserver`` there is no copy-on-write memory
    layer to inherit, so disk is the only warm handoff. ``None`` clears
    the override (back to the environment's choice).
    """
    global _mode_override
    if mode is not None and mode not in _VALID_MODES:
        raise WorkloadError(
            f"trace cache mode {mode!r} is not one of {_VALID_MODES}"
        )
    _mode_override = mode


@contextlib.contextmanager
def trace_cache_disabled():
    """Temporarily run with the trace cache off (cold-generation path)."""
    global _mode_override
    previous = _mode_override
    _mode_override = "off"
    try:
        yield
    finally:
        _mode_override = previous


def materialized_rate_mode_sources(
    spec: WorkloadSpec,
    config,
    base_seed: int,
    n_accesses: int,
    cache: Optional[TraceCache] = None,
):
    """Rate-mode trace sources, served from the cache when one is active.

    Drop-in for :func:`repro.workloads.mixes.rate_mode_generators` with a
    known trace length: per-context footprints and seeds are derived by
    the same formulas, and each context's stream is the exact record
    sequence its live generator would emit. With caching off this
    *returns* the live generators, so the cold path is untouched.
    """
    if cache is None:
        cache = default_trace_cache()
    if cache is None:
        from .mixes import rate_mode_generators

        return rate_mode_generators(spec, config, base_seed=base_seed)
    footprint = per_context_footprint_pages(spec, config)
    return [
        cache.source(
            spec,
            footprint,
            rate_mode_seed(base_seed, context_id),
            config.lines_per_page,
            n_accesses,
        )
        for context_id in range(config.num_contexts)
    ]


def materialized_mixed_sources(
    specs: Sequence[WorkloadSpec],
    config,
    base_seed: int,
    n_accesses: int,
    cache: Optional[TraceCache] = None,
):
    """Heterogeneous-mix trace sources, served from the cache when active.

    Drop-in for :func:`repro.workloads.mixes.mixed_generators` with a
    known trace length: per-context footprints and seeds follow the same
    formulas, so each context's stream is the exact record sequence its
    live generator would emit — a mix cell replays materialized traces
    just like a rate-mode cell does. With caching off this *returns*
    the live generators, so the cold path is untouched. Contexts running
    the same workload share one materialized trace across mixes and
    rate-mode runs alike (the content key does not care who is asking).
    """
    from .mixes import mixed_context_footprint_pages, mixed_generators

    if len(specs) != config.num_contexts:
        raise WorkloadError(
            f"a mix needs one workload per context: got {len(specs)} for "
            f"{config.num_contexts} contexts"
        )
    if cache is None:
        cache = default_trace_cache()
    if cache is None:
        return mixed_generators(list(specs), config, base_seed=base_seed)
    return [
        cache.source(
            spec,
            mixed_context_footprint_pages(spec, config),
            rate_mode_seed(base_seed, context_id),
            config.lines_per_page,
            n_accesses,
        )
        for context_id, spec in enumerate(specs)
    ]
