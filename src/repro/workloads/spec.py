"""Table II: the SPEC CPU2006 workload registry, with behaviour knobs.

The paper drives its evaluation with 20-billion-instruction slices of
SPEC CPU2006 in 32-copy rate mode. We cannot ship those traces, so each
benchmark is described by (a) the *published* Table II numbers — L3 MPKI
and total memory footprint — and (b) a small set of locality knobs that
the synthetic generator (:mod:`repro.workloads.synthetic`) turns into a
statistically similar L3-miss stream:

* ``hot_fraction`` / ``hot_access_prob`` — size of the high-reuse working
  set and how often it is touched (temporal locality; what DRAM caches
  and CAMEO exploit);
* ``stream_prob`` — fraction of accesses from a sequential sweep of the
  whole footprint (what defeats page-granularity migration when sparse);
* ``lines_used_per_page`` — spatial density within a touched page
  (Section VI-A: milc uses ~10 of 64 lines, which is why TLM-Dynamic
  collapses on it);
* ``write_fraction`` — L3 dirty-writeback share of the miss stream.

Footprints scale with the system's ``scale_shift`` so that the
footprint-to-DRAM pressure of Table II is preserved exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import WorkloadError
from ..units import GIB, PAGE_BYTES

CAPACITY = "capacity"
LATENCY = "latency"


@dataclass(frozen=True)
class WorkloadSpec:
    """One Table II row plus the synthetic-behaviour knobs."""

    name: str
    category: str
    l3_mpki: float
    footprint_bytes: int          # paper-scale footprint (Table II)
    hot_fraction: float           # hot set as a fraction of the footprint
    hot_access_prob: float        # P(access targets the hot set)
    stream_prob: float            # P(access comes from the sequential sweep)
    lines_used_per_page: int      # spatial density, out of 64
    write_fraction: float = 0.30
    #: PC pool sizes. Hot/random PCs have *page affinity* (an instruction
    #: keeps touching its data structure), which is the PC<->location
    #: correlation the LLP and MAP-I predictors exploit (Section V-B).
    #: Totals stay under the 256-entry predictor tables.
    pc_pool_hot: int = 128
    pc_pool_stream: int = 8
    pc_pool_random: int = 96
    #: Consecutive accesses one instruction makes to one page before
    #: moving on. Real miss streams cluster like this (an L3 miss is
    #: followed by misses to neighbouring lines from the same load), and
    #: it is the correlation the PC-indexed LLP exploits (Section V-B).
    burst_length: int = 12
    #: Popularity skew within the hot set: page picked as
    #: ``int(hot_pages * u**hot_skew)`` for uniform u. 1.0 is uniform;
    #: larger concentrates heat (zipf-like), which stabilises who wins a
    #: contested congruence group.
    hot_skew: float = 2.0

    def __post_init__(self) -> None:
        if self.category not in (CAPACITY, LATENCY):
            raise WorkloadError(f"{self.name}: unknown category {self.category!r}")
        if self.l3_mpki <= 0:
            raise WorkloadError(f"{self.name}: MPKI must be positive")
        if self.footprint_bytes < PAGE_BYTES:
            raise WorkloadError(f"{self.name}: footprint below one page")
        if not 0 < self.hot_fraction <= 1:
            raise WorkloadError(f"{self.name}: hot_fraction out of (0, 1]")
        if not 0 <= self.hot_access_prob <= 1 or not 0 <= self.stream_prob <= 1:
            raise WorkloadError(f"{self.name}: probabilities out of [0, 1]")
        if self.hot_access_prob + self.stream_prob > 1:
            raise WorkloadError(f"{self.name}: hot + stream probability exceeds 1")
        if not 1 <= self.lines_used_per_page <= 64:
            raise WorkloadError(f"{self.name}: lines_used_per_page out of [1, 64]")
        if not 0 <= self.write_fraction < 1:
            raise WorkloadError(f"{self.name}: write_fraction out of [0, 1)")
        if self.burst_length < 1:
            raise WorkloadError(f"{self.name}: burst_length must be at least 1")

    @property
    def random_prob(self) -> float:
        """Probability of a uniform-random access (the remainder)."""
        return 1.0 - self.hot_access_prob - self.stream_prob

    @property
    def instructions_per_miss(self) -> float:
        """How many instructions separate consecutive L3 misses."""
        return 1000.0 / self.l3_mpki

    def footprint_pages(self, scale_shift: int) -> int:
        """Total footprint in pages at the given capacity scale."""
        scaled = self.footprint_bytes >> scale_shift
        return max(1, scaled // PAGE_BYTES)


def _gb(value: float) -> int:
    return int(value * GIB)


#: Table II, in paper order, with behaviour knobs calibrated against the
#: workload descriptions in Sections II/VI (streaming vs pointer-chasing
#: vs hot-set reuse; milc's sparse pages; libquantum's pure streaming).
WORKLOADS: Tuple[WorkloadSpec, ...] = (
    # -- Capacity-Limited: footprint exceeds the 12 GB off-chip memory. ------
    # mcf's active set sits just past the off-chip capacity: the extra
    # stacked-DRAM capacity captures it, which is where the paper's big
    # capacity win comes from.
    WorkloadSpec("mcf", CAPACITY, 39.1, _gb(52.4),
                 hot_fraction=0.26, hot_access_prob=0.55, stream_prob=0.15,
                 lines_used_per_page=16, write_fraction=0.25, hot_skew=1.0),
    WorkloadSpec("lbm", CAPACITY, 28.9, _gb(12.8),
                 hot_fraction=0.06, hot_access_prob=0.20, stream_prob=0.70,
                 lines_used_per_page=64, write_fraction=0.45),
    WorkloadSpec("GemsFDTD", CAPACITY, 19.1, _gb(25.2),
                 hot_fraction=0.08, hot_access_prob=0.30, stream_prob=0.60,
                 lines_used_per_page=48, write_fraction=0.35),
    WorkloadSpec("bwaves", CAPACITY, 6.3, _gb(27.2),
                 hot_fraction=0.06, hot_access_prob=0.30, stream_prob=0.62,
                 lines_used_per_page=48, write_fraction=0.30),
    WorkloadSpec("cactusADM", CAPACITY, 4.9, _gb(12.8),
                 hot_fraction=0.15, hot_access_prob=0.50, stream_prob=0.30,
                 lines_used_per_page=32, write_fraction=0.30),
    WorkloadSpec("zeusmp", CAPACITY, 5.0, _gb(14.1),
                 hot_fraction=0.12, hot_access_prob=0.45, stream_prob=0.35,
                 lines_used_per_page=32, write_fraction=0.30),
    # -- Latency-Limited: fits in off-chip memory, MPKI > 1. -----------------
    WorkloadSpec("gcc", LATENCY, 63.1, _gb(2.8),
                 hot_fraction=0.30, hot_access_prob=0.75, stream_prob=0.10,
                 lines_used_per_page=32, write_fraction=0.30),
    WorkloadSpec("milc", LATENCY, 31.9, _gb(11.2),
                 hot_fraction=0.15, hot_access_prob=0.50, stream_prob=0.20,
                 lines_used_per_page=10, write_fraction=0.30),
    WorkloadSpec("soplex", LATENCY, 28.9, _gb(7.6),
                 hot_fraction=0.25, hot_access_prob=0.65, stream_prob=0.15,
                 lines_used_per_page=24, write_fraction=0.25),
    WorkloadSpec("libquantum", LATENCY, 25.4, _gb(1.0),
                 hot_fraction=0.05, hot_access_prob=0.05, stream_prob=0.90,
                 lines_used_per_page=64, write_fraction=0.25),
    WorkloadSpec("xalancbmk", LATENCY, 23.7, _gb(4.4),
                 hot_fraction=0.30, hot_access_prob=0.70, stream_prob=0.05,
                 lines_used_per_page=20, write_fraction=0.25),
    WorkloadSpec("omnetpp", LATENCY, 20.5, _gb(4.8),
                 hot_fraction=0.25, hot_access_prob=0.60, stream_prob=0.05,
                 lines_used_per_page=16, write_fraction=0.30),
    WorkloadSpec("leslie3d", LATENCY, 15.8, _gb(2.4),
                 hot_fraction=0.20, hot_access_prob=0.40, stream_prob=0.50,
                 lines_used_per_page=48, write_fraction=0.35),
    WorkloadSpec("sphinx3", LATENCY, 13.5, _gb(0.60),
                 hot_fraction=0.40, hot_access_prob=0.70, stream_prob=0.15,
                 lines_used_per_page=32, write_fraction=0.15),
    WorkloadSpec("bzip2", LATENCY, 3.48, _gb(1.1),
                 hot_fraction=0.35, hot_access_prob=0.70, stream_prob=0.15,
                 lines_used_per_page=40, write_fraction=0.30),
    WorkloadSpec("dealII", LATENCY, 2.33, _gb(0.88),
                 hot_fraction=0.40, hot_access_prob=0.75, stream_prob=0.10,
                 lines_used_per_page=32, write_fraction=0.25),
    WorkloadSpec("astar", LATENCY, 1.81, _gb(0.12),
                 hot_fraction=0.50, hot_access_prob=0.80, stream_prob=0.05,
                 lines_used_per_page=24, write_fraction=0.25),
)

_BY_NAME: Dict[str, WorkloadSpec] = {w.name: w for w in WORKLOADS}


def workload(name: str) -> WorkloadSpec:
    """Look a workload up by benchmark name.

    Raises:
        WorkloadError: for an unknown name.
    """
    spec = _BY_NAME.get(name)
    if spec is None:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {sorted(_BY_NAME)}"
        )
    return spec


def workload_names(category: Optional[str] = None) -> List[str]:
    """Names in Table II order, optionally filtered by category."""
    if category is not None and category not in (CAPACITY, LATENCY):
        raise WorkloadError(f"unknown category {category!r}")
    return [w.name for w in WORKLOADS if category in (None, w.category)]


def render_table2() -> str:
    """Table II as monospace text (used by the quickstart and the CLI)."""
    from ..analysis.report import format_table
    from ..units import format_bytes

    return format_table(
        ["Limited By", "Name", "L3 MPKI", "Memory Footprint"],
        [
            [w.category.capitalize(), w.name, w.l3_mpki, format_bytes(w.footprint_bytes)]
            for w in WORKLOADS
        ],
        title="Table II: workload characteristics (32-copies in rate mode)",
    )


def capacity_workloads() -> List[WorkloadSpec]:
    """The six workloads whose footprints exceed off-chip memory."""
    return [w for w in WORKLOADS if w.category == CAPACITY]


def latency_workloads() -> List[WorkloadSpec]:
    """The eleven memory-intensive workloads that fit in off-chip memory."""
    return [w for w in WORKLOADS if w.category == LATENCY]
