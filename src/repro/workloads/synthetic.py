"""Synthetic SPEC-like L3-miss stream generation.

Each context (rate-mode copy) runs its own seeded generator over a
private virtual address space. Every access comes from one of three
components, mixed per the workload's knobs:

* **hot** — a uniformly-reused working set of ``hot_fraction`` of the
  footprint (temporal locality: what stacked-DRAM residency captures);
* **stream** — a sequential sweep of the whole footprint, visiting
  ``lines_used_per_page`` evenly-spaced lines per page (spatial locality
  and capacity pressure; sparse sweeps are what punish page-granularity
  migration);
* **random** — uniform over the footprint (the unpredictable tail).

Each component draws its PCs from a private pool, which is what gives
the PC-indexed predictors (LLP, MAP-I) their realistic correlation: hot
PCs keep finding stacked-resident lines, stream PCs keep finding
untouched lines whose location is their region's identity slot.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from ..errors import WorkloadError
from ..units import LINES_PER_PAGE
from .spec import WorkloadSpec
from .trace import RawRecord

#: Base instruction address for the generated PC pools. The three
#: component pools are laid out contiguously from here so that distinct
#: PCs occupy distinct entries of the PC-indexed predictor tables (which
#: hash ``pc >> 2`` modulo the table size).
_PC_BASE = 0x400000


class SyntheticTraceGenerator:
    """Seeded, restartable miss-stream generator for one context."""

    def __init__(
        self,
        spec: WorkloadSpec,
        footprint_pages: int,
        seed: int = 0,
        lines_per_page: int = LINES_PER_PAGE,
    ):
        if footprint_pages <= 0:
            raise WorkloadError(f"{spec.name}: footprint must be at least one page")
        self.spec = spec
        self.footprint_pages = footprint_pages
        self.lines_per_page = lines_per_page
        self.seed = seed

        self.hot_pages = max(1, int(footprint_pages * spec.hot_fraction))
        self.stride = max(1, lines_per_page // spec.lines_used_per_page)
        #: Line offsets actually touched within a page.
        self.used_offsets: List[int] = list(range(0, lines_per_page, self.stride))[
            : spec.lines_used_per_page
        ]
        hot_n, stream_n = spec.pc_pool_hot, spec.pc_pool_stream
        self._pc_hot = [_PC_BASE + 4 * i for i in range(hot_n)]
        self._pc_stream = [_PC_BASE + 4 * (hot_n + i) for i in range(stream_n)]
        self._pc_random = [
            _PC_BASE + 4 * (hot_n + stream_n + i) for i in range(spec.pc_pool_random)
        ]

    @property
    def footprint_lines(self) -> int:
        return self.footprint_pages * self.lines_per_page

    def generate(self, n_accesses: int) -> Iterator[RawRecord]:
        """Yield ``n_accesses`` raw ``(virtual_line, pc, is_write)`` events.

        Deterministic for a given (spec, footprint, seed): restarting the
        generator replays the identical stream, which is what makes the
        TLM-Oracle profiling pre-pass sound.
        """
        rng = random.Random(self.seed)
        spec = self.spec
        per_page = self.lines_per_page
        used = self.used_offsets
        n_used = len(used)
        hot_pages = self.hot_pages
        footprint_pages = self.footprint_pages
        p_hot = spec.hot_access_prob
        p_stream_cum = p_hot + spec.stream_prob
        write_fraction = spec.write_fraction
        burst = spec.burst_length
        pc_hot, pc_stream, pc_random = self._pc_hot, self._pc_stream, self._pc_random

        hot_skew = spec.hot_skew
        stream_page = 0
        stream_idx = 0
        # Per-component page-burst state: [page, pc, remaining, offset_idx].
        # One instruction misses to one page for a few events, walking
        # *distinct* lines sequentially — the L3 filters short-term line
        # re-references, so the miss stream a page produces is a sweep of
        # its lines, not random repeats. This is the PC<->location
        # correlation the LLP exploits (Section V-B).
        hot_burst = [0, pc_hot[0], 0, 0]
        random_burst = [0, pc_random[0], 0, 0]

        for _ in range(n_accesses):
            draw = rng.random()
            if draw < p_hot:
                if hot_burst[2] <= 0:
                    page = int(hot_pages * rng.random() ** hot_skew)
                    hot_burst[0] = page
                    # Page affinity: the same instruction touches the same
                    # structure, so prediction state follows the page.
                    hot_burst[1] = pc_hot[page % len(pc_hot)]
                    hot_burst[2] = rng.randrange(1, 2 * burst)
                    hot_burst[3] = rng.randrange(n_used)
                hot_burst[2] -= 1
                page, pc = hot_burst[0], hot_burst[1]
                offset = used[hot_burst[3]]
                hot_burst[3] = (hot_burst[3] + 1) % n_used
            elif draw < p_stream_cum:
                offset = used[stream_idx]
                page = stream_page
                pc = pc_stream[rng.randrange(len(pc_stream))]
                stream_idx += 1
                if stream_idx >= n_used:
                    stream_idx = 0
                    stream_page += 1
                    if stream_page >= footprint_pages:
                        stream_page = 0
            else:
                if random_burst[2] <= 0:
                    # Irregular accesses wander the *cold* region: the hot
                    # set has its own instructions, so a cold-access PC's
                    # lines share their (off-chip) location fate — the
                    # bimodality behind the paper's 92% LLP accuracy.
                    if footprint_pages > hot_pages:
                        random_burst[0] = rng.randrange(hot_pages, footprint_pages)
                    else:
                        random_burst[0] = rng.randrange(footprint_pages)
                    random_burst[1] = pc_random[random_burst[0] % len(pc_random)]
                    random_burst[2] = rng.randrange(1, 2 * burst)
                    random_burst[3] = rng.randrange(n_used)
                random_burst[2] -= 1
                page, pc = random_burst[0], random_burst[1]
                offset = used[random_burst[3]]
                random_burst[3] = (random_burst[3] + 1) % n_used

            is_write = rng.random() < write_fraction
            yield (page * per_page + offset, pc, is_write)
