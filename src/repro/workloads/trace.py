"""Trace records and simple trace file IO.

The simulator is trace-driven: a trace is a sequence of
``(virtual line, pc, is_write)`` events at L3-miss granularity (the
reference stream the memory organizations see; the L3 model in
:mod:`repro.cache.l3` can be layered in front when a pre-L3 stream is
supplied). Generators yield plain tuples in hot paths;
:class:`TraceRecord` is the friendly named form for the public API and
for files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO, Iterable, Iterator, List, Tuple

from ..errors import WorkloadError

#: Hot-path representation: (virtual_line, pc, is_write).
RawRecord = Tuple[int, int, bool]


@dataclass(frozen=True)
class TraceRecord:
    """One memory event of a workload trace."""

    virtual_line: int
    pc: int
    is_write: bool = False

    def as_raw(self) -> RawRecord:
        return (self.virtual_line, self.pc, self.is_write)


def records_from_raw(raw: Iterable[RawRecord]) -> Iterator[TraceRecord]:
    """Lift raw tuples into :class:`TraceRecord` objects."""
    for virtual_line, pc, is_write in raw:
        yield TraceRecord(virtual_line, pc, is_write)


def write_trace(fp: IO[str], records: Iterable[TraceRecord]) -> int:
    """Write records as ``vline pc rw`` lines; returns the count written."""
    count = 0
    for record in records:
        rw = "W" if record.is_write else "R"
        fp.write(f"{record.virtual_line} {record.pc} {rw}\n")
        count += 1
    return count


def read_trace(fp: IO[str]) -> List[TraceRecord]:
    """Parse a trace file produced by :func:`write_trace`.

    Raises:
        WorkloadError: on a malformed line.
    """
    records = []
    for line_no, line in enumerate(fp, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3 or parts[2] not in ("R", "W"):
            raise WorkloadError(f"malformed trace line {line_no}: {line!r}")
        try:
            vline, pc = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise WorkloadError(f"malformed trace line {line_no}: {line!r}") from exc
        if vline < 0 or pc < 0:
            raise WorkloadError(f"negative address on trace line {line_no}")
        records.append(TraceRecord(vline, pc, parts[2] == "W"))
    return records
