"""Statistical calibration checks for the synthetic generators.

The generators claim to reproduce Table II characteristics. This module
measures a generated stream and reports how close it actually is:
footprint coverage, spatial density (lines used per page), component
mix, and write fraction. Used by tests and by anyone re-tuning the
behaviour knobs after changing the generator.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Set

from ..units import LINES_PER_PAGE
from .spec import WorkloadSpec
from .synthetic import SyntheticTraceGenerator


@dataclass(frozen=True)
class StreamProfile:
    """Measured statistics of one generated stream."""

    accesses: int
    distinct_pages: int
    distinct_lines: int
    footprint_pages: int
    write_fraction: float
    #: Mean distinct line-offsets seen per touched page.
    lines_used_per_touched_page: float
    #: Fraction of accesses landing in the generator's hot region.
    hot_region_fraction: float

    @property
    def page_coverage(self) -> float:
        """Touched pages / declared footprint."""
        if not self.footprint_pages:
            return 0.0
        return self.distinct_pages / self.footprint_pages


def profile_stream(generator: SyntheticTraceGenerator, n_accesses: int) -> StreamProfile:
    """Measure ``n_accesses`` of the generator's output."""
    pages: Set[int] = set()
    lines: Set[int] = set()
    offsets_by_page: Dict[int, Set[int]] = defaultdict(set)
    writes = 0
    hot_hits = 0
    hot_pages = generator.hot_pages
    per_page = generator.lines_per_page

    for virtual_line, _pc, is_write in generator.generate(n_accesses):
        page, offset = divmod(virtual_line, per_page)
        pages.add(page)
        lines.add(virtual_line)
        offsets_by_page[page].add(offset)
        if is_write:
            writes += 1
        if page < hot_pages:
            hot_hits += 1

    used_per_page = (
        sum(len(v) for v in offsets_by_page.values()) / len(offsets_by_page)
        if offsets_by_page else 0.0
    )
    return StreamProfile(
        accesses=n_accesses,
        distinct_pages=len(pages),
        distinct_lines=len(lines),
        footprint_pages=generator.footprint_pages,
        write_fraction=writes / n_accesses if n_accesses else 0.0,
        lines_used_per_touched_page=used_per_page,
        hot_region_fraction=hot_hits / n_accesses if n_accesses else 0.0,
    )


@dataclass(frozen=True)
class CalibrationReport:
    """Spec targets vs measured stream statistics."""

    spec: WorkloadSpec
    profile: StreamProfile

    @property
    def write_fraction_error(self) -> float:
        return abs(self.profile.write_fraction - self.spec.write_fraction)

    @property
    def spatial_density_ok(self) -> bool:
        """Touched pages never use more offsets than the spec allows."""
        return (
            self.profile.lines_used_per_touched_page
            <= self.spec.lines_used_per_page + 1e-9
        )

    @property
    def hot_fraction_error(self) -> float:
        """Hot-region traffic vs the spec's hot probability.

        The hot *region* also receives stream/random traffic when the
        footprint is small, so the measured fraction is a lower-bounded
        approximation of ``hot_access_prob``.
        """
        return self.profile.hot_region_fraction - self.spec.hot_access_prob


def calibrate(spec: WorkloadSpec, footprint_pages: int, n_accesses: int = 20000,
              seed: int = 0) -> CalibrationReport:
    """Generate a stream and compare it against its spec."""
    generator = SyntheticTraceGenerator(spec, footprint_pages, seed=seed)
    return CalibrationReport(spec=spec, profile=profile_stream(generator, n_accesses))
