"""Rate-mode assembly: one generator per simulated context.

The paper executes benchmarks "in rate mode, where all cores execute the
same benchmark" (Section III-B). Here each context replays the same
workload spec with a distinct seed, over a private slice of the total
(scaled) footprint, so the combined memory pressure matches Table II.
"""

from __future__ import annotations

from typing import List

from ..config.system import SystemConfig
from ..errors import WorkloadError
from .spec import WorkloadSpec
from .synthetic import SyntheticTraceGenerator


def per_context_footprint_pages(spec: WorkloadSpec, config: SystemConfig) -> int:
    """Each context's share of the workload's scaled total footprint."""
    total = spec.footprint_pages(config.scale_shift)
    return max(1, total // config.num_contexts)


def rate_mode_seed(base_seed: int, context_id: int) -> int:
    """The per-context generator seed of a rate-mode run.

    One definition shared by the live generators and the trace cache, so
    a materialized trace can never replay under a different seed than
    the generator it stands in for.
    """
    return base_seed * 1000 + context_id


def rate_mode_generators(
    spec: WorkloadSpec, config: SystemConfig, base_seed: int = 0
) -> List[SyntheticTraceGenerator]:
    """One seeded generator per context for a rate-mode run."""
    footprint = per_context_footprint_pages(spec, config)
    return [
        SyntheticTraceGenerator(
            spec,
            footprint_pages=footprint,
            seed=rate_mode_seed(base_seed, context_id),
            lines_per_page=config.lines_per_page,
        )
        for context_id in range(config.num_contexts)
    ]


def mixed_context_footprint_pages(spec: WorkloadSpec, config: SystemConfig) -> int:
    """One mix context's footprint: its workload's per-context share.

    One definition shared by the live mixed generators and the trace
    cache (:func:`repro.workloads.trace_cache.materialized_mixed_sources`),
    so a materialized mix trace can never replay over a different
    address span than the generator it stands in for.
    """
    return max(1, spec.footprint_pages(config.scale_shift) // config.num_contexts)


def mixed_generators(
    specs: List[WorkloadSpec], config: SystemConfig, base_seed: int = 0
) -> List[SyntheticTraceGenerator]:
    """One generator per context, each running a *different* workload.

    A library extension beyond the paper's rate-mode evaluation:
    heterogeneous multi-programmed mixes. Each context gets its own full
    per-context footprint of its workload (footprints are NOT split
    across contexts, since the contexts run different programs). The
    engine needs exactly ``config.num_contexts`` entries.
    """
    if len(specs) != config.num_contexts:
        raise WorkloadError(
            f"a mix needs one workload per context: got {len(specs)} for "
            f"{config.num_contexts} contexts"
        )
    return [
        SyntheticTraceGenerator(
            spec,
            footprint_pages=mixed_context_footprint_pages(spec, config),
            seed=rate_mode_seed(base_seed, context_id),
            lines_per_page=config.lines_per_page,
        )
        for context_id, spec in enumerate(specs)
    ]
