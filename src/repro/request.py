"""The unit of work every memory organization consumes."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryRequest:
    """One L3-miss-level memory request, post address translation.

    Attributes:
        context_id: Which rate-mode context (core) issued the miss; the
            LLP and MAP-I predictors are per-core, so they key on this.
        pc: Instruction address of the load/store that missed; the
            PC-indexed predictors hash it.
        line_addr: *Physical* line address in the OS-visible space
            (frame number x lines-per-page + offset within the page).
        is_write: True for L3 dirty writebacks reaching memory.
    """

    context_id: int
    pc: int
    line_addr: int
    is_write: bool = False
