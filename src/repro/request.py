"""The unit of work every memory organization consumes."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class MemoryRequest:
    """One L3-miss-level memory request, post address translation.

    Instances are plain mutable records (the engine's hot loop reuses
    them); organizations must consume a request's fields during
    :meth:`~repro.organization.MemoryOrganization.access` and never
    retain a reference across calls.

    Attributes:
        context_id: Which rate-mode context (core) issued the miss; the
            LLP and MAP-I predictors are per-core, so they key on this.
        pc: Instruction address of the load/store that missed; the
            PC-indexed predictors hash it.
        line_addr: *Physical* line address in the OS-visible space
            (frame number x lines-per-page + offset within the page).
        is_write: True when the request writes memory (demand stores and
            all writebacks).
        is_writeback: True for L3 dirty-victim writebacks (and OS
            shootdown flushes) rather than demand traffic. Writebacks
            move bytes but are excluded from the demand-request counters
            that the paper's hit-rate metric (stacked service fraction)
            is defined over.
    """

    context_id: int
    pc: int
    line_addr: int
    is_write: bool = False
    is_writeback: bool = False
