"""The deduplicating grid planner: simulate each cell once, reuse everywhere.

Reproducing the full paper walks hundreds of (organization x workload x
seed) cells, and the same cell appears in many consumers — ``baseline``
and ``cameo`` are in nearly every figure. Experiment runners therefore
*declare* their grids as :class:`~repro.sim.parallel.SimJob` lists
(:class:`PlannedExperiment`); the planner collects the union across all
requested figures/tables, dedupes it by the result-store cell
fingerprint, serves already-stored cells from the store, executes only
the unique misses through the existing :func:`~repro.sim.parallel.run_many`
fan-out, and distributes each finished result back to every consumer.

Three layers use this module:

* :func:`run_jobs_cached` — the drop-in ``run_many`` wrapper every grid
  consumer (matrices, sweeps) calls: store hits are served in the
  *parent* before any worker is spawned, duplicate cells within one
  submission execute once, and completed results are stored for the
  next grid.
* :func:`build_grid_plan` / :class:`GridPlan` — the multi-experiment
  union with its dedup/hit accounting, printable before running
  (``repro paper --dry-run``).
* :func:`execute_grid_plan` — runs a plan and assembles every
  experiment's result object from the shared cell results.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import InterruptedRunError, ReproError
from .parallel import JobOutcome, SimJob, raise_on_failures, run_many
from .result_store import (
    ResultStore,
    default_result_store,
    job_fingerprint,
    result_from_state,
    result_to_state,
)
from .results import RunResult
from .supervisor import IncidentJournal


def run_jobs_cached(
    jobs: Sequence[SimJob],
    n_jobs: Optional[int] = 1,
    timeout_seconds: Optional[float] = None,
    log: Optional[Callable[[str], None]] = None,
    max_attempts: Optional[int] = None,
    hang_timeout_seconds: Optional[float] = None,
    journal: Optional[IncidentJournal] = None,
    dispatch: Optional[str] = None,
    endpoints: Optional[Sequence] = None,
) -> List[JobOutcome]:
    """Run every job, serving and deduplicating through the result store.

    Semantically identical to :func:`~repro.sim.parallel.run_many` —
    outcomes in job order, per-job error capture, supervision knobs
    (``max_attempts``, ``hang_timeout_seconds``, ``journal``,
    ``dispatch``, ``endpoints``) passed through — with three
    optimizations layered on top:

    * cells already in the result store are served here in the parent
      (outcome ``cached=True``), so no worker is spawned for them;
    * two submitted jobs with the same cell fingerprint execute once and
      share the result (the duplicate's outcome is ``cached=True``);
    * completed cells are stored *the moment they settle* (not after the
      whole grid), so the *next* grid reuses them — and an interrupted
      grid keeps everything that finished.

    Jobs without a fingerprint (uncacheable ``org_kwargs``, malformed
    specs) always execute individually, exactly as before. With the
    store off this degrades to plain ``run_many``. On SIGINT/SIGTERM the
    :class:`~repro.errors.InterruptedRunError` re-raised here carries
    outcomes re-mapped to the *submitted* job list (store hits and
    settled dedup shares included).
    """
    jobs = list(jobs)
    store = default_result_store()
    outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
    to_run: List[SimJob] = []
    run_fingerprints: List[Optional[str]] = []
    #: job indices sharing each entry of ``to_run`` (first = the runner).
    run_slots: List[List[int]] = []
    fingerprint_to_run: Dict[str, int] = {}
    for index, job in enumerate(jobs):
        fingerprint = job_fingerprint(job) if store is not None else None
        if fingerprint is not None:
            cached = store.get(fingerprint)
            if cached is not None:
                outcomes[index] = JobOutcome(job, result=cached, cached=True)
                if log is not None:
                    log(f"cached: {job.key}")
                continue
            shared = fingerprint_to_run.get(fingerprint)
            if shared is not None:
                run_slots[shared].append(index)
                continue
            fingerprint_to_run[fingerprint] = len(to_run)
        to_run.append(job)
        run_fingerprints.append(fingerprint)
        run_slots.append([index])

    def distribute(run_index: int, outcome: JobOutcome) -> None:
        """Map one settled runner back onto every job slot that shares it."""
        slots = run_slots[run_index]
        outcomes[slots[0]] = outcome
        for index in slots[1:]:
            outcomes[index] = JobOutcome(
                jobs[index],
                result=outcome.result,
                error=outcome.error,
                cached=True,
            )

    def flush(run_index: int, outcome: JobOutcome) -> None:
        # Incremental: each settled cell reaches the store (and the full
        # outcome table) immediately, so an interrupt or crash of the
        # parent loses only in-flight work.
        fingerprint = run_fingerprints[run_index]
        if outcome.ok and fingerprint is not None and store is not None:
            store.put(fingerprint, outcome.result)
        distribute(run_index, outcome)

    try:
        run_many(
            to_run,
            n_jobs=n_jobs,
            timeout_seconds=timeout_seconds,
            log=log,
            max_attempts=max_attempts,
            hang_timeout_seconds=hang_timeout_seconds,
            journal=journal,
            on_outcome=flush,
            dispatch=dispatch,
            endpoints=endpoints,
        )
    except InterruptedRunError as exc:
        pending = [jobs[i].key for i, o in enumerate(outcomes) if o is None]
        raise InterruptedRunError(
            str(exc),
            signal_name=exc.signal_name,
            outcomes=list(outcomes),
            pending_keys=pending,
        ) from None
    return outcomes  # type: ignore[return-value]


@dataclass
class PlannedExperiment:
    """One experiment's declared grid plus its result assembler.

    ``jobs[i]``'s finished :class:`RunResult` is passed as
    ``results[i]`` to ``assemble``, which builds the experiment's
    renderable result object (e.g. ``Figure13Result``). Declaring is
    cheap for everything except the oracle profile pre-passes, which run
    at declaration time so the jobs stay picklable.
    """

    name: str
    jobs: List[SimJob]
    assemble: Callable[[Sequence[RunResult]], object]


@dataclass
class GridPlan:
    """The deduplicated union of several experiments' grids."""

    experiments: List[PlannedExperiment]
    #: Cells requested across all experiments (with repetition).
    total_cells: int
    #: Distinct cells after fingerprint dedup (uncacheable cells count
    #: individually — they cannot be shared).
    unique_cells: int
    #: Unique cells already present in the result store right now.
    predicted_hits: int
    #: Cells with no fingerprint (always simulated, never stored).
    uncacheable_cells: int

    @property
    def dedup_fraction(self) -> float:
        """Fraction of requested cells saved by deduplication alone."""
        if not self.total_cells:
            return 0.0
        return 1.0 - self.unique_cells / self.total_cells

    @property
    def predicted_runs(self) -> int:
        """Cells that would actually simulate if executed right now."""
        return self.unique_cells - self.predicted_hits

    def describe(self) -> str:
        """The ``--dry-run`` summary."""
        lines = [
            f"plan: {len(self.experiments)} experiment(s), "
            f"{self.total_cells} cells requested",
            f"  unique cells:    {self.unique_cells} "
            f"(dedup saves {self.dedup_fraction:.0%})",
            f"  store hits now:  {self.predicted_hits}",
            f"  cells to run:    {self.predicted_runs}",
        ]
        if self.uncacheable_cells:
            lines.append(
                f"  uncacheable:     {self.uncacheable_cells} "
                "(no canonical fingerprint; always simulated)"
            )
        for experiment in self.experiments:
            lines.append(f"  - {experiment.name}: {len(experiment.jobs)} cells")
        return "\n".join(lines)


def build_grid_plan(experiments: Sequence[PlannedExperiment]) -> GridPlan:
    """Fingerprint every declared cell and account for dedup and hits.

    Probing the store for predicted hits is a cheap existence check —
    corrupt entries still count as predicted hits here and are
    regenerated at execution time.
    """
    store = default_result_store()
    seen: Dict[str, bool] = {}
    total = 0
    uncacheable = 0
    unique_uncached = 0
    for experiment in experiments:
        for job in experiment.jobs:
            total += 1
            fingerprint = job_fingerprint(job)
            if fingerprint is None:
                uncacheable += 1
                unique_uncached += 1
                continue
            if fingerprint not in seen:
                seen[fingerprint] = (
                    store.contains(fingerprint) if store is not None else False
                )
    predicted_hits = sum(1 for hit in seen.values() if hit)
    return GridPlan(
        experiments=list(experiments),
        total_cells=total,
        unique_cells=len(seen) + unique_uncached,
        predicted_hits=predicted_hits,
        uncacheable_cells=uncacheable,
    )


@dataclass
class GridRunReport:
    """What happened when a :class:`GridPlan` executed."""

    plan: GridPlan
    #: Assembled result objects, one per experiment, in plan order.
    results: List[object] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: Cells actually simulated this execution.
    executed_cells: int = 0
    #: Cells served from the store or shared with an identical cell.
    served_cells: int = 0

    def describe(self) -> str:
        return (
            f"ran {self.executed_cells} of {self.plan.total_cells} cells "
            f"({self.served_cells} served from the result store / dedup) "
            f"in {self.wall_seconds:.1f}s"
        )


def execute_grid_plan(
    plan: GridPlan,
    n_jobs: Optional[int] = 1,
    timeout_seconds: Optional[float] = None,
    log: Optional[Callable[[str], None]] = None,
    max_attempts: Optional[int] = None,
    hang_timeout_seconds: Optional[float] = None,
    journal: Optional[IncidentJournal] = None,
    dispatch: Optional[str] = None,
    endpoints: Optional[Sequence] = None,
) -> GridRunReport:
    """Execute a plan: run unique misses once, assemble every experiment.

    The concatenated grid goes through :func:`run_jobs_cached`, so hits
    are served in the parent, duplicates collapse, and results are
    byte-identical to running each experiment on its own. A failed cell
    fails every experiment that needs it, reported all at once. The
    supervision knobs pass straight through to the worker pool; on
    SIGINT/SIGTERM the :class:`~repro.errors.InterruptedRunError`
    propagates with per-job outcomes for the full concatenated grid
    (``repro paper`` turns those into a resume manifest).
    """
    all_jobs: List[SimJob] = []
    for experiment in plan.experiments:
        all_jobs.extend(experiment.jobs)
    start = time.perf_counter()
    outcomes = run_jobs_cached(
        all_jobs,
        n_jobs=n_jobs,
        timeout_seconds=timeout_seconds,
        log=log,
        max_attempts=max_attempts,
        hang_timeout_seconds=hang_timeout_seconds,
        journal=journal,
        dispatch=dispatch,
        endpoints=endpoints,
    )
    wall = time.perf_counter() - start
    raise_on_failures(outcomes, "paper grid")
    report = GridRunReport(
        plan=plan,
        wall_seconds=wall,
        executed_cells=sum(1 for o in outcomes if not o.cached),
        served_cells=sum(1 for o in outcomes if o.cached),
    )
    cursor = 0
    for experiment in plan.experiments:
        span = outcomes[cursor:cursor + len(experiment.jobs)]
        cursor += len(experiment.jobs)
        report.results.append(
            experiment.assemble([outcome.result for outcome in span])
        )
    return report


# -- Resume manifests ------------------------------------------------------------
#
# The default result store is in-memory, so an interrupted `repro paper`
# would lose its settled cells the moment the process exits. The resume
# manifest makes the store's relevant slice durable: every completed
# cell's RunResult rides inside the manifest (keyed by its store
# fingerprint), and `repro paper --resume <manifest>` seeds the store
# from it before planning — the planner then serves those cells as hits
# and simulates only what is missing.

RESUME_MANIFEST_KIND = "repro-resume-manifest"
RESUME_MANIFEST_VERSION = 1


def write_resume_manifest(
    path: str,
    outcomes: Sequence[Optional[JobOutcome]],
    signal_name: str,
    recipe: Optional[Dict] = None,
    pending_keys: Sequence[str] = (),
) -> int:
    """Atomically persist every completed outcome; returns cells saved.

    ``outcomes`` is the (possibly partial) per-job list off an
    :class:`~repro.errors.InterruptedRunError` — ``None`` entries and
    failed cells are skipped; duplicates of one fingerprint collapse.
    ``recipe`` records how the grid was invoked (experiment names,
    trace length, seed) purely as operator documentation: the manifest
    is self-validating through fingerprints, so resuming with different
    arguments is safe — unknown fingerprints are simply never served.
    """
    completed: Dict[str, Dict] = {}
    for outcome in outcomes:
        if outcome is None or not outcome.ok:
            continue
        fingerprint = job_fingerprint(outcome.job)
        if fingerprint is None:  # uncacheable cells cannot be resumed from
            continue
        if fingerprint not in completed:
            completed[fingerprint] = result_to_state(outcome.result)
    payload = {
        "kind": RESUME_MANIFEST_KIND,
        "version": RESUME_MANIFEST_VERSION,
        "signal": signal_name,
        "recipe": recipe or {},
        "completed": completed,
        "pending": list(pending_keys),
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fp:
            json.dump(payload, fp, indent=2, sort_keys=True)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
    return len(completed)


#: Exactly the keys :func:`write_resume_manifest` emits; a manifest with
#: more or fewer keys was written by something else and is rejected.
_MANIFEST_KEYS = ("kind", "version", "signal", "recipe", "completed", "pending")


def load_resume_manifest(path: str) -> Dict:
    """Read and validate a resume manifest written by this module.

    Raises :class:`~repro.errors.PlanError` for a missing file, corrupt
    JSON, the wrong kind of file, an incompatible version, or a key
    structure this module never wrote (hand-edited or foreign files) —
    a resume must never silently start over, and a malformed manifest
    must fail as a named error, not a mid-run ``KeyError``.
    """
    from ..errors import PlanError

    try:
        with open(path) as fp:
            payload = json.load(fp)
    except (OSError, json.JSONDecodeError) as exc:
        raise PlanError(f"unreadable resume manifest {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("kind") != RESUME_MANIFEST_KIND:
        raise PlanError(
            f"{path} is not a resume manifest (expected kind="
            f"{RESUME_MANIFEST_KIND!r})"
        )
    if payload.get("version") != RESUME_MANIFEST_VERSION:
        raise PlanError(
            f"resume manifest {path} has version {payload.get('version')}, "
            f"expected {RESUME_MANIFEST_VERSION}"
        )
    unknown = sorted(set(payload) - set(_MANIFEST_KEYS))
    if unknown:
        raise PlanError(
            f"resume manifest {path} has unknown key(s) {', '.join(unknown)}"
        )
    missing = sorted(set(_MANIFEST_KEYS) - set(payload))
    if missing:
        raise PlanError(
            f"resume manifest {path} is missing key(s) {', '.join(missing)}"
        )
    if not isinstance(payload["signal"], str):
        raise PlanError(f"resume manifest {path}: 'signal' must be a string")
    if not isinstance(payload["recipe"], dict):
        raise PlanError(f"resume manifest {path}: 'recipe' must be a mapping")
    completed = payload["completed"]
    if not isinstance(completed, dict) or not all(
        isinstance(key, str) and isinstance(state, dict)
        for key, state in completed.items()
    ):
        raise PlanError(
            f"resume manifest {path}: 'completed' must map fingerprints to "
            "result states"
        )
    pending = payload["pending"]
    if not isinstance(pending, list) or not all(
        isinstance(key, str) for key in pending
    ):
        raise PlanError(
            f"resume manifest {path}: 'pending' must be a list of cell keys"
        )
    return payload


def seed_store_from_manifest(manifest: Dict, store: ResultStore) -> int:
    """Decode every manifest cell into ``store``; returns cells seeded.

    A cell whose saved state no longer decodes (hand-edited manifest,
    schema drift in a field) is skipped rather than trusted — the
    planner will simply re-simulate it.
    """
    seeded = 0
    for fingerprint, state in manifest.get("completed", {}).items():
        try:
            result = result_from_state(state)
        except Exception:
            continue
        store.put(fingerprint, result)
        seeded += 1
    return seeded
