"""Machine assembly: organization + memory manager + (optional) L3.

A :class:`Machine` wires one memory organization to the OS substrate.
The organization decides how many pages the OS may allocate (the
capacity side of the paper's trade-off); the memory manager services
faults against the SSD; the optional L3 filters a pre-L3 reference
stream (by default the engine consumes L3-miss-level traces directly,
with the fixed L3 lookup latency charged on every miss).
"""

from __future__ import annotations

from typing import Optional

from ..cache.l3 import L3Cache
from ..config.system import SystemConfig
from ..organization import MemoryOrganization
from ..vm.memory_manager import MemoryManager
from ..vm.ssd import SsdModel


class Machine:
    """One fully-wired simulated system."""

    def __init__(
        self,
        config: SystemConfig,
        org: MemoryOrganization,
        use_l3: bool = False,
        seed: int = 0,
    ):
        self.config = config
        self.org = org
        self.ssd = SsdModel(config.page_fault_cycles, config.page_bytes)
        self.memory_manager = MemoryManager(
            num_frames=org.visible_pages,
            ssd=self.ssd,
            stacked_frames=org.stacked_visible_pages,
            random_probes=config.clock_random_probes,
            seed=seed,
        )
        org.bind_memory_manager(self.memory_manager)
        self.l3: Optional[L3Cache] = L3Cache(config.l3) if use_l3 else None

    @property
    def visible_pages(self) -> int:
        return self.org.visible_pages

    def pretouch(self, footprint_pages_by_context) -> None:
        """Pre-fault every context's address space, free of charge.

        This models measuring a representative slice of a long-running
        program (the paper simulates 20-billion-instruction slices, not
        process start-up): pages that fit are resident before timing
        begins, and for over-committed footprints the memory starts full
        so reclaim is in steady state. VM/SSD counters are reset after.

        ``footprint_pages_by_context`` is either one int (all contexts
        alike, the rate-mode case) or a sequence with one entry per
        context (heterogeneous mixes).
        """
        if isinstance(footprint_pages_by_context, int):
            footprints = [footprint_pages_by_context] * self.config.num_contexts
        else:
            footprints = list(footprint_pages_by_context)
        top = max(footprints)
        # Touch high pages first so the low region — where the generators
        # place each workload's hot set — is what remains resident when
        # the footprint over-commits the memory.
        for vpage in reversed(range(top)):
            for ctx, footprint in enumerate(footprints):
                if vpage < footprint:
                    self.memory_manager.translate((ctx, vpage))
        self.ssd.reset_stats()
        self.memory_manager.stats = type(self.memory_manager.stats)()

    def reset_measurement_stats(self) -> None:
        """Zero every counter so measurement excludes the warmup phase.

        Timing state (device bank/bus horizons, context clocks) is left
        untouched — only the *accounting* restarts.
        """
        for device in self.org.devices().values():
            device.reset_stats()
        self.org.stats = type(self.org.stats)()
        case_stats = getattr(self.org, "case_stats", None)
        if case_stats is not None:
            self.org.case_stats = type(case_stats)()
        self.ssd.reset_stats()
        self.memory_manager.stats = type(self.memory_manager.stats)()
        if self.l3 is not None:
            self.l3.stats = type(self.l3.stats)()
