"""Standing benchmark harness: the simulator-throughput trajectory.

``repro bench`` runs an organization x workload grid, measures wall
time, and writes a schema-versioned ``BENCH_<n>.json`` at the repo root.
Each PR that touches the hot path appends the next file, so the
accesses/sec trajectory across the project's history is a committed,
diffable artifact rather than folklore.

The figure of merit is *simulated accesses per wall-clock second*:
``accesses_per_context x num_contexts / wall_seconds``, taken as the
best of ``repeats`` runs (the minimum wall time is the least noisy
estimator on a shared host). Results are only comparable between files
with matching ``host`` fingerprints.
"""

from __future__ import annotations

import glob
import json
import os
import platform
import re
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..config.system import scaled_paper_system
from ..errors import ConfigurationError
from ..workloads.trace_cache import (
    clear_default_trace_cache,
    trace_cache_disabled,
)
from .engine import default_engine_backend
from .engine_vector import backend_stats_since, snapshot_backend_stats
from .parallel import (
    SimJob,
    last_pool_report,
    raise_on_failures,
    resolve_n_jobs,
    run_many,
)
from .plan import run_jobs_cached
from .result_store import ResultStore, result_store_disabled, use_result_store
from .runner import run_workload

#: Bump when the JSON layout changes; consumers must check it.
#: v1 -> v2: ``host.cpu_count`` became an int (was a string) and the
#: payload gained an optional ``grid`` section (grid wall-time and
#: parallel efficiency). v2 -> v3: the ``grid`` section gained a
#: ``result_store`` subsection (cold vs warm-store wall time with
#: hit/miss counts), and ``parallel_speedup``/``parallel_efficiency``
#: are null with a ``parallel_note`` when the host cannot genuinely
#: parallelize (one core, or more workers than cores). v3 -> v4: each
#: result gained a ``valid`` flag (false when the cell's wall time was
#: below timer resolution — its throughput is null, not 0.0), summary
#: means exclude invalid cells and record ``excluded_invalid_cells``,
#: and ``config`` gained the ``engine`` backend name. v4 -> v5: each
#: result records ``backend`` — which engine actually served the cell
#: ("vector" only when the compiled kernel engaged; the configured
#: backend can silently fall back per cell) — and ``fallback_reason``
#: (why, when it did). v5 -> v6: when ``n_jobs > 1`` the ``grid``
#: section times the fan-out under both dispatch modes and gains a
#: ``pool`` subsection (persistent-pool wall time, per-cell dispatch
#: overhead, workers started / respawns / cells-per-worker), a
#: ``spawn_per_cell`` subsection (same timing under the old
#: process-per-cell lifecycle), and ``dispatch_overhead_reduction``
#: (per-cell mean overhead / pool mean overhead — the factor the
#: persistent pool buys). Dispatch overhead is wall time minus
#: in-worker simulation time, so it stays meaningful on one-core hosts
#: where raw speedup is nulled. Older files still load — see
#: :func:`load_bench`.
BENCH_SCHEMA_VERSION = 6
#: Versions :func:`load_bench` understands (older ones are migrated).
READABLE_SCHEMA_VERSIONS = (1, 2, 3, 4, 5, 6)

#: The standing grid: the headline designs on one latency-sensitive and
#: one capacity-sensitive workload (mirrors benchmarks/).
DEFAULT_ORGS = ("baseline", "cache", "cameo", "tlm-dynamic")
DEFAULT_WORKLOADS = ("sphinx3", "milc")
DEFAULT_ACCESSES = 6_000
DEFAULT_REPEATS = 3
#: ``--quick`` (CI smoke) sizing: one repeat, short traces.
QUICK_ACCESSES = 1_500

_BENCH_FILE_RE = re.compile(r"BENCH_(\d+)\.json$")


@dataclass(frozen=True)
class BenchPoint:
    """Throughput of one (organization, workload) grid cell."""

    organization: str
    workload: str
    simulated_accesses: int
    wall_seconds: float
    #: The engine that actually served the cell ("python" / "vector").
    #: Distinct from ``config.engine``: a vector-configured run can fall
    #: back per cell, and a trajectory claiming kernel throughput while
    #: timing the python loop would be the worst kind of wrong.
    backend: Optional[str] = None
    #: Why the compiled kernel did not engage (None when it did, or
    #: when the python backend was configured in the first place).
    fallback_reason: Optional[str] = None

    @property
    def valid(self) -> bool:
        """False when the cell ran below wall-clock timer resolution.

        A compiled backend can finish a small cell faster than
        ``perf_counter`` can resolve; such a cell has no measurable
        throughput. It must not silently contribute 0.0 to a mean (which
        drags org summaries toward zero and corrupts baseline
        comparisons) — it is excluded and the exclusion is recorded.
        """
        return self.wall_seconds > 0.0

    @property
    def accesses_per_second(self) -> Optional[float]:
        if not self.valid:
            return None
        return self.simulated_accesses / self.wall_seconds

    def as_dict(self) -> Dict:
        return {
            "organization": self.organization,
            "workload": self.workload,
            "simulated_accesses": self.simulated_accesses,
            "wall_seconds": self.wall_seconds,
            "accesses_per_second": self.accesses_per_second,
            "valid": self.valid,
            "backend": self.backend,
            "fallback_reason": self.fallback_reason,
        }


def host_fingerprint() -> Dict[str, object]:
    """Identify the machine; trajectories only compare on matching hosts."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "cpu_count": int(os.cpu_count() or 0),
    }


def run_bench(
    orgs: Sequence[str] = DEFAULT_ORGS,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    accesses_per_context: int = DEFAULT_ACCESSES,
    repeats: int = DEFAULT_REPEATS,
    scale_shift: int = 12,
    n_jobs: Optional[int] = 1,
    measure_grid: bool = True,
    log: Optional[Callable[[str], None]] = None,
    max_attempts: Optional[int] = None,
    hang_timeout_seconds: Optional[float] = None,
    journal=None,
) -> Dict:
    """Run the grid and return the schema-versioned payload.

    Besides the per-run throughput points, the payload records a
    ``grid`` section: wall time of one full pass over the grid — cold
    (trace cache off), cached (serial, trace cache on), and, when
    ``n_jobs > 1``, fanned out over that many workers — with the derived
    trace-cache and parallel speedups. That is the number the fan-out
    layer exists to move. The supervision knobs (``max_attempts``,
    ``hang_timeout_seconds``, ``journal``) apply to that parallel pass
    only: retries perturb a timing sample, so the sample records the
    attempt count alongside the wall time when supervision kicked in.
    """
    if repeats <= 0:
        raise ConfigurationError("bench repeats must be positive")
    if accesses_per_context <= 0:
        raise ConfigurationError("bench accesses_per_context must be positive")
    n_jobs = resolve_n_jobs(n_jobs)
    config = scaled_paper_system(scale_shift=scale_shift)
    engine = default_engine_backend()
    simulated = accesses_per_context * config.num_contexts
    points: List[BenchPoint] = []
    # The result store must be off while timing: with it on, every
    # repeat after the first would be a cache hit and the "throughput"
    # would measure dictionary lookups, not the simulator.
    with result_store_disabled():
        for org in orgs:
            for workload in workloads:
                best = None
                # The timed repeats run in-process, so the engine's
                # engagement counters are authoritative for this cell.
                stats_before = snapshot_backend_stats()
                for _ in range(repeats):
                    start = time.perf_counter()
                    run_workload(
                        org, workload, config,
                        accesses_per_context=accesses_per_context,
                    )
                    wall = time.perf_counter() - start
                    if best is None or wall < best:
                        best = wall
                backend, reason = _cell_backend(
                    engine, backend_stats_since(stats_before)
                )
                point = BenchPoint(
                    org, workload, simulated, best,
                    backend=backend, fallback_reason=reason,
                )
                points.append(point)
                if log is not None:
                    note = "" if backend == engine else f"  [{backend}]"
                    if point.valid:
                        log(f"  {org:>14s} x {workload:<8s} "
                            f"{point.accesses_per_second:>10.0f} acc/s "
                            f"({best:.3f} s){note}")
                    else:
                        log(f"  {org:>14s} x {workload:<8s} "
                            f"{'(sub-resolution)':>10s} — cell excluded "
                            f"from means{note}")
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "repro-bench",
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": host_fingerprint(),
        "config": {
            "scale_shift": scale_shift,
            "num_contexts": config.num_contexts,
            "accesses_per_context": accesses_per_context,
            "repeats": repeats,
            "n_jobs": n_jobs,
            "engine": engine,
        },
        "results": [p.as_dict() for p in points],
        "summary": _summarize(points),
    }
    if measure_grid:
        payload["grid"] = measure_grid_scaling(
            orgs, workloads, accesses_per_context, config, n_jobs, log=log,
            max_attempts=max_attempts,
            hang_timeout_seconds=hang_timeout_seconds,
            journal=journal,
        )
    return payload


def measure_grid_scaling(
    orgs: Sequence[str],
    workloads: Sequence[str],
    accesses_per_context: int,
    config,
    n_jobs: int,
    log: Optional[Callable[[str], None]] = None,
    max_attempts: Optional[int] = None,
    hang_timeout_seconds: Optional[float] = None,
    journal=None,
) -> Dict:
    """Time one pass over the full grid under three execution regimes.

    * ``cold_wall_seconds`` — serial, trace cache disabled: every cell
      regenerates its trace (the pre-cache behavior);
    * ``serial_wall_seconds`` — serial, fresh trace cache: each
      workload's trace is generated once and replayed by every org;
    * ``parallel_wall_seconds`` — ``n_jobs`` subprocess workers over a
      fresh cache (absent when ``n_jobs == 1``).

    The parallel regime runs twice, once per dispatch mode: the
    persistent pool (which also provides ``parallel_wall_seconds``) and
    the legacy process-per-cell lifecycle. Each pass records per-cell
    *dispatch overhead* — wall time minus in-worker simulation time,
    i.e. spawn/pipe/poll cost — in the ``pool`` and ``spawn_per_cell``
    subsections, and ``dispatch_overhead_reduction`` is their mean
    ratio. Unlike speedup, overhead is not a scheduling claim, so it is
    reported even on one-core hosts.

    The derived ``trace_cache_speedup`` isolates the cache win at one
    worker; ``parallel_speedup``/``parallel_efficiency`` report the
    core-scaling on top of it. When the host cannot genuinely
    parallelize — one core, or ``n_jobs`` exceeding the core count —
    both derived numbers are null and ``parallel_note`` says why: an
    oversubscribed pool measures context-switch overhead, not scaling,
    and recording it as "speedup" would poison the trajectory. The raw
    ``parallel_wall_seconds`` stays.

    All three regimes run with the result store disabled (they time the
    simulator, not the memo table); :func:`measure_result_store` reports
    the store's own win separately.
    """
    jobs = [
        SimJob(org, workload, config, accesses_per_context)
        for org in orgs
        for workload in workloads
    ]
    with result_store_disabled():
        with trace_cache_disabled():
            start = time.perf_counter()
            outcomes = run_many(jobs, n_jobs=1)
            cold_wall = time.perf_counter() - start
        raise_on_failures(outcomes, "bench grid (cold)")

        clear_default_trace_cache()
        start = time.perf_counter()
        outcomes = run_many(jobs, n_jobs=1)
        serial_wall = time.perf_counter() - start
        raise_on_failures(outcomes, "bench grid (serial)")

        parallel_wall = None
        parallel_retries = 0
        pool_section = None
        per_cell_section = None
        if n_jobs > 1:
            clear_default_trace_cache()
            start = time.perf_counter()
            outcomes = run_many(
                jobs, n_jobs=n_jobs,
                max_attempts=max_attempts,
                hang_timeout_seconds=hang_timeout_seconds,
                journal=journal,
                dispatch="pool",
            )
            parallel_wall = time.perf_counter() - start
            parallel_retries = sum(max(0, o.attempts - 1) for o in outcomes)
            raise_on_failures(outcomes, "bench grid (parallel, pool)")
            pool_section = {
                "wall_seconds": parallel_wall,
                "dispatch_overhead_seconds": _overhead_stats(outcomes),
            }
            report = last_pool_report()
            if report is not None:
                pool_section.update({
                    "n_workers": report.n_workers,
                    "workers_started": report.workers_started,
                    "respawns": report.respawns,
                    "cells_per_worker": dict(report.cells_per_worker),
                })

            clear_default_trace_cache()
            start = time.perf_counter()
            outcomes = run_many(
                jobs, n_jobs=n_jobs,
                max_attempts=max_attempts,
                hang_timeout_seconds=hang_timeout_seconds,
                journal=journal,
                dispatch="per-cell",
            )
            per_cell_wall = time.perf_counter() - start
            raise_on_failures(outcomes, "bench grid (parallel, per-cell)")
            per_cell_section = {
                "wall_seconds": per_cell_wall,
                "dispatch_overhead_seconds": _overhead_stats(outcomes),
            }

    cpu_count = int(os.cpu_count() or 0)
    parallel_note = None
    if parallel_wall is not None:
        if cpu_count <= 1:
            parallel_note = (
                f"host has {cpu_count} usable core(s); worker processes "
                "time-share one core, so speedup/efficiency are not "
                "meaningful and are recorded as null"
            )
        elif n_jobs > cpu_count:
            parallel_note = (
                f"n_jobs={n_jobs} exceeds the {cpu_count} usable core(s); "
                "the pool is oversubscribed, so speedup/efficiency are "
                "not meaningful and are recorded as null"
            )
    honest = parallel_wall is not None and parallel_wall > 0 and parallel_note is None

    grid: Dict = {
        "cells": len(jobs),
        "n_jobs": n_jobs,
        "cold_wall_seconds": cold_wall,
        "serial_wall_seconds": serial_wall,
        "trace_cache_speedup": cold_wall / serial_wall if serial_wall > 0 else 0.0,
        "parallel_wall_seconds": parallel_wall,
        "parallel_speedup": serial_wall / parallel_wall if honest else None,
        "parallel_efficiency": (
            serial_wall / (parallel_wall * n_jobs) if honest else None
        ),
    }
    if parallel_retries:
        # Retries inflate the parallel wall time; flag the sample so a
        # trajectory reader does not mistake recovery cost for a
        # scaling regression.
        grid["parallel_retries"] = parallel_retries
    if parallel_note is not None:
        grid["parallel_note"] = parallel_note
    grid["pool"] = pool_section
    grid["spawn_per_cell"] = per_cell_section
    grid["dispatch_overhead_reduction"] = _overhead_reduction(
        pool_section, per_cell_section
    )
    grid["result_store"] = measure_result_store(jobs, log=log)
    if log is not None:
        if honest:
            parallel_part = (f", {n_jobs} workers {parallel_wall:.3f}s "
                             f"(x{grid['parallel_speedup']:.2f}, "
                             f"eff {grid['parallel_efficiency']:.0%})")
        elif parallel_wall is not None:
            parallel_part = (f", {n_jobs} workers {parallel_wall:.3f}s "
                             "(speedup n/a: see parallel_note)")
        else:
            parallel_part = ""
        log(f"  grid ({len(jobs)} cells): cold {cold_wall:.3f}s, "
            f"cached {serial_wall:.3f}s "
            f"(cache x{grid['trace_cache_speedup']:.2f})" + parallel_part)
        reduction = grid["dispatch_overhead_reduction"]
        if reduction is not None:
            pool_mean = pool_section["dispatch_overhead_seconds"]["mean"]
            cell_mean = per_cell_section["dispatch_overhead_seconds"]["mean"]
            log(f"  dispatch overhead/cell: pool {pool_mean * 1e3:.2f}ms, "
                f"spawn-per-cell {cell_mean * 1e3:.2f}ms "
                f"(x{reduction:.1f} reduction)")
    return grid


def _overhead_stats(outcomes) -> Optional[Dict]:
    """Summarize per-cell dispatch overhead for one parallel grid pass.

    Overhead is :attr:`~repro.sim.parallel.JobOutcome.dispatch_overhead_seconds`
    — parent-observed wall minus in-worker simulation time. Cells that
    never ran in a worker (no ``sim_seconds``) are excluded; an
    all-excluded pass yields None rather than a fabricated zero.
    """
    per_cell = {
        o.job.key: o.dispatch_overhead_seconds
        for o in outcomes
        if o.dispatch_overhead_seconds is not None
    }
    if not per_cell:
        return None
    values = sorted(per_cell.values())
    mid = len(values) // 2
    median = (
        values[mid]
        if len(values) % 2
        else (values[mid - 1] + values[mid]) / 2.0
    )
    return {
        "cells": len(per_cell),
        "total": sum(values),
        "mean": sum(values) / len(values),
        "median": median,
        "per_cell": per_cell,
    }


def _overhead_reduction(
    pool_section: Optional[Dict], per_cell_section: Optional[Dict]
) -> Optional[float]:
    """Mean spawn-per-cell overhead over mean pool overhead (>1 = win)."""
    if not pool_section or not per_cell_section:
        return None
    pool_stats = pool_section.get("dispatch_overhead_seconds")
    cell_stats = per_cell_section.get("dispatch_overhead_seconds")
    if not pool_stats or not cell_stats:
        return None
    if not pool_stats["mean"] > 0:
        return None
    return cell_stats["mean"] / pool_stats["mean"]


def measure_result_store(
    jobs: Sequence[SimJob],
    log: Optional[Callable[[str], None]] = None,
) -> Dict:
    """Time one grid pass against an empty store, then a pre-warmed one.

    Uses a private in-memory :class:`ResultStore` so the measurement
    never reads state left by earlier runs: the cold pass simulates
    every cell (all misses) and fills the store; the warm pass is served
    entirely from it. ``warm_speedup`` is the factor the store saves a
    repeated grid — the number ``repro paper`` trades on.
    """
    store = ResultStore()
    with use_result_store(store):
        start = time.perf_counter()
        outcomes = run_jobs_cached(list(jobs), n_jobs=1)
        cold_wall = time.perf_counter() - start
        raise_on_failures(outcomes, "bench grid (store cold)")
        cold_hits = sum(1 for o in outcomes if o.cached)

        start = time.perf_counter()
        outcomes = run_jobs_cached(list(jobs), n_jobs=1)
        warm_wall = time.perf_counter() - start
        raise_on_failures(outcomes, "bench grid (store warm)")
        warm_hits = sum(1 for o in outcomes if o.cached)

    section = {
        "cold_wall_seconds": cold_wall,
        "warm_wall_seconds": warm_wall,
        "cold_cached_cells": cold_hits,
        "warm_cached_cells": warm_hits,
        "store_hits": store.stats.hits,
        "store_misses": store.stats.misses,
        "warm_speedup": cold_wall / warm_wall if warm_wall > 0 else None,
    }
    if log is not None:
        speedup = section["warm_speedup"]
        log(f"  result store: cold {cold_wall:.3f}s, warm {warm_wall:.3f}s "
            f"({store.stats.hits} hit(s), {store.stats.misses} miss(es)"
            + (f", x{speedup:.1f})" if speedup else ")"))
    return section


def _cell_backend(engine: str, delta: Dict) -> "tuple":
    """Which backend served a just-timed cell, from its stats delta.

    With the python engine configured there is nothing to observe. With
    the vector engine, a recorded fallback means every repeat ran the
    python loop (lowerability is a property of the cell's configuration,
    so all repeats of a cell resolve the same way).
    """
    if engine != "vector":
        return engine, None
    if delta["fallbacks"]:
        return "python", delta["last_fallback_reason"]
    if delta["kernel_runs"]:
        return "vector", None
    return "python", "vector backend did not engage"


def require_kernel_failures(payload: Dict) -> List[str]:
    """Cells that should have lowered but were not served by the kernel.

    ``repro bench --require-kernel`` turns a silent per-cell fallback
    into exit code 2: every cell whose organization has a kernel-side
    service path (:data:`repro.sim.engine_vector.LOWERED_ORG_NAMES`)
    must record ``backend == "vector"``. Organizations outside that
    roster are exempt — they are expected to run the python loop.
    """
    from .engine_vector import LOWERED_ORG_NAMES

    failures = []
    for entry in payload.get("results", ()):
        org = entry.get("organization")
        if org not in LOWERED_ORG_NAMES:
            continue
        if entry.get("backend") != "vector":
            reason = entry.get("fallback_reason") or "no reason recorded"
            failures.append(
                f"{org}/{entry.get('workload')}: "
                f"backend={entry.get('backend')!r} ({reason})"
            )
    return failures


def _summarize(points: Sequence[BenchPoint]) -> Dict[str, Dict]:
    """Per-organization mean accesses/sec across the workload grid.

    Sub-resolution cells (``valid == False``) are excluded from the
    mean; each org's summary records how many were dropped so a
    trajectory reader can see when a mean covers fewer cells than the
    grid. An org whose every cell is invalid gets a null mean.
    """
    by_org: Dict[str, List[BenchPoint]] = {}
    for point in points:
        by_org.setdefault(point.organization, []).append(point)
    summary: Dict[str, Dict] = {}
    for org, cells in by_org.items():
        rates = [p.accesses_per_second for p in cells if p.valid]
        summary[org] = {
            "mean_accesses_per_second": (
                sum(rates) / len(rates) if rates else None
            ),
            "excluded_invalid_cells": len(cells) - len(rates),
        }
    return summary


def write_bench(payload: Dict, path: str) -> str:
    """Write the payload as stable, diffable JSON; returns ``path``."""
    with open(path, "w") as fp:
        json.dump(payload, fp, indent=2, sort_keys=True)
        fp.write("\n")
    return path


def load_bench(path: str) -> Dict:
    """Load and schema-check a ``BENCH_<n>.json`` file.

    Any version in :data:`READABLE_SCHEMA_VERSIONS` loads; older
    payloads are migrated in memory to the current shape (v1 stored
    ``host.cpu_count`` as a string, which broke host-fingerprint
    equality against newer files). The file on disk is not rewritten —
    trajectory files are historical artifacts.
    """
    with open(path) as fp:
        payload = json.load(fp)
    if payload.get("kind") != "repro-bench":
        raise ConfigurationError(f"{path} is not a repro bench file")
    version = payload.get("schema_version")
    if version not in READABLE_SCHEMA_VERSIONS:
        raise ConfigurationError(
            f"{path} has schema {version!r}; "
            f"this tool reads {READABLE_SCHEMA_VERSIONS}"
        )
    if version < BENCH_SCHEMA_VERSION:
        payload = _migrate_payload(payload)
    return payload


def _migrate_payload(payload: Dict) -> Dict:
    """Bring an older readable payload up to the current schema shape."""
    host = payload.get("host")
    if isinstance(host, dict) and "cpu_count" in host:
        try:
            host["cpu_count"] = int(host["cpu_count"])
        except (TypeError, ValueError):
            host.pop("cpu_count", None)
    # v4: results carry a validity flag, summaries record exclusions.
    # Pre-v4 files averaged every cell, so nothing was excluded; a cell
    # with non-positive wall time is marked invalid retroactively (its
    # recorded 0.0 throughput was the bug this flag exists to surface).
    for entry in payload.get("results", ()):
        if "valid" not in entry:
            entry["valid"] = entry.get("wall_seconds", 0.0) > 0.0
            if not entry["valid"]:
                entry["accesses_per_second"] = None
    for org_summary in payload.get("summary", {}).values():
        org_summary.setdefault("excluded_invalid_cells", 0)
    # v5: cells record which backend actually served them. Pre-v5 files
    # predate the observation, so backend stays null (unknown) rather
    # than copying config.engine — a vector-configured run may still
    # have fallen back cell by cell, and a migration must not invent
    # engagement data the run never measured.
    for entry in payload.get("results", ()):
        entry.setdefault("backend", None)
        entry.setdefault("fallback_reason", None)
    # v6: the grid section compares dispatch modes. Pre-v6 runs used
    # spawn-per-cell exclusively and never measured per-cell overhead,
    # so the new keys are null (unmeasured), not reconstructed.
    grid = payload.get("grid")
    if isinstance(grid, dict):
        grid.setdefault("pool", None)
        grid.setdefault("spawn_per_cell", None)
        grid.setdefault("dispatch_overhead_reduction", None)
    payload["migrated_from_schema_version"] = payload["schema_version"]
    payload["schema_version"] = BENCH_SCHEMA_VERSION
    return payload


def bench_files(root: str = ".") -> List[str]:
    """Existing trajectory files in ``root``, ordered by index."""
    found = []
    for path in glob.glob(os.path.join(root, "BENCH_*.json")):
        match = _BENCH_FILE_RE.search(os.path.basename(path))
        if match:
            found.append((int(match.group(1)), path))
    return [path for _, path in sorted(found)]


def next_bench_path(root: str = ".") -> str:
    """The next unused ``BENCH_<n>.json`` path in ``root``."""
    taken = [
        int(_BENCH_FILE_RE.search(os.path.basename(p)).group(1))
        for p in bench_files(root)
    ]
    index = max(taken) + 1 if taken else 0
    return os.path.join(root, f"BENCH_{index}.json")


def compare_to_baseline(
    payload: Dict,
    baseline: Dict,
    organization: str = "cameo",
    threshold: float = 0.30,
) -> Optional[str]:
    """A warning string when ``organization`` regressed past ``threshold``.

    Returns None when throughput held (or the org is missing from either
    file, or the hosts differ — cross-host numbers are not comparable).
    This is advisory by design: CI warns, it does not fail, because
    shared runners are noisy.
    """
    if payload.get("host") != baseline.get("host"):
        return None
    now = payload.get("summary", {}).get(organization)
    then = baseline.get("summary", {}).get(organization)
    if not now or not then:
        return None
    current = now["mean_accesses_per_second"]
    reference = then["mean_accesses_per_second"]
    # Either side may be null (all cells sub-resolution, schema v4);
    # there is no meaningful ratio to warn about.
    if current is None or reference is None or reference <= 0:
        return None
    drop = 1.0 - current / reference
    if drop > threshold:
        return (
            f"WARNING: {organization} throughput dropped {drop:.0%} "
            f"({reference:.0f} -> {current:.0f} accesses/sec) "
            f"versus the committed baseline"
        )
    return None
