"""Standing benchmark harness: the simulator-throughput trajectory.

``repro bench`` runs an organization x workload grid, measures wall
time, and writes a schema-versioned ``BENCH_<n>.json`` at the repo root.
Each PR that touches the hot path appends the next file, so the
accesses/sec trajectory across the project's history is a committed,
diffable artifact rather than folklore.

The figure of merit is *simulated accesses per wall-clock second*:
``accesses_per_context x num_contexts / wall_seconds``, taken as the
best of ``repeats`` runs (the minimum wall time is the least noisy
estimator on a shared host). Results are only comparable between files
with matching ``host`` fingerprints.
"""

from __future__ import annotations

import glob
import json
import os
import platform
import re
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..config.system import scaled_paper_system
from ..errors import ConfigurationError
from .runner import run_workload

#: Bump when the JSON layout changes; consumers must check it.
BENCH_SCHEMA_VERSION = 1

#: The standing grid: the headline designs on one latency-sensitive and
#: one capacity-sensitive workload (mirrors benchmarks/).
DEFAULT_ORGS = ("baseline", "cache", "cameo", "tlm-dynamic")
DEFAULT_WORKLOADS = ("sphinx3", "milc")
DEFAULT_ACCESSES = 6_000
DEFAULT_REPEATS = 3
#: ``--quick`` (CI smoke) sizing: one repeat, short traces.
QUICK_ACCESSES = 1_500

_BENCH_FILE_RE = re.compile(r"BENCH_(\d+)\.json$")


@dataclass(frozen=True)
class BenchPoint:
    """Throughput of one (organization, workload) grid cell."""

    organization: str
    workload: str
    simulated_accesses: int
    wall_seconds: float

    @property
    def accesses_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.simulated_accesses / self.wall_seconds

    def as_dict(self) -> Dict:
        return {
            "organization": self.organization,
            "workload": self.workload,
            "simulated_accesses": self.simulated_accesses,
            "wall_seconds": self.wall_seconds,
            "accesses_per_second": self.accesses_per_second,
        }


def host_fingerprint() -> Dict[str, str]:
    """Identify the machine; trajectories only compare on matching hosts."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "cpu_count": str(os.cpu_count() or 0),
    }


def run_bench(
    orgs: Sequence[str] = DEFAULT_ORGS,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    accesses_per_context: int = DEFAULT_ACCESSES,
    repeats: int = DEFAULT_REPEATS,
    scale_shift: int = 12,
    log: Optional[Callable[[str], None]] = None,
) -> Dict:
    """Run the grid and return the schema-versioned payload."""
    if repeats <= 0:
        raise ConfigurationError("bench repeats must be positive")
    if accesses_per_context <= 0:
        raise ConfigurationError("bench accesses_per_context must be positive")
    config = scaled_paper_system(scale_shift=scale_shift)
    simulated = accesses_per_context * config.num_contexts
    points: List[BenchPoint] = []
    for org in orgs:
        for workload in workloads:
            best = None
            for _ in range(repeats):
                start = time.perf_counter()
                run_workload(
                    org, workload, config,
                    accesses_per_context=accesses_per_context,
                )
                wall = time.perf_counter() - start
                if best is None or wall < best:
                    best = wall
            point = BenchPoint(org, workload, simulated, best)
            points.append(point)
            if log is not None:
                log(f"  {org:>14s} x {workload:<8s} "
                    f"{point.accesses_per_second:>10.0f} acc/s "
                    f"({best:.3f} s)")
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "repro-bench",
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": host_fingerprint(),
        "config": {
            "scale_shift": scale_shift,
            "num_contexts": config.num_contexts,
            "accesses_per_context": accesses_per_context,
            "repeats": repeats,
        },
        "results": [p.as_dict() for p in points],
        "summary": _summarize(points),
    }


def _summarize(points: Sequence[BenchPoint]) -> Dict[str, Dict[str, float]]:
    """Per-organization mean accesses/sec across the workload grid."""
    by_org: Dict[str, List[float]] = {}
    for point in points:
        by_org.setdefault(point.organization, []).append(point.accesses_per_second)
    return {
        org: {"mean_accesses_per_second": sum(rates) / len(rates)}
        for org, rates in by_org.items()
    }


def write_bench(payload: Dict, path: str) -> str:
    """Write the payload as stable, diffable JSON; returns ``path``."""
    with open(path, "w") as fp:
        json.dump(payload, fp, indent=2, sort_keys=True)
        fp.write("\n")
    return path


def load_bench(path: str) -> Dict:
    """Load and schema-check a ``BENCH_<n>.json`` file."""
    with open(path) as fp:
        payload = json.load(fp)
    if payload.get("kind") != "repro-bench":
        raise ConfigurationError(f"{path} is not a repro bench file")
    if payload.get("schema_version") != BENCH_SCHEMA_VERSION:
        raise ConfigurationError(
            f"{path} has schema {payload.get('schema_version')!r}; "
            f"this tool reads {BENCH_SCHEMA_VERSION}"
        )
    return payload


def bench_files(root: str = ".") -> List[str]:
    """Existing trajectory files in ``root``, ordered by index."""
    found = []
    for path in glob.glob(os.path.join(root, "BENCH_*.json")):
        match = _BENCH_FILE_RE.search(os.path.basename(path))
        if match:
            found.append((int(match.group(1)), path))
    return [path for _, path in sorted(found)]


def next_bench_path(root: str = ".") -> str:
    """The next unused ``BENCH_<n>.json`` path in ``root``."""
    taken = [
        int(_BENCH_FILE_RE.search(os.path.basename(p)).group(1))
        for p in bench_files(root)
    ]
    index = max(taken) + 1 if taken else 0
    return os.path.join(root, f"BENCH_{index}.json")


def compare_to_baseline(
    payload: Dict,
    baseline: Dict,
    organization: str = "cameo",
    threshold: float = 0.30,
) -> Optional[str]:
    """A warning string when ``organization`` regressed past ``threshold``.

    Returns None when throughput held (or the org is missing from either
    file, or the hosts differ — cross-host numbers are not comparable).
    This is advisory by design: CI warns, it does not fail, because
    shared runners are noisy.
    """
    if payload.get("host") != baseline.get("host"):
        return None
    now = payload.get("summary", {}).get(organization)
    then = baseline.get("summary", {}).get(organization)
    if not now or not then:
        return None
    current = now["mean_accesses_per_second"]
    reference = then["mean_accesses_per_second"]
    if reference <= 0:
        return None
    drop = 1.0 - current / reference
    if drop > threshold:
        return (
            f"WARNING: {organization} throughput dropped {drop:.0%} "
            f"({reference:.0f} -> {current:.0f} accesses/sec) "
            f"versus the committed baseline"
        )
    return None
