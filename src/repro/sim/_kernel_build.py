"""Compile-on-demand loader for the columnar engine kernel.

The vector engine backend (:mod:`repro.sim.engine_vector`) drives the C
kernel in ``_vector_kernel.c`` through ctypes. This module owns the
build: compile the source with whatever C compiler the host has (``cc``
/ ``gcc`` / ``clang`` — no Python build machinery, no extra
dependencies), cache the shared object under a content hash, and load it
with an ABI check. Everything here degrades to ``None`` — no compiler,
compile failure, cache directory not writable, ABI mismatch — and the
engine falls back to the pure-Python loop, which is always correct.

The cache key hashes the kernel source, the compiler flags, the ABI
number, and the compiler identity, so editing the kernel or switching
toolchains never reuses a stale binary. Builds go through a temp file +
``os.replace`` so concurrent processes (pytest-xdist, CI matrices) race
benignly.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Optional

#: Must match RK_ABI in _vector_kernel.c; bump on any layout change.
RK_ABI = 2

#: Flags are part of the cache key AND the equivalence contract:
#: -fno-fast-math / -ffp-contract=off pin IEEE semantics so the kernel's
#: float arithmetic is operation-for-operation identical to CPython's.
CFLAGS = ("-std=c11", "-O2", "-fPIC", "-shared", "-fno-fast-math", "-ffp-contract=off")

#: Environment overrides: cache directory, and an explicit off switch
#: (REPRO_NO_KERNEL=1 forces the python fallback without uninstalling cc).
CACHE_ENV_VAR = "REPRO_KERNEL_CACHE"
DISABLE_ENV_VAR = "REPRO_NO_KERNEL"

_SOURCE_PATH = os.path.join(os.path.dirname(__file__), "_vector_kernel.c")

# Per-process memo: the load is attempted once; both outcomes stick.
_lib: Optional[ctypes.CDLL] = None
_load_attempted = False
_load_error: Optional[str] = None


def kernel_source_path() -> str:
    """Absolute path of the kernel's C source (shipped as package data)."""
    return _SOURCE_PATH


def kernel_cache_dir() -> str:
    """Directory holding compiled kernels (override: REPRO_KERNEL_CACHE)."""
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return override
    return os.path.join(
        os.environ.get("XDG_CACHE_HOME") or os.path.expanduser("~/.cache"),
        "repro",
        "kernel",
    )


def find_compiler() -> Optional[str]:
    """A usable C compiler, honouring ``CC``; None when the host has none."""
    cc = os.environ.get("CC")
    if cc:
        return shutil.which(cc) or None
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def load_error() -> Optional[str]:
    """Why the last load attempt failed (None = loaded or not attempted)."""
    return _load_error


def kernel_available() -> bool:
    """True when the compiled kernel can be (or already is) loaded."""
    return load_kernel() is not None


def _configure(lib: ctypes.CDLL) -> ctypes.CDLL:
    lib.rk_abi_version.argtypes = ()
    lib.rk_abi_version.restype = ctypes.c_longlong
    lib.rk_run.argtypes = (
        ctypes.POINTER(ctypes.c_longlong),
        ctypes.POINTER(ctypes.c_double),
        ctypes.POINTER(ctypes.c_void_p),
    )
    lib.rk_run.restype = ctypes.c_longlong
    return lib


def _build_and_load() -> ctypes.CDLL:
    compiler = find_compiler()
    if compiler is None:
        raise RuntimeError("no C compiler (cc/gcc/clang) on PATH")
    with open(_SOURCE_PATH, "rb") as fp:
        source = fp.read()
    key = hashlib.sha256(
        source + repr((CFLAGS, RK_ABI, compiler)).encode()
    ).hexdigest()[:16]
    cache_dir = kernel_cache_dir()
    so_path = os.path.join(cache_dir, f"rk_{key}.so")

    if not os.path.exists(so_path):
        os.makedirs(cache_dir, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(suffix=".so", dir=cache_dir)
        os.close(fd)
        try:
            subprocess.run(
                [compiler, *CFLAGS, "-o", tmp_path, _SOURCE_PATH],
                check=True,
                capture_output=True,
                text=True,
            )
            os.replace(tmp_path, so_path)  # Atomic: concurrent builds race benignly.
        except subprocess.CalledProcessError as exc:
            raise RuntimeError(
                f"kernel compile failed ({compiler}): {exc.stderr.strip()[:500]}"
            ) from exc
        finally:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)

    lib = _configure(ctypes.CDLL(so_path))
    abi = lib.rk_abi_version()
    if abi != RK_ABI:
        raise RuntimeError(f"kernel ABI {abi} != expected {RK_ABI} ({so_path})")
    return lib


def load_kernel() -> Optional[ctypes.CDLL]:
    """The compiled kernel library, or None when unavailable.

    The first call does the work (compile if needed, dlopen, ABI check);
    later calls return the memoized handle or the memoized failure.
    """
    global _lib, _load_attempted, _load_error
    if _load_attempted:
        return _lib
    _load_attempted = True
    if os.environ.get(DISABLE_ENV_VAR, "").strip() not in ("", "0"):
        _load_error = f"disabled via {DISABLE_ENV_VAR}"
        return None
    try:
        _lib = _build_and_load()
    except Exception as exc:  # Any failure means: use the python backend.
        _load_error = str(exc)
        _lib = None
    return _lib


def reset_for_tests() -> None:
    """Forget the memoized load so tests can exercise failure paths."""
    global _lib, _load_attempted, _load_error
    _lib = None
    _load_attempted = False
    _load_error = None
