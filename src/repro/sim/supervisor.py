"""One supervision core for every subprocess fan-out in this repo.

The parallel grid (:mod:`repro.sim.parallel`) and the campaign runner
(:mod:`repro.sim.campaign`) both farm deterministic simulations out to
subprocess workers. Before this module each had a private — and
different — answer to the same operational questions; now both share
one :class:`Supervisor` that owns:

* **heartbeats** — workers report progress (accesses simulated, via
  :func:`repro.sim.engine.set_progress_hook`) over the result pipe, so
  the parent distinguishes a *hung* worker (no progress) from a *slow*
  one and applies an idle-based ``hang_timeout_seconds`` instead of
  only a wall-clock budget;
* **retry with exponential backoff + deterministic jitter** and a
  retryable-error classifier: timeouts, signals, worker crashes, and
  transient ``OSError``-family failures retry; deterministic
  :class:`~repro.errors.ReproError`\\ s (bad input, simulator bugs)
  fail fast. A per-run retry budget and per-run poison-cell quarantine
  bound the total work a pathological grid can consume;
* **kill escalation** — ``terminate()`` → grace period → ``kill()`` →
  *bounded* ``join()``, so a worker that ignores SIGTERM can never
  deadlock the parent — plus an optional per-worker RSS ceiling;
* **graceful shutdown** — SIGINT/SIGTERM stops launching, escalates a
  kill on every running worker, and raises
  :class:`~repro.errors.InterruptedRunError` carrying the settled
  outcomes, after every completed cell has already been delivered to
  the caller's ``on_settle`` hook (which is what flushes results to
  checkpoints and the result store);
* **graceful degradation** — when subprocess spawn fails repeatedly
  (sandboxed hosts without fork/spawn), the remaining cells fall back
  to the exact in-process serial path with a warning; results are
  bit-identical because the worker body and the inline body are the
  same function;
* a **JSONL incident journal** recording every retry, timeout, kill,
  crash, quarantine, and fallback, for observability
  (``REPRO_INCIDENT_JOURNAL=<path>`` or an explicit
  :class:`IncidentJournal`).

Deterministic chaos testing rides the worker entrypoint: the
``REPRO_INJECT_WORKER_FAULTS`` environment knob (e.g.
``crash=0.5,hang=0.2,seed=1``) makes a stable, hash-derived subset of
(cell, attempt) pairs crash or hang before simulating, so CI can prove
a grid survives worker kills with byte-identical results.

Two dispatch modes share this machinery (``REPRO_DISPATCH`` /
``dispatch=`` pick one; ``pool`` is the default):

* **pool** — ``n_workers`` *persistent* workers start once, run an
  optional ``worker_setup`` hook (imports, kernel dlopen, cache
  opening), then stream tasks off the queue until it drains. Spawn
  cost is paid once per worker instead of once per cell, which is what
  makes wide grids dispatch-bound no longer. Supervision becomes
  per-worker: a wedged or crashed worker is killed and *respawned*
  alone (``worker_respawn`` incidents) while its in-flight cell
  re-enters the queue under the ordinary retry classifier.
* **per-cell** — the original spawn-per-cell lifecycle, kept for
  comparison benchmarks and as a fallback; results are byte-identical
  in either mode because the worker body is the same function.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import multiprocessing
import os
import signal
import threading
import time
from collections import deque
from multiprocessing.connection import wait as _wait_for_conns
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import (
    ConfigurationError,
    EnvKnobError,
    InterruptedRunError,
    RemoteProtocolError,
    ReproError,
)

#: Fault-injection knob for the worker entrypoint (chaos testing):
#: ``crash=0.3,hang=0.1,spawn=0.0,max_attempt=1,seed=0``. Rates are
#: per-(cell, attempt) probabilities drawn from a stable hash, so a
#: given spec always fails the same cells — and, with ``max_attempt=1``
#: (the default), only on their first attempt, so retries always
#: converge.
FAULTS_ENV_VAR = "REPRO_INJECT_WORKER_FAULTS"
#: Default incident-journal path (CLI ``--journal`` overrides).
JOURNAL_ENV_VAR = "REPRO_INCIDENT_JOURNAL"
#: Dispatch-mode override (CLI ``--dispatch`` sets it so nested fan-out
#: inherits the choice): ``pool`` (persistent workers, the default),
#: ``per-cell`` (spawn one subprocess per cell), or ``remote`` (stream
#: cells to ``repro worker serve`` endpoints first).
DISPATCH_ENV_VAR = "REPRO_DISPATCH"
#: The dispatch modes :meth:`Supervisor.run` understands.
DISPATCH_MODES = ("pool", "per-cell", "remote")
#: Cap on the JSONL incident journal before it rotates to ``<path>.1``.
JOURNAL_MAX_BYTES_ENV_VAR = "REPRO_INCIDENT_JOURNAL_MAX_BYTES"
#: Generous by default: multi-day campaigns emit kilobyte-scale events,
#: so 64 MiB is months of incidents — the cap exists to bound the
#: pathological case (a crash loop journaling forever), not to trim
#: healthy runs.
DEFAULT_JOURNAL_MAX_BYTES = 64 * 1024 * 1024

#: Exit code of an injected worker crash (distinctive in journals).
INJECTED_CRASH_EXIT_CODE = 86
#: Workers rate-limit heartbeat sends to one per this many seconds.
HEARTBEAT_MIN_INTERVAL_SECONDS = 0.1
#: Cells in flight per pool worker: one running plus one buffered in
#: its pipe, so a worker rolls straight into the next cell instead of
#: idling a scheduler quantum while the parent wins the CPU back. The
#: second slot is only filled once every ready worker has a first.
POOL_PREFETCH_DEPTH = 2


def default_dispatch_mode() -> str:
    """The dispatch mode from ``REPRO_DISPATCH``, or ``pool``.

    An unknown value raises :class:`~repro.errors.EnvKnobError` (CLI
    exit 2) naming the accepted set — a typo like ``REPRO_DISPATCH=seral``
    must stop the run, never silently dispatch some other way.
    """
    mode = os.environ.get(DISPATCH_ENV_VAR, "").strip().lower()
    if not mode:
        return "pool"
    if mode not in DISPATCH_MODES:
        raise EnvKnobError(
            f"{DISPATCH_ENV_VAR}={mode!r} is not a dispatch mode; "
            f"accepted values: {', '.join(DISPATCH_MODES)}"
        )
    return mode


def resolve_dispatch(dispatch: Optional[str]) -> str:
    """Validate an explicit dispatch choice, or fall back to the env."""
    if dispatch is None:
        return default_dispatch_mode()
    if dispatch not in DISPATCH_MODES:
        raise ConfigurationError(
            f"dispatch={dispatch!r} is not a dispatch mode; "
            f"accepted values: {', '.join(DISPATCH_MODES)}"
        )
    return dispatch


def _unit_hash(*parts: object) -> float:
    """A deterministic draw in [0, 1) from any hashable description.

    The supervisor's only randomness source: backoff jitter and fault
    injection both derive from it, so supervised runs are reproducible
    run-to-run and machine-to-machine.
    """
    blob = repr(parts).encode("utf-8")
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


# -- Retryable-error classification ---------------------------------------------

#: Exception families worth retrying: environmental/transient by nature.
_RETRYABLE_EXCEPTIONS = (
    OSError,            # includes IOError, BrokenPipeError, ConnectionError
    MemoryError,
    TimeoutError,
    EOFError,
    InterruptedError,
    KeyboardInterrupt,  # a signal delivered to the worker, not a bug
    SystemExit,
)


def is_retryable_exception(exc: BaseException) -> bool:
    """Whether re-running the same cell could plausibly succeed.

    :class:`~repro.errors.ReproError` and its family are deterministic —
    bad input or a simulator bug reproduces identically on retry, so
    they fail fast. OS-level trouble (I/O errors, OOM, signals) is
    transient and retries. Anything else (an unexpected ``TypeError``)
    is treated as deterministic: retrying a bug wastes the budget.
    """
    if isinstance(exc, ReproError):
        return False
    return isinstance(exc, _RETRYABLE_EXCEPTIONS)


# -- Injected worker faults (chaos knob) ----------------------------------------


@dataclass(frozen=True)
class InjectedFaults:
    """Parsed ``REPRO_INJECT_WORKER_FAULTS`` specification."""

    crash_rate: float = 0.0
    hang_rate: float = 0.0
    spawn_rate: float = 0.0
    #: Remote-endpoint chaos only: ``os._exit`` the whole ``repro
    #: worker serve`` process mid-cell — the host-death analogue of
    #: ``crash`` (which, on an endpoint, drops just the connection).
    #: Local pool/per-cell workers ignore it.
    endpoint_kill_rate: float = 0.0
    #: Inject only while ``attempt <= max_attempt`` — the default (1)
    #: guarantees retries converge, which keeps chaos runs deterministic
    #: *and* terminating.
    max_attempt: int = 1
    seed: int = 0

    @property
    def active(self) -> bool:
        return (self.crash_rate > 0 or self.hang_rate > 0
                or self.spawn_rate > 0 or self.endpoint_kill_rate > 0)


def parse_injected_faults(text: Optional[str]) -> Optional[InjectedFaults]:
    """Parse the env knob; None when unset/empty, raises on a bad spec."""
    if not text or not text.strip():
        return None
    fields: Dict[str, float] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ConfigurationError(
                f"{FAULTS_ENV_VAR} entry {part!r} is not name=value"
            )
        name, _, raw = part.partition("=")
        try:
            fields[name.strip()] = float(raw)
        except ValueError as exc:
            raise ConfigurationError(
                f"{FAULTS_ENV_VAR} value {raw!r} for {name!r} is not a number"
            ) from exc
    known = {"crash", "hang", "spawn", "endpoint_kill", "max_attempt", "seed"}
    unknown = set(fields) - known
    if unknown:
        raise ConfigurationError(
            f"{FAULTS_ENV_VAR} has unknown field(s) {sorted(unknown)}; "
            f"known: {sorted(known)}"
        )
    for rate_name in ("crash", "hang", "spawn", "endpoint_kill"):
        rate = fields.get(rate_name, 0.0)
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(
                f"{FAULTS_ENV_VAR} {rate_name}={rate} is not within [0, 1]"
            )
    return InjectedFaults(
        crash_rate=fields.get("crash", 0.0),
        hang_rate=fields.get("hang", 0.0),
        spawn_rate=fields.get("spawn", 0.0),
        endpoint_kill_rate=fields.get("endpoint_kill", 0.0),
        max_attempt=int(fields.get("max_attempt", 1)),
        seed=int(fields.get("seed", 0)),
    )


def _maybe_inject_worker_fault(faults: InjectedFaults, key: str, attempt: int) -> None:
    """Crash or hang this worker if the (key, attempt) draw says so."""
    if attempt > faults.max_attempt:
        return
    draw = _unit_hash("inject-worker", faults.seed, key, attempt)
    if draw < faults.crash_rate:
        os._exit(INJECTED_CRASH_EXIT_CODE)
    if draw < faults.crash_rate + faults.hang_rate:
        while True:  # a genuine hang: alive, no progress, ignores nothing
            time.sleep(3600)


def _spawn_should_fail(faults: Optional[InjectedFaults], key: str, attempt: int) -> bool:
    if faults is None or faults.spawn_rate <= 0:
        return False
    return _unit_hash("inject-spawn", faults.seed, key, attempt) < faults.spawn_rate


# -- The incident journal -------------------------------------------------------


class IncidentJournal:
    """Append-only JSONL record of supervision incidents.

    One line per event — ``retry``, ``timeout``, ``hang``, ``crash``,
    ``worker_error``, ``rss_kill``, ``give_up``, ``quarantine``,
    ``spawn_failure``, ``serial_fallback``, ``interrupt``,
    ``retry_budget_exhausted``, the pool-lifecycle events
    ``pool_start`` and ``worker_respawn``, and the remote-endpoint
    events (``endpoint_connect``, ``endpoint_reconnect``,
    ``endpoint_failure``, ``endpoint_quarantine``,
    ``remote_degraded``) — with the cell key, the attempt number, the
    id of the worker that served the cell (empty when no worker was
    involved), and a human-readable detail. Each line is flushed as
    written, so the journal is readable while the run is still going
    (and survives a later crash of the parent).

    The file is capped at ``max_bytes`` (``None`` defers to
    ``REPRO_INCIDENT_JOURNAL_MAX_BYTES``, default
    :data:`DEFAULT_JOURNAL_MAX_BYTES`; ``0`` disables rotation).
    Reaching the cap atomically renames the file to ``<path>.1``
    (replacing any previous rotation) and starts the live file fresh
    with a ``journal_rotated`` event, so the tail stays readable
    mid-run and a multi-day campaign can never fill the disk with
    incidents.
    """

    def __init__(self, path: str, max_bytes: Optional[int] = None):
        self.path = path
        self.max_bytes = (
            max_bytes if max_bytes is not None else journal_max_bytes_from_env()
        )
        self.events_written = 0
        self.rotations = 0
        self.counts: Dict[str, int] = {}

    def _entry(self, event: str, key: str = "", attempt: int = 0,
               detail: str = "", worker: str = "") -> Dict[str, object]:
        entry = {
            "ts": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "event": event,
            "key": key,
            "attempt": attempt,
            "detail": detail,
            "worker": worker,
        }
        self.counts[event] = self.counts.get(event, 0) + 1
        self.events_written += 1
        return entry

    def _maybe_rotate(self, incoming_bytes: int) -> Optional[Dict[str, object]]:
        """Rotate if the incoming line would break the cap; returns the
        ``journal_rotated`` entry to lead the fresh file, or None."""
        if self.max_bytes <= 0:
            return None
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return None
        if size == 0 or size + incoming_bytes <= self.max_bytes:
            return None
        rotated_to = self.path + ".1"
        os.replace(self.path, rotated_to)
        self.rotations += 1
        return self._entry(
            "journal_rotated",
            detail=f"rotated {size} bytes to {rotated_to}",
        )

    def record(self, event: str, key: str = "", attempt: int = 0,
               detail: str = "", worker: str = "") -> None:
        entry = self._entry(event, key=key, attempt=attempt,
                            detail=detail, worker=worker)
        line = json.dumps(entry, sort_keys=True) + "\n"
        try:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            rotated = self._maybe_rotate(len(line))
            with open(self.path, "a") as fp:
                if rotated is not None:
                    fp.write(json.dumps(rotated, sort_keys=True) + "\n")
                fp.write(line)
        except OSError:
            # Observability must never sink the run it observes.
            pass


def journal_max_bytes_from_env() -> int:
    """The journal cap from ``REPRO_INCIDENT_JOURNAL_MAX_BYTES``.

    ``0`` disables rotation; anything non-numeric or negative raises
    :class:`~repro.errors.EnvKnobError`.
    """
    raw = os.environ.get(JOURNAL_MAX_BYTES_ENV_VAR, "").strip()
    if not raw:
        return DEFAULT_JOURNAL_MAX_BYTES
    try:
        value = int(raw)
    except ValueError:
        raise EnvKnobError(
            f"{JOURNAL_MAX_BYTES_ENV_VAR}={raw!r} is not an integer; "
            "accepted values: a byte count >= 0 (0 disables rotation)"
        ) from None
    if value < 0:
        raise EnvKnobError(
            f"{JOURNAL_MAX_BYTES_ENV_VAR}={raw!r} is negative; "
            "accepted values: a byte count >= 0 (0 disables rotation)"
        )
    return value


def journal_from_env() -> Optional[IncidentJournal]:
    """The env-configured journal (``REPRO_INCIDENT_JOURNAL``), or None."""
    path = os.environ.get(JOURNAL_ENV_VAR)
    if not path:
        return None
    return IncidentJournal(path)


# -- Kill escalation ------------------------------------------------------------


def escalate_kill(
    process: multiprocessing.process.BaseProcess,
    grace_seconds: float = 2.0,
    join_timeout_seconds: float = 5.0,
) -> str:
    """Stop a worker without ever blocking forever; returns how it died.

    ``terminate()`` (SIGTERM) → bounded grace join → ``kill()``
    (SIGKILL, uncatchable) → bounded join. The unbounded
    ``terminate(); join()`` this replaces deadlocked the parent whenever
    a worker ignored SIGTERM. Returns ``"terminated"``, ``"killed"``,
    ``"already-dead"``, or — join still failing after SIGKILL, which
    only an unkillable (D-state) process can produce — ``"leaked"``.
    """
    if not process.is_alive():
        process.join(join_timeout_seconds)
        return "already-dead"
    process.terminate()
    process.join(grace_seconds)
    if not process.is_alive():
        return "terminated"
    process.kill()
    process.join(join_timeout_seconds)
    if process.is_alive():
        return "leaked"
    return "killed"


def _rss_bytes(pid: int) -> Optional[int]:
    """Resident set size of a live process, or None where unknowable."""
    try:
        with open(f"/proc/{pid}/statm") as fp:
            resident_pages = int(fp.read().split()[1])
        page_size = os.sysconf("SC_PAGE_SIZE")
        return resident_pages * page_size
    except (OSError, ValueError, IndexError, AttributeError):
        return None


# -- Policy ---------------------------------------------------------------------


@dataclass(frozen=True)
class SupervisorPolicy:
    """Everything tunable about one supervised run."""

    #: Total tries per cell (first attempt + retries).
    max_attempts: int = 1
    #: Hard wall-clock budget per attempt (None = unbounded).
    timeout_seconds: Optional[float] = None
    #: Idle budget per attempt: kill a worker that reports no progress
    #: for this long (None = hang detection off). Unlike
    #: ``timeout_seconds`` this never kills a slow-but-advancing worker.
    hang_timeout_seconds: Optional[float] = None
    #: Exponential backoff between attempts of one cell.
    backoff_base_seconds: float = 0.5
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 30.0
    #: Deterministic jitter: the delay is stretched by up to this
    #: fraction, hash-derived from (key, attempt) — decorrelates retry
    #: bursts without any run-to-run nondeterminism.
    backoff_jitter: float = 0.1
    #: SIGTERM grace before SIGKILL, and the bounded post-kill join.
    grace_seconds: float = 2.0
    join_timeout_seconds: float = 5.0
    #: Optional per-worker RSS ceiling (bytes); exceeding it is a kill.
    max_rss_bytes: Optional[int] = None
    #: Consecutive spawn failures before falling back to in-process
    #: serial execution for the rest of the run.
    spawn_failure_limit: int = 3
    #: Total retries allowed across the whole run (None = twice the
    #: task count). A grid where everything retries is an environment
    #: problem; the budget stops it from looping for hours.
    retry_budget: Optional[int] = None
    #: Worker heartbeat granularity, in simulated accesses.
    heartbeat_interval_accesses: int = 2_000
    #: TCP connect + handshake budget per remote-endpoint attempt.
    connect_timeout_seconds: float = 10.0
    #: Consecutive failures (connect errors, drops, hangs) before an
    #: endpoint is quarantined for the rest of the run — the host-level
    #: analogue of poison-cell quarantine. Protocol/fingerprint skew
    #: quarantines immediately regardless, being deterministic.
    endpoint_failure_limit: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ConfigurationError("max_attempts must be positive")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ConfigurationError("timeout_seconds must be positive")
        if self.hang_timeout_seconds is not None and self.hang_timeout_seconds <= 0:
            raise ConfigurationError("hang_timeout_seconds must be positive")
        if self.backoff_base_seconds < 0:
            raise ConfigurationError("backoff must be non-negative")
        if not 0 <= self.backoff_jitter <= 1:
            raise ConfigurationError("backoff_jitter must be within [0, 1]")
        if self.heartbeat_interval_accesses <= 0:
            raise ConfigurationError("heartbeat interval must be positive")
        if self.connect_timeout_seconds <= 0:
            raise ConfigurationError("connect_timeout_seconds must be positive")
        if self.endpoint_failure_limit <= 0:
            raise ConfigurationError("endpoint_failure_limit must be positive")

    def backoff_delay(self, key: str, attempt: int) -> float:
        """Delay before attempt ``attempt + 1`` of cell ``key``."""
        if self.backoff_base_seconds <= 0:
            return 0.0
        delay = min(
            self.backoff_base_seconds * self.backoff_factor ** (attempt - 1),
            self.backoff_max_seconds,
        )
        if self.backoff_jitter > 0:
            delay *= 1.0 + self.backoff_jitter * _unit_hash("jitter", key, attempt)
        return delay


# -- Tasks, outcomes, and the worker entrypoint ---------------------------------


@dataclass(frozen=True)
class SupervisedTask:
    """One unit of supervised work.

    ``target`` must be a picklable module-level function
    (``target(payload) -> value``); it runs verbatim in the subprocess
    worker *and* in the in-process serial fallback, which is what makes
    the fallback bit-identical.
    """

    index: int
    key: str
    target: Callable
    payload: object


@dataclass
class TaskOutcome:
    """Terminal state of one supervised task."""

    task: SupervisedTask
    value: object = None
    error: Optional[str] = None
    attempts: int = 1
    wall_seconds: float = 0.0
    #: True when the value came from the in-process serial fallback.
    inline: bool = False
    #: Which worker served the final attempt (``w0``/``w1``... in pool
    #: mode, ``pid<n>`` in per-cell mode, ``inline`` for the fallback).
    worker_id: Optional[str] = None
    #: Seconds spent inside ``target(payload)`` in the worker — the
    #: simulation itself, excluding spawn/dispatch/pipe overhead.
    #: ``wall_seconds - sim_seconds`` is the dispatch overhead.
    sim_seconds: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _settled_wall(final: Dict, observed: float) -> float:
    """The cell's wall time: worker-reported when sane, else observed.

    The worker's ``wall_seconds`` (dispatch stamp → result ready, see
    :func:`_reported_wall`) excludes the parent's own wake-up latency,
    which on an oversubscribed host inflates the parent-side
    observation by a scheduler quantum per cell.
    """
    reported = final.get("wall_seconds")
    if isinstance(reported, (int, float)) and reported >= 0:
        return float(reported)
    return observed


def _install_heartbeat_hook(conn, heartbeat_every) -> None:
    """Point the engine's progress hook at ``conn`` (best effort)."""
    try:
        from .engine import set_progress_hook

        last_sent = [0.0]

        def heartbeat(total_accesses: int) -> None:
            now = time.monotonic()
            if now - last_sent[0] >= HEARTBEAT_MIN_INTERVAL_SECONDS:
                last_sent[0] = now
                with contextlib.suppress(Exception):
                    conn.send({"hb": total_accesses})

        set_progress_hook(heartbeat, heartbeat_every)
    except Exception:
        pass  # No heartbeats is degraded observability, not a failure.


def _run_worker_setup(setup: Optional[Callable[[], None]]) -> None:
    """Run the warm-up hook; its failure degrades perf, never the run."""
    if setup is None:
        return
    with contextlib.suppress(Exception):
        setup()


def _reported_wall(dispatched: Optional[float]) -> Optional[float]:
    """Seconds since the parent's dispatch stamp, by the worker's clock.

    ``time.monotonic()`` is ``CLOCK_MONOTONIC`` on Linux — one clock
    per *boot*, not per process — so the delta between the parent's
    stamp and the worker's read is the cell's true dispatch-to-done
    wall time, measured without the parent having to win the CPU back
    first (which, on oversubscribed hosts, it often does a scheduler
    quantum late). Returns ``None`` when there is no stamp or the
    clocks disagree (non-monotonic platforms); the parent then falls
    back to its own observation.
    """
    if dispatched is None:
        return None
    delta = time.monotonic() - dispatched
    return delta if delta >= 0 else None


def _worker_main(target, payload, key, attempt, conn, heartbeat_every,
                 setup=None, dispatched=None) -> None:
    """Per-cell subprocess body: chaos (if configured), heartbeat, run, report.

    Top-level so every multiprocessing start method can import it. The
    final message is ``{"ok": True, "value": ..., "sim_seconds": ...,
    "wall_seconds": ...}`` or ``{"ok": False, "error": ...,
    "retryable": ..., ...}``; ``{"hb": n}`` heartbeats precede it.
    ``wall_seconds`` counts from the parent's pre-spawn ``dispatched``
    stamp, so it includes the fork/interpreter/import cost this mode
    pays per cell. Nothing may escape: an unreportable failure still
    surfaces in the parent as a crash with this process's exit code.
    """
    faults = parse_injected_faults(os.environ.get(FAULTS_ENV_VAR))
    if faults is not None and faults.active:
        _maybe_inject_worker_fault(faults, key, attempt)
    _run_worker_setup(setup)
    _install_heartbeat_hook(conn, heartbeat_every)
    started = time.perf_counter()
    try:
        value = target(payload)
        conn.send({
            "ok": True,
            "value": value,
            "sim_seconds": time.perf_counter() - started,
            "wall_seconds": _reported_wall(dispatched),
        })
    except BaseException as exc:  # noqa: BLE001 — must never escape the worker
        with contextlib.suppress(Exception):
            conn.send({
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "retryable": is_retryable_exception(exc),
                "sim_seconds": time.perf_counter() - started,
                "wall_seconds": _reported_wall(dispatched),
            })
    finally:
        with contextlib.suppress(Exception):
            conn.close()


def _pool_worker_main(worker_id, setup, conn, heartbeat_every) -> None:
    """Persistent-pool subprocess body: set up once, then stream cells.

    The expensive per-process work — interpreter start, ``repro``
    imports, kernel dlopen, cache opening (all via ``setup``) — happens
    exactly once; after that the worker loops on ``conn.recv()``,
    running one cell per ``{"target", "payload", "key", "attempt"}``
    message and answering with the same final-message schema as
    :func:`_worker_main`. ``{"stop": True}`` (or a closed pipe) ends
    the loop. Injected chaos fires per (key, attempt) exactly as in
    per-cell mode — a ``crash`` draw takes the whole worker down
    mid-queue, which is precisely the failure the parent's respawn
    logic exists to absorb.
    """
    faults = parse_injected_faults(os.environ.get(FAULTS_ENV_VAR))
    _run_worker_setup(setup)
    _install_heartbeat_hook(conn, heartbeat_every)
    # Ready handshake: the parent only assigns cells to workers that
    # have finished setup, so worker start-up cost is paid concurrently
    # at pool start and never shows up as per-cell dispatch overhead.
    with contextlib.suppress(Exception):
        conn.send({"ready": True})
    free_since = time.monotonic()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if not isinstance(message, dict) or message.get("stop"):
            break
        key = message.get("key", "")
        attempt = int(message.get("attempt", 1))
        # A cell's wall clock starts at the parent's dispatch stamp, or
        # — for a prefetched cell that waited in the pipe while this
        # worker ran its predecessor — when the worker became free.
        # CLOCK_MONOTONIC is per-boot, not per-process, so the stamps
        # are comparable (see _reported_wall).
        dispatched = message.get("dispatched")
        wall_start = free_since
        if isinstance(dispatched, (int, float)) and dispatched > wall_start:
            wall_start = float(dispatched)
        if faults is not None and faults.active:
            _maybe_inject_worker_fault(faults, key, attempt)
        started = time.perf_counter()
        try:
            value = message["target"](message["payload"])
            conn.send({
                "ok": True,
                "value": value,
                "sim_seconds": time.perf_counter() - started,
                "wall_seconds": max(0.0, time.monotonic() - wall_start),
            })
        except BaseException as exc:  # noqa: BLE001 — the pool must survive
            try:
                conn.send({
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                    "retryable": is_retryable_exception(exc),
                    "sim_seconds": time.perf_counter() - started,
                    "wall_seconds": max(0.0, time.monotonic() - wall_start),
                })
            except Exception:
                break  # unreportable: die so the parent sees a crash
        free_since = time.monotonic()
    with contextlib.suppress(Exception):
        conn.close()


# -- Graceful-signal plumbing ---------------------------------------------------


class _SignalRaised(KeyboardInterrupt):
    """KeyboardInterrupt that remembers which signal caused it."""

    def __init__(self, signal_name: str):
        super().__init__(signal_name)
        self.signal_name = signal_name


@contextlib.contextmanager
def deliver_signals_as_interrupts():
    """Raise SIGINT/SIGTERM as :class:`_SignalRaised` inside the block.

    Used by the in-process serial paths so an operator's Ctrl-C (or a
    scheduler's SIGTERM) surfaces as a catchable exception between — or
    inside — jobs instead of killing the process with completed work
    unflushed. Outside the main thread (where Python forbids signal
    handlers) this is a no-op.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def raise_interrupt(signum, frame):
        raise _SignalRaised(signal.Signals(signum).name)

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, raise_interrupt)
        except (ValueError, OSError):
            pass
    try:
        yield
    finally:
        for signum, handler in previous.items():
            with contextlib.suppress(ValueError, OSError):
                signal.signal(signum, handler)


# -- Ambient supervision policy -------------------------------------------------
#
# CLI commands whose fan-out sits several calls deep (figure runners,
# ablations) install a policy here instead of threading supervision
# kwargs through every intermediate signature; run_many() consults it
# for any knob the caller left unset.

_ambient_policy: List[Optional[SupervisorPolicy]] = [None]


@contextlib.contextmanager
def use_supervision(policy: Optional[SupervisorPolicy]):
    """Make ``policy`` the default for :func:`repro.sim.parallel.run_many`.

    Explicit ``run_many`` arguments still win; the ambient policy only
    fills knobs the caller did not pass. Nests; ``None`` clears it for
    the inner block.
    """
    _ambient_policy.append(policy)
    try:
        yield policy
    finally:
        _ambient_policy.pop()


def current_supervision() -> Optional[SupervisorPolicy]:
    """The innermost :func:`use_supervision` policy, or ``None``."""
    return _ambient_policy[-1]


# -- The supervisor -------------------------------------------------------------


@dataclass
class _Running:
    task: SupervisedTask
    process: multiprocessing.process.BaseProcess
    conn: object
    started_at: float
    last_progress_at: float
    attempt: int
    progress: int = 0


@dataclass
class _PoolInFlight:
    """One cell assigned to a pool worker (running or pipe-buffered)."""

    task: SupervisedTask
    attempt: int
    assigned_at: float
    last_progress_at: float
    progress: int = 0


@dataclass
class _PoolWorker:
    """One persistent worker: process, duplex pipe, assigned cells.

    ``queue[0]`` is the cell the worker is running (heartbeats and hang
    policing attach to it); ``queue[1:]`` are prefetched cells waiting
    in the worker's pipe (at most :data:`POOL_PREFETCH_DEPTH` total).
    """

    worker_id: str
    process: multiprocessing.process.BaseProcess
    conn: object
    queue: List[_PoolInFlight] = field(default_factory=list)
    cells: int = 0
    #: Set when the worker's ready handshake arrives (setup finished).
    ready: bool = False
    spawned_at: float = 0.0


@dataclass
class PoolReport:
    """What the persistent pool did during one :meth:`Supervisor.run`.

    Surfaced as :attr:`Supervisor.last_pool_report` (and from there in
    bench results) so dispatch overhead and respawn churn are
    observable rather than folklore.
    """

    n_workers: int
    workers_started: int = 0
    respawns: int = 0
    cells_per_worker: Dict[str, int] = field(default_factory=dict)


@dataclass
class _RemoteWorker:
    """One live session with a remote endpoint.

    Mirrors :class:`_PoolWorker` minus the process handle — there is
    no PID to kill or police for RSS across a host boundary; the only
    lever the parent holds is closing the connection.
    """

    worker_id: str
    address: str
    conn: object
    queue: List[_PoolInFlight] = field(default_factory=list)
    cells: int = 0
    connected_at: float = 0.0


@dataclass
class RemoteReport:
    """What remote dispatch did during one :meth:`Supervisor.run`.

    Surfaced as :attr:`Supervisor.last_remote_report`. ``degraded`` is
    the headline: True means every endpoint was lost and the run fell
    back down the ladder (local pool, then in-process serial) —
    results are still byte-identical, but the operator should know
    their cluster evaporated.
    """

    endpoints: List[str]
    sessions_opened: int = 0
    reconnects: int = 0
    cells_per_endpoint: Dict[str, int] = field(default_factory=dict)
    quarantined: Dict[str, str] = field(default_factory=dict)
    degraded: bool = False


class Supervisor:
    """Run tasks across subprocess workers under one :class:`SupervisorPolicy`.

    Construction is cheap; :meth:`run` owns the whole lifecycle: launch,
    heartbeat tracking, timeouts, retry scheduling, kill escalation,
    serial fallback, and graceful shutdown. ``on_settle(outcome)`` fires
    the moment each task reaches a terminal state — callers use it to
    flush results incrementally (checkpoints, the result store), which
    is exactly what makes interruption lossless.
    """

    def __init__(
        self,
        policy: SupervisorPolicy,
        log: Optional[Callable[[str], None]] = None,
        journal: Optional[IncidentJournal] = None,
        ctx=None,
        worker_setup: Optional[Callable[[], None]] = None,
    ):
        self.policy = policy
        self.emit = log if log is not None else (lambda message: None)
        self.journal = journal if journal is not None else journal_from_env()
        self.ctx = ctx if ctx is not None else multiprocessing.get_context()
        #: Picklable zero-arg warm-up hook run once per worker process
        #: (imports, kernel dlopen, cache opening). Failures are
        #: suppressed: a cold worker is slower, not broken.
        self.worker_setup = worker_setup
        #: The :class:`PoolReport` of the most recent pool-mode run.
        self.last_pool_report: Optional[PoolReport] = None
        #: The :class:`RemoteReport` of the most recent run that used
        #: remote endpoints (None when none were configured).
        self.last_remote_report: Optional[RemoteReport] = None
        self._signal_name: Optional[str] = None
        self._inline_mode = False

    # -- journal/log helpers ------------------------------------------------

    def _incident(self, event: str, key: str = "", attempt: int = 0,
                  detail: str = "", worker: str = "") -> None:
        if self.journal is not None:
            self.journal.record(event, key=key, attempt=attempt,
                                detail=detail, worker=worker)

    # -- signal handling ----------------------------------------------------

    @contextlib.contextmanager
    def _graceful_signals(self):
        """First SIGINT/SIGTERM requests shutdown; a second one forces it."""
        if threading.current_thread() is not threading.main_thread():
            yield
            return

        def request_shutdown(signum, frame):
            name = signal.Signals(signum).name
            if self._signal_name is not None:
                raise _SignalRaised(name)
            self._signal_name = name

        previous = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, request_shutdown)
            except (ValueError, OSError):
                pass
        try:
            yield
        finally:
            for signum, handler in previous.items():
                with contextlib.suppress(ValueError, OSError):
                    signal.signal(signum, handler)

    # -- the run loop -------------------------------------------------------

    def run(
        self,
        tasks: Sequence[SupervisedTask],
        n_workers: int = 1,
        on_settle: Optional[Callable[[TaskOutcome], None]] = None,
        dispatch: Optional[str] = None,
        endpoints: Optional[Sequence] = None,
    ) -> List[Optional[TaskOutcome]]:
        """Supervise every task to a terminal state; outcomes by ``index``.

        ``dispatch`` picks the worker lifecycle (``pool`` — persistent
        workers, the default — ``per-cell``, or ``remote``); ``None``
        defers to ``REPRO_DISPATCH``. Results are byte-identical in
        every mode.

        ``endpoints`` (``host:port`` strings or
        :class:`~repro.sim.remote.Endpoint`\\ s; ``None`` defers to
        ``REPRO_ENDPOINTS``) names remote ``repro worker serve``
        listeners. When any are given they form the *first* rung of the
        dispatch ladder regardless of mode: cells stream to the remotes
        and, only if every endpoint is quarantined, fall back to the
        local lifecycle ``dispatch`` names (and from there, on spawn
        failure, to in-process serial). ``dispatch="remote"`` with no
        endpoints at all is a configuration error.

        Raises :class:`~repro.errors.InterruptedRunError` on
        SIGINT/SIGTERM, after killing the in-flight workers; settled
        outcomes (already delivered through ``on_settle``) ride on the
        exception.
        """
        if n_workers <= 0:
            raise ConfigurationError("n_workers must be positive")
        mode = resolve_dispatch(dispatch)
        endpoint_list: List = []
        if endpoints is not None or os.environ.get("REPRO_ENDPOINTS"):
            from .remote import resolve_endpoints

            endpoint_list = resolve_endpoints(endpoints)
        if mode == "remote" and not endpoint_list:
            raise ConfigurationError(
                "dispatch='remote' needs at least one worker endpoint: "
                "pass endpoints=... / --endpoints, or set REPRO_ENDPOINTS"
            )
        policy = self.policy
        faults = parse_injected_faults(os.environ.get(FAULTS_ENV_VAR))
        tasks = list(tasks)
        outcomes: List[Optional[TaskOutcome]] = [None] * (
            max((t.index for t in tasks), default=-1) + 1
        )
        pending = deque(tasks)
        running: Dict[int, _Running] = {}
        pool_workers: Dict[str, _PoolWorker] = {}
        remote_workers: Dict[str, _RemoteWorker] = {}
        attempts: Dict[int, int] = {}
        elapsed: Dict[int, float] = {}
        eligible_at: Dict[int, float] = {}
        quarantined: Dict[str, str] = {}
        retry_budget = (
            policy.retry_budget
            if policy.retry_budget is not None
            else 2 * len(tasks)
        )
        budget_exhausted_reported = False
        spawn_failures = 0

        def settle(task: SupervisedTask, outcome: TaskOutcome) -> None:
            outcomes[task.index] = outcome
            if on_settle is not None:
                on_settle(outcome)
            status = "done" if outcome.ok else "failed"
            detail = "" if outcome.ok else f" ({outcome.error})"
            self.emit(
                f"{status}: {task.key} ({outcome.wall_seconds:.2f}s){detail}"
            )

        def settle_failure(task: SupervisedTask, attempt: int, reason: str,
                           retryable: bool, inline: bool = False,
                           worker_id: Optional[str] = None,
                           sim_seconds: Optional[float] = None) -> None:
            nonlocal retry_budget, budget_exhausted_reported
            key = task.key
            if retryable and attempt < policy.max_attempts and key not in quarantined:
                if retry_budget > 0:
                    retry_budget -= 1
                    delay = policy.backoff_delay(key, attempt)
                    eligible_at[task.index] = time.monotonic() + delay
                    pending.append(task)
                    self._incident("retry", key, attempt, reason,
                                   worker=worker_id or "")
                    self.emit(
                        f"retry: {key} after {reason} (backoff {delay:.1f}s)"
                    )
                    return
                if not budget_exhausted_reported:
                    budget_exhausted_reported = True
                    self._incident(
                        "retry_budget_exhausted", key, attempt,
                        "no further retries this run",
                    )
                    self.emit("retry budget exhausted: failures are now final")
            if retryable and attempt >= policy.max_attempts:
                # The cell defeated every attempt it was allowed:
                # quarantine it so a duplicate later in this run fails
                # fast instead of burning the budget again.
                quarantined[key] = reason
                self._incident("quarantine", key, attempt, reason,
                               worker=worker_id or "")
                self._incident("give_up", key, attempt, reason,
                               worker=worker_id or "")
            if worker_id:
                reason = f"{reason} [worker {worker_id}]"
            settle(task, TaskOutcome(
                task, error=reason, attempts=attempt,
                wall_seconds=elapsed.get(task.index, 0.0), inline=inline,
                worker_id=worker_id, sim_seconds=sim_seconds,
            ))

        def run_inline(task: SupervisedTask, attempt: int) -> None:
            start = time.perf_counter()
            try:
                value = task.target(task.payload)
            except _SignalRaised:
                raise
            except Exception as exc:
                elapsed[task.index] = (
                    elapsed.get(task.index, 0.0) + time.perf_counter() - start
                )
                settle_failure(
                    task, attempt, f"{type(exc).__name__}: {exc}",
                    is_retryable_exception(exc), inline=True,
                    worker_id="inline",
                    sim_seconds=time.perf_counter() - start,
                )
                return
            wall = time.perf_counter() - start
            elapsed[task.index] = elapsed.get(task.index, 0.0) + wall
            settle(task, TaskOutcome(
                task, value=value, attempts=attempt,
                wall_seconds=elapsed[task.index], inline=True,
                worker_id="inline", sim_seconds=wall,
            ))

        def launch(task: SupervisedTask) -> None:
            nonlocal spawn_failures
            attempt = attempts.get(task.index, 0) + 1
            attempts[task.index] = attempt
            if task.key in quarantined:
                self._incident("quarantine_hit", task.key, attempt,
                               quarantined[task.key])
                settle(task, TaskOutcome(
                    task,
                    error=f"quarantined poison cell: {quarantined[task.key]}",
                    attempts=attempt,
                ))
                return
            if self._inline_mode:
                run_inline(task, attempt)
                return
            try:
                if _spawn_should_fail(faults, task.key, attempt):
                    raise OSError("injected spawn failure")
                parent_conn, child_conn = self.ctx.Pipe(duplex=False)
                process = self.ctx.Process(
                    target=_worker_main,
                    args=(task.target, task.payload, task.key, attempt,
                          child_conn, policy.heartbeat_interval_accesses,
                          self.worker_setup, time.monotonic()),
                    daemon=True,
                )
                process.start()
            except OSError as exc:
                spawn_failures += 1
                attempts[task.index] = attempt - 1  # the task never ran
                self._incident("spawn_failure", task.key, attempt, str(exc))
                if spawn_failures >= policy.spawn_failure_limit:
                    self._inline_mode = True
                    self._incident(
                        "serial_fallback", task.key, attempt,
                        f"{spawn_failures} consecutive spawn failures",
                    )
                    self.emit(
                        "WARNING: subprocess spawn failed "
                        f"{spawn_failures} time(s) ({exc}); falling back to "
                        "in-process serial execution (results identical)"
                    )
                pending.appendleft(task)
                return
            spawn_failures = 0
            child_conn.close()
            now = time.monotonic()
            running[task.index] = _Running(
                task=task, process=process, conn=parent_conn,
                started_at=now, last_progress_at=now, attempt=attempt,
            )
            self.emit(
                f"start: {task.key} (attempt {attempt}/{policy.max_attempts})"
            )

        def kill_and_fail(entry: _Running, event: str, reason: str) -> None:
            worker_id = f"pid{entry.process.pid}"
            how = escalate_kill(
                entry.process, policy.grace_seconds,
                policy.join_timeout_seconds,
            )
            with contextlib.suppress(Exception):
                entry.conn.close()
            del running[entry.task.index]
            elapsed[entry.task.index] = (
                elapsed.get(entry.task.index, 0.0)
                + (time.monotonic() - entry.started_at)
            )
            self._incident(event, entry.task.key, entry.attempt,
                           f"{reason}; worker {how}", worker=worker_id)
            settle_failure(entry.task, entry.attempt, reason, retryable=True,
                           worker_id=worker_id)

        def shutdown(signal_name: str) -> None:
            self._incident(
                "interrupt", detail=f"{signal_name}: "
                f"{len(running) + len(pool_workers) + len(remote_workers)} "
                "worker(s) killed, "
                f"{sum(1 for o in outcomes if o is None)} cell(s) pending",
            )
            for entry in list(running.values()):
                escalate_kill(entry.process, policy.grace_seconds,
                              policy.join_timeout_seconds)
                with contextlib.suppress(Exception):
                    entry.conn.close()
            running.clear()
            for worker in list(pool_workers.values()):
                escalate_kill(worker.process, policy.grace_seconds,
                              policy.join_timeout_seconds)
                with contextlib.suppress(Exception):
                    worker.conn.close()
            pool_workers.clear()
            # Remote servers outlive this parent by design (another
            # host may resume the campaign); just end our sessions.
            for remote in list(remote_workers.values()):
                with contextlib.suppress(Exception):
                    remote.conn.send({"stop": True})
                with contextlib.suppress(Exception):
                    remote.conn.close()
            remote_workers.clear()
            settled = sum(1 for o in outcomes if o is not None)
            pending_keys = [t.key for t in tasks if outcomes[t.index] is None]
            raise InterruptedRunError(
                f"interrupted by {signal_name}: {settled} of {len(tasks)} "
                "cell(s) settled; completed work was flushed",
                signal_name=signal_name,
                outcomes=outcomes,
                pending_keys=pending_keys,
            )

        # -- remote-endpoint dispatch ------------------------------------
        #
        # The first rung of the ladder whenever endpoints are
        # configured. Each endpoint carries one session streaming cells
        # exactly like a pool worker (same prefetch depth, same
        # heartbeat/hang/timeout policing, same settle closures — so
        # retry, quarantine, and the budget behave identically), but
        # supervision is per *host*: a dropped connection re-enqueues
        # the in-flight cell through the retry classifier and
        # reconnects with backoff; an endpoint that keeps failing (or
        # speaks the wrong protocol/build) is quarantined; when every
        # endpoint is quarantined the loop returns with cells still
        # pending and the local rungs below drain them.

        def remote_loop() -> None:
            from .remote import connect_endpoint

            report = RemoteReport(
                endpoints=[e.address for e in endpoint_list],
            )
            self.last_remote_report = report
            endpoint_failures: Dict[str, int] = {}
            reconnect_at: Dict[str, float] = {}
            connected_before: set = set()
            next_session_seq = [0]

            def quarantine_endpoint(address: str, reason: str) -> None:
                report.quarantined[address] = reason
                self._incident("endpoint_quarantine", "", 0, reason,
                               worker=address)
                self.emit(f"endpoint {address} quarantined: {reason}")

            def note_endpoint_failure(address: str, reason: str,
                                      deterministic: bool = False) -> None:
                endpoint_failures[address] = (
                    endpoint_failures.get(address, 0) + 1
                )
                if (deterministic
                        or endpoint_failures[address]
                        >= policy.endpoint_failure_limit):
                    quarantine_endpoint(
                        address,
                        f"{reason} "
                        f"({endpoint_failures[address]} failure(s))",
                    )
                    return
                delay = policy.backoff_delay(
                    f"endpoint:{address}", endpoint_failures[address],
                )
                reconnect_at[address] = time.monotonic() + delay

            def ensure_endpoints(now: float) -> None:
                for endpoint in endpoint_list:
                    address = endpoint.address
                    if (address in remote_workers
                            or address in report.quarantined
                            or reconnect_at.get(address, 0.0) > now):
                        continue
                    try:
                        conn, _welcome = connect_endpoint(
                            endpoint, policy.connect_timeout_seconds,
                        )
                    except RemoteProtocolError as exc:
                        # Deterministic: the same two builds will skew
                        # again, so don't burn reconnect attempts.
                        self._incident("endpoint_failure", "", 0,
                                       str(exc), worker=address)
                        note_endpoint_failure(address, str(exc),
                                              deterministic=True)
                        continue
                    except (OSError, EOFError) as exc:
                        reason = (
                            f"unreachable ({type(exc).__name__}: {exc})"
                        )
                        self._incident("endpoint_failure", "", 0,
                                       reason, worker=address)
                        note_endpoint_failure(address, reason)
                        continue
                    endpoint_failures[address] = 0
                    worker_id = f"r{next_session_seq[0]}@{address}"
                    next_session_seq[0] += 1
                    remote_workers[address] = _RemoteWorker(
                        worker_id=worker_id, address=address, conn=conn,
                        connected_at=now,
                    )
                    report.sessions_opened += 1
                    report.cells_per_endpoint.setdefault(address, 0)
                    if address in connected_before:
                        report.reconnects += 1
                        self._incident("endpoint_reconnect", "", 0,
                                       "session re-established",
                                       worker=address)
                    else:
                        connected_before.add(address)
                        self._incident("endpoint_connect", "", 0,
                                       "session established",
                                       worker=address)
                    self.emit(f"endpoint {address} connected "
                              f"({worker_id})")

            def stop_remote() -> None:
                for remote in remote_workers.values():
                    with contextlib.suppress(Exception):
                        remote.conn.send({"stop": True})
                    with contextlib.suppress(Exception):
                        remote.conn.close()
                remote_workers.clear()

            def drop_remote_worker(remote: _RemoteWorker, event: str,
                                   reason: str) -> None:
                with contextlib.suppress(Exception):
                    remote.conn.close()
                remote_workers.pop(remote.address, None)
                queue = remote.queue
                remote.queue = []
                # Prefetched cells the endpoint never started go
                # straight back to pending without burning an attempt.
                for extra in reversed(queue[1:]):
                    attempts[extra.task.index] -= 1
                    pending.appendleft(extra.task)
                if queue:
                    inflight = queue[0]
                    index = inflight.task.index
                    elapsed[index] = (
                        elapsed.get(index, 0.0)
                        + (time.monotonic() - inflight.assigned_at)
                    )
                    self._incident(event, inflight.task.key,
                                   inflight.attempt, reason,
                                   worker=remote.worker_id)
                    settle_failure(inflight.task, inflight.attempt,
                                   reason, retryable=True,
                                   worker_id=remote.worker_id)
                else:
                    self._incident(event, "", 0, reason,
                                   worker=remote.worker_id)
                note_endpoint_failure(remote.address, reason)

            def assign_remote(now: float) -> bool:
                progressed = False
                blocked: List[SupervisedTask] = []
                for depth in range(1, POOL_PREFETCH_DEPTH + 1):
                    for remote in list(remote_workers.values()):
                        if len(remote.queue) >= depth:
                            continue
                        while pending:
                            task = pending.popleft()
                            if eligible_at.get(task.index, 0.0) > now:
                                blocked.append(task)
                                continue
                            if any(q.task.key == task.key
                                   for q in remote.queue):
                                blocked.append(task)
                                continue
                            attempt = attempts.get(task.index, 0) + 1
                            attempts[task.index] = attempt
                            if task.key in quarantined:
                                self._incident(
                                    "quarantine_hit", task.key, attempt,
                                    quarantined[task.key],
                                )
                                settle(task, TaskOutcome(
                                    task,
                                    error=("quarantined poison cell: "
                                           f"{quarantined[task.key]}"),
                                    attempts=attempt,
                                ))
                                progressed = True
                                continue
                            try:
                                remote.conn.send({
                                    "target": task.target,
                                    "payload": task.payload,
                                    "key": task.key,
                                    "attempt": attempt,
                                    "heartbeat_every":
                                        policy.heartbeat_interval_accesses,
                                })
                            except (OSError, ValueError,
                                    RemoteProtocolError) as exc:
                                attempts[task.index] = attempt - 1
                                pending.appendleft(task)
                                drop_remote_worker(
                                    remote, "crash",
                                    "connection lost on dispatch "
                                    f"({type(exc).__name__}: {exc})",
                                )
                                progressed = True
                                break
                            remote.queue.append(_PoolInFlight(
                                task=task, attempt=attempt,
                                assigned_at=now, last_progress_at=now,
                            ))
                            self.emit(
                                f"start: {task.key} (attempt {attempt}"
                                f"/{policy.max_attempts}) "
                                f"@ {remote.address}"
                            )
                            progressed = True
                            break
                pending.extendleft(reversed(blocked))
                return progressed

            def pump_remote(remote: _RemoteWorker) -> bool:
                final = None
                break_reason = None
                while True:
                    try:
                        if not remote.conn.poll():
                            break
                        message = remote.conn.recv()
                    except (EOFError, OSError, RemoteProtocolError) as exc:
                        break_reason = (
                            "connection lost mid-cell "
                            f"({type(exc).__name__}: {exc})"
                        )
                        break
                    if not isinstance(message, dict):
                        continue
                    if "hb" in message:
                        if remote.queue:
                            remote.queue[0].last_progress_at = (
                                time.monotonic()
                            )
                            remote.queue[0].progress = int(message["hb"])
                        continue
                    final = message
                    break
                if final is not None and remote.queue:
                    inflight = remote.queue.pop(0)
                    if remote.queue:
                        promoted_at = time.monotonic()
                        remote.queue[0].assigned_at = promoted_at
                        remote.queue[0].last_progress_at = promoted_at
                    remote.cells += 1
                    report.cells_per_endpoint[remote.address] = remote.cells
                    index = inflight.task.index
                    elapsed[index] = elapsed.get(index, 0.0) + _settled_wall(
                        final, time.monotonic() - inflight.assigned_at,
                    )
                    if final.get("ok"):
                        settle(inflight.task, TaskOutcome(
                            inflight.task, value=final["value"],
                            attempts=inflight.attempt,
                            wall_seconds=elapsed[index],
                            worker_id=remote.worker_id,
                            sim_seconds=final.get("sim_seconds"),
                        ))
                    else:
                        reason = final.get("error", "worker error")
                        self._incident("worker_error", inflight.task.key,
                                       inflight.attempt, reason,
                                       worker=remote.worker_id)
                        settle_failure(
                            inflight.task, inflight.attempt, reason,
                            bool(final.get("retryable", False)),
                            worker_id=remote.worker_id,
                            sim_seconds=final.get("sim_seconds"),
                        )
                    return True
                if break_reason is not None:
                    drop_remote_worker(remote, "crash", break_reason)
                    return True
                return False

            def police_remote(now: float) -> bool:
                progressed = False
                for remote in list(remote_workers.values()):
                    if not remote.queue:
                        continue
                    inflight = remote.queue[0]
                    # Policed entirely by the parent's clock — remote
                    # timestamps never enter the comparison, so host
                    # clock skew cannot misfire a kill.
                    wall = now - inflight.assigned_at
                    if (policy.timeout_seconds is not None
                            and wall > policy.timeout_seconds):
                        drop_remote_worker(
                            remote, "timeout",
                            "timeout after "
                            f"{policy.timeout_seconds:.1f}s",
                        )
                        progressed = True
                        continue
                    idle = now - inflight.last_progress_at
                    if (policy.hang_timeout_seconds is not None
                            and idle > policy.hang_timeout_seconds):
                        drop_remote_worker(
                            remote, "hang",
                            f"hung: no progress for "
                            f"{policy.hang_timeout_seconds:.1f}s "
                            f"(last heartbeat at {inflight.progress} "
                            "accesses)",
                        )
                        progressed = True
                return progressed

            import select as _select

            while pending or any(
                w.queue for w in remote_workers.values()
            ):
                if self._signal_name is not None:
                    shutdown(self._signal_name)
                now = time.monotonic()
                ensure_endpoints(now)
                if not remote_workers:
                    if len(report.quarantined) >= len(endpoint_list):
                        report.degraded = True
                        detail = (
                            f"all {len(endpoint_list)} endpoint(s) "
                            "quarantined; falling back to local "
                            "dispatch"
                        )
                        self._incident("remote_degraded", "", 0, detail)
                        self.emit(
                            f"WARNING: {detail} (results identical)"
                        )
                        return
                    time.sleep(0.005)  # reconnect backoff in progress
                    continue
                progressed = assign_remote(now)
                conns = {r.conn: r for r in remote_workers.values()}
                try:
                    ready, _, _ = _select.select(
                        list(conns), [], [],
                        0.0 if progressed else 0.005,
                    )
                except (OSError, ValueError):
                    ready = list(conns)
                for conn in ready:
                    remote = conns[conn]
                    if remote.address not in remote_workers:
                        continue
                    if pump_remote(remote):
                        progressed = True
                police_remote(time.monotonic())
            stop_remote()

        # -- persistent-pool dispatch ------------------------------------
        #
        # Workers are spawned once (``_pool_worker_main``), then cells
        # stream through them one in-flight cell per worker. Per-cell
        # outcome semantics (retry, quarantine, budget) reuse the same
        # settle closures as per-cell mode; what changes is the worker
        # lifecycle: a crashed/hung worker is killed and respawned
        # *alone*, its in-flight cell re-enqueued through the ordinary
        # retry classifier.

        def pool_loop() -> None:
            nonlocal spawn_failures
            report = PoolReport(n_workers=n_workers)
            self.last_pool_report = report
            next_worker_seq = [0]
            started_initial = [False]

            def spawn_pool_worker() -> bool:
                nonlocal spawn_failures
                seq = next_worker_seq[0]
                next_worker_seq[0] += 1
                worker_id = f"w{seq}"
                try:
                    if _spawn_should_fail(faults, f"pool-worker-{seq}", 1):
                        raise OSError("injected spawn failure")
                    parent_conn, child_conn = self.ctx.Pipe(duplex=True)
                    process = self.ctx.Process(
                        target=_pool_worker_main,
                        args=(worker_id, self.worker_setup, child_conn,
                              policy.heartbeat_interval_accesses),
                        daemon=True,
                    )
                    process.start()
                except OSError as exc:
                    spawn_failures += 1
                    self._incident("spawn_failure", "", 0, str(exc),
                                   worker=worker_id)
                    if spawn_failures >= policy.spawn_failure_limit:
                        self._inline_mode = True
                        self._incident(
                            "serial_fallback", "", 0,
                            f"{spawn_failures} consecutive spawn failures",
                        )
                        self.emit(
                            "WARNING: subprocess spawn failed "
                            f"{spawn_failures} time(s) ({exc}); falling "
                            "back to in-process serial execution "
                            "(results identical)"
                        )
                    return False
                spawn_failures = 0
                child_conn.close()
                pool_workers[worker_id] = _PoolWorker(
                    worker_id=worker_id, process=process, conn=parent_conn,
                    spawned_at=time.monotonic(),
                )
                report.workers_started += 1
                report.cells_per_worker.setdefault(worker_id, 0)
                if started_initial[0]:
                    report.respawns += 1
                    self._incident("worker_respawn", "", 0,
                                   "replacing a dead or killed worker",
                                   worker=worker_id)
                return True

            def ensure_workers() -> None:
                busy = sum(1 for w in pool_workers.values() if w.queue)
                desired = min(n_workers, busy + len(pending))
                while len(pool_workers) < desired and not self._inline_mode:
                    spawn_pool_worker()

            def stop_pool() -> None:
                for worker in pool_workers.values():
                    with contextlib.suppress(Exception):
                        worker.conn.send({"stop": True})
                for worker in pool_workers.values():
                    worker.process.join(policy.join_timeout_seconds)
                    if worker.process.is_alive():
                        escalate_kill(worker.process, policy.grace_seconds,
                                      policy.join_timeout_seconds)
                    with contextlib.suppress(Exception):
                        worker.conn.close()
                pool_workers.clear()

            def fail_pool_worker(worker: _PoolWorker, event: str,
                                 reason: str, kill: bool) -> None:
                if kill:
                    how = escalate_kill(worker.process, policy.grace_seconds,
                                        policy.join_timeout_seconds)
                    detail = f"{reason}; worker {how}"
                else:
                    worker.process.join(policy.join_timeout_seconds)
                    detail = reason
                with contextlib.suppress(Exception):
                    worker.conn.close()
                pool_workers.pop(worker.worker_id, None)
                queue = worker.queue
                worker.queue = []
                # Prefetched cells the worker never started go straight
                # back to pending without burning an attempt.
                for extra in reversed(queue[1:]):
                    attempts[extra.task.index] -= 1
                    pending.appendleft(extra.task)
                if not queue:
                    self._incident(event, "", 0, detail,
                                   worker=worker.worker_id)
                    return
                inflight = queue[0]
                index = inflight.task.index
                elapsed[index] = (
                    elapsed.get(index, 0.0)
                    + (time.monotonic() - inflight.assigned_at)
                )
                self._incident(event, inflight.task.key, inflight.attempt,
                               detail, worker=worker.worker_id)
                settle_failure(inflight.task, inflight.attempt, reason,
                               retryable=True, worker_id=worker.worker_id)

            def assign_work(now: float) -> bool:
                # Two passes: every ready worker gets a first cell
                # before any worker gets its prefetch slot filled, so
                # prefetching never starves an idle worker.
                progressed = False
                blocked: List[SupervisedTask] = []
                for depth in range(1, POOL_PREFETCH_DEPTH + 1):
                    for worker in list(pool_workers.values()):
                        if not worker.ready or len(worker.queue) >= depth:
                            continue
                        while pending:
                            task = pending.popleft()
                            if eligible_at.get(task.index, 0.0) > now:
                                blocked.append(task)
                                continue
                            if any(q.task.key == task.key
                                   for q in worker.queue):
                                # Never queue a key behind itself: the
                                # first instance must settle first so
                                # quarantine can veto the duplicate,
                                # exactly as in per-cell dispatch.
                                blocked.append(task)
                                continue
                            attempt = attempts.get(task.index, 0) + 1
                            attempts[task.index] = attempt
                            if task.key in quarantined:
                                self._incident("quarantine_hit", task.key,
                                               attempt, quarantined[task.key])
                                settle(task, TaskOutcome(
                                    task,
                                    error=("quarantined poison cell: "
                                           f"{quarantined[task.key]}"),
                                    attempts=attempt,
                                ))
                                progressed = True
                                continue
                            try:
                                worker.conn.send({
                                    "target": task.target,
                                    "payload": task.payload,
                                    "key": task.key,
                                    "attempt": attempt,
                                    "dispatched": time.monotonic(),
                                })
                            except (OSError, ValueError) as exc:
                                attempts[task.index] = attempt - 1
                                pending.appendleft(task)
                                # A broken dispatch pipe usually means
                                # the worker died; report its exit code
                                # rather than the symptom when so.
                                worker.process.join(
                                    policy.join_timeout_seconds)
                                alive = worker.process.is_alive()
                                if alive:
                                    reason = ("worker pipe broken on "
                                              f"dispatch ({exc})")
                                else:
                                    reason = ("worker crashed (exit code "
                                              f"{worker.process.exitcode})")
                                fail_pool_worker(worker, "crash", reason,
                                                 kill=alive)
                                progressed = True
                                break
                            worker.queue.append(_PoolInFlight(
                                task=task, attempt=attempt,
                                assigned_at=now, last_progress_at=now,
                            ))
                            self.emit(
                                f"start: {task.key} "
                                f"(attempt {attempt}/{policy.max_attempts})"
                            )
                            progressed = True
                            break
                pending.extendleft(reversed(blocked))
                return progressed

            def pump_worker(worker: _PoolWorker) -> bool:
                final = None
                broken = False
                while True:
                    try:
                        if not worker.conn.poll():
                            break
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        broken = True
                        break
                    if not isinstance(message, dict):
                        continue
                    if "ready" in message:
                        worker.ready = True
                        continue
                    if "hb" in message:
                        if worker.queue:
                            worker.queue[0].last_progress_at = time.monotonic()
                            worker.queue[0].progress = int(message["hb"])
                        continue
                    final = message
                    break
                if final is not None and worker.queue:
                    inflight = worker.queue.pop(0)
                    if worker.queue:
                        # The prefetched cell is now the one running:
                        # restart its policing clocks so its queue wait
                        # is not mistaken for a hang or timeout.
                        promoted_at = time.monotonic()
                        worker.queue[0].assigned_at = promoted_at
                        worker.queue[0].last_progress_at = promoted_at
                    worker.cells += 1
                    report.cells_per_worker[worker.worker_id] = worker.cells
                    index = inflight.task.index
                    elapsed[index] = elapsed.get(index, 0.0) + _settled_wall(
                        final, time.monotonic() - inflight.assigned_at,
                    )
                    if final.get("ok"):
                        settle(inflight.task, TaskOutcome(
                            inflight.task, value=final["value"],
                            attempts=inflight.attempt,
                            wall_seconds=elapsed[index],
                            worker_id=worker.worker_id,
                            sim_seconds=final.get("sim_seconds"),
                        ))
                    else:
                        reason = final.get("error", "worker error")
                        self._incident("worker_error", inflight.task.key,
                                       inflight.attempt, reason,
                                       worker=worker.worker_id)
                        settle_failure(
                            inflight.task, inflight.attempt, reason,
                            bool(final.get("retryable", False)),
                            worker_id=worker.worker_id,
                            sim_seconds=final.get("sim_seconds"),
                        )
                    return True
                if broken or not worker.process.is_alive():
                    worker.process.join(policy.join_timeout_seconds)
                    reason = (
                        "worker crashed "
                        f"(exit code {worker.process.exitcode})"
                    )
                    fail_pool_worker(worker, "crash", reason, kill=False)
                    return True
                return False

            def police_workers(now: float) -> bool:
                progressed = False
                for worker in list(pool_workers.values()):
                    inflight = worker.queue[0] if worker.queue else None
                    if inflight is None:
                        if not worker.process.is_alive():
                            worker.process.join(policy.join_timeout_seconds)
                            fail_pool_worker(
                                worker, "crash",
                                "idle worker died (exit code "
                                f"{worker.process.exitcode})", kill=False,
                            )
                            progressed = True
                        elif (not worker.ready
                              and policy.hang_timeout_seconds is not None
                              and now - worker.spawned_at
                              > policy.hang_timeout_seconds
                              + policy.grace_seconds):
                            # Setup wedged before the ready handshake; no
                            # cell is lost — just replace the worker.
                            fail_pool_worker(
                                worker, "hang",
                                "worker never became ready", kill=True,
                            )
                            progressed = True
                        continue
                    wall = now - inflight.assigned_at
                    if (policy.timeout_seconds is not None
                            and wall > policy.timeout_seconds):
                        fail_pool_worker(
                            worker, "timeout",
                            f"timeout after {policy.timeout_seconds:.1f}s",
                            kill=True,
                        )
                        progressed = True
                        continue
                    idle = now - inflight.last_progress_at
                    if (policy.hang_timeout_seconds is not None
                            and idle > policy.hang_timeout_seconds):
                        fail_pool_worker(
                            worker, "hang",
                            f"hung: no progress for "
                            f"{policy.hang_timeout_seconds:.1f}s "
                            f"(last heartbeat at {inflight.progress} "
                            "accesses)", kill=True,
                        )
                        progressed = True
                        continue
                    if policy.max_rss_bytes is not None:
                        rss = _rss_bytes(worker.process.pid)
                        if rss is not None and rss > policy.max_rss_bytes:
                            fail_pool_worker(
                                worker, "rss_kill",
                                f"RSS {rss} bytes exceeded the "
                                f"{policy.max_rss_bytes}-byte ceiling",
                                kill=True,
                            )
                            progressed = True
                return progressed

            while pending or any(w.queue for w in pool_workers.values()):
                if self._signal_name is not None:
                    shutdown(self._signal_name)
                busy = sum(1 for w in pool_workers.values() if w.queue)
                if self._inline_mode:
                    if busy == 0:
                        break  # drain the rest through the serial loop
                else:
                    ensure_workers()
                    if not started_initial[0] and pool_workers:
                        started_initial[0] = True
                        self._incident(
                            "pool_start", "", 0,
                            f"{len(pool_workers)} persistent worker(s)",
                        )
                    if self._inline_mode and busy == 0:
                        break
                now = time.monotonic()
                progressed = False
                if not self._inline_mode:
                    progressed = assign_work(now)
                conns = {w.conn: w for w in pool_workers.values()}
                if conns:
                    # connection.wait() is the latency lever: a final
                    # message wakes the parent immediately instead of on
                    # the next sleep-poll tick, so pool dispatch costs
                    # microseconds, not a scheduler quantum.
                    try:
                        ready = _wait_for_conns(
                            list(conns),
                            timeout=0.0 if progressed else 0.005,
                        )
                    except OSError:
                        ready = list(conns)
                    for conn in ready:
                        worker = conns[conn]
                        if worker.worker_id not in pool_workers:
                            continue
                        if pump_worker(worker):
                            progressed = True
                elif not progressed:
                    time.sleep(0.005)
                police_workers(time.monotonic())
            stop_pool()

        with self._graceful_signals():
            try:
                if endpoint_list and not self._inline_mode:
                    # Rung 1: remote endpoints. Returns early (with
                    # cells still pending) only when every endpoint
                    # has been quarantined.
                    remote_loop()
                if mode in ("pool", "remote") and not self._inline_mode:
                    # Rung 2 (the default lifecycle): the local pool;
                    # on serial fallback, pool_loop returns with cells
                    # still pending and the loop below (whose launch()
                    # is inline by then) drains them.
                    pool_loop()
                while pending or running:
                    if self._signal_name is not None:
                        shutdown(self._signal_name)
                    now = time.monotonic()
                    # Launch eligible tasks into free worker slots.
                    launched_any = False
                    if pending and len(running) < n_workers:
                        blocked = []
                        while pending and len(running) < n_workers:
                            task = pending.popleft()
                            if eligible_at.get(task.index, 0.0) > now:
                                blocked.append(task)
                                continue
                            launch(task)
                            launched_any = True
                            if self._inline_mode and pending:
                                # Inline execution is synchronous; check
                                # for signals between cells.
                                break
                        pending.extendleft(reversed(blocked))
                    progressed = launched_any
                    now = time.monotonic()
                    for index in list(running):
                        entry = running.get(index)
                        if entry is None:
                            continue
                        final = None
                        broken = False
                        while entry.conn.poll():
                            try:
                                message = entry.conn.recv()
                            except (EOFError, OSError):
                                broken = True
                                break
                            if "hb" in message:
                                entry.last_progress_at = time.monotonic()
                                entry.progress = int(message["hb"])
                                continue
                            final = message
                            break
                        if final is not None:
                            worker_id = f"pid{entry.process.pid}"
                            entry.process.join(policy.join_timeout_seconds)
                            if entry.process.is_alive():
                                escalate_kill(
                                    entry.process, policy.grace_seconds,
                                    policy.join_timeout_seconds,
                                )
                            with contextlib.suppress(Exception):
                                entry.conn.close()
                            del running[index]
                            elapsed[index] = elapsed.get(
                                index, 0.0,
                            ) + _settled_wall(final, now - entry.started_at)
                            progressed = True
                            if final.get("ok"):
                                settle(entry.task, TaskOutcome(
                                    entry.task, value=final["value"],
                                    attempts=entry.attempt,
                                    wall_seconds=elapsed[index],
                                    worker_id=worker_id,
                                    sim_seconds=final.get("sim_seconds"),
                                ))
                            else:
                                reason = final.get("error", "worker error")
                                self._incident("worker_error", entry.task.key,
                                               entry.attempt, reason,
                                               worker=worker_id)
                                settle_failure(
                                    entry.task, entry.attempt, reason,
                                    bool(final.get("retryable", False)),
                                    worker_id=worker_id,
                                    sim_seconds=final.get("sim_seconds"),
                                )
                            continue
                        if broken or not entry.process.is_alive():
                            # Died without a final message: crash
                            # (segfault, OOM kill, os._exit, ...).
                            worker_id = f"pid{entry.process.pid}"
                            entry.process.join(policy.join_timeout_seconds)
                            code = entry.process.exitcode
                            with contextlib.suppress(Exception):
                                entry.conn.close()
                            del running[index]
                            elapsed[index] = (
                                elapsed.get(index, 0.0)
                                + (now - entry.started_at)
                            )
                            progressed = True
                            reason = f"worker crashed (exit code {code})"
                            self._incident("crash", entry.task.key,
                                           entry.attempt, reason,
                                           worker=worker_id)
                            settle_failure(entry.task, entry.attempt, reason,
                                           retryable=True, worker_id=worker_id)
                            continue
                        wall = now - entry.started_at
                        if (policy.timeout_seconds is not None
                                and wall > policy.timeout_seconds):
                            progressed = True
                            kill_and_fail(
                                entry, "timeout",
                                f"timeout after {policy.timeout_seconds:.1f}s",
                            )
                            continue
                        idle = now - entry.last_progress_at
                        if (policy.hang_timeout_seconds is not None
                                and idle > policy.hang_timeout_seconds):
                            progressed = True
                            kill_and_fail(
                                entry, "hang",
                                f"hung: no progress for "
                                f"{policy.hang_timeout_seconds:.1f}s "
                                f"(last heartbeat at "
                                f"{entry.progress} accesses)",
                            )
                            continue
                        if policy.max_rss_bytes is not None:
                            rss = _rss_bytes(entry.process.pid)
                            if rss is not None and rss > policy.max_rss_bytes:
                                progressed = True
                                kill_and_fail(
                                    entry, "rss_kill",
                                    f"RSS {rss} bytes exceeded the "
                                    f"{policy.max_rss_bytes}-byte ceiling",
                                )
                                continue
                    if not progressed and (pending or running):
                        time.sleep(0.005)
                if self._signal_name is not None:
                    shutdown(self._signal_name)
            except _SignalRaised as exc:
                shutdown(exc.signal_name)
        return outcomes
