"""The vector engine backend: the run loop on the compiled columnar kernel.

:func:`run_trace_vector` lowers a run onto ``_vector_kernel.c`` when —
and only when — every piece of the configuration has a kernel-side
mirror. The whole paper grid qualifies: CAMEO's co-located design, the
no-stacked baseline, the Alloy Cache (and DoubleUse) with the MAP-I
predictor, and the TLM family (static/oracle steady state, dynamic
swap-on-touch migration, frequency counting). Anything else returns
``None`` and :func:`repro.sim.engine.run_trace` falls back to the
reference Python loop. The two backends are *byte-identical* (the
golden corpus enforces it): the kernel shares the Python objects' own
columnar buffers (zero-copy via ctypes), performs the identical
sequence of float operations, and *bails back* to Python for everything
it does not model — page faults, the warmup barrier's stat reset,
progress heartbeats, a full posted heap or swap journal, and TLM-Freq's
epoch rebalance (which runs through ``TlmFreq.service_epoch`` itself).

Stats discipline: counters are synced as *running values*, not deltas —
the kernel continues Python's accumulation in place (seeded on entry,
copied back on exit), so float accumulation order is exactly the
reference interpreter's. Timing state (bank/bus horizons, LLT, LLP and
MAP-I tables, L3 metadata, page reference/dirty bits, TLM placement
counters) needs no syncing at all: the kernel mutates the same memory
the objects wrap. Kernel-side page migrations are journaled as frame
pairs and replayed into the Python page table and free lists on every
exit (:meth:`MemoryManager.reconcile_external_swap`).
"""

from __future__ import annotations

import ctypes
import struct
from array import array
from collections import OrderedDict
from typing import List, Optional, Sequence

from ..core.lead import LEAD_BYTES
from ..core.llp import LastLocationPredictor, PerfectPredictor, SamPredictor
from ..core.llt_designs import CoLocatedLltCameo
from ..errors import SimulationError
from ..orgs.alloy import ALLOY_TAD_BYTES, AlloyCacheOrg, MapIPredictor
from ..orgs.baseline import NoStackedBaseline
from ..orgs.doubleuse import DoubleUse
from ..orgs.tlm import TlmStatic
from ..orgs.tlm_dynamic import TlmDynamic
from ..orgs.tlm_freq import TlmFreq
from ..orgs.tlm_oracle import TlmOracle
from ..request import MemoryRequest
from ..workloads.replay import ReplayTraceSource
from ..workloads.synthetic import SyntheticTraceGenerator
from ._kernel_build import load_kernel

# -- Kernel ABI mirrors (must match _vector_kernel.c) ---------------------------

(
    RK_DONE,
    RK_FAULT,
    RK_BARRIER,
    RK_PROGRESS,
    RK_POSTED_FULL,
    RK_ERROR,
    RK_EPOCH,
    RK_SWAP_LOG,
) = range(8)

II_NUM_CONTEXTS = 0
II_N_ACCESSES = 1
II_WARMUP = 2
II_LINES_PER_PAGE = 3
II_VSTRIDE = 4
II_ORG_KIND = 5
II_SWAP_ON_WRITE = 6
II_PREDICTOR_KIND = 7
II_LLP_ENTRIES = 8
II_GROUP_BITS = 9
II_GROUP_MASK = 10
II_TOTAL_LINES = 11
II_GROUP_SIZE = 12
II_HAS_L3 = 13
II_L3_SETS = 14
II_L3_WAYS = 15
II_N_DEVICES = 16
II_DEMAND_DEV = 17
II_POSTED_CAP = 18
II_PROGRESS_EVERY = 19
II_SIZE0_BYTES = 20
II_SIZE1_BYTES = 21
II_SIZE2_BYTES = 22
II_DEV_GEOM = 23
II_NUM_SETS = 31
II_MAPI_ENTRIES = 32
II_MAPI_THRESHOLD = 33
II_MAPI_MAX = 34
II_STACKED_LINES = 35
II_STACKED_PAGES = 36
II_MIG_THRESHOLD = 37
II_EPOCH_ACCESSES = 38
II_SWAP_LOG_CAP = 39
II_PHASE = 40
II_PENDING_CTX = 41
II_CONTEXTS_WARM = 42
II_WARMUP_DONE = 43
II_POSTED_LEN = 44
II_POST_SEQ = 45
II_PROGRESS_COUNT = 46
II_ERROR_CODE = 47
II_CLOCK_HAND = 48
II_EPOCH_COUNT = 49
II_SWAP_LOG_LEN = 50
II_PENDING_LINE = 51
II_STAT_ORG = 52
II_STAT_CASE = 61
II_STAT_L3 = 66
II_STAT_VM = 69
II_STAT_ALLOY = 70
II_STAT_MAPI = 74
II_STAT_DEV = 76
II_CTX_BASE = 90

FF_L3_LATENCY = 0
FF_MLP = 1
FF_PENDING_NOW = 2
FF_PENDING_STALL = 3
FF_EPOCH_TIME = 4
FF_CYC = 5
FF_WBUF = 29
FF_DSTAT = 31
FF_CTX_BASE = 35

P_FWD = 0
P_INV = 1
P_PAGE_REF = 2
P_PAGE_DIRTY = 3
P_LLT_TABLE = 4
P_LLT_RESIDENT = 5
P_L3_VALID = 6
P_L3_DIRTY = 7
P_L3_TAGS = 8
P_L3_LRU = 9
P_POSTED = 10
P_SWAP_LOG = 11
P_ORG_A = 12
P_ORG_B = 13
P_DEV = 14
P_TRACE = 22

#: One posted heap entry: time(f64), seq, n_ops, ops[4] — 56 bytes.
_ENTRY = struct.Struct("=dqqqqqq")
ENTRY_BYTES = _ENTRY.size

#: Journal capacity in frame pairs; the kernel bails for a replay when
#: it approaches this, so the value only tunes bail frequency.
SWAP_LOG_CAP = 4096

#: Running-value stat field names, in kernel slot order.
_ORG_FIELDS = (
    "accesses", "reads", "writes", "stacked_services", "offchip_services",
    "line_swaps", "writeback_accesses", "writeback_stacked_services",
    "page_migrations",
)
_CASE_FIELDS = (
    "case1_stacked_correct", "case2_stacked_predicted_offchip",
    "case3_offchip_predicted_stacked", "case4_offchip_correct",
    "case5_offchip_wrong_slot",
)
_L3_FIELDS = ("accesses", "misses", "writebacks")
_ALLOY_FIELDS = ("hits", "misses", "fills", "dirty_victim_writebacks")
_DEV_INT_FIELDS = (
    "reads", "writes", "bytes_read", "bytes_written",
    "row_hits", "row_closed", "row_conflicts",
)

#: Cap on the dense translation map (entries = contexts x vpages); runs
#: with larger virtual footprints fall back to the python loop.
MAX_FWD_ENTRIES = 4_194_304

#: Backend observability (tests assert engagement; the bench records
#: per-cell backends; ops can check why a run fell back without
#: bisecting configs). ``by_org`` maps the organization name to its own
#: kernel_runs/fallbacks tally so per-org engagement survives mixing.
backend_stats = {
    "kernel_runs": 0,
    "fallbacks": 0,
    "kernel_calls": 0,
    "bails": {
        "fault": 0, "barrier": 0, "progress": 0, "posted_full": 0,
        "epoch": 0, "swap_log": 0,
    },
    "by_org": {},
    "last_fallback_reason": None,
}


def reset_backend_stats() -> None:
    backend_stats["kernel_runs"] = 0
    backend_stats["fallbacks"] = 0
    backend_stats["kernel_calls"] = 0
    backend_stats["bails"] = {
        "fault": 0, "barrier": 0, "progress": 0, "posted_full": 0,
        "epoch": 0, "swap_log": 0,
    }
    backend_stats["by_org"] = {}
    backend_stats["last_fallback_reason"] = None


def _org_tally(org_name: str) -> dict:
    return backend_stats["by_org"].setdefault(
        org_name, {"kernel_runs": 0, "fallbacks": 0, "last_fallback_reason": None}
    )


def _fallback(reason: str, org_name: Optional[str] = None):
    backend_stats["fallbacks"] += 1
    backend_stats["last_fallback_reason"] = reason
    if org_name is not None:
        tally = _org_tally(org_name)
        tally["fallbacks"] += 1
        tally["last_fallback_reason"] = reason
    return None


#: Organization names whose paper-grid configuration has a kernel-side
#: service path. ``repro bench --require-kernel`` fails when any of
#: these records a fallback, and the per-org engagement tests cover
#: each one. The cameo variants (sam/perfect/ideal-llt/...) subclass
#: the lowered designs and are intentionally absent: the exact-type
#: gate refuses subclasses it has never audited; ``cameo-sam`` and
#: ``cameo-perfect`` are the co-located design with stock predictors,
#: which the kernel models directly.
LOWERED_ORG_NAMES = (
    "baseline", "cameo", "cameo-sam", "cameo-perfect", "cache", "doubleuse",
    "tlm-static", "tlm-oracle", "tlm-dynamic", "tlm-freq",
)


def snapshot_backend_stats() -> dict:
    """A deep copy of :data:`backend_stats`, for later delta-taking."""
    return {
        "kernel_runs": backend_stats["kernel_runs"],
        "fallbacks": backend_stats["fallbacks"],
        "kernel_calls": backend_stats["kernel_calls"],
        "bails": dict(backend_stats["bails"]),
        "by_org": {org: dict(t) for org, t in backend_stats["by_org"].items()},
    }


def backend_stats_since(before: dict) -> dict:
    """What :data:`backend_stats` accumulated since ``before``.

    The counters are process-local, so a subprocess worker's engagement
    is invisible to its parent. :func:`repro.sim.parallel.run_job`
    stamps this delta on the outgoing :class:`RunResult` envelope and
    the pool folds it back in with :func:`merge_backend_stats` — the
    fix for parallel grids silently reporting zero kernel runs.
    """
    fallbacks = backend_stats["fallbacks"] - before.get("fallbacks", 0)
    by_org = {}
    for org, tally in backend_stats["by_org"].items():
        prior = before.get("by_org", {}).get(org, {})
        delta = {
            "kernel_runs": tally["kernel_runs"] - prior.get("kernel_runs", 0),
            "fallbacks": tally["fallbacks"] - prior.get("fallbacks", 0),
            "last_fallback_reason": (
                tally["last_fallback_reason"]
                if tally["fallbacks"] > prior.get("fallbacks", 0)
                else None
            ),
        }
        if delta["kernel_runs"] or delta["fallbacks"]:
            by_org[org] = delta
    before_bails = before.get("bails", {})
    return {
        "kernel_runs": backend_stats["kernel_runs"] - before.get("kernel_runs", 0),
        "fallbacks": fallbacks,
        "kernel_calls": backend_stats["kernel_calls"] - before.get("kernel_calls", 0),
        "bails": {
            key: value - before_bails.get(key, 0)
            for key, value in backend_stats["bails"].items()
        },
        "by_org": by_org,
        "last_fallback_reason": (
            backend_stats["last_fallback_reason"] if fallbacks else None
        ),
    }


def merge_backend_stats(delta: dict) -> None:
    """Fold a worker's :func:`backend_stats_since` delta into this process."""
    backend_stats["kernel_runs"] += delta.get("kernel_runs", 0)
    backend_stats["fallbacks"] += delta.get("fallbacks", 0)
    backend_stats["kernel_calls"] += delta.get("kernel_calls", 0)
    bails = backend_stats["bails"]
    for key, value in delta.get("bails", {}).items():
        bails[key] = bails.get(key, 0) + value
    for org, per_org in delta.get("by_org", {}).items():
        tally = _org_tally(org)
        tally["kernel_runs"] += per_org.get("kernel_runs", 0)
        tally["fallbacks"] += per_org.get("fallbacks", 0)
        if per_org.get("last_fallback_reason") is not None:
            tally["last_fallback_reason"] = per_org["last_fallback_reason"]
    if delta.get("last_fallback_reason") is not None:
        backend_stats["last_fallback_reason"] = delta["last_fallback_reason"]


# -- Trace materialization (memoized columnar views of the sources) -------------

_TRACE_MEMO_CAP = 16
#: key -> (source_ref, (vline 'q', pc 'q', is_write bytes, vmax)). The
#: source reference keeps id() stable for the key's lifetime.
_trace_memo: "OrderedDict" = OrderedDict()


def _columnar_trace(gen, n_accesses: int):
    """(vline, pc, is_write, vmax) arrays for one source, memoized.

    Replay sources contribute their full raw record list (the kernel
    wraps modulo its length, matching ``generate``'s ``i % len``);
    synthetic generators are materialized for exactly ``n_accesses``
    records — safe because ``generate`` seeds a fresh PRNG per call, so
    materializing is observationally pure.
    """
    if type(gen) is ReplayTraceSource:
        key = (id(gen), -1)
        raw = gen._raw
    else:  # SyntheticTraceGenerator (lowering already type-checked)
        key = (id(gen), n_accesses)
        raw = None
    memo = _trace_memo.get(key)
    if memo is not None and memo[0] is gen:
        _trace_memo.move_to_end(key)
        return memo[1]
    if raw is None:
        raw = list(gen.generate(n_accesses))
    vline = array("q", (r[0] for r in raw))
    pc = array("q", (r[1] for r in raw))
    is_write = bytearray(1 if r[2] else 0 for r in raw)
    vmax = max(vline) if vline else 0
    columns = (vline, pc, is_write, vmax)
    _trace_memo[key] = (gen, columns)
    while len(_trace_memo) > _TRACE_MEMO_CAP:
        _trace_memo.popitem(last=False)
    return columns


# -- Zero-copy buffer export ----------------------------------------------------

def _addr_of_bytes(buf: bytearray, keepalive: list) -> int:
    view = (ctypes.c_char * len(buf)).from_buffer(buf)
    keepalive.append(view)
    return ctypes.addressof(view)


def _addr_of_array(arr: array, keepalive: list) -> int:
    keepalive.append(arr)
    return arr.buffer_info()[0]


# -- Stats sync (running values, both directions) -------------------------------

def _sync_stats_in(I, F, org, l3, mm, devices, org_kind: int) -> None:
    s = org.stats
    for i, name in enumerate(_ORG_FIELDS):
        I[II_STAT_ORG + i] = getattr(s, name)
    if org_kind == 1:
        cs = org.case_stats
        for i, name in enumerate(_CASE_FIELDS):
            I[II_STAT_CASE + i] = getattr(cs, name)
    elif org_kind == 2:
        als = org.alloy_stats
        for i, name in enumerate(_ALLOY_FIELDS):
            I[II_STAT_ALLOY + i] = getattr(als, name)
        I[II_STAT_MAPI] = org.predictor.predictions
        I[II_STAT_MAPI + 1] = org.predictor.correct
    if l3 is not None:
        ls = l3.stats
        for i, name in enumerate(_L3_FIELDS):
            I[II_STAT_L3 + i] = getattr(ls, name)
    I[II_STAT_VM] = mm.stats.translations
    for d, dev in enumerate(devices):
        ds = dev.stats
        base = II_STAT_DEV + d * 7
        for i, name in enumerate(_DEV_INT_FIELDS):
            I[base + i] = getattr(ds, name)
        F[FF_DSTAT + d * 2] = ds.queue_wait_cycles
        F[FF_DSTAT + d * 2 + 1] = ds.service_cycles


def _sync_stats_out(I, F, org, l3, mm, devices, org_kind: int) -> None:
    s = org.stats
    for i, name in enumerate(_ORG_FIELDS):
        setattr(s, name, I[II_STAT_ORG + i])
    if org_kind == 1:
        cs = org.case_stats
        for i, name in enumerate(_CASE_FIELDS):
            setattr(cs, name, I[II_STAT_CASE + i])
    elif org_kind == 2:
        als = org.alloy_stats
        for i, name in enumerate(_ALLOY_FIELDS):
            setattr(als, name, I[II_STAT_ALLOY + i])
        org.predictor.predictions = I[II_STAT_MAPI]
        org.predictor.correct = I[II_STAT_MAPI + 1]
    if l3 is not None:
        ls = l3.stats
        for i, name in enumerate(_L3_FIELDS):
            setattr(ls, name, I[II_STAT_L3 + i])
    mm.stats.translations = I[II_STAT_VM]
    for d, dev in enumerate(devices):
        ds = dev.stats
        base = II_STAT_DEV + d * 7
        for i, name in enumerate(_DEV_INT_FIELDS):
            setattr(ds, name, I[base + i])
        ds.queue_wait_cycles = F[FF_DSTAT + d * 2]
        ds.service_cycles = F[FF_DSTAT + d * 2 + 1]


# -- Posted heap sync -----------------------------------------------------------
#
# Python's heapq array and the kernel's binary min-heap maintain the same
# invariant (parent <= children under the (time, seq) total order, seqs
# unique), so entries copy verbatim in array order in both directions —
# no re-heapification, and the pop order is the identical total order.
#
# Op encoding: line<<8 | stream<<4 | write<<3 | slot<<1 | dev. Three
# burst-size slots (line, LEAD, TAD); stream ops move lines_per_page
# whole lines (a page migration's four bulk transfers).

_SLOT_SIZES = (None, LEAD_BYTES, ALLOY_TAD_BYTES)  # slot 0 = line_bytes


def _encodable_posted(
    posted: list, dev_ids: dict, line_bytes: int, lines_per_page: int
) -> bool:
    for _, _, op in posted:
        if callable(op):
            return False
        if len(op) > 4:
            return False
        for entry in op:
            if len(entry) == 5:
                device, _, n_bytes, _, n_lines = entry
                if n_lines != lines_per_page or n_bytes != line_bytes:
                    return False
            else:
                device, _, n_bytes, _ = entry
                if n_bytes != line_bytes and n_bytes not in (
                    LEAD_BYTES, ALLOY_TAD_BYTES
                ):
                    return False
            if id(device) not in dev_ids:
                return False
    return True


def _encode_posted(posted: list, buf: bytearray, dev_ids: dict, line_bytes: int) -> None:
    for i, (time, seq, op) in enumerate(posted):
        packed = [0, 0, 0, 0]
        for k, entry in enumerate(op):
            if len(entry) == 5:
                device, line, _, is_write, _ = entry
                stream, slot = 1, 0
            else:
                device, line, n_bytes, is_write = entry
                stream = 0
                if n_bytes == line_bytes:
                    slot = 0
                elif n_bytes == LEAD_BYTES:
                    slot = 1
                else:
                    slot = 2
            packed[k] = (
                (line << 8)
                | (stream << 4)
                | (8 if is_write else 0)
                | (slot << 1)
                | dev_ids[id(device)]
            )
        _ENTRY.pack_into(buf, i * ENTRY_BYTES, float(time), seq, len(op), *packed)


def _decode_posted(
    buf: bytearray, n: int, devices, line_bytes: int, lines_per_page: int
) -> list:
    entries = []
    for i in range(n):
        time, seq, n_ops, o0, o1, o2, o3 = _ENTRY.unpack_from(buf, i * ENTRY_BYTES)
        ops = []
        for raw in (o0, o1, o2, o3)[:n_ops]:
            device = devices[raw & 1]
            line = raw >> 8
            is_write = bool(raw & 8)
            if raw & 16:
                ops.append((device, line, line_bytes, is_write, lines_per_page))
            else:
                slot = (raw >> 1) & 3
                n_bytes = line_bytes if slot == 0 else _SLOT_SIZES[slot]
                ops.append((device, line, n_bytes, is_write))
        entries.append((time, seq, tuple(ops)))
    return entries


# -- The backend ----------------------------------------------------------------

def run_trace_vector(
    machine,
    generators: Sequence,
    spec,
    accesses_per_context: Optional[int] = None,
    instructions_per_event: Optional[float] = None,
    warmup_fraction: float = 0.25,
    pretouch: bool = True,
):
    """Run on the compiled kernel; None when the run is not lowerable.

    Mirrors :func:`repro.sim.engine._run_trace_python` exactly — see the
    module docstring for the equivalence contract. All lowerability
    checks happen *before* any machine state is touched, so a ``None``
    return leaves the caller free to run the python loop from scratch.
    """
    from . import engine as _engine  # runtime import; engine imports us lazily

    config = machine.config
    org = machine.org
    org_name = getattr(org, "name", type(org).__name__)
    workload_name, n_accesses, instr_per_event, warmup_accesses = (
        _engine._resolve_run_plan(
            machine, generators, spec, accesses_per_context,
            instructions_per_event, warmup_fraction,
        )
    )
    if n_accesses <= 0:
        return _fallback("non-positive accesses_per_context", org_name)

    lib = load_kernel()
    if lib is None:
        from ._kernel_build import load_error

        return _fallback(f"kernel unavailable: {load_error()}", org_name)

    # -- Lowerability ----------------------------------------------------------
    predictor_kind, llp_entries = 0, 1
    if type(org) is CoLocatedLltCameo:
        org_kind = 1
        if org.decommissioned or org.auditor is not None:
            return _fallback("cameo fault-recovery state active", org_name)
        if org.llt._suspect_groups:
            return _fallback("LLT has suspect groups", org_name)
        if org.space.group_size > 255:
            return _fallback("group size exceeds byte-wide LLT entries", org_name)
        predictor = org.predictor
        if type(predictor) is SamPredictor:
            predictor_kind, llp_entries = 0, 1
        elif type(predictor) is LastLocationPredictor:
            predictor_kind, llp_entries = 1, predictor.entries
        elif type(predictor) is PerfectPredictor:
            predictor_kind, llp_entries = 2, 1
        else:
            return _fallback(
                f"predictor {type(predictor).__name__} not lowerable", org_name
            )
        devices = [org.stacked, org.offchip]
        demand_dev = 0
    elif type(org) is NoStackedBaseline:
        org_kind = 0
        devices = [org.offchip]
        demand_dev = 0
    elif type(org) in (AlloyCacheOrg, DoubleUse):
        org_kind = 2
        if type(org.predictor) is not MapIPredictor:
            return _fallback(
                f"predictor {type(org.predictor).__name__} not lowerable", org_name
            )
        devices = [org.stacked, org.offchip]
        demand_dev = 1
    elif type(org) in (TlmStatic, TlmOracle):
        # Oracle placement only acts at fault time, which always bails, so
        # its steady state lowers exactly like static TLM.
        org_kind = 3
        devices = [org.stacked, org.offchip]
        demand_dev = 0
    elif type(org) is TlmDynamic:
        org_kind = 4
        devices = [org.stacked, org.offchip]
        demand_dev = 0
    elif type(org) is TlmFreq:
        org_kind = 5
        devices = [org.stacked, org.offchip]
        demand_dev = 0
    else:
        return _fallback(
            f"organization {type(org).__name__} not lowerable", org_name
        )
    if getattr(org, "fault_injector", None) is not None:
        return _fallback("fault injection active", org_name)

    for dev in devices:
        if dev.fault_injector is not None:
            return _fallback("device fault injection active", org_name)
        if dev._refresh_enabled:
            return _fallback("device refresh modelling active", org_name)
        if dev.line_bytes != config.line_bytes:
            return _fallback("device line size differs from system line size", org_name)

    l3 = machine.l3
    if l3 is not None and not l3._cache._flat_lru:
        return _fallback("L3 replacement policy not flat-LRU", org_name)

    trace_columns = []
    for gen in generators:
        if type(gen) is ReplayTraceSource:
            if not gen.allow_wrap and n_accesses > len(gen._raw):
                return _fallback("replay trace exhausted (wrap disabled)", org_name)
        elif type(gen) is not SyntheticTraceGenerator:
            return _fallback(
                f"trace source {type(gen).__name__} not lowerable", org_name
            )
        trace_columns.append(_columnar_trace(gen, n_accesses))

    N = config.num_contexts
    lines_per_page = config.lines_per_page
    vstride = max(vmax for _, _, _, vmax in trace_columns) // lines_per_page + 1
    if N * vstride > MAX_FWD_ENTRIES:
        return _fallback("virtual footprint too large for dense translation map", org_name)

    dev_ids = {id(dev): i for i, dev in enumerate(devices)}
    posted_list = _engine._acquire_posted_queue(org)
    if not _encodable_posted(posted_list, dev_ids, config.line_bytes, lines_per_page):
        return _fallback("pre-existing posted operations not encodable", org_name)

    backend_stats["kernel_runs"] += 1
    _org_tally(org_name)["kernel_runs"] += 1
    mm = machine.memory_manager
    migrating = org_kind in (4, 5)

    if pretouch:
        machine.pretouch([gen.footprint_pages for gen in generators])

    # -- Columnar assembly -----------------------------------------------------
    keepalive: List = []
    I = array("q", bytes(8 * (II_CTX_BASE + 5 * N)))
    F = array("d", bytes(8 * (FF_CTX_BASE + 3 * N)))
    P = (ctypes.c_void_p * (P_TRACE + 4 * N))()

    I[II_NUM_CONTEXTS] = N
    I[II_N_ACCESSES] = n_accesses
    I[II_WARMUP] = warmup_accesses
    I[II_LINES_PER_PAGE] = lines_per_page
    I[II_VSTRIDE] = vstride
    I[II_ORG_KIND] = org_kind
    I[II_SWAP_ON_WRITE] = 1 if getattr(org, "swap_on_write", False) else 0
    I[II_PREDICTOR_KIND] = predictor_kind
    I[II_LLP_ENTRIES] = llp_entries
    I[II_HAS_L3] = 0 if l3 is None else 1
    I[II_N_DEVICES] = len(devices)
    I[II_DEMAND_DEV] = demand_dev
    I[II_SIZE0_BYTES] = config.line_bytes
    I[II_SIZE1_BYTES] = LEAD_BYTES
    I[II_SIZE2_BYTES] = ALLOY_TAD_BYTES
    I[II_SWAP_LOG_CAP] = SWAP_LOG_CAP
    I[II_CONTEXTS_WARM] = 0 if warmup_accesses else N

    if org_kind == 1:
        I[II_GROUP_BITS] = org._group_bits
        I[II_GROUP_MASK] = org._group_mask
        I[II_TOTAL_LINES] = org._total_lines
        I[II_GROUP_SIZE] = org.space.group_size
        P[P_LLT_TABLE] = _addr_of_bytes(org.llt._table, keepalive)
        P[P_LLT_RESIDENT] = _addr_of_bytes(org.llt._resident, keepalive)
        if predictor_kind == 1:
            for ctx, table in enumerate(predictor.columnar_tables(N)):
                P[P_TRACE + 3 * N + ctx] = _addr_of_bytes(table, keepalive)
    elif org_kind == 2:
        I[II_NUM_SETS] = org.num_sets
        I[II_MAPI_ENTRIES] = org.predictor.entries
        I[II_MAPI_THRESHOLD] = org.predictor.threshold
        I[II_MAPI_MAX] = org.predictor.max_value
        tags, dirty = org.columnar_state()
        P[P_ORG_A] = _addr_of_array(tags, keepalive)
        P[P_ORG_B] = _addr_of_bytes(dirty, keepalive)
        for ctx, table in enumerate(org.predictor.columnar_tables(N)):
            P[P_TRACE + 3 * N + ctx] = _addr_of_bytes(table, keepalive)
    elif org_kind >= 3:
        I[II_STACKED_LINES] = config.stacked_lines
        I[II_STACKED_PAGES] = config.stacked_pages
        if org_kind == 4:
            I[II_MIG_THRESHOLD] = org.migration_threshold
            referenced, touch_counts = org.columnar_state()
            P[P_ORG_A] = _addr_of_bytes(referenced, keepalive)
            P[P_ORG_B] = _addr_of_array(touch_counts, keepalive)
        elif org_kind == 5:
            I[II_EPOCH_ACCESSES] = org.epoch_accesses
            (counts,) = org.columnar_state()
            P[P_ORG_A] = _addr_of_array(counts, keepalive)

    if l3 is not None:
        cache = l3._cache
        I[II_L3_SETS] = cache.num_sets
        I[II_L3_WAYS] = cache.ways
        valid, dirty, tags, lru = cache.columnar_state()
        P[P_L3_VALID] = _addr_of_bytes(valid, keepalive)
        P[P_L3_DIRTY] = _addr_of_bytes(dirty, keepalive)
        P[P_L3_TAGS] = _addr_of_array(tags, keepalive)
        P[P_L3_LRU] = _addr_of_bytes(lru, keepalive)
        l3_latency = float(l3.latency_cycles)
    else:
        l3_latency = float(config.l3.latency_cycles)
    F[FF_L3_LATENCY] = l3_latency
    mlp = config.memory_level_parallelism
    F[FF_MLP] = mlp

    for d, dev in enumerate(devices):
        I[II_DEV_GEOM + d * 4] = dev._n_channels
        I[II_DEV_GEOM + d * 4 + 1] = dev._n_banks
        I[II_DEV_GEOM + d * 4 + 2] = dev.lines_per_row
        I[II_DEV_GEOM + d * 4 + 3] = dev._capacity_lines
        bank_open, bank_busy, bus_busy, write_debt = dev.columnar_state()
        P[P_DEV + d * 4] = _addr_of_array(bank_open, keepalive)
        P[P_DEV + d * 4 + 1] = _addr_of_array(bank_busy, keepalive)
        P[P_DEV + d * 4 + 2] = _addr_of_array(bus_busy, keepalive)
        P[P_DEV + d * 4 + 3] = _addr_of_array(write_debt, keepalive)
        for slot, n_bytes in enumerate(
            (config.line_bytes, LEAD_BYTES, ALLOY_TAD_BYTES)
        ):
            cyc = dev._cycles(n_bytes)
            for k in range(4):
                F[FF_CYC + d * 12 + slot * 4 + k] = cyc[k]
        F[FF_WBUF + d] = dev.write_buffer_cycles

    # Dense translation maps: fwd[ctx * vstride + vpage] = frame + 1 (0 =
    # not resident), and for migrating orgs the inverse, inv[frame] =
    # packed vpage key + 1 (so the kernel can re-point the forward map
    # when it swaps two frames). Built after pretouch; faults update fwd
    # incrementally, and any bail that may have migrated pages on the
    # Python side rebuilds both.
    fwd = array("q", bytes(8 * N * vstride))
    inv = array("q", bytes(8 * mm.num_frames)) if migrating else None

    def fill_translation_maps():
        for i in range(len(fwd)):
            fwd[i] = 0
        for (asid, vpage), frame in mm.page_table._forward.items():
            if asid < N and vpage < vstride:
                fwd[asid * vstride + vpage] = frame + 1
        if inv is not None:
            for i in range(len(inv)):
                inv[i] = 0
            for frame, vp in enumerate(mm.page_table._vpages):
                if vp is not None:
                    asid, vpage = vp
                    if asid < N and vpage < vstride:
                        inv[frame] = asid * vstride + vpage + 1

    fill_translation_maps()
    P[P_FWD] = _addr_of_array(fwd, keepalive)
    if inv is not None:
        P[P_INV] = _addr_of_array(inv, keepalive)
    P[P_PAGE_REF] = _addr_of_bytes(mm.page_table.referenced, keepalive)
    P[P_PAGE_DIRTY] = _addr_of_bytes(mm.page_table.dirty, keepalive)

    swap_log = array("q", bytes(16 * SWAP_LOG_CAP)) if migrating else None
    if swap_log is not None:
        P[P_SWAP_LOG] = _addr_of_array(swap_log, keepalive)

    for ctx, (vline, pc, is_write, _) in enumerate(trace_columns):
        P[P_TRACE + ctx * 3] = _addr_of_array(vline, keepalive)
        P[P_TRACE + ctx * 3 + 1] = _addr_of_array(pc, keepalive)
        P[P_TRACE + ctx * 3 + 2] = _addr_of_bytes(is_write, keepalive)
        I[II_CTX_BASE + 4 * N + ctx] = len(vline)  # trace length
    for ctx in range(N):
        I[II_CTX_BASE + N + ctx] = 1  # active
        F[FF_CTX_BASE + 2 * N + ctx] = instr_per_event[ctx] * config.cpi_base

    posted_cap = max(256, 2 * len(posted_list) + 64)
    posted_buf = bytearray(posted_cap * ENTRY_BYTES)
    P[P_POSTED] = _addr_of_bytes(posted_buf, keepalive)
    I[II_POSTED_CAP] = posted_cap

    progress_hook = _engine._progress_hook
    I[II_PROGRESS_EVERY] = _engine._progress_every if progress_hook is not None else 0

    I_ptr = ctypes.cast(I.buffer_info()[0], ctypes.POINTER(ctypes.c_longlong))
    F_ptr = ctypes.cast(F.buffer_info()[0], ctypes.POINTER(ctypes.c_double))
    P_ptr = ctypes.cast(P, ctypes.POINTER(ctypes.c_void_p))
    keepalive.extend((I, F, P))

    measure_start = [0.0] * N
    work_per_event = [instr_per_event[c] * config.cpi_base for c in range(N)]

    def sync_in():
        nonlocal posted_cap, posted_buf
        _sync_stats_in(I, F, org, l3, mm, devices, org_kind)
        if org_kind == 4:
            I[II_CLOCK_HAND] = org._clock_hand
        elif org_kind == 5:
            I[II_EPOCH_COUNT] = org._accesses_in_epoch
        if len(posted_list) > posted_cap:
            while posted_cap < len(posted_list) + 8:
                posted_cap *= 2
            posted_buf = bytearray(posted_cap * ENTRY_BYTES)
            P[P_POSTED] = _addr_of_bytes(posted_buf, keepalive)
            I[II_POSTED_CAP] = posted_cap
        _encode_posted(posted_list, posted_buf, dev_ids, config.line_bytes)
        I[II_POSTED_LEN] = len(posted_list)
        I[II_POST_SEQ] = org._post_seq

    def sync_out():
        _sync_stats_out(I, F, org, l3, mm, devices, org_kind)
        posted_list[:] = _decode_posted(
            posted_buf, I[II_POSTED_LEN], devices, config.line_bytes, lines_per_page
        )
        org._post_seq = I[II_POST_SEQ]
        if org_kind == 4:
            org._clock_hand = I[II_CLOCK_HAND]
        elif org_kind == 5:
            org._accesses_in_epoch = I[II_EPOCH_COUNT]
        n_swaps = I[II_SWAP_LOG_LEN]
        if n_swaps:
            # The kernel already swapped the shared referenced/dirty
            # columns and its dense maps; replaying the journal brings
            # the Python page table and free lists up to date.
            for i in range(n_swaps):
                mm.reconcile_external_swap(swap_log[2 * i], swap_log[2 * i + 1])
            I[II_SWAP_LOG_LEN] = 0

    def run_faulted_access():
        """One access through the object API, from translation onward.

        The kernel has already selected the context, counted the access,
        fetched its record, and flushed due posted traffic; it bailed at
        the translation-map miss. This mirrors the python loop's body
        from ``mm.translate`` to the re-schedule, then patches the dense
        map with the fault's mapping changes.
        """
        ctx = I[II_PENDING_CTX]
        now = F[FF_PENDING_NOW]
        vline_col, pc_col, iswr_col, _ = trace_columns[ctx]
        idx = (I[II_CTX_BASE + ctx] - 1) % len(vline_col)
        virtual_line = vline_col[idx]
        pc = pc_col[idx]
        is_write = bool(iswr_col[idx])

        vpage, offset = divmod(virtual_line, lines_per_page)
        translation = mm.translate((ctx, vpage), is_write)
        stall = 0.0
        if translation.faulted:
            evicted = translation.evicted
            evicted_frame = translation.evicted_frame
            if l3 is not None and evicted_frame is not None:
                _engine._drain_evicted_frame(
                    l3, org, now, ctx, evicted_frame, lines_per_page
                )
            if evicted is not None and evicted[1]:
                org.page_drain(now, evicted_frame)
            org.page_fill(now, translation.frame)
            stall += translation.fault_latency
            fwd[ctx * vstride + vpage] = translation.frame + 1
            if evicted is not None:
                evicted_asid, evicted_vpage = evicted[0]
                if evicted_asid < N and evicted_vpage < vstride:
                    fwd[evicted_asid * vstride + evicted_vpage] = 0

        line_addr = translation.frame * lines_per_page + offset
        go_to_memory = True
        if l3 is not None:
            l3_result = l3.access(line_addr, is_write)
            stall += l3_latency
            if l3_result.hit:
                go_to_memory = False
            elif l3_result.writeback_line is not None:
                org.access(
                    now,
                    MemoryRequest(
                        ctx, pc, l3_result.writeback_line, True, is_writeback=True
                    ),
                )
        else:
            stall += l3_latency
        if go_to_memory:
            result = org.access(
                now, MemoryRequest(ctx, pc, line_addr, is_write)
            )
            if not is_write:
                stall += result.latency / mlp
        F[FF_CTX_BASE + ctx] = now + work_per_event[ctx] + stall
        if migrating:
            # The accesses above run the org's migration hook on the
            # Python side, which can re-point arbitrary pages; the
            # incremental patches are not enough.
            fill_translation_maps()

    # -- Drive the kernel, handling bails --------------------------------------
    while True:
        sync_in()
        backend_stats["kernel_calls"] += 1
        rc = lib.rk_run(I_ptr, F_ptr, P_ptr)
        sync_out()
        if rc == RK_DONE:
            break
        if rc == RK_FAULT:
            backend_stats["bails"]["fault"] += 1
            run_faulted_access()
        elif rc == RK_BARRIER:
            backend_stats["bails"]["barrier"] += 1
            machine.reset_measurement_stats()
            measure_start = [F[FF_PENDING_NOW]] * N
        elif rc == RK_PROGRESS:
            backend_stats["bails"]["progress"] += 1
            if progress_hook is not None:
                progress_hook(I[II_PROGRESS_COUNT])
        elif rc == RK_POSTED_FULL:
            backend_stats["bails"]["posted_full"] += 1
            posted_cap *= 2
            posted_buf = bytearray(posted_cap * ENTRY_BYTES)
            P[P_POSTED] = _addr_of_bytes(posted_buf, keepalive)
            I[II_POSTED_CAP] = posted_cap
        elif rc == RK_EPOCH:
            # TLM-Freq epoch boundary: the exact placement decision runs
            # through the organization's own code, then the dense maps
            # are rebuilt to reflect its migrations.
            backend_stats["bails"]["epoch"] += 1
            org.service_epoch(F[FF_EPOCH_TIME])
            fill_translation_maps()
        elif rc == RK_SWAP_LOG:
            # Journal headroom: sync_out already replayed and reset it.
            backend_stats["bails"]["swap_log"] += 1
        else:
            raise SimulationError(
                f"vector kernel internal error (rc={rc}, "
                f"code={I[II_ERROR_CODE]})"
            )

    finish_times = [F[FF_CTX_BASE + N + c] for c in range(N)]
    del keepalive  # Release buffer exports before handing back the objects.
    return _engine.build_run_result(
        machine, workload_name, finish_times, measure_start,
        n_accesses, warmup_accesses, instr_per_event,
    )
