"""The trace-driven run loop.

Contexts are interleaved by simulated time (a min-heap on each context's
next-issue time), so the DRAM channel/bank horizons see a realistically
mixed request stream and bandwidth contention emerges naturally.

Execution-time model (Section III-C's figure of merit):

``time += instructions_between_events x CPI_base + stall``

where the stall of a read is the L3 lookup plus the organization's
latency divided by the memory-level-parallelism factor (an OOO core
overlaps independent misses), a write (L3 dirty writeback) is posted and
contributes only bandwidth, and a page fault blocks for the full SSD
latency.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import ConfigurationError
from ..workloads.spec import WorkloadSpec
from ..workloads.synthetic import SyntheticTraceGenerator
from .machine import Machine
from .request import MemoryRequest
from .results import RunResult

#: Environment knob: accesses simulated per context (trace length).
ACCESSES_ENV_VAR = "REPRO_ACCESSES_PER_CONTEXT"
DEFAULT_ACCESSES_PER_CONTEXT = 12_000


def default_accesses_per_context() -> int:
    """Trace length per context, overridable via the environment."""
    raw = os.environ.get(ACCESSES_ENV_VAR)
    if raw is None:
        return DEFAULT_ACCESSES_PER_CONTEXT
    try:
        value = int(raw)
    except ValueError as exc:
        raise ConfigurationError(f"{ACCESSES_ENV_VAR}={raw!r} is not an integer") from exc
    if value <= 0:
        raise ConfigurationError(f"{ACCESSES_ENV_VAR} must be positive")
    return value


#: Fraction of each context's trace treated as (untimed) warmup.
DEFAULT_WARMUP_FRACTION = 0.25


# -- Progress reporting (worker heartbeats) -------------------------------------
#
# Subprocess workers install a hook so the supervising parent can tell a
# hung worker from a slow one (repro.sim.supervisor). With no hook set —
# every in-process run — the hot loop is untouched: the instrumentation
# wraps the trace iterators only when a hook is active.

_progress_hook = None
_progress_every = 2_000


def set_progress_hook(hook, every: int = 2_000) -> None:
    """Install (or, with ``hook=None``, clear) the progress callback.

    ``hook(total_accesses)`` is called from inside :func:`run_trace`
    every ``every`` accesses (summed over all contexts, warmup
    included). The hook must be cheap and must never raise.
    """
    global _progress_hook, _progress_every
    if hook is not None and every <= 0:
        raise ConfigurationError("progress interval must be positive")
    _progress_hook = hook
    _progress_every = every


def _counted(iterator, shared, every, hook):
    """Yield from ``iterator``, firing ``hook`` every ``every`` accesses."""
    for item in iterator:
        shared[0] += 1
        if shared[0] % every == 0:
            hook(shared[0])
        yield item


def run_trace(
    machine: Machine,
    generators: Sequence,
    spec,
    accesses_per_context: Optional[int] = None,
    instructions_per_event: Optional[float] = None,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    pretouch: bool = True,
) -> RunResult:
    """Drive ``machine`` with one generator per context; returns the result.

    ``spec`` is one :class:`WorkloadSpec` (rate mode) or a sequence with
    one spec per context (heterogeneous mixes; see
    :func:`repro.workloads.mixes.mixed_generators`).

    ``instructions_per_event`` defaults to each workload's Table II
    MPKI-derived spacing (the generators emit an L3-miss-level stream).

    Measurement methodology: the address space is pre-faulted
    (``pretouch``) and the first ``warmup_fraction`` of each context's
    accesses warms the LLT/caches/predictors before counters are zeroed
    and timing restarts — the paper measures representative slices of
    long-running programs, not cold starts.

    Warmup ends at a *global barrier*: a context that finishes its
    warmup accesses parks until every context has warmed, then all
    counters are reset and every context's measurement window starts at
    the same simulated time. This keeps the cycle windows and the
    org/device counters consistent — exactly the ``n - warmup`` accesses
    each context issues after the barrier are timed *and* counted.
    """
    config = machine.config
    if len(generators) != config.num_contexts:
        raise ConfigurationError(
            f"need {config.num_contexts} generators, got {len(generators)}"
        )
    if not 0 <= warmup_fraction < 1:
        raise ConfigurationError("warmup_fraction must be within [0, 1)")
    if isinstance(spec, WorkloadSpec):
        specs = [spec] * config.num_contexts
        workload_name = spec.name
    else:
        specs = list(spec)
        if len(specs) != config.num_contexts:
            raise ConfigurationError(
                f"need {config.num_contexts} workload specs, got {len(specs)}"
            )
        names = []
        for s_ in specs:
            if s_.name not in names:
                names.append(s_.name)
        workload_name = "+".join(names)
    n_accesses = (
        accesses_per_context
        if accesses_per_context is not None
        else default_accesses_per_context()
    )
    if instructions_per_event is not None:
        instr_per_event = [float(instructions_per_event)] * config.num_contexts
    else:
        instr_per_event = [s_.instructions_per_miss for s_ in specs]
    warmup_accesses = int(n_accesses * warmup_fraction)
    if pretouch:
        machine.pretouch([gen.footprint_pages for gen in generators])

    org = machine.org
    mm = machine.memory_manager
    l3 = machine.l3
    lines_per_page = config.lines_per_page
    l3_latency = config.l3.latency_cycles
    mlp = config.memory_level_parallelism
    work_per_event = [i * config.cpi_base for i in instr_per_event]

    iterators = [gen.generate(n_accesses) for gen in generators]
    progress_hook = _progress_hook
    if progress_hook is not None:
        shared_count = [0]
        iterators = [
            _counted(it, shared_count, _progress_every, progress_hook)
            for it in iterators
        ]
    # Heap of (next_issue_time, context_id); tuples keep it allocation-light.
    heap: List = [(0.0, ctx) for ctx in range(config.num_contexts)]
    heapq.heapify(heap)
    finish_times = [0.0] * config.num_contexts
    measure_start = [0.0] * config.num_contexts
    access_counts = [0] * config.num_contexts
    warmed = [False] * config.num_contexts
    parked: List[int] = []
    contexts_warm = 0 if warmup_accesses else config.num_contexts

    # Hot-loop locals: bound methods and constants resolved once, not per
    # access. ``posted`` aliases the org's queue (never reassigned) so the
    # empty-queue common case skips the flush_posted call entirely.
    heappush = heapq.heappush
    heappop = heapq.heappop
    num_contexts = config.num_contexts
    org_access = org.access
    mm_translate = mm.translate
    org_flush_posted = org.flush_posted
    posted = org._posted
    l3_access = l3.access if l3 is not None else None
    # The engine owns these two request objects and mutates them in place;
    # organizations consume requests synchronously and must not retain them.
    demand_req = MemoryRequest(0, 0, 0, False)
    wb_req = MemoryRequest(0, 0, 0, True, is_writeback=True)

    while heap:
        now, ctx = heappop(heap)
        if warmup_accesses and not warmed[ctx] and access_counts[ctx] == warmup_accesses:
            warmed[ctx] = True
            contexts_warm += 1
            if contexts_warm < num_contexts:
                # Park until every context has warmed, so the counter
                # reset and every timing window share one start time.
                parked.append(ctx)
                continue
            # Last context warmed: the global measurement barrier.
            machine.reset_measurement_stats()
            measure_start = [now] * num_contexts
            for other in parked:
                heappush(heap, (now, other))
            parked.clear()
        access_counts[ctx] += 1
        try:
            virtual_line, pc, is_write = next(iterators[ctx])
        except StopIteration:
            finish_times[ctx] = now
            continue
        # Replay swap/fill/migration traffic that became ready by now, so
        # device calls stay in non-decreasing time order.
        if posted:
            org_flush_posted(now)

        vpage, offset = divmod(virtual_line, lines_per_page)
        translation = mm_translate((ctx, vpage), is_write)
        stall = 0.0
        if translation.faulted:
            evicted = translation.evicted
            evicted_frame = translation.evicted_frame
            if l3 is not None and evicted_frame is not None:
                # OS shootdown: dirty L3 lines of the departing frame
                # must reach DRAM (their bytes count) before the page
                # can be read out to storage below.
                _drain_evicted_frame(l3, org, now, ctx, evicted_frame, lines_per_page)
            if evicted is not None and evicted[1]:
                # Dirty page: read it out of DRAM on its way to storage.
                org.page_drain(now, evicted_frame)
            org.page_fill(now, translation.frame)
            stall += translation.fault_latency

        line_addr = translation.frame * lines_per_page + offset
        go_to_memory = True
        if l3_access is not None:
            l3_result = l3_access(line_addr, is_write)
            stall += l3_latency
            if l3_result.hit:
                go_to_memory = False
            elif l3_result.writeback_line is not None:
                wb_req.context_id = ctx
                wb_req.pc = pc
                wb_req.line_addr = l3_result.writeback_line
                org_access(now, wb_req)
        else:
            stall += l3_latency  # The miss still paid the L3 lookup.

        if go_to_memory:
            demand_req.context_id = ctx
            demand_req.pc = pc
            demand_req.line_addr = line_addr
            demand_req.is_write = is_write
            result = org_access(now, demand_req)
            if not is_write:
                stall += result.latency / mlp

        heappush(heap, (now + work_per_event[ctx] + stall, ctx))

    org.drain_posted()  # Account the tail of in-flight posted traffic.
    total_cycles = max(
        finish - start for finish, start in zip(finish_times, measure_start)
    )
    measured_accesses = n_accesses - warmup_accesses
    instructions = int(measured_accesses * sum(instr_per_event))
    return RunResult(
        workload=workload_name,
        organization=org.name,
        total_cycles=total_cycles,
        instructions=instructions,
        dram_bytes=org.bytes_by_device(),
        storage_bytes=machine.ssd.stats.bytes_transferred,
        page_faults=mm.stats.faults,
        stacked_service_fraction=org.stats.stacked_service_fraction,
        line_swaps=org.stats.line_swaps,
        page_migrations=org.stats.page_migrations,
        llp_cases=getattr(org, "case_stats", None),
        l3_miss_rate=l3.stats.miss_rate if l3 is not None else None,
        accesses=measured_accesses * config.num_contexts,
        device_summary={
            name: {
                "row_hit_rate": device.stats.row_hit_rate,
                "average_latency": device.stats.average_latency,
                "accesses": device.stats.accesses,
            }
            for name, device in org.devices().items()
        },
        fault_summary=(
            org.fault_injector.stats.as_dict()
            if getattr(org, "fault_injector", None) is not None
            else None
        ),
    )


def _drain_evicted_frame(
    l3, org, now: float, ctx: int, frame: int, lines_per_page: int
) -> int:
    """Flush a reclaimed frame's lines from the L3 (OS cache shootdown).

    Dirty lines hold data newer than the DRAM copy the subsequent
    ``page_drain`` reads, so each one is written back through the
    organization (as tagged, non-demand writeback traffic) before its
    frame leaves memory. Returns the number of dirty lines drained.
    """
    first = frame * lines_per_page
    drained = 0
    for line in range(first, first + lines_per_page):
        dirty = l3.evict_line(line)
        if dirty:
            org.access(now, MemoryRequest(ctx, 0, line, True, is_writeback=True))
            drained += 1
    return drained
