"""The trace-driven run loop.

Contexts are interleaved by simulated time (a min-heap on each context's
next-issue time), so the DRAM channel/bank horizons see a realistically
mixed request stream and bandwidth contention emerges naturally.

Execution-time model (Section III-C's figure of merit):

``time += instructions_between_events x CPI_base + stall``

where the stall of a read is the L3 lookup plus the organization's
latency divided by the memory-level-parallelism factor (an OOO core
overlaps independent misses), a write (L3 dirty writeback) is posted and
contributes only bandwidth, and a page fault blocks for the full SSD
latency.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import ConfigurationError, SimulationError
from ..workloads.spec import WorkloadSpec
from ..workloads.synthetic import SyntheticTraceGenerator
from .machine import Machine
from .request import MemoryRequest
from .results import RunResult

#: Environment knob: accesses simulated per context (trace length).
ACCESSES_ENV_VAR = "REPRO_ACCESSES_PER_CONTEXT"
DEFAULT_ACCESSES_PER_CONTEXT = 12_000

#: Environment knob: which engine backend drives the run loop.
#: ``python`` is the reference interpreter; ``vector`` lowers the hot
#: loop onto the columnar compiled kernel (:mod:`repro.sim.engine_vector`)
#: when the run is lowerable, falling back to ``python`` — byte-identical
#: either way — when it is not.
ENGINE_ENV_VAR = "REPRO_ENGINE"
ENGINE_BACKENDS = ("python", "vector")


def engine_backends() -> tuple:
    """The registered engine backends (for test parametrization/CLI)."""
    return ENGINE_BACKENDS


def default_engine_backend() -> str:
    """The backend selected by ``REPRO_ENGINE`` (default ``python``)."""
    raw = os.environ.get(ENGINE_ENV_VAR)
    if raw is None:
        return "python"
    value = raw.strip().lower()
    if value not in ENGINE_BACKENDS:
        raise ConfigurationError(
            f"{ENGINE_ENV_VAR}={raw!r} is not a known engine backend; "
            f"choose from {ENGINE_BACKENDS}"
        )
    return value


def default_accesses_per_context() -> int:
    """Trace length per context, overridable via the environment."""
    raw = os.environ.get(ACCESSES_ENV_VAR)
    if raw is None:
        return DEFAULT_ACCESSES_PER_CONTEXT
    try:
        value = int(raw)
    except ValueError as exc:
        raise ConfigurationError(f"{ACCESSES_ENV_VAR}={raw!r} is not an integer") from exc
    if value <= 0:
        raise ConfigurationError(f"{ACCESSES_ENV_VAR} must be positive")
    return value


#: Fraction of each context's trace treated as (untimed) warmup.
DEFAULT_WARMUP_FRACTION = 0.25


def resolve_warmup_accesses(n_accesses: int, warmup_fraction: float) -> int:
    """Deterministic warmup length: round half up, never silently zero.

    ``int(n * fraction)`` truncated, so short traces (``n * fraction < 1``)
    got *no* warmup — the global measurement barrier and the counter
    reset were silently skipped while callers believed 25% warmup had
    happened. The rule now is:

    * ``fraction == 0`` → 0 (warmup explicitly disabled);
    * otherwise round ``n * fraction`` half up, with a floor of 1 — a
      caller that asked for warmup always gets the barrier and reset —
      and a ceiling of ``n - 1`` so at least one access is measured;
    * a single-access trace (``n == 1``) cannot both warm and measure,
      so it measures its only access (warmup 0).
    """
    if warmup_fraction == 0.0 or n_accesses <= 1:
        return 0
    warmup = int(n_accesses * warmup_fraction + 0.5)
    if warmup < 1:
        warmup = 1
    elif warmup > n_accesses - 1:
        warmup = n_accesses - 1
    return warmup


# -- Progress reporting (worker heartbeats) -------------------------------------
#
# Subprocess workers install a hook so the supervising parent can tell a
# hung worker from a slow one (repro.sim.supervisor). With no hook set —
# every in-process run — the hot loop is untouched: the instrumentation
# wraps the trace iterators only when a hook is active.

_progress_hook = None
_progress_every = 2_000


def set_progress_hook(hook, every: int = 2_000) -> None:
    """Install (or, with ``hook=None``, clear) the progress callback.

    ``hook(total_accesses)`` is called from inside :func:`run_trace`
    every ``every`` accesses (summed over all contexts, warmup
    included). The hook must be cheap and must never raise.
    """
    global _progress_hook, _progress_every
    if hook is not None and every <= 0:
        raise ConfigurationError("progress interval must be positive")
    _progress_hook = hook
    _progress_every = every


def _counted(iterator, shared, every, hook):
    """Yield from ``iterator``, firing ``hook`` every ``every`` accesses."""
    for item in iterator:
        shared[0] += 1
        if shared[0] % every == 0:
            hook(shared[0])
        yield item


def _resolve_run_plan(
    machine: Machine,
    generators: Sequence,
    spec,
    accesses_per_context: Optional[int],
    instructions_per_event: Optional[float],
    warmup_fraction: float,
):
    """Validate inputs and derive the run parameters both backends share."""
    config = machine.config
    if len(generators) != config.num_contexts:
        raise ConfigurationError(
            f"need {config.num_contexts} generators, got {len(generators)}"
        )
    if not 0 <= warmup_fraction < 1:
        raise ConfigurationError("warmup_fraction must be within [0, 1)")
    if isinstance(spec, WorkloadSpec):
        specs = [spec] * config.num_contexts
        workload_name = spec.name
    else:
        specs = list(spec)
        if len(specs) != config.num_contexts:
            raise ConfigurationError(
                f"need {config.num_contexts} workload specs, got {len(specs)}"
            )
        names = []
        for s_ in specs:
            if s_.name not in names:
                names.append(s_.name)
        workload_name = "+".join(names)
    n_accesses = (
        accesses_per_context
        if accesses_per_context is not None
        else default_accesses_per_context()
    )
    if instructions_per_event is not None:
        instr_per_event = [float(instructions_per_event)] * config.num_contexts
    else:
        instr_per_event = [s_.instructions_per_miss for s_ in specs]
    warmup_accesses = resolve_warmup_accesses(n_accesses, warmup_fraction)
    return workload_name, n_accesses, instr_per_event, warmup_accesses


def _acquire_posted_queue(org):
    """The loop-setup assertion behind the posted-queue contract.

    The hot loop holds one reference to the organization's posted heap
    for the whole run; an organization that rebinds its queue (or hands
    out a fresh list per call) would silently desync writeback flushing.
    Verify the accessor is stable before trusting it.
    """
    posted = org.posted_queue()
    if posted is not org.posted_queue() or posted is not org._posted:
        raise SimulationError(
            f"{type(org).__name__}.posted_queue() must return the same "
            "list object on every call (the engine aliases it for the "
            "whole run); the posted queue may be mutated but never "
            "reassigned"
        )
    return posted


def build_run_result(
    machine: Machine,
    workload_name: str,
    finish_times: Sequence[float],
    measure_start: Sequence[float],
    n_accesses: int,
    warmup_accesses: int,
    instr_per_event: Sequence[float],
) -> RunResult:
    """Assemble the :class:`RunResult` from a finished run's final state.

    Shared by the python and vector backends — both end with identical
    machine/org state, so the result construction is identical too.
    """
    org = machine.org
    mm = machine.memory_manager
    l3 = machine.l3
    org.drain_posted()  # Account the tail of in-flight posted traffic.
    total_cycles = max(
        finish - start for finish, start in zip(finish_times, measure_start)
    )
    measured_accesses = n_accesses - warmup_accesses
    instructions = int(measured_accesses * sum(instr_per_event))
    return RunResult(
        workload=workload_name,
        organization=org.name,
        total_cycles=total_cycles,
        instructions=instructions,
        dram_bytes=org.bytes_by_device(),
        storage_bytes=machine.ssd.stats.bytes_transferred,
        page_faults=mm.stats.faults,
        stacked_service_fraction=org.stats.stacked_service_fraction,
        line_swaps=org.stats.line_swaps,
        page_migrations=org.stats.page_migrations,
        llp_cases=getattr(org, "case_stats", None),
        l3_miss_rate=l3.stats.miss_rate if l3 is not None else None,
        accesses=measured_accesses * machine.config.num_contexts,
        device_summary={
            name: {
                "row_hit_rate": device.stats.row_hit_rate,
                "average_latency": device.stats.average_latency,
                "accesses": device.stats.accesses,
            }
            for name, device in org.devices().items()
        },
        fault_summary=(
            org.fault_injector.stats.as_dict()
            if getattr(org, "fault_injector", None) is not None
            else None
        ),
    )


def run_trace(
    machine: Machine,
    generators: Sequence,
    spec,
    accesses_per_context: Optional[int] = None,
    instructions_per_event: Optional[float] = None,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    pretouch: bool = True,
    engine: Optional[str] = None,
) -> RunResult:
    """Drive ``machine`` with one generator per context; returns the result.

    ``spec`` is one :class:`WorkloadSpec` (rate mode) or a sequence with
    one spec per context (heterogeneous mixes; see
    :func:`repro.workloads.mixes.mixed_generators`).

    ``instructions_per_event`` defaults to each workload's Table II
    MPKI-derived spacing (the generators emit an L3-miss-level stream).

    ``engine`` selects the backend (``python``/``vector``), defaulting
    to the ``REPRO_ENGINE`` environment knob. The vector backend lowers
    the run onto the columnar compiled kernel when the configuration is
    lowerable and transparently falls back to the python loop when not;
    results are byte-identical either way (the golden corpus enforces
    this).

    Measurement methodology: the address space is pre-faulted
    (``pretouch``) and the first ``warmup_fraction`` of each context's
    accesses warms the LLT/caches/predictors before counters are zeroed
    and timing restarts — the paper measures representative slices of
    long-running programs, not cold starts. Warmup length is
    :func:`resolve_warmup_accesses` of the trace length — rounded half
    up, at least 1 when warmup was requested, and capped at ``n - 1`` so
    single-access traces measure their only access.

    Warmup ends at a *global barrier*: a context that finishes its
    warmup accesses parks until every context has warmed, then all
    counters are reset and every context's measurement window starts at
    the same simulated time. This keeps the cycle windows and the
    org/device counters consistent — exactly the ``n - warmup`` accesses
    each context issues after the barrier are timed *and* counted.
    """
    backend = engine if engine is not None else default_engine_backend()
    if backend not in ENGINE_BACKENDS:
        raise ConfigurationError(
            f"unknown engine backend {backend!r}; choose from {ENGINE_BACKENDS}"
        )
    if backend == "vector":
        from .engine_vector import run_trace_vector

        result = run_trace_vector(
            machine,
            generators,
            spec,
            accesses_per_context=accesses_per_context,
            instructions_per_event=instructions_per_event,
            warmup_fraction=warmup_fraction,
            pretouch=pretouch,
        )
        if result is not None:
            return result
        # Not lowerable (org/config/features outside the kernel's scope,
        # or no working C toolchain): the python loop is the fallback.
    return _run_trace_python(
        machine,
        generators,
        spec,
        accesses_per_context,
        instructions_per_event,
        warmup_fraction,
        pretouch,
    )


def _run_trace_python(
    machine: Machine,
    generators: Sequence,
    spec,
    accesses_per_context: Optional[int] = None,
    instructions_per_event: Optional[float] = None,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    pretouch: bool = True,
) -> RunResult:
    """The reference per-access interpreter (see :func:`run_trace`)."""
    config = machine.config
    workload_name, n_accesses, instr_per_event, warmup_accesses = _resolve_run_plan(
        machine, generators, spec, accesses_per_context,
        instructions_per_event, warmup_fraction,
    )
    if pretouch:
        machine.pretouch([gen.footprint_pages for gen in generators])

    org = machine.org
    mm = machine.memory_manager
    l3 = machine.l3
    lines_per_page = config.lines_per_page
    l3_latency = config.l3.latency_cycles
    mlp = config.memory_level_parallelism
    work_per_event = [i * config.cpi_base for i in instr_per_event]

    iterators = [gen.generate(n_accesses) for gen in generators]
    progress_hook = _progress_hook
    if progress_hook is not None:
        shared_count = [0]
        iterators = [
            _counted(it, shared_count, _progress_every, progress_hook)
            for it in iterators
        ]
    # Heap of (next_issue_time, context_id); tuples keep it allocation-light.
    heap: List = [(0.0, ctx) for ctx in range(config.num_contexts)]
    heapq.heapify(heap)
    finish_times = [0.0] * config.num_contexts
    measure_start = [0.0] * config.num_contexts
    access_counts = [0] * config.num_contexts
    warmed = [False] * config.num_contexts
    parked: List[int] = []
    contexts_warm = 0 if warmup_accesses else config.num_contexts

    # Hot-loop locals: bound methods and constants resolved once, not per
    # access. ``posted`` aliases the org's queue through the asserted
    # stable accessor (never reassigned, see posted_queue) so the
    # empty-queue common case skips the flush_posted call entirely.
    heappush = heapq.heappush
    heappop = heapq.heappop
    num_contexts = config.num_contexts
    org_access = org.access
    mm_translate = mm.translate
    org_flush_posted = org.flush_posted
    posted = _acquire_posted_queue(org)
    l3_access = l3.access if l3 is not None else None
    # The engine owns these two request objects and mutates them in place;
    # organizations consume requests synchronously and must not retain them.
    demand_req = MemoryRequest(0, 0, 0, False)
    wb_req = MemoryRequest(0, 0, 0, True, is_writeback=True)

    while heap:
        now, ctx = heappop(heap)
        if warmup_accesses and not warmed[ctx] and access_counts[ctx] == warmup_accesses:
            warmed[ctx] = True
            contexts_warm += 1
            if contexts_warm < num_contexts:
                # Park until every context has warmed, so the counter
                # reset and every timing window share one start time.
                parked.append(ctx)
                continue
            # Last context warmed: the global measurement barrier.
            machine.reset_measurement_stats()
            measure_start = [now] * num_contexts
            for other in parked:
                heappush(heap, (now, other))
            parked.clear()
        access_counts[ctx] += 1
        try:
            virtual_line, pc, is_write = next(iterators[ctx])
        except StopIteration:
            finish_times[ctx] = now
            continue
        # Replay swap/fill/migration traffic that became ready by now, so
        # device calls stay in non-decreasing time order.
        if posted:
            org_flush_posted(now)

        vpage, offset = divmod(virtual_line, lines_per_page)
        translation = mm_translate((ctx, vpage), is_write)
        stall = 0.0
        if translation.faulted:
            evicted = translation.evicted
            evicted_frame = translation.evicted_frame
            if l3 is not None and evicted_frame is not None:
                # OS shootdown: dirty L3 lines of the departing frame
                # must reach DRAM (their bytes count) before the page
                # can be read out to storage below.
                _drain_evicted_frame(l3, org, now, ctx, evicted_frame, lines_per_page)
            if evicted is not None and evicted[1]:
                # Dirty page: read it out of DRAM on its way to storage.
                org.page_drain(now, evicted_frame)
            org.page_fill(now, translation.frame)
            stall += translation.fault_latency

        line_addr = translation.frame * lines_per_page + offset
        go_to_memory = True
        if l3_access is not None:
            l3_result = l3_access(line_addr, is_write)
            stall += l3_latency
            if l3_result.hit:
                go_to_memory = False
            elif l3_result.writeback_line is not None:
                wb_req.context_id = ctx
                wb_req.pc = pc
                wb_req.line_addr = l3_result.writeback_line
                org_access(now, wb_req)
        else:
            stall += l3_latency  # The miss still paid the L3 lookup.

        if go_to_memory:
            demand_req.context_id = ctx
            demand_req.pc = pc
            demand_req.line_addr = line_addr
            demand_req.is_write = is_write
            result = org_access(now, demand_req)
            if not is_write:
                stall += result.latency / mlp

        heappush(heap, (now + work_per_event[ctx] + stall, ctx))

    return build_run_result(
        machine, workload_name, finish_times, measure_start,
        n_accesses, warmup_accesses, instr_per_event,
    )


def _drain_evicted_frame(
    l3, org, now: float, ctx: int, frame: int, lines_per_page: int
) -> int:
    """Flush a reclaimed frame's lines from the L3 (OS cache shootdown).

    Dirty lines hold data newer than the DRAM copy the subsequent
    ``page_drain`` reads, so each one is written back through the
    organization (as tagged, non-demand writeback traffic) before its
    frame leaves memory. Returns the number of dirty lines drained.
    """
    first = frame * lines_per_page
    drained = 0
    for line in range(first, first + lines_per_page):
        dirty = l3.evict_line(line)
        if dirty:
            org.access(now, MemoryRequest(ctx, 0, line, True, is_writeback=True))
            drained += 1
    return drained
