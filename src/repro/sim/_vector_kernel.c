/* The compiled columnar engine kernel (repro.sim.engine_vector).
 *
 * This file is compiled on demand by repro/sim/_kernel_build.py (plain
 * `cc -O2 -fPIC -shared -fno-fast-math -ffp-contract=off`) and driven
 * through ctypes.  It advances the trace-driven run loop of
 * repro/sim/engine.py over the *same* columnar state buffers the Python
 * object model wraps (DRAM bank/bus horizons, L3 metadata, LLT, LLP and
 * MAP-I tables, page reference/dirty bits, TLM placement counters),
 * executing the identical sequence of floating-point operations in the
 * identical order — the contract is byte-for-byte equivalence with the
 * pure-Python interpreter, enforced by the golden fixture corpus.
 *
 * Anything the kernel cannot reproduce exactly (page faults, the
 * warmup barrier's stat reset, the progress heartbeat, a full posted
 * heap or swap journal, a TLM-Freq epoch rebalance) makes it *bail*:
 * it returns a reason code with resume state in the I/F scalar buffers,
 * the Python driver handles the event through the ordinary object API,
 * and re-enters.  The kernel therefore never approximates — it only
 * fast-forwards the regions of the run that are pure columnar
 * arithmetic.
 *
 * Organization dispatch (II_ORG_KIND):
 *   0 NoStackedBaseline   — one off-chip line access
 *   1 CoLocatedLltCameo   — LLT probe/swap + location predictor
 *   2 AlloyCacheOrg       — direct-mapped TAD probe + MAP-I predictor
 *                           (DoubleUse is this arm with a larger dev 1)
 *   3 TlmStatic/TlmOracle — region-split addressing, no migration
 *                           (oracle placement acts only at fault time,
 *                           which always bails to Python)
 *   4 TlmDynamic          — in-kernel swap-on-touch migration with a
 *                           journaled page-table swap the driver replays
 *   5 TlmFreq             — in-kernel counting; epoch rebalances bail
 *
 * ABI: rk_abi_version() must match RK_ABI in _kernel_build.py; the
 * buffer layouts below must match the II_/FF_/P_ constants in
 * engine_vector.py.  Bump the ABI on any layout change.
 */

#include <string.h>

typedef long long i64;
typedef unsigned char u8;

#define RK_ABI 2LL

/* Return codes (mirrored in engine_vector.py). */
#define RK_DONE 0
#define RK_FAULT 1
#define RK_BARRIER 2
#define RK_PROGRESS 3
#define RK_POSTED_FULL 4
#define RK_ERROR 5
#define RK_EPOCH 6    /* TLM-Freq epoch boundary: Python rebalances */
#define RK_SWAP_LOG 7 /* journal near capacity: Python replays it */

/* Resume phases. */
#define PH_SELECT 0
#define PH_BEFORE 1      /* pending ctx chosen, access not yet counted */
#define PH_AFTER_FETCH 2 /* access counted + fetched, not yet processed */
#define PH_AFTER_WB 3    /* L3 writeback serviced, demand access pending */

/* I (int64) scalar layout. */
#define II_NUM_CONTEXTS 0
#define II_N_ACCESSES 1
#define II_WARMUP 2
#define II_LINES_PER_PAGE 3
#define II_VSTRIDE 4
#define II_ORG_KIND 5
#define II_SWAP_ON_WRITE 6
#define II_PREDICTOR_KIND 7 /* 0 sam, 1 last-location, 2 perfect */
#define II_LLP_ENTRIES 8
#define II_GROUP_BITS 9
#define II_GROUP_MASK 10
#define II_TOTAL_LINES 11
#define II_GROUP_SIZE 12
#define II_HAS_L3 13
#define II_L3_SETS 14
#define II_L3_WAYS 15
#define II_N_DEVICES 16
#define II_DEMAND_DEV 17
#define II_POSTED_CAP 18
#define II_PROGRESS_EVERY 19
#define II_SIZE0_BYTES 20
#define II_SIZE1_BYTES 21
#define II_SIZE2_BYTES 22
#define II_DEV_GEOM 23 /* +d*4: channels, banks, lines_per_row, capacity */
#define II_NUM_SETS 31       /* alloy: direct-mapped TAD sets */
#define II_MAPI_ENTRIES 32   /* MAP-I counter table entries */
#define II_MAPI_THRESHOLD 33 /* counter >= threshold predicts hit */
#define II_MAPI_MAX 34       /* saturating counter ceiling */
#define II_STACKED_LINES 35  /* tlm: region split boundary */
#define II_STACKED_PAGES 36  /* tlm: stacked frame count */
#define II_MIG_THRESHOLD 37  /* tlm-dynamic: touches before migration */
#define II_EPOCH_ACCESSES 38 /* tlm-freq: epoch length */
#define II_SWAP_LOG_CAP 39
#define II_PHASE 40
#define II_PENDING_CTX 41
#define II_CONTEXTS_WARM 42
#define II_WARMUP_DONE 43
#define II_POSTED_LEN 44
#define II_POST_SEQ 45
#define II_PROGRESS_COUNT 46
#define II_ERROR_CODE 47
#define II_CLOCK_HAND 48   /* tlm-dynamic sweep hand (running value) */
#define II_EPOCH_COUNT 49  /* tlm-freq accesses in epoch (running value) */
#define II_SWAP_LOG_LEN 50 /* journaled frame pairs awaiting replay */
#define II_PENDING_LINE 51 /* demand line for PH_AFTER_WB resume */
#define II_STAT_ORG 52  /* acc, rd, wr, stacked, offchip, swaps, wb, wb_st, migr */
#define II_STAT_CASE 61 /* cases 1..5 */
#define II_STAT_L3 66   /* accesses, misses, writebacks */
#define II_STAT_VM 69   /* translations */
#define II_STAT_ALLOY 70 /* hits, misses, fills, dirty_victim_writebacks */
#define II_STAT_MAPI 74  /* predictions, correct */
#define II_STAT_DEV 76   /* +d*7: rd, wr, bytes_rd, bytes_wr, hit, closed, conf */
#define II_CTX_BASE 90   /* counts | active | parked | warmed | tr_len, each N */

/* F (double) scalar layout. */
#define FF_L3_LATENCY 0
#define FF_MLP 1
#define FF_PENDING_NOW 2
#define FF_PENDING_STALL 3 /* stall accumulated before a PH_AFTER_WB bail */
#define FF_EPOCH_TIME 4    /* rebalance timestamp for an RK_EPOCH bail */
#define FF_CYC 5 /* +d*12+slot*4: hit, closed, conflict, transfer */
#define FF_WBUF 29
#define FF_DSTAT 31 /* +d*2: queue_wait, service */
#define FF_CTX_BASE 35 /* next_time | finish | work_per_event, each N */

/* P (pointer) layout. */
#define P_FWD 0
#define P_INV 1 /* frame -> packed vpage key + 1 (migrating orgs only) */
#define P_PAGE_REF 2
#define P_PAGE_DIRTY 3
#define P_LLT_TABLE 4
#define P_LLT_RESIDENT 5
#define P_L3_VALID 6
#define P_L3_DIRTY 7
#define P_L3_TAGS 8
#define P_L3_LRU 9
#define P_POSTED 10
#define P_SWAP_LOG 11 /* i64 (frame_a, frame_b) pairs */
#define P_ORG_A 12 /* alloy tags (i64) | tlm-dyn referenced (u8) | tlm-freq counts (i64) */
#define P_ORG_B 13 /* alloy dirty (u8) | tlm-dyn touch counts (i64) */
#define P_DEV 14   /* +d*4: bank_open(i64), bank_busy(f64), bus(f64), debt(f64) */
#define P_TRACE 22 /* +c*3: vline(i64), pc(i64), is_write(u8) */
/* after traces: +c: per-context predictor table (u8) — LLP for cameo,
 * MAP-I for alloy — may be NULL */

/* One posted heap entry; ops pack
 * line<<8 | stream<<4 | write<<3 | slot<<1 | dev.
 * Stream ops move II_LINES_PER_PAGE whole lines starting at line. */
typedef struct {
    double time;
    i64 seq;
    i64 n_ops;
    i64 ops[4];
} PostedEntry;

typedef struct {
    i64 n_channels;
    i64 n_banks;
    i64 lines_per_row;
    i64 capacity_lines;
    i64 *bank_open;
    double *bank_busy;
    double *bus;
    double *debt;
    double cyc[3][4]; /* [size slot][hit, closed, conflict, transfer] */
    double wbuf_cycles;
    i64 size_bytes[3];
    i64 *si;    /* rd, wr, bytes_rd, bytes_wr, hit, closed, conf */
    double *qw; /* queue_wait_cycles (running value) */
    double *sv; /* service_cycles (running value) */
} Dev;

typedef struct {
    i64 *I;
    double *F;
    void **P;
    i64 N;
    Dev dev[2];
    i64 n_dev;
    PostedEntry *heap;
    i64 posted_cap;
    u8 *llt_table;
    u8 *llt_resident;
    i64 *fwd;
    i64 *inv;
    u8 *page_ref;
    u8 *page_dirty;
    u8 *l3_valid;
    u8 *l3_dirty;
    i64 *l3_tags;
    u8 *l3_lru;
    i64 *swap_log;
    i64 *alloy_tags;  /* P_ORG_A when kind == 2 */
    u8 *alloy_dirty;  /* P_ORG_B when kind == 2 */
    u8 *dyn_ref;      /* P_ORG_A when kind == 4 */
    i64 *dyn_touch;   /* P_ORG_B when kind == 4 */
    i64 *freq_counts; /* P_ORG_A when kind == 5 */
    int error;
    int epoch_due;     /* TLM-Freq epoch boundary reached */
    double epoch_time; /* completion time of the triggering access */
} St;

i64 rk_abi_version(void) { return RK_ABI; }

/* -- DRAM device timing (mirror of DramDevice._timed_access) ------------- */

static double dev_access(St *st, i64 d, double now, i64 line, i64 slot,
                         i64 is_write) {
    Dev *dv = &st->dev[d];
    if (line < 0 || line >= dv->capacity_lines) {
        st->error = 1;
        return 0.0;
    }
    i64 ch = line % dv->n_channels;
    i64 row = (line / dv->n_channels) / dv->lines_per_row;
    i64 flat = ch * dv->n_banks + row % dv->n_banks;

    double hit_c = dv->cyc[slot][0];
    double closed_c = dv->cyc[slot][1];
    double conf_c = dv->cyc[slot][2];
    double transfer = dv->cyc[slot][3];
    i64 open_row = dv->bank_open[flat];
    double core;
    if (open_row == -1) {
        core = closed_c;
        dv->si[5] += 1; /* row_closed */
    } else if (open_row == row) {
        core = hit_c;
        dv->si[4] += 1; /* row_hits */
    } else {
        core = conf_c;
        dv->si[6] += 1; /* row_conflicts */
    }

    if (is_write) {
        double busy = dv->bus[ch];
        double debt = dv->debt[ch];
        if (debt > 0.0 && now > busy) {
            double gap = now - busy;
            double drained = debt <= gap ? debt : gap;
            busy += drained;
            debt -= drained;
        }
        debt += transfer;
        double overflow = debt - dv->wbuf_cycles;
        if (overflow > 0.0) {
            busy = (busy >= now ? busy : now) + overflow;
            debt = dv->wbuf_cycles;
        }
        dv->bus[ch] = busy;
        dv->debt[ch] = debt;
        dv->bank_open[flat] = row;
        dv->si[1] += 1;                    /* writes */
        dv->si[3] += dv->size_bytes[slot]; /* bytes_written */
        *dv->sv += core;
        return core;
    }

    double bank_free = dv->bank_busy[flat];
    double start = now > bank_free ? now : bank_free;
    double data_ready = start + (core - transfer);
    double busy = dv->bus[ch];
    double debt = dv->debt[ch];
    if (debt > 0.0 && data_ready > busy) {
        double gap = data_ready - busy;
        double drained = debt <= gap ? debt : gap;
        busy += drained;
        dv->debt[ch] = debt - drained;
    }
    double bus_start = data_ready >= busy ? data_ready : busy;
    dv->bus[ch] = bus_start + transfer;
    double finish = bus_start + transfer;
    dv->bank_open[flat] = row;
    if (finish > dv->bank_busy[flat]) dv->bank_busy[flat] = finish;
    dv->si[0] += 1;                    /* reads */
    dv->si[2] += dv->size_bytes[slot]; /* bytes_read */
    *dv->qw += start - now;
    *dv->sv += finish - start;
    return finish - now;
}

/* Mirror of DramDevice.speculative_access (bus transfer only). */
static void dev_speculative(St *st, i64 d, double now, i64 line, i64 slot) {
    Dev *dv = &st->dev[d];
    if (line < 0 || line >= dv->capacity_lines) {
        st->error = 1;
        return;
    }
    double transfer = dv->cyc[slot][3];
    i64 ch = line % dv->n_channels;
    double busy = dv->bus[ch];
    double debt = dv->debt[ch];
    if (debt > 0.0 && now > busy) {
        double gap = now - busy;
        double drained = debt <= gap ? debt : gap;
        busy += drained;
        dv->debt[ch] = debt - drained;
    }
    double start = now >= busy ? now : busy;
    dv->bus[ch] = start + transfer;
    dv->si[0] += 1;
    dv->si[2] += dv->size_bytes[slot];
    *dv->sv += transfer;
}

/* Mirror of DramDevice.stream: bulk-transfer lines_per_page consecutive
 * lines, spread round-robin over the channels; each channel's bus is
 * hard-reserved for its share.  Per-line bank state is not updated. */
static double dev_stream(St *st, i64 d, double now, i64 first_line,
                         i64 is_write) {
    Dev *dv = &st->dev[d];
    i64 n_lines = st->I[II_LINES_PER_PAGE];
    i64 n_channels = dv->n_channels;
    i64 base_share = n_lines / n_channels;
    i64 extra = n_lines % n_channels;
    double transfer = dv->cyc[0][3];
    double activation = dv->cyc[0][1] - transfer;
    double finish_max = now;
    i64 total_rows = 0;
    i64 bound = n_channels <= n_lines ? n_channels : n_lines;
    for (i64 offset = 0; offset < bound; offset++) {
        i64 share = base_share + (offset < extra ? 1 : 0);
        if (share == 0) continue;
        i64 rows = (share + dv->lines_per_row - 1) / dv->lines_per_row;
        total_rows += rows;
        i64 ch = (first_line + offset) % n_channels;
        double duration = (double)share * transfer + (double)rows * activation;
        /* Channel.reserve_bus: drain write debt into the idle gap, then
         * hard-reserve the bus horizon. */
        double busy = dv->bus[ch];
        double debt = dv->debt[ch];
        if (debt > 0.0 && now > busy) {
            double gap = now - busy;
            double drained = debt <= gap ? debt : gap;
            busy += drained;
            dv->debt[ch] = debt - drained;
        }
        double start = now >= busy ? now : busy;
        dv->bus[ch] = start + duration;
        double fin = start + duration;
        if (fin > finish_max) finish_max = fin;
    }
    i64 n_bytes = n_lines * dv->size_bytes[0];
    if (is_write) {
        dv->si[1] += n_lines;
        dv->si[3] += n_bytes;
    } else {
        dv->si[0] += n_lines;
        dv->si[2] += n_bytes;
    }
    dv->si[5] += total_rows;           /* row_closed */
    dv->si[4] += n_lines - total_rows; /* row_hits */
    *dv->sv += finish_max - now;
    return finish_max - now;
}

/* -- Posted heap: binary min-heap on (time, seq), == heapq ---------------- */

static int posted_less(const PostedEntry *a, const PostedEntry *b) {
    if (a->time != b->time) return a->time < b->time;
    return a->seq < b->seq;
}

static void posted_push(St *st, double time, i64 n_ops, const i64 *ops) {
    i64 *len = &st->I[II_POSTED_LEN];
    PostedEntry *h = st->heap;
    i64 i = (*len)++;
    PostedEntry e;
    e.time = time;
    e.seq = ++st->I[II_POST_SEQ];
    e.n_ops = n_ops;
    memset(e.ops, 0, sizeof(e.ops));
    for (i64 k = 0; k < n_ops; k++) e.ops[k] = ops[k];
    while (i > 0) {
        i64 parent = (i - 1) / 2;
        if (!posted_less(&e, &h[parent])) break;
        h[i] = h[parent];
        i = parent;
    }
    h[i] = e;
}

static void posted_pop(St *st, PostedEntry *out) {
    i64 *len = &st->I[II_POSTED_LEN];
    PostedEntry *h = st->heap;
    *out = h[0];
    PostedEntry last = h[--(*len)];
    i64 i = 0;
    for (;;) {
        i64 l = 2 * i + 1, r = l + 1, small = i;
        PostedEntry *cand = &last;
        if (l < *len && posted_less(&h[l], cand)) {
            small = l;
            cand = &h[l];
        }
        if (r < *len && posted_less(&h[r], cand)) {
            small = r;
        }
        if (small == i) break;
        h[i] = h[small];
        i = small;
    }
    h[i] = last;
}

static i64 pack_op(i64 dev, i64 slot, i64 is_write, i64 stream, i64 line) {
    return (line << 8) | (stream << 4) | (is_write << 3) | (slot << 1) | dev;
}

static void flush_posted(St *st, double now) {
    PostedEntry e;
    while (st->I[II_POSTED_LEN] > 0 && st->heap[0].time <= now) {
        posted_pop(st, &e);
        for (i64 k = 0; k < e.n_ops; k++) {
            i64 op = e.ops[k];
            i64 d = op & 1;
            i64 line = op >> 8;
            i64 w = (op >> 3) & 1;
            if (op & 16)
                dev_stream(st, d, e.time, line, w);
            else
                dev_access(st, d, e.time, line, (op >> 1) & 3, w);
            if (st->error) return;
        }
    }
}

/* -- L3 (mirror of SetAssociativeCache flat-LRU path + L3Cache stats) ----- */

static void l3_touch_lru(St *st, i64 base, i64 ways, i64 way) {
    (void)ways;
    u8 *order = st->l3_lru;
    i64 pos = base;
    while (order[pos] != (u8)way) pos++;
    if (pos != base) {
        memmove(order + base + 1, order + base, (size_t)(pos - base));
        order[base] = (u8)way;
    }
}

/* Returns 1 on hit; on miss *wb_line is the dirty victim line or -1. */
static i64 l3_access(St *st, i64 line, i64 is_write, i64 *wb_line) {
    i64 num_sets = st->I[II_L3_SETS];
    i64 ways = st->I[II_L3_WAYS];
    i64 set_idx = line % num_sets;
    i64 tag = line / num_sets;
    i64 base = set_idx * ways;
    u8 *valid = st->l3_valid;
    i64 *tags = st->l3_tags;
    *wb_line = -1;

    for (i64 idx = base; idx < base + ways; idx++) {
        if (valid[idx] && tags[idx] == tag) {
            if (is_write) st->l3_dirty[idx] = 1;
            l3_touch_lru(st, base, ways, idx - base);
            st->I[II_STAT_L3] += 1; /* accesses */
            return 1;
        }
    }
    i64 victim_way = -1;
    for (i64 idx = base; idx < base + ways; idx++) {
        if (!valid[idx]) {
            victim_way = idx - base;
            break;
        }
    }
    if (victim_way < 0) {
        victim_way = st->l3_lru[base + ways - 1];
        i64 idx = base + victim_way;
        i64 evicted = tags[idx] * num_sets + set_idx;
        if (st->l3_dirty[idx]) *wb_line = evicted;
    }
    i64 idx = base + victim_way;
    valid[idx] = 1;
    tags[idx] = tag;
    st->l3_dirty[idx] = is_write ? 1 : 0;
    l3_touch_lru(st, base, ways, victim_way);
    st->I[II_STAT_L3] += 1;     /* accesses */
    st->I[II_STAT_L3 + 1] += 1; /* misses */
    if (*wb_line >= 0) st->I[II_STAT_L3 + 2] += 1; /* writebacks */
    return 0;
}

/* -- Shared org bookkeeping ----------------------------------------------- */

static void org_note(St *st, i64 is_write, i64 is_wb, i64 stacked) {
    i64 *o = &st->I[II_STAT_ORG];
    if (is_wb) {
        o[6] += 1;
        if (stacked) o[7] += 1;
        return;
    }
    o[0] += 1;
    if (is_write)
        o[2] += 1;
    else
        o[1] += 1;
    if (stacked)
        o[3] += 1;
    else
        o[4] += 1;
}

/* Per-context predictor counter table (LLP for cameo, MAP-I for alloy). */
static u8 *ctx_table(St *st, i64 ctx) {
    return (u8 *)st->P[P_TRACE + 3 * st->N + ctx];
}

static i64 llp_index(St *st, i64 pc) {
    return (pc >> 2) % st->I[II_LLP_ENTRIES];
}

static void llt_swap_to_stacked(St *st, i64 group, i64 rslot) {
    i64 k = st->I[II_GROUP_SIZE];
    i64 base = group * k;
    i64 old_slot = st->llt_table[base + rslot];
    if (old_slot == 0) return;
    i64 victim = st->llt_resident[group];
    st->llt_table[base + rslot] = 0;
    st->llt_table[base + victim] = (u8)old_slot;
    st->llt_resident[group] = (u8)rslot;
}

/* -- CAMEO (CoLocatedLltCameo; stacked is dev 0, off-chip dev 1) ---------- */

static double cameo_access(St *st, double now, i64 line, i64 is_write,
                           i64 is_wb, i64 ctx, i64 pc) {
    if (line < 0 || line >= st->I[II_TOTAL_LINES]) {
        st->error = 1;
        return 0.0;
    }
    i64 group = line & st->I[II_GROUP_MASK];
    i64 gb = st->I[II_GROUP_BITS];
    i64 rslot = line >> gb;
    i64 aslot = st->llt_table[group * st->I[II_GROUP_SIZE] + rslot];
    i64 pk = st->I[II_PREDICTOR_KIND];
    double latency;
    i64 stacked;

    if (is_write) {
        if (st->I[II_SWAP_ON_WRITE]) {
            /* _service_write_swap: train the predictor first. */
            if (pk == 1) ctx_table(st, ctx)[llp_index(st, pc)] = (u8)aslot;
            double probe = dev_access(st, 0, now, group, 1, 0);
            double t_located = now + probe;
            i64 ops[2];
            if (aslot == 0) {
                ops[0] = pack_op(0, 1, 1, 0, group);
                posted_push(st, t_located, 1, ops);
                latency = probe;
                stacked = 1;
            } else {
                i64 off_line = ((aslot - 1) << gb) | group;
                ops[0] = pack_op(0, 1, 1, 0, group);
                ops[1] = pack_op(1, 0, 1, 0, off_line);
                posted_push(st, t_located, 2, ops);
                llt_swap_to_stacked(st, group, rslot);
                st->I[II_STAT_ORG + 5] += 1; /* line_swaps */
                latency = probe;
                stacked = 0;
            }
        } else {
            /* _service_write_in_place */
            double probe = dev_access(st, 0, now, group, 1, 0);
            double t_located = now + probe;
            i64 ops[1];
            if (aslot == 0) {
                ops[0] = pack_op(0, 1, 1, 0, group);
                posted_push(st, t_located, 1, ops);
                latency = probe;
                stacked = 1;
            } else {
                ops[0] = pack_op(1, 0, 1, 0, ((aslot - 1) << gb) | group);
                posted_push(st, t_located, 1, ops);
                latency = probe;
                stacked = 0;
            }
        }
    } else {
        /* _service_read */
        i64 pred;
        if (pk == 0)
            pred = 0;
        else if (pk == 2)
            pred = aslot;
        else
            pred = ctx_table(st, ctx)[llp_index(st, pc)];
        i64 *cs = &st->I[II_STAT_CASE];
        if (aslot == 0) {
            if (pred == 0)
                cs[0] += 1;
            else
                cs[1] += 1;
        } else if (pred == 0)
            cs[2] += 1;
        else if (pred == aslot)
            cs[3] += 1;
        else
            cs[4] += 1;

        double probe = dev_access(st, 0, now, group, 1, 0);
        if (aslot == 0) {
            if (pred != 0)
                dev_speculative(st, 1, now, ((pred - 1) << gb) | group, 0);
            if (pk == 1) ctx_table(st, ctx)[llp_index(st, pc)] = 0;
            org_note(st, 0, is_wb, 1);
            return probe;
        }
        i64 actual_line = ((aslot - 1) << gb) | group;
        if (pred == aslot) {
            double res = dev_access(st, 1, now, actual_line, 0, 0);
            latency = probe >= res ? probe : res;
        } else {
            if (pred != 0)
                dev_speculative(st, 1, now, ((pred - 1) << gb) | group, 0);
            double res = dev_access(st, 1, now + probe, actual_line, 0, 0);
            latency = probe + res;
        }
        /* _perform_swap with victim_prefetched=True. */
        i64 ops[2];
        ops[0] = pack_op(0, 1, 1, 0, group);
        ops[1] = pack_op(1, 0, 1, 0, actual_line);
        posted_push(st, now + latency, 2, ops);
        llt_swap_to_stacked(st, group, rslot);
        st->I[II_STAT_ORG + 5] += 1; /* line_swaps */
        if (pk == 1) ctx_table(st, ctx)[llp_index(st, pc)] = (u8)aslot;
        stacked = 0;
    }
    org_note(st, is_write, is_wb, stacked);
    return latency;
}

/* -- Alloy Cache (AlloyCacheOrg; stacked is dev 0, off-chip dev 1) -------- */

/* Mirror of AlloyCacheOrg._fill: post the victim writeback (its data
 * already streamed out with the probe) and the TAD install burst; tag
 * metadata updates immediately. */
static void alloy_fill(St *st, double time, i64 line, i64 dirty) {
    i64 set_idx = line % st->I[II_NUM_SETS];
    i64 victim = st->alloy_tags[set_idx];
    i64 victim_dirty = st->alloy_dirty[set_idx];
    i64 writeback = victim != -1 && victim != line && victim_dirty;
    i64 ops[2];
    i64 n = 0;
    if (writeback) ops[n++] = pack_op(1, 0, 1, 0, victim);
    ops[n++] = pack_op(0, 2, 1, 0, set_idx);
    posted_push(st, time, n, ops);
    if (writeback) st->I[II_STAT_ALLOY + 3] += 1; /* dirty_victim_wbs */
    if (victim != line) st->alloy_dirty[set_idx] = 0;
    st->alloy_tags[set_idx] = line;
    if (dirty) st->alloy_dirty[set_idx] = 1;
    st->I[II_STAT_ALLOY + 2] += 1; /* fills */
}

static double alloy_access(St *st, double now, i64 line, i64 is_write,
                           i64 is_wb, i64 ctx, i64 pc) {
    i64 set_idx = line % st->I[II_NUM_SETS];
    i64 hit = st->alloy_tags[set_idx] == line;
    double latency;

    if (is_write) {
        /* _service_write: the TAD probe (read) detects a dirty victim,
         * the install write is posted. */
        double probe = dev_access(st, 0, now, set_idx, 2, 0);
        if (hit)
            st->I[II_STAT_ALLOY] += 1;
        else
            st->I[II_STAT_ALLOY + 1] += 1;
        alloy_fill(st, now + probe, line, 1);
        latency = probe;
    } else {
        /* _service_read: MAP-I predicts before the probe launches. */
        u8 *table = ctx_table(st, ctx);
        i64 mi = (pc >> 2) % st->I[II_MAPI_ENTRIES];
        i64 counter = table[mi];
        i64 pred = counter >= st->I[II_MAPI_THRESHOLD];
        double probe = dev_access(st, 0, now, set_idx, 2, 0);
        if (hit) {
            st->I[II_STAT_ALLOY] += 1;
            if (!pred)
                /* MAP-I guessed miss: the parallel fetch is squashed
                 * when the TAD's tag matches (bandwidth-only waste). */
                dev_speculative(st, 1, now, line, 0);
            latency = probe;
        } else {
            st->I[II_STAT_ALLOY + 1] += 1;
            if (pred) {
                /* Serial: memory access waits for the failed probe. */
                double mem = dev_access(st, 1, now + probe, line, 0, 0);
                latency = probe + mem;
            } else {
                double mem = dev_access(st, 1, now, line, 0, 0);
                latency = probe >= mem ? probe : mem;
            }
            alloy_fill(st, now + latency, line, 0);
        }
        /* predictor.update(ctx, pc, hit) */
        st->I[II_STAT_MAPI] += 1;
        if (pred == hit) st->I[II_STAT_MAPI + 1] += 1;
        if (hit) {
            if (counter < st->I[II_MAPI_MAX]) table[mi] = (u8)(counter + 1);
        } else {
            if (counter > 0) table[mi] = (u8)(counter - 1);
        }
    }
    org_note(st, is_write, is_wb, hit);
    return latency;
}

/* -- TLM family (stacked is dev 0, off-chip dev 1) ------------------------ */

/* Mirror of TlmBase.migrate_swap + MemoryManager.swap_frames: post the
 * four page streams, swap the dense forward/inverse maps and the shared
 * reference/dirty columns, and journal the pair so the driver can
 * replay it into the Python page table and free lists. */
static void tlm_migrate(St *st, double time, i64 offchip_frame,
                        i64 stacked_frame) {
    i64 per_page = st->I[II_LINES_PER_PAGE];
    i64 stacked_local = stacked_frame * per_page;
    i64 offchip_local = offchip_frame * per_page - st->I[II_STACKED_LINES];
    i64 ops[4];
    ops[0] = pack_op(0, 0, 0, 1, stacked_local);
    ops[1] = pack_op(1, 0, 0, 1, offchip_local);
    ops[2] = pack_op(0, 0, 1, 1, stacked_local);
    ops[3] = pack_op(1, 0, 1, 1, offchip_local);
    posted_push(st, time, 4, ops);

    i64 key_off = st->inv[offchip_frame];
    i64 key_st = st->inv[stacked_frame];
    if (key_off) st->fwd[key_off - 1] = stacked_frame + 1;
    if (key_st) st->fwd[key_st - 1] = offchip_frame + 1;
    st->inv[offchip_frame] = key_st;
    st->inv[stacked_frame] = key_off;
    u8 tmp = st->page_ref[offchip_frame];
    st->page_ref[offchip_frame] = st->page_ref[stacked_frame];
    st->page_ref[stacked_frame] = tmp;
    tmp = st->page_dirty[offchip_frame];
    st->page_dirty[offchip_frame] = st->page_dirty[stacked_frame];
    st->page_dirty[stacked_frame] = tmp;

    i64 len = st->I[II_SWAP_LOG_LEN];
    st->swap_log[2 * len] = offchip_frame;
    st->swap_log[2 * len + 1] = stacked_frame;
    st->I[II_SWAP_LOG_LEN] = len + 1;
    st->I[II_STAT_ORG + 8] += 1; /* page_migrations */
}

/* Mirror of TlmDynamic._after_access + _select_stacked_victim. */
static void tlm_dyn_after(St *st, double time, i64 line) {
    i64 frame = line / st->I[II_LINES_PER_PAGE];
    if (frame < st->I[II_STACKED_PAGES]) {
        st->dyn_ref[frame] = 1;
        return;
    }
    i64 touches = st->dyn_touch[frame] + 1;
    if (touches < st->I[II_MIG_THRESHOLD]) {
        st->dyn_touch[frame] = touches;
        return;
    }
    st->dyn_touch[frame] = 0;
    /* Second-chance sweep over stacked frames. */
    i64 n = st->I[II_STACKED_PAGES];
    i64 hand = st->I[II_CLOCK_HAND];
    i64 victim = -1;
    for (i64 k = 0; k < 2 * n; k++) {
        i64 fr = hand;
        hand = (hand + 1) % n;
        if (st->dyn_ref[fr])
            st->dyn_ref[fr] = 0;
        else {
            victim = fr;
            break;
        }
    }
    st->I[II_CLOCK_HAND] = hand;
    if (victim < 0) victim = hand;
    tlm_migrate(st, time, frame, victim);
    st->dyn_ref[victim] = 1;
}

/* Mirror of TlmFreq._after_access's counting half: the epoch rebalance
 * itself always bails to Python (TlmFreq.service_epoch). */
static void tlm_freq_after(St *st, double time, i64 line) {
    i64 frame = line / st->I[II_LINES_PER_PAGE];
    st->freq_counts[frame] += 1;
    st->I[II_EPOCH_COUNT] += 1;
    if (st->I[II_EPOCH_COUNT] >= st->I[II_EPOCH_ACCESSES]) {
        st->epoch_due = 1;
        st->epoch_time = time;
    }
}

static double tlm_access(St *st, double now, i64 line, i64 is_write,
                         i64 is_wb) {
    i64 stacked_lines = st->I[II_STACKED_LINES];
    i64 d, local;
    if (line < stacked_lines) {
        d = 0;
        local = line;
    } else {
        d = 1;
        local = line - stacked_lines;
    }
    double lat = dev_access(st, d, now, local, 0, is_write);
    org_note(st, is_write, is_wb, d == 0);
    i64 kind = st->I[II_ORG_KIND];
    if (kind == 4)
        tlm_dyn_after(st, now + lat, line);
    else if (kind == 5)
        tlm_freq_after(st, now + lat, line);
    return lat;
}

/* One demand/writeback access through the organization; returns latency. */
static double org_access(St *st, double now, i64 line, i64 is_write,
                         i64 is_wb, i64 ctx, i64 pc) {
    i64 kind = st->I[II_ORG_KIND];
    if (kind == 0) {
        /* NoStackedBaseline: one off-chip line access. */
        double lat =
            dev_access(st, st->I[II_DEMAND_DEV], now, line, 0, is_write);
        org_note(st, is_write, is_wb, 0);
        return lat;
    }
    if (kind == 1) return cameo_access(st, now, line, is_write, is_wb, ctx, pc);
    if (kind == 2) return alloy_access(st, now, line, is_write, is_wb, ctx, pc);
    return tlm_access(st, now, line, is_write, is_wb);
}

/* -- The run loop (mirror of engine._run_trace_python) -------------------- */

static i64 bail(St *st, i64 code, i64 phase, i64 ctx, double now) {
    st->I[II_PHASE] = phase;
    st->I[II_PENDING_CTX] = ctx;
    st->F[FF_PENDING_NOW] = now;
    return code;
}

i64 rk_run(i64 *I, double *F, void **P) {
    St st;
    memset(&st, 0, sizeof(st));
    st.I = I;
    st.F = F;
    st.P = P;
    st.N = I[II_NUM_CONTEXTS];
    st.n_dev = I[II_N_DEVICES];
    st.heap = (PostedEntry *)P[P_POSTED];
    st.posted_cap = I[II_POSTED_CAP];
    st.fwd = (i64 *)P[P_FWD];
    st.inv = (i64 *)P[P_INV];
    st.page_ref = (u8 *)P[P_PAGE_REF];
    st.page_dirty = (u8 *)P[P_PAGE_DIRTY];
    st.llt_table = (u8 *)P[P_LLT_TABLE];
    st.llt_resident = (u8 *)P[P_LLT_RESIDENT];
    st.l3_valid = (u8 *)P[P_L3_VALID];
    st.l3_dirty = (u8 *)P[P_L3_DIRTY];
    st.l3_tags = (i64 *)P[P_L3_TAGS];
    st.l3_lru = (u8 *)P[P_L3_LRU];
    st.swap_log = (i64 *)P[P_SWAP_LOG];
    st.alloy_tags = (i64 *)P[P_ORG_A];
    st.alloy_dirty = (u8 *)P[P_ORG_B];
    st.dyn_ref = (u8 *)P[P_ORG_A];
    st.dyn_touch = (i64 *)P[P_ORG_B];
    st.freq_counts = (i64 *)P[P_ORG_A];
    for (i64 d = 0; d < st.n_dev; d++) {
        Dev *dv = &st.dev[d];
        dv->n_channels = I[II_DEV_GEOM + d * 4];
        dv->n_banks = I[II_DEV_GEOM + d * 4 + 1];
        dv->lines_per_row = I[II_DEV_GEOM + d * 4 + 2];
        dv->capacity_lines = I[II_DEV_GEOM + d * 4 + 3];
        dv->bank_open = (i64 *)P[P_DEV + d * 4];
        dv->bank_busy = (double *)P[P_DEV + d * 4 + 1];
        dv->bus = (double *)P[P_DEV + d * 4 + 2];
        dv->debt = (double *)P[P_DEV + d * 4 + 3];
        for (i64 s = 0; s < 3; s++)
            for (i64 k = 0; k < 4; k++)
                dv->cyc[s][k] = F[FF_CYC + d * 12 + s * 4 + k];
        dv->wbuf_cycles = F[FF_WBUF + d];
        dv->size_bytes[0] = I[II_SIZE0_BYTES];
        dv->size_bytes[1] = I[II_SIZE1_BYTES];
        dv->size_bytes[2] = I[II_SIZE2_BYTES];
        dv->si = &I[II_STAT_DEV + d * 7];
        dv->qw = &F[FF_DSTAT + d * 2];
        dv->sv = &F[FF_DSTAT + d * 2 + 1];
    }

    const i64 N = st.N;
    i64 *counts = &I[II_CTX_BASE];
    i64 *active = &I[II_CTX_BASE + N];
    i64 *parked = &I[II_CTX_BASE + 2 * N];
    i64 *warmed = &I[II_CTX_BASE + 3 * N];
    i64 *tr_len = &I[II_CTX_BASE + 4 * N];
    double *next_time = &F[FF_CTX_BASE];
    double *finish_time = &F[FF_CTX_BASE + N];
    double *work = &F[FF_CTX_BASE + 2 * N];
    const i64 n_accesses = I[II_N_ACCESSES];
    const i64 warmup = I[II_WARMUP];
    const i64 lines_per_page = I[II_LINES_PER_PAGE];
    const i64 vstride = I[II_VSTRIDE];
    const i64 has_l3 = I[II_HAS_L3];
    const double l3_latency = F[FF_L3_LATENCY];
    const double mlp = F[FF_MLP];
    const i64 progress_every = I[II_PROGRESS_EVERY];

    i64 ctx;
    double now = 0.0;
    i64 pc, is_write, line, go_to_memory;
    double stall;
    i64 phase = I[II_PHASE];
    I[II_PHASE] = PH_SELECT;
    if (phase == PH_BEFORE) {
        ctx = I[II_PENDING_CTX];
        now = F[FF_PENDING_NOW];
        goto before;
    }
    if (phase == PH_AFTER_FETCH) {
        ctx = I[II_PENDING_CTX];
        now = F[FF_PENDING_NOW];
        goto after_fetch;
    }
    if (phase == PH_AFTER_WB) {
        ctx = I[II_PENDING_CTX];
        now = F[FF_PENDING_NOW];
        goto after_wb;
    }

    for (;;) {
        /* Select: argmin over active, unparked contexts on next_time with
         * lowest-context tie-break — exactly heapq's (time, ctx) order. */
        ctx = -1;
        for (i64 c = 0; c < N; c++) {
            if (!active[c] || parked[c]) continue;
            if (ctx < 0 || next_time[c] < now) {
                ctx = c;
                now = next_time[c];
            }
        }
        if (ctx < 0) return RK_DONE;

        if (warmup && !I[II_WARMUP_DONE] && !warmed[ctx] &&
            counts[ctx] == warmup) {
            warmed[ctx] = 1;
            I[II_CONTEXTS_WARM] += 1;
            if (I[II_CONTEXTS_WARM] < N) {
                parked[ctx] = 1;
                continue;
            }
            /* Global barrier: release the parked contexts at this time,
             * then hand control to Python for the measurement reset. */
            I[II_WARMUP_DONE] = 1;
            for (i64 c = 0; c < N; c++) {
                if (parked[c]) {
                    parked[c] = 0;
                    next_time[c] = now;
                }
            }
            return bail(&st, RK_BARRIER, PH_BEFORE, ctx, now);
        }

    before:
        /* Reserve headroom so an access never finds the heap or the
         * journal full mid-flight (one access posts at most two entries
         * and migrates at most twice: writeback + demand). */
        if (I[II_POSTED_LEN] > st.posted_cap - 8)
            return bail(&st, RK_POSTED_FULL, PH_BEFORE, ctx, now);
        if (I[II_SWAP_LOG_LEN] > I[II_SWAP_LOG_CAP] - 4)
            return bail(&st, RK_SWAP_LOG, PH_BEFORE, ctx, now);
        if (counts[ctx] == n_accesses) {
            finish_time[ctx] = now;
            active[ctx] = 0;
            continue;
        }
        counts[ctx] += 1;
        if (progress_every) {
            I[II_PROGRESS_COUNT] += 1;
            if (I[II_PROGRESS_COUNT] % progress_every == 0)
                return bail(&st, RK_PROGRESS, PH_AFTER_FETCH, ctx, now);
        }

    after_fetch : {
        i64 idx = (counts[ctx] - 1) % tr_len[ctx];
        i64 vline = ((i64 *)st.P[P_TRACE + ctx * 3])[idx];
        pc = ((i64 *)st.P[P_TRACE + ctx * 3 + 1])[idx];
        is_write = ((u8 *)st.P[P_TRACE + ctx * 3 + 2])[idx];

        if (I[II_POSTED_LEN] > 0) {
            flush_posted(&st, now);
            if (st.error) {
                I[II_ERROR_CODE] = 1;
                return bail(&st, RK_ERROR, PH_SELECT, ctx, now);
            }
        }

        i64 vpage = vline / lines_per_page;
        i64 offset = vline % lines_per_page;
        i64 f = st.fwd[ctx * vstride + vpage];
        if (!f) /* page fault: Python runs this access via the object API */
            return bail(&st, RK_FAULT, PH_SELECT, ctx, now);
        i64 frame = f - 1;
        I[II_STAT_VM] += 1; /* translations */
        st.page_ref[frame] = 1;
        if (is_write) st.page_dirty[frame] = 1;

        stall = 0.0;
        line = frame * lines_per_page + offset;
        go_to_memory = 1;
        if (has_l3) {
            i64 wb_line;
            i64 hit = l3_access(&st, line, is_write, &wb_line);
            stall += l3_latency;
            if (hit) {
                go_to_memory = 0;
            } else if (wb_line >= 0) {
                org_access(&st, now, wb_line, 1, 1, ctx, pc);
                if (st.error) {
                    I[II_ERROR_CODE] = 2;
                    return bail(&st, RK_ERROR, PH_SELECT, ctx, now);
                }
                if (st.epoch_due) {
                    /* TLM-Freq epoch hit inside the writeback: Python
                     * must rebalance before the demand access runs. */
                    st.epoch_due = 0;
                    I[II_PENDING_LINE] = line;
                    F[FF_PENDING_STALL] = stall;
                    F[FF_EPOCH_TIME] = st.epoch_time;
                    return bail(&st, RK_EPOCH, PH_AFTER_WB, ctx, now);
                }
            }
        } else {
            stall += l3_latency;
        }
        goto demand;
    }

    after_wb : {
        /* Resume mid-iteration after an epoch rebalance: the writeback
         * completed pre-bail; the demand line was fixed by the earlier
         * translation (rebalance migrations must not re-route it). */
        i64 idx = (counts[ctx] - 1) % tr_len[ctx];
        pc = ((i64 *)st.P[P_TRACE + ctx * 3 + 1])[idx];
        is_write = ((u8 *)st.P[P_TRACE + ctx * 3 + 2])[idx];
        line = I[II_PENDING_LINE];
        stall = F[FF_PENDING_STALL];
        go_to_memory = 1;
    }

    demand:
        if (go_to_memory) {
            double lat = org_access(&st, now, line, is_write, 0, ctx, pc);
            if (!is_write) stall += lat / mlp;
        }
        if (st.error) {
            I[II_ERROR_CODE] = 2;
            return bail(&st, RK_ERROR, PH_SELECT, ctx, now);
        }
        next_time[ctx] = now + work[ctx] + stall;
        if (st.epoch_due) {
            /* TLM-Freq epoch hit on the demand access: the iteration is
             * fully accounted, so resume re-enters at select. */
            st.epoch_due = 0;
            F[FF_EPOCH_TIME] = st.epoch_time;
            return bail(&st, RK_EPOCH, PH_SELECT, ctx, now);
        }
    }
}
