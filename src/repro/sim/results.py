"""Run results and speedup aggregation.

The paper's figure of merit (Section III-C) is execution time of a fixed
amount of work, reported as speedup over the no-stacked baseline and
aggregated per category by geometric mean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.llp import LlpCaseStats
from ..errors import SimulationError
from ..units import geomean


@dataclass(frozen=True)
class RunProvenance:
    """Where a :class:`RunResult` came from: the full simulation recipe.

    Stamped by :func:`repro.sim.runner.run_workload` so downstream
    consumers (sweeps reusing a baseline, matrices merging cells) can
    verify two results are comparable — same workload, same machine,
    same trace length, same seed — instead of trusting the caller.
    Excluded from the JSON export on purpose: it describes the run, it
    is not a measurement, and committed result fixtures should not
    change when only bookkeeping does.
    """

    organization: str
    workload: str
    config_fingerprint: str
    accesses_per_context: int
    seed: int

    def matches(
        self,
        workload: str,
        config_fingerprint: str,
        accesses_per_context: int,
        seed: int,
    ) -> bool:
        """True when this run consumed the same inputs (org aside)."""
        return (
            self.workload == workload
            and self.config_fingerprint == config_fingerprint
            and self.accesses_per_context == accesses_per_context
            and self.seed == seed
        )


@dataclass
class RunResult:
    """Everything measured in one (workload, organization) run."""

    workload: str
    organization: str
    total_cycles: float
    instructions: int
    accesses: int
    #: Bytes that crossed each DRAM device's pins ("stacked"/"offchip").
    dram_bytes: Dict[str, int]
    storage_bytes: int
    page_faults: int
    stacked_service_fraction: float
    line_swaps: int = 0
    page_migrations: int = 0
    llp_cases: Optional[LlpCaseStats] = None
    l3_miss_rate: Optional[float] = None
    #: Per-device micro-telemetry: {"stacked": {"row_hit_rate": ...,
    #: "average_latency": ...}, ...}.
    device_summary: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Fault-injection and recovery counters (see repro.faults.FaultStats);
    #: None when the run had no injector attached.
    fault_summary: Optional[Dict[str, int]] = None
    #: The simulation recipe this result came from (None for results
    #: produced below the runner layer, e.g. direct ``run_trace`` calls).
    #: Bookkeeping, not a measurement: excluded from comparisons and the
    #: JSON export.
    provenance: Optional[RunProvenance] = field(default=None, compare=False)
    #: Engine-backend telemetry from the process that simulated this run
    #: (kernel engagements, fallbacks, bail counts) — stamped by
    #: :func:`repro.sim.parallel.run_job` so subprocess workers' counters
    #: travel back to the parent instead of dying with the process.
    #: Bookkeeping like ``provenance``: excluded from comparisons, the
    #: JSON export, and the result store (a store-served result engaged
    #: no engine in the serving process, and None says exactly that).
    engine_stats: Optional[Dict[str, object]] = field(default=None, compare=False)

    @property
    def ipc(self) -> float:
        if self.total_cycles <= 0:
            return 0.0
        return self.instructions / self.total_cycles

    @property
    def cpi(self) -> float:
        if not self.instructions:
            return 0.0
        return self.total_cycles / self.instructions

    def speedup_over(self, baseline: "RunResult") -> float:
        """Baseline time / this time, for the same workload and work."""
        if baseline.workload != self.workload:
            raise SimulationError(
                f"speedup compares like with like: {baseline.workload} vs {self.workload}"
            )
        if self.total_cycles <= 0:
            raise SimulationError("run completed in zero cycles")
        return baseline.total_cycles / self.total_cycles


@dataclass
class SpeedupReport:
    """Per-workload speedups of many organizations over one baseline."""

    #: speedups[workload][organization] -> speedup over baseline.
    speedups: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: workload -> category name, for the Gmean groupings.
    categories: Dict[str, str] = field(default_factory=dict)

    def add(self, workload: str, category: str, organization: str, speedup: float) -> None:
        self.speedups.setdefault(workload, {})[organization] = speedup
        self.categories[workload] = category

    def organizations(self) -> List[str]:
        names: List[str] = []
        for per_org in self.speedups.values():
            for name in per_org:
                if name not in names:
                    names.append(name)
        return names

    def workloads(self, category: Optional[str] = None) -> List[str]:
        return [
            w for w in self.speedups
            if category is None or self.categories.get(w) == category
        ]

    def gmean(self, organization: str, category: Optional[str] = None) -> float:
        """Geometric-mean speedup over a category (or over everything)."""
        values = [
            per_org[organization]
            for workload, per_org in self.speedups.items()
            if organization in per_org
            and (category is None or self.categories.get(workload) == category)
        ]
        return geomean(values)

    def summary(self, category: Optional[str] = None) -> Dict[str, float]:
        """organization -> gmean speedup."""
        return {org: self.gmean(org, category) for org in self.organizations()}
