"""Declarative campaign plans: versioned schema, failure policy, resume.

Campaigns used to be constructed in Python, so retry/timeout/abort
behavior was hard-wired per call site and a third-party scenario meant
editing the repo. This module makes the whole construction declarative:
a plan file (YAML subset or JSON — parsed by a hand-rolled reader, no
new dependencies) declares **stages** of experiment cells, a dependency
DAG between them, and an explicit **per-stage failure policy**, and the
executor drives everything through the existing Supervisor / planner /
result-store stack::

    plan: repro-campaign-plan
    version: 1
    name: demo
    defaults:
      accesses: 2000
      failure_policy: {max_attempts: 2, on_failure: abort}
    stages:
      - name: headline
        grid:
          orgs: [baseline, cameo]
          workloads: [milc, mcf]
          seeds: [0]
      - name: replay
        depends_on: [headline]
        failure_policy: {on_failure: continue}
        grid:
          orgs: [cameo]
          trace: traces/app.trace

Robustness contract:

* **fail loudly, early** — the parser and validator reject unknown
  keys, bad types, unknown organization/workload/experiment names, and
  DAG problems (missing deps, cycles) with the file and line named,
  before anything simulates;
* **per-stage failure policy** — ``max_attempts``, ``backoff_seconds``,
  ``timeout_seconds``, ``hang_timeout``, an RSS ceiling, and an
  ``on_failure`` propagation mode (``abort`` stops the plan,
  ``continue`` runs the rest, ``skip-dependents`` runs everything that
  does not depend on the failed stage), mapped onto the PR 5
  :class:`~repro.sim.supervisor.SupervisorPolicy` (enforced in pool
  mode, ``--jobs >= 2``; the serial path stays byte-identical to a
  plain loop and does not retry);
* **interrupt-safe resume** — an atomic status JSON records per-stage
  state/attempts/incidents *and* every completed cell's full result, so
  ``--resume`` after SIGINT (or a crash) replays finished work from the
  result store and simulates only what is missing — final results are
  byte-identical to an uninterrupted run;
* **safe plan modification between resumes** — every stage carries a
  content fingerprint over its work-defining inputs (grids, seeds,
  trace *content* checksums, and — transitively — its dependencies);
  editing a stage invalidates it and its dependents, while untouched
  stages keep replaying from the store. Failure-policy edits change no
  fingerprint: retry harder without resimulating.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import InterruptedRunError, PlanError, PlanExecutionError
from ..workloads.ingest import DEFAULT_ERROR_BUDGET
from .parallel import JobOutcome, SimJob
from .result_store import (
    ResultStore,
    default_result_store,
    job_fingerprint,
    result_from_state,
    result_to_state,
    use_result_store,
)
from .supervisor import IncidentJournal, SupervisorPolicy, use_supervision

PLAN_KIND = "repro-campaign-plan"
PLAN_SCHEMA_VERSION = 1
STATUS_KIND = "repro-plan-status"
STATUS_VERSION = 1
EXPORT_KIND = "repro-plan-export"
EXPORT_VERSION = 1

ON_FAILURE_MODES = ("abort", "continue", "skip-dependents")
STAGE_STATES = (
    "pending", "running", "completed", "failed", "skipped", "interrupted",
)

#: Incidents kept per stage in the status file; older ones are dropped
#: (the incident journal, when enabled, keeps the full history).
MAX_STAGE_INCIDENTS = 20


# -- The YAML-subset / JSON reader -----------------------------------------------
#
# Deliberately a subset, hand-rolled so the repo gains no dependency:
# indentation-nested mappings, "- " block lists (including list items
# that open a mapping), inline scalar lists "[a, b]", quoted strings,
# null/~, booleans, ints, floats, and "#" comments. Tabs in indentation
# and anything outside the subset are *errors with line numbers*, never
# guesses. JSON input (a ".json" path or a "{"-leading document) is
# delegated to the stdlib parser.


def parse_plan_source(text: str, path: str = "<plan>") -> object:
    """Parse a plan document (YAML subset or JSON) into plain data."""
    if path.endswith(".json") or text.lstrip()[:1] == "{":
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise PlanError(f"{path}:{exc.lineno}: invalid JSON: {exc.msg}") from exc
    return _YamlSubsetParser(text, path).parse()


_MAPPING_START = re.compile(r"^[^:\s\[\]{}#]+\s*:(\s|$)")


class _YamlSubsetParser:
    def __init__(self, text: str, path: str):
        self.path = path
        self.items: List[Tuple[int, int, str]] = []  # (line_no, indent, body)
        for line_no, raw in enumerate(text.splitlines(), start=1):
            stripped = raw.strip()
            if not stripped or stripped.startswith("#"):
                continue
            leading = raw[: len(raw) - len(raw.lstrip())]
            if "\t" in leading:
                raise PlanError(
                    f"{path}:{line_no}: tabs in indentation are not allowed"
                )
            body = self._strip_comment(raw.rstrip())
            if not body.strip():
                continue
            self.items.append((line_no, len(leading), body.strip()))
        self.pos = 0

    @staticmethod
    def _strip_comment(line: str) -> str:
        in_single = in_double = False
        for index, char in enumerate(line):
            if char == "'" and not in_double:
                in_single = not in_single
            elif char == '"' and not in_single:
                in_double = not in_double
            elif (
                char == "#"
                and not in_single
                and not in_double
                and (index == 0 or line[index - 1] in " \t")
            ):
                return line[:index]
        return line

    def parse(self) -> object:
        if not self.items:
            raise PlanError(f"{self.path}: empty plan document")
        value = self._parse_block(self.items[0][1])
        if self.pos != len(self.items):
            line_no, indent, _ = self.items[self.pos]
            raise PlanError(
                f"{self.path}:{line_no}: unexpected indentation ({indent} "
                "spaces does not match any open block)"
            )
        return value

    def _parse_block(self, indent: int) -> object:
        _, _, body = self.items[self.pos]
        if body == "-" or body.startswith("- "):
            return self._parse_list(indent)
        return self._parse_mapping(indent)

    def _parse_mapping(self, indent: int) -> Dict[str, object]:
        out: Dict[str, object] = {}
        while self.pos < len(self.items):
            line_no, item_indent, body = self.items[self.pos]
            if item_indent < indent:
                break
            if item_indent > indent:
                raise PlanError(
                    f"{self.path}:{line_no}: unexpected indentation"
                )
            if body == "-" or body.startswith("- "):
                break  # a sibling list (belongs to the key that opened it)
            key, sep, rest = body.partition(":")
            key = self._unquote(key.strip(), line_no)
            if not sep or not key:
                raise PlanError(
                    f"{self.path}:{line_no}: expected 'key: value', got {body!r}"
                )
            if key in out:
                raise PlanError(f"{self.path}:{line_no}: duplicate key {key!r}")
            rest = rest.strip()
            self.pos += 1
            if rest:
                out[key] = self._parse_scalar(rest, line_no)
                continue
            if self.pos < len(self.items):
                next_indent = self.items[self.pos][1]
                next_body = self.items[self.pos][2]
                if next_indent > indent:
                    out[key] = self._parse_block(next_indent)
                    continue
                if next_indent == indent and (
                    next_body == "-" or next_body.startswith("- ")
                ):
                    # The common YAML style where a list sits at the same
                    # indent as its key.
                    out[key] = self._parse_list(indent)
                    continue
            out[key] = None
        return out

    def _parse_list(self, indent: int) -> List[object]:
        out: List[object] = []
        while self.pos < len(self.items):
            line_no, item_indent, body = self.items[self.pos]
            if item_indent != indent or not (body == "-" or body.startswith("- ")):
                break
            rest = "" if body == "-" else body[2:].strip()
            if not rest:
                self.pos += 1
                if self.pos < len(self.items) and self.items[self.pos][1] > indent:
                    out.append(self._parse_block(self.items[self.pos][1]))
                else:
                    out.append(None)
            elif _MAPPING_START.match(rest):
                # A list item that opens a mapping: re-anchor the rest at
                # its real column so continuation lines line up with it.
                virtual_indent = item_indent + (len(body) - len(rest))
                self.items[self.pos] = (line_no, virtual_indent, rest)
                out.append(self._parse_mapping(virtual_indent))
            else:
                self.pos += 1
                out.append(self._parse_scalar(rest, line_no))
        return out

    def _parse_scalar(self, text: str, line_no: int) -> object:
        if text.startswith("["):
            if not text.endswith("]"):
                raise PlanError(
                    f"{self.path}:{line_no}: unterminated inline list {text!r}"
                )
            inner = text[1:-1].strip()
            if not inner:
                return []
            if "[" in inner or "{" in inner:
                raise PlanError(
                    f"{self.path}:{line_no}: nested inline collections are "
                    "not supported — use block form"
                )
            return [
                self._parse_scalar(part.strip(), line_no)
                for part in inner.split(",")
            ]
        if text.startswith("{"):
            # One level of flow mapping with scalar values, for compact
            # failure policies: {max_attempts: 2, on_failure: continue}.
            if not text.endswith("}"):
                raise PlanError(
                    f"{self.path}:{line_no}: unterminated inline mapping "
                    f"{text!r}"
                )
            inner = text[1:-1].strip()
            if "{" in inner or "[" in inner:
                raise PlanError(
                    f"{self.path}:{line_no}: nested inline collections are "
                    "not supported — use block form"
                )
            mapping: Dict[str, object] = {}
            if inner:
                for part in inner.split(","):
                    key, sep, value = part.partition(":")
                    key = self._unquote(key.strip(), line_no)
                    if not sep or not key or not value.strip():
                        raise PlanError(
                            f"{self.path}:{line_no}: expected 'key: value' "
                            f"inside inline mapping, got {part.strip()!r}"
                        )
                    if key in mapping:
                        raise PlanError(
                            f"{self.path}:{line_no}: duplicate key {key!r}"
                        )
                    mapping[key] = self._parse_scalar(value.strip(), line_no)
            return mapping
        if text[0] in "'\"":
            return self._unquote(text, line_no)
        lowered = text.lower()
        if lowered in ("null", "~", "none"):
            return None
        if lowered == "true":
            return True
        if lowered == "false":
            return False
        try:
            return int(text)
        except ValueError:
            pass
        try:
            return float(text)
        except ValueError:
            pass
        return text

    def _unquote(self, text: str, line_no: int) -> str:
        if text[:1] in "'\"":
            if len(text) < 2 or text[-1] != text[0]:
                raise PlanError(
                    f"{self.path}:{line_no}: unterminated quoted string {text!r}"
                )
            return text[1:-1]
        return text


# -- Schema dataclasses ----------------------------------------------------------


@dataclass(frozen=True)
class StageFailurePolicy:
    """What happens when cells of one stage fail, and how hard to retry.

    Maps onto :class:`~repro.sim.supervisor.SupervisorPolicy` knobs for
    the per-cell part; ``on_failure`` is the plan-level propagation mode
    applied after the stage's cells (and their retries) have settled.
    """

    max_attempts: int = 1
    backoff_seconds: float = 0.5
    timeout_seconds: Optional[float] = None
    hang_timeout_seconds: Optional[float] = None
    max_rss_mb: Optional[int] = None
    on_failure: str = "abort"

    def supervisor_policy(self) -> SupervisorPolicy:
        return SupervisorPolicy(
            max_attempts=self.max_attempts,
            timeout_seconds=self.timeout_seconds,
            hang_timeout_seconds=self.hang_timeout_seconds,
            backoff_base_seconds=self.backoff_seconds,
            max_rss_bytes=(
                self.max_rss_mb * 1024 * 1024
                if self.max_rss_mb is not None
                else None
            ),
        )


@dataclass(frozen=True)
class StageGrid:
    """One stage's cell grid: orgs x (workloads | ingested trace) x seeds."""

    orgs: Tuple[str, ...]
    workloads: Tuple[str, ...] = ()
    #: Path to an external trace file (resolved against the plan file's
    #: directory at load time); mutually exclusive with ``workloads``.
    trace: Optional[str] = None
    #: Only an explicit ``true`` here lets a failed ingestion degrade to
    #: the synthetic ``fallback_workloads`` — never silently.
    allow_synthetic_fallback: bool = False
    fallback_workloads: Tuple[str, ...] = ()
    seeds: Tuple[int, ...] = (0,)
    accesses: Optional[int] = None
    use_l3: bool = False
    scale_shift: Optional[int] = None
    error_budget: int = DEFAULT_ERROR_BUDGET


@dataclass(frozen=True)
class PlanStage:
    """One node of the plan DAG."""

    name: str
    depends_on: Tuple[str, ...] = ()
    grid: Optional[StageGrid] = None
    #: Names from :data:`repro.experiments.PAPER_PLANNERS`; mutually
    #: exclusive with ``grid``.
    experiments: Tuple[str, ...] = ()
    #: Trace length / base seed for ``experiments`` stages.
    accesses: Optional[int] = None
    seed: int = 0
    failure_policy: StageFailurePolicy = field(default_factory=StageFailurePolicy)
    #: ``host:port`` remote worker endpoints for this stage. Overrides
    #: any run-level endpoints; like the failure policy, *where* a stage
    #: runs is excluded from its work fingerprint.
    endpoints: Tuple[str, ...] = ()


@dataclass(frozen=True)
class CampaignPlan:
    """A validated plan: named stages in declaration order, acyclic deps."""

    name: str
    stages: Tuple[PlanStage, ...]
    source_path: str = "<plan>"

    def stage(self, name: str) -> PlanStage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise PlanError(f"plan {self.name}: no stage named {name!r}")

    def dependents_of(self, name: str) -> List[str]:
        """Stages that (transitively) depend on ``name``."""
        out: List[str] = []
        closure = {name}
        for stage in self.stages:  # declaration order is topological-safe
            if stage.name != name and closure.intersection(stage.depends_on):
                closure.add(stage.name)
                out.append(stage.name)
        return out

    def execution_order(self) -> List[str]:
        """Kahn's topological order, stable in declaration order."""
        remaining = {s.name: set(s.depends_on) for s in self.stages}
        order: List[str] = []
        while remaining:
            ready = [
                s.name for s in self.stages
                if s.name in remaining and not remaining[s.name]
            ]
            if not ready:
                cycle = ", ".join(sorted(remaining))
                raise PlanError(
                    f"plan {self.name}: dependency cycle among stage(s) {cycle}"
                )
            for name in ready:
                del remaining[name]
                order.append(name)
                for deps in remaining.values():
                    deps.discard(name)
        return order

    def describe(self) -> str:
        """The ``repro plan validate`` summary."""
        lines = [f"plan {self.name!r}: {len(self.stages)} stage(s), schema v{PLAN_SCHEMA_VERSION}"]
        for name in self.execution_order():
            stage = self.stage(name)
            if stage.grid is not None:
                grid = stage.grid
                sources = (
                    f"trace {os.path.basename(grid.trace)}"
                    if grid.trace is not None
                    else f"{len(grid.workloads)} workload(s)"
                )
                cells = len(grid.orgs) * max(1, len(grid.workloads)) * len(grid.seeds)
                what = f"{cells} cell(s): {len(grid.orgs)} org(s) x {sources} x {len(grid.seeds)} seed(s)"
            else:
                what = f"experiments: {', '.join(stage.experiments)}"
            deps = f" (after {', '.join(stage.depends_on)})" if stage.depends_on else ""
            remote = (
                f" [endpoints: {', '.join(stage.endpoints)}]"
                if stage.endpoints
                else ""
            )
            lines.append(
                f"  - {name}: {what}{deps} "
                f"[on_failure: {stage.failure_policy.on_failure}, "
                f"max_attempts: {stage.failure_policy.max_attempts}]"
                f"{remote}"
            )
        return "\n".join(lines)


# -- Validation ------------------------------------------------------------------


def _require_keys(
    mapping: Dict, allowed: Sequence[str], required: Sequence[str], where: str
) -> None:
    if not isinstance(mapping, dict):
        raise PlanError(f"{where} must be a mapping")
    unknown = sorted(set(mapping) - set(allowed))
    if unknown:
        raise PlanError(
            f"{where}: unknown key(s) {', '.join(unknown)} "
            f"(known: {', '.join(allowed)})"
        )
    missing = sorted(set(required) - set(mapping))
    if missing:
        raise PlanError(f"{where}: missing required key(s) {', '.join(missing)}")


def _coerce_int(value: object, where: str, minimum: Optional[int] = None) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise PlanError(f"{where} must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise PlanError(f"{where} must be >= {minimum}, got {value}")
    return value


def _coerce_float(
    value: object, where: str, positive: bool = False
) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise PlanError(f"{where} must be a number, got {value!r}")
    value = float(value)
    if positive and value <= 0:
        raise PlanError(f"{where} must be positive, got {value}")
    return value


def _coerce_bool(value: object, where: str) -> bool:
    if not isinstance(value, bool):
        raise PlanError(f"{where} must be true or false, got {value!r}")
    return value


def _coerce_name_list(value: object, where: str) -> Tuple[str, ...]:
    if not isinstance(value, list) or not value or not all(
        isinstance(item, str) and item for item in value
    ):
        raise PlanError(f"{where} must be a non-empty list of names")
    return tuple(value)


_POLICY_KEYS = (
    "max_attempts", "backoff_seconds", "timeout_seconds",
    "hang_timeout_seconds", "max_rss_mb", "on_failure",
)


def _parse_failure_policy(data: object, where: str) -> StageFailurePolicy:
    _require_keys(data, _POLICY_KEYS, (), where)
    kwargs: Dict[str, object] = {}
    if "max_attempts" in data:
        kwargs["max_attempts"] = _coerce_int(
            data["max_attempts"], f"{where}.max_attempts", minimum=1
        )
    if "backoff_seconds" in data:
        backoff = _coerce_float(data["backoff_seconds"], f"{where}.backoff_seconds")
        if backoff < 0:
            raise PlanError(f"{where}.backoff_seconds must be non-negative")
        kwargs["backoff_seconds"] = backoff
    for key in ("timeout_seconds", "hang_timeout_seconds"):
        if key in data and data[key] is not None:
            kwargs[key] = _coerce_float(data[key], f"{where}.{key}", positive=True)
    if "max_rss_mb" in data and data["max_rss_mb"] is not None:
        kwargs["max_rss_mb"] = _coerce_int(
            data["max_rss_mb"], f"{where}.max_rss_mb", minimum=1
        )
    if "on_failure" in data:
        mode = data["on_failure"]
        if mode not in ON_FAILURE_MODES:
            raise PlanError(
                f"{where}.on_failure must be one of "
                f"{', '.join(ON_FAILURE_MODES)}, got {mode!r}"
            )
        kwargs["on_failure"] = mode
    return StageFailurePolicy(**kwargs)


_GRID_KEYS = (
    "orgs", "workloads", "trace", "allow_synthetic_fallback",
    "fallback_workloads", "seeds", "accesses", "use_l3", "scale_shift",
    "error_budget",
)


def _parse_grid(
    data: object, where: str, plan_dir: str, known_workloads: Sequence[str]
) -> StageGrid:
    from ..orgs.factory import organization_names

    _require_keys(data, _GRID_KEYS, ("orgs",), where)
    orgs = _coerce_name_list(data["orgs"], f"{where}.orgs")
    known_orgs = set(organization_names())
    for org in orgs:
        if org not in known_orgs:
            raise PlanError(
                f"{where}.orgs: unknown organization {org!r} "
                f"(known: {', '.join(sorted(known_orgs))})"
            )
    has_workloads = "workloads" in data
    has_trace = data.get("trace") is not None
    if has_workloads == has_trace:
        raise PlanError(
            f"{where}: declare exactly one of 'workloads' or 'trace'"
        )
    workloads: Tuple[str, ...] = ()
    trace: Optional[str] = None
    fallback: Tuple[str, ...] = ()
    allow_fallback = False
    if has_workloads:
        workloads = _coerce_name_list(data["workloads"], f"{where}.workloads")
        for name in workloads:
            if name not in known_workloads:
                raise PlanError(f"{where}.workloads: unknown workload {name!r}")
        for key in ("allow_synthetic_fallback", "fallback_workloads", "error_budget"):
            if key in data:
                raise PlanError(
                    f"{where}.{key} only applies to 'trace' stages"
                )
    else:
        if not isinstance(data["trace"], str) or not data["trace"]:
            raise PlanError(f"{where}.trace must be a file path")
        trace = os.path.normpath(os.path.join(plan_dir, data["trace"]))
        if "allow_synthetic_fallback" in data:
            allow_fallback = _coerce_bool(
                data["allow_synthetic_fallback"],
                f"{where}.allow_synthetic_fallback",
            )
        if "fallback_workloads" in data:
            if not allow_fallback:
                raise PlanError(
                    f"{where}.fallback_workloads requires "
                    "allow_synthetic_fallback: true"
                )
            fallback = _coerce_name_list(
                data["fallback_workloads"], f"{where}.fallback_workloads"
            )
            for name in fallback:
                if name not in known_workloads:
                    raise PlanError(
                        f"{where}.fallback_workloads: unknown workload {name!r}"
                    )
        if allow_fallback and not fallback:
            raise PlanError(
                f"{where}: allow_synthetic_fallback: true requires a "
                "non-empty fallback_workloads list"
            )
    seeds: Tuple[int, ...] = (0,)
    if "seeds" in data:
        raw_seeds = data["seeds"]
        if not isinstance(raw_seeds, list) or not raw_seeds:
            raise PlanError(f"{where}.seeds must be a non-empty list of integers")
        seeds = tuple(
            _coerce_int(seed, f"{where}.seeds[{i}]", minimum=0)
            for i, seed in enumerate(raw_seeds)
        )
        if len(set(seeds)) != len(seeds):
            raise PlanError(f"{where}.seeds contains duplicates")
    kwargs: Dict[str, object] = {}
    if data.get("accesses") is not None:
        kwargs["accesses"] = _coerce_int(
            data["accesses"], f"{where}.accesses", minimum=1
        )
    if "use_l3" in data:
        kwargs["use_l3"] = _coerce_bool(data["use_l3"], f"{where}.use_l3")
    if data.get("scale_shift") is not None:
        kwargs["scale_shift"] = _coerce_int(
            data["scale_shift"], f"{where}.scale_shift", minimum=0
        )
    if "error_budget" in data:
        kwargs["error_budget"] = _coerce_int(
            data["error_budget"], f"{where}.error_budget", minimum=0
        )
    return StageGrid(
        orgs=orgs,
        workloads=workloads,
        trace=trace,
        allow_synthetic_fallback=allow_fallback,
        fallback_workloads=fallback,
        seeds=seeds,
        **kwargs,
    )


_STAGE_KEYS = (
    "name", "depends_on", "grid", "experiments", "accesses", "seed",
    "failure_policy", "endpoints",
)
_TOP_KEYS = ("plan", "version", "name", "defaults", "stages")
_DEFAULTS_KEYS = ("accesses", "seed", "scale_shift", "failure_policy")
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def parse_plan(data: object, source_path: str = "<plan>") -> CampaignPlan:
    """Validate parsed plan data into a :class:`CampaignPlan`.

    Structure, types, names (organizations, workloads, experiments), and
    the dependency DAG are all checked here; anything wrong raises
    :class:`~repro.errors.PlanError` naming the offending element. Trace
    files are *not* opened here — their existence is an execution-time
    concern (``repro plan validate`` must work on a machine that does
    not hold the traces yet).
    """
    from ..experiments import PAPER_PLANNERS
    from ..workloads.spec import workload_names

    where = source_path
    _require_keys(data, _TOP_KEYS, ("plan", "version", "name", "stages"), where)
    if data["plan"] != PLAN_KIND:
        raise PlanError(
            f"{where}: 'plan' must be {PLAN_KIND!r}, got {data['plan']!r}"
        )
    if data["version"] != PLAN_SCHEMA_VERSION:
        raise PlanError(
            f"{where}: schema version {data['version']!r} is not supported "
            f"(this build reads version {PLAN_SCHEMA_VERSION})"
        )
    if not isinstance(data["name"], str) or not _NAME_RE.match(data["name"]):
        raise PlanError(
            f"{where}: 'name' must be a [A-Za-z0-9._-] identifier, "
            f"got {data['name']!r}"
        )
    defaults = data.get("defaults") or {}
    _require_keys(defaults, _DEFAULTS_KEYS, (), f"{where}: defaults")
    default_accesses = None
    if defaults.get("accesses") is not None:
        default_accesses = _coerce_int(
            defaults["accesses"], f"{where}: defaults.accesses", minimum=1
        )
    default_seed = 0
    if "seed" in defaults:
        default_seed = _coerce_int(
            defaults["seed"], f"{where}: defaults.seed", minimum=0
        )
    default_scale_shift = None
    if defaults.get("scale_shift") is not None:
        default_scale_shift = _coerce_int(
            defaults["scale_shift"], f"{where}: defaults.scale_shift", minimum=0
        )
    default_policy = _parse_failure_policy(
        defaults.get("failure_policy") or {}, f"{where}: defaults.failure_policy"
    )

    raw_stages = data["stages"]
    if not isinstance(raw_stages, list) or not raw_stages:
        raise PlanError(f"{where}: 'stages' must be a non-empty list")
    plan_dir = os.path.dirname(os.path.abspath(source_path)) if source_path != "<plan>" else os.getcwd()
    known_workloads = workload_names()
    stages: List[PlanStage] = []
    seen_names: Dict[str, int] = {}
    for index, raw in enumerate(raw_stages):
        label = f"{where}: stages[{index}]"
        _require_keys(raw, _STAGE_KEYS, ("name",), label)
        name = raw["name"]
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise PlanError(
                f"{label}: stage name must be a [A-Za-z0-9._-] identifier, "
                f"got {name!r}"
            )
        label = f"{where}: stage {name!r}"
        if name in seen_names:
            raise PlanError(f"{label} is declared twice")
        seen_names[name] = index
        has_grid = raw.get("grid") is not None
        has_experiments = "experiments" in raw
        if has_grid == has_experiments:
            raise PlanError(
                f"{label}: declare exactly one of 'grid' or 'experiments'"
            )
        depends_on: Tuple[str, ...] = ()
        if "depends_on" in raw:
            deps = raw["depends_on"]
            if isinstance(deps, str):
                deps = [deps]
            depends_on = _coerce_name_list(deps, f"{label}.depends_on")
            if len(set(depends_on)) != len(depends_on):
                raise PlanError(f"{label}.depends_on contains duplicates")
        stage_endpoints: Tuple[str, ...] = ()
        if "endpoints" in raw:
            specs = raw["endpoints"]
            if isinstance(specs, str):
                specs = [specs]
            if not isinstance(specs, list) or not all(
                isinstance(spec, str) for spec in specs
            ):
                raise PlanError(
                    f"{label}.endpoints must be a list of 'host:port' strings"
                )
            from ..errors import RemoteError
            from .remote import parse_endpoints

            try:
                parsed = parse_endpoints(",".join(specs)) if specs else ()
            except RemoteError as exc:
                raise PlanError(f"{label}.endpoints: {exc}") from exc
            stage_endpoints = tuple(ep.address for ep in parsed)
        policy_data = raw.get("failure_policy") or {}
        _require_keys(policy_data, _POLICY_KEYS, (), f"{label}.failure_policy")
        merged_policy = _parse_failure_policy(
            {
                **{k: v for k, v in _policy_as_data(default_policy).items()},
                **policy_data,
            },
            f"{label}.failure_policy",
        )
        grid: Optional[StageGrid] = None
        experiments: Tuple[str, ...] = ()
        accesses: Optional[int] = None
        seed = default_seed
        if has_grid:
            for key in ("accesses", "seed"):
                if key in raw:
                    raise PlanError(
                        f"{label}.{key}: for grid stages, set it inside 'grid'"
                    )
            grid = _parse_grid(raw["grid"], f"{label}.grid", plan_dir, known_workloads)
            if grid.accesses is None and default_accesses is not None:
                grid = replace(grid, accesses=default_accesses)
            if grid.scale_shift is None and default_scale_shift is not None:
                grid = replace(grid, scale_shift=default_scale_shift)
            if "seeds" not in (raw["grid"] or {}):
                grid = replace(grid, seeds=(default_seed,))
        else:
            experiments = _coerce_name_list(
                raw["experiments"], f"{label}.experiments"
            )
            for experiment in experiments:
                if experiment not in PAPER_PLANNERS:
                    raise PlanError(
                        f"{label}.experiments: unknown experiment "
                        f"{experiment!r} (known: "
                        f"{', '.join(sorted(PAPER_PLANNERS))})"
                    )
            accesses = default_accesses
            if raw.get("accesses") is not None:
                accesses = _coerce_int(
                    raw["accesses"], f"{label}.accesses", minimum=1
                )
            if "seed" in raw:
                seed = _coerce_int(raw["seed"], f"{label}.seed", minimum=0)
        stages.append(
            PlanStage(
                name=name,
                depends_on=depends_on,
                grid=grid,
                experiments=experiments,
                accesses=accesses,
                seed=seed,
                failure_policy=merged_policy,
                endpoints=stage_endpoints,
            )
        )

    for stage in stages:
        for dep in stage.depends_on:
            if dep not in seen_names:
                raise PlanError(
                    f"{where}: stage {stage.name!r} depends on unknown "
                    f"stage {dep!r}"
                )
            if dep == stage.name:
                raise PlanError(
                    f"{where}: stage {stage.name!r} depends on itself"
                )
    plan = CampaignPlan(
        name=data["name"], stages=tuple(stages), source_path=source_path
    )
    plan.execution_order()  # raises PlanError on cycles
    return plan


def _policy_as_data(policy: StageFailurePolicy) -> Dict[str, object]:
    return {
        "max_attempts": policy.max_attempts,
        "backoff_seconds": policy.backoff_seconds,
        "timeout_seconds": policy.timeout_seconds,
        "hang_timeout_seconds": policy.hang_timeout_seconds,
        "max_rss_mb": policy.max_rss_mb,
        "on_failure": policy.on_failure,
    }


def load_plan(path: str) -> CampaignPlan:
    """Read, parse, and validate a plan file."""
    try:
        with open(path) as fp:
            text = fp.read()
    except OSError as exc:
        raise PlanError(f"unreadable plan {path}: {exc}") from exc
    return parse_plan(parse_plan_source(text, path), path)


# -- Stage fingerprints ----------------------------------------------------------


def _stage_work_key(stage: PlanStage) -> Dict[str, object]:
    """Everything that defines a stage's *work* (not its failure policy).

    For trace stages the trace file's declared content checksum is the
    keyed value, so replacing the file's contents invalidates the stage
    even when the path is unchanged — and renaming the file without
    changing contents does not. Failure policy and endpoints are
    deliberately excluded: retrying harder must not resimulate finished
    work, and neither must moving the work to a different host.
    """
    if stage.grid is not None:
        grid = stage.grid
        key: Dict[str, object] = {
            "kind": "grid",
            "orgs": list(grid.orgs),
            "workloads": list(grid.workloads),
            "seeds": list(grid.seeds),
            "accesses": grid.accesses,
            "use_l3": grid.use_l3,
            "scale_shift": grid.scale_shift,
        }
        if grid.trace is not None:
            from ..errors import IngestError
            from ..workloads.ingest import read_trace_header

            try:
                checksum = read_trace_header(grid.trace).checksum
            except IngestError as exc:
                # Unreadable now: key the failure mode so the stage
                # re-runs (and re-fingerprints) once the file appears.
                checksum = f"unreadable:{exc}"
            key["trace"] = {
                "checksum": checksum,
                "error_budget": grid.error_budget,
                "allow_synthetic_fallback": grid.allow_synthetic_fallback,
                "fallback_workloads": list(grid.fallback_workloads),
            }
        return key
    return {
        "kind": "experiments",
        "experiments": list(stage.experiments),
        "accesses": stage.accesses,
        "seed": stage.seed,
    }


def stage_fingerprints(plan: CampaignPlan) -> Dict[str, str]:
    """Content fingerprints for every stage, dependency-transitive.

    A stage's fingerprint covers its own work key plus the fingerprints
    of its dependencies, so editing one stage changes the fingerprint of
    everything downstream of it — which is exactly the set a resume must
    invalidate.
    """
    fingerprints: Dict[str, str] = {}
    for name in plan.execution_order():
        stage = plan.stage(name)
        key = {
            "schema": PLAN_SCHEMA_VERSION,
            "work": _stage_work_key(stage),
            "deps": {dep: fingerprints[dep] for dep in sorted(stage.depends_on)},
        }
        blob = json.dumps(key, sort_keys=True, separators=(",", ":"))
        fingerprints[name] = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    return fingerprints


# -- The atomic status file ------------------------------------------------------

_STATUS_KEYS = ("kind", "version", "plan_name", "stages", "results")
_STAGE_STATUS_KEYS = (
    "state", "fingerprint", "attempts", "incidents", "cells_total",
    "cells_failed",
)


def _fresh_stage_status(fingerprint: str) -> Dict[str, object]:
    return {
        "state": "pending",
        "fingerprint": fingerprint,
        "attempts": 0,
        "incidents": [],
        "cells_total": 0,
        "cells_failed": 0,
    }


def write_status(path: str, status: Dict) -> None:
    """Atomically persist the plan status (tmp file + rename)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fp:
            json.dump(status, fp, indent=2, sort_keys=True)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def load_status(path: str) -> Dict:
    """Read and strictly validate a status file written by :func:`run_plan`.

    Unknown keys, missing keys, bad types, or unknown stage states raise
    :class:`~repro.errors.PlanError` — a resume must never guess at a
    half-understood status file.
    """
    try:
        with open(path) as fp:
            payload = json.load(fp)
    except (OSError, json.JSONDecodeError) as exc:
        raise PlanError(f"unreadable plan status {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("kind") != STATUS_KIND:
        raise PlanError(
            f"{path} is not a plan status file (expected kind={STATUS_KIND!r})"
        )
    if payload.get("version") != STATUS_VERSION:
        raise PlanError(
            f"plan status {path} has version {payload.get('version')}, "
            f"expected {STATUS_VERSION}"
        )
    _require_keys(payload, _STATUS_KEYS, _STATUS_KEYS, f"plan status {path}")
    if not isinstance(payload["plan_name"], str):
        raise PlanError(f"plan status {path}: 'plan_name' must be a string")
    stages = payload["stages"]
    if not isinstance(stages, dict):
        raise PlanError(f"plan status {path}: 'stages' must be a mapping")
    for name, entry in stages.items():
        where = f"plan status {path}: stage {name!r}"
        _require_keys(entry, _STAGE_STATUS_KEYS, _STAGE_STATUS_KEYS, where)
        if entry["state"] not in STAGE_STATES:
            raise PlanError(f"{where}: unknown state {entry['state']!r}")
        if not isinstance(entry["fingerprint"], str):
            raise PlanError(f"{where}: 'fingerprint' must be a string")
        for key in ("attempts", "cells_total", "cells_failed"):
            if not isinstance(entry[key], int) or isinstance(entry[key], bool):
                raise PlanError(f"{where}: {key!r} must be an integer")
        if not isinstance(entry["incidents"], list) or not all(
            isinstance(item, str) for item in entry["incidents"]
        ):
            raise PlanError(f"{where}: 'incidents' must be a list of strings")
    results = payload["results"]
    if not isinstance(results, dict) or not all(
        isinstance(key, str) and isinstance(state, dict)
        for key, state in results.items()
    ):
        raise PlanError(
            f"plan status {path}: 'results' must map cell fingerprints to "
            "result states"
        )
    return payload


def describe_status(status: Dict) -> str:
    """The ``repro plan status`` table."""
    from ..analysis.report import format_table

    rows = []
    for name, entry in status["stages"].items():
        incidents = entry["incidents"]
        if entry["state"] in ("completed", "failed"):
            cells = (
                f"{entry['cells_total'] - entry['cells_failed']}"
                f"/{entry['cells_total']}"
            )
        else:
            cells = "-"  # not settled (pending/running/skipped/interrupted)
        rows.append([
            name,
            entry["state"],
            entry["attempts"],
            cells,
            incidents[-1] if incidents else "",
        ])
    return format_table(
        ["stage", "state", "attempts", "cells ok", "last incident"],
        rows,
        title=(
            f"Plan {status['plan_name']!r}: "
            f"{len(status['results'])} completed cell(s) in the store"
        ),
    )


# -- The executor ----------------------------------------------------------------


@dataclass
class PlanRunReport:
    """What one :func:`run_plan` invocation did."""

    plan: CampaignPlan
    status: Dict
    #: stage name -> settled outcomes of this invocation (store hits
    #: included); absent for stages that were skipped.
    outcomes: Dict[str, List[JobOutcome]] = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        return all(
            entry["state"] in ("completed", "skipped", "failed")
            for entry in self.status["stages"].values()
        ) and all(
            entry["state"] == "completed"
            or self.plan.stage(name).failure_policy.on_failure != "abort"
            for name, entry in self.status["stages"].items()
        )

    def describe(self) -> str:
        states: Dict[str, int] = {}
        for entry in self.status["stages"].values():
            states[entry["state"]] = states.get(entry["state"], 0) + 1
        executed = sum(
            1
            for outcomes in self.outcomes.values()
            for outcome in outcomes
            if not outcome.cached
        )
        served = sum(
            1
            for outcomes in self.outcomes.values()
            for outcome in outcomes
            if outcome.cached
        )
        summary = ", ".join(f"{count} {state}" for state, count in sorted(states.items()))
        return (
            f"plan {self.plan.name!r}: {summary}; "
            f"{executed} cell(s) simulated, {served} served from the store"
        )


def _build_stage_jobs(
    stage: PlanStage, incidents: List[str], log: Callable[[str], None]
) -> List[SimJob]:
    """The stage's cell list; raises for an unusable trace stage.

    Ingestion failure with ``allow_synthetic_fallback: true`` degrades —
    loudly, through an incident and the log — to the declared fallback
    workloads; without it the :class:`~repro.errors.IngestError`
    propagates and the stage fails under its ``on_failure`` mode.
    """
    from ..config.system import scaled_paper_system
    from ..errors import IngestError
    from ..workloads.ingest import ingest_trace_file

    if stage.grid is None:
        from ..experiments import PAPER_PLANNERS

        jobs: List[SimJob] = []
        for experiment in stage.experiments:
            planned = PAPER_PLANNERS[experiment](
                accesses_per_context=stage.accesses, seed=stage.seed
            )
            jobs.extend(planned.jobs)
        return jobs
    grid = stage.grid
    config = (
        scaled_paper_system(scale_shift=grid.scale_shift)
        if grid.scale_shift is not None
        else None
    )
    if grid.trace is not None:
        try:
            report = ingest_trace_file(grid.trace, error_budget=grid.error_budget)
        except IngestError as exc:
            if not grid.allow_synthetic_fallback:
                raise
            incident = (
                f"trace ingestion failed ({exc}); degrading to synthetic "
                f"workload(s) {', '.join(grid.fallback_workloads)} as the "
                "plan explicitly allows"
            )
            incidents.append(incident)
            log(f"WARNING: {incident}")
            workloads: List[object] = list(grid.fallback_workloads)
        else:
            for line in report.describe().splitlines():
                log(line)
            for warning in report.warnings:
                incidents.append(warning)
            workloads = [report.trace]
    else:
        workloads = list(grid.workloads)
    return [
        SimJob(
            organization=org,
            workload=workload,
            config=config,
            accesses_per_context=grid.accesses,
            seed=seed,
            use_l3=grid.use_l3,
        )
        for org in grid.orgs
        for workload in workloads
        for seed in grid.seeds
    ]


def _harvest(
    outcomes: Sequence[Optional[JobOutcome]], results: Dict[str, Dict]
) -> int:
    """Fold settled, cacheable results into the status ``results`` map."""
    saved = 0
    for outcome in outcomes:
        if outcome is None or not outcome.ok:
            continue
        fingerprint = job_fingerprint(outcome.job)
        if fingerprint is not None and fingerprint not in results:
            results[fingerprint] = result_to_state(outcome.result)
            saved += 1
    return saved


def _record_incidents(entry: Dict, new_incidents: Sequence[str]) -> None:
    entry["incidents"] = (
        list(entry["incidents"]) + list(new_incidents)
    )[-MAX_STAGE_INCIDENTS:]


def run_plan(
    plan: CampaignPlan,
    status_path: str,
    n_jobs: Optional[int] = 1,
    log: Optional[Callable[[str], None]] = None,
    journal: Optional[IncidentJournal] = None,
    resume: bool = False,
    export_path: Optional[str] = None,
    dispatch: Optional[str] = None,
    endpoints: Optional[Sequence[str]] = None,
) -> PlanRunReport:
    """Execute (or resume) a validated plan; returns the run report.

    Every non-skipped stage executes in dependency order through
    :func:`repro.sim.plan.run_jobs_cached` under its own ambient
    :class:`~repro.sim.supervisor.SupervisorPolicy`; cells already held
    by the result store (including everything a previous interrupted
    invocation banked in the status file) are served without
    simulating, which is what makes a resumed run byte-identical to an
    uninterrupted one. The status file is rewritten atomically after
    every stage transition, so killing this function at any moment
    loses at most the in-flight stage's unfinished cells.

    Raises:
        PlanExecutionError: a stage failed under ``on_failure: abort``
            (the status file already records the failure).
        InterruptedRunError: SIGINT/SIGTERM stopped the run; settled
            cells are already banked in the status file for ``--resume``.
    """
    from .plan import run_jobs_cached

    emit = log if log is not None else (lambda message: None)
    fingerprints = stage_fingerprints(plan)
    order = plan.execution_order()

    results: Dict[str, Dict] = {}
    stage_status: Dict[str, Dict] = {}
    if resume:
        previous = load_status(status_path)
        if previous["plan_name"] != plan.name:
            raise PlanError(
                f"status file {status_path} belongs to plan "
                f"{previous['plan_name']!r}, not {plan.name!r}; use a fresh "
                "--status path"
            )
        results = dict(previous["results"])
        invalidated: List[str] = []
        for name in order:
            entry = previous["stages"].get(name)
            if entry is not None and entry["fingerprint"] == fingerprints[name]:
                stage_status[name] = dict(entry)
                stage_status[name]["incidents"] = list(entry["incidents"])
            else:
                stage_status[name] = _fresh_stage_status(fingerprints[name])
                if entry is not None:
                    invalidated.append(name)
        if invalidated:
            emit(
                "plan changed since the last run; invalidated stage(s): "
                + ", ".join(invalidated)
            )
        emit(
            f"resume: {len(results)} completed cell(s) banked in "
            f"{status_path}"
        )
    else:
        stage_status = {
            name: _fresh_stage_status(fingerprints[name]) for name in order
        }

    status: Dict = {
        "kind": STATUS_KIND,
        "version": STATUS_VERSION,
        "plan_name": plan.name,
        "stages": stage_status,
        "results": results,
    }
    # Every stage re-executes below — cells finished earlier are store
    # hits, and re-running (rather than trusting recorded states) is
    # what guarantees the final status and export cover the whole plan,
    # that previously-failed stages get retried, and that a stage
    # skipped last time runs once its dependency recovers.
    for name in order:
        stage_status[name]["state"] = "pending"
    write_status(status_path, status)

    store = default_result_store()
    own_store = store is None
    store_ctx = use_result_store(ResultStore()) if own_store else _null_ctx()
    report = PlanRunReport(plan=plan, status=status)
    failed_with_skip: List[str] = []

    with store_ctx as maybe_store:
        active_store = maybe_store if own_store else store
        seeded = 0
        for fingerprint, state in results.items():
            try:
                active_store.put(fingerprint, result_from_state(state))
                seeded += 1
            except Exception:
                continue  # undecodable banked cell: simulate it again
        if seeded:
            emit(f"seeded the result store with {seeded} banked cell(s)")
        for name in order:
            stage = plan.stage(name)
            entry = stage_status[name]
            blocked_by = [
                dep
                for dep in stage.depends_on
                if stage_status[dep]["state"] in ("failed", "interrupted", "skipped")
                and (
                    stage_status[dep]["state"] == "skipped"
                    or plan.stage(dep).failure_policy.on_failure
                    == "skip-dependents"
                )
            ]
            if blocked_by:
                entry["state"] = "skipped"
                _record_incidents(
                    entry,
                    [f"skipped: dependency {dep} did not complete"
                     for dep in blocked_by],
                )
                emit(f"stage {name}: skipped ({', '.join(blocked_by)} failed)")
                write_status(status_path, status)
                continue
            entry["state"] = "running"
            write_status(status_path, status)
            emit(f"stage {name}: starting")
            incidents: List[str] = []
            try:
                jobs = _build_stage_jobs(stage, incidents, emit)
            except Exception as exc:
                entry["state"] = "failed"
                incidents.append(f"stage setup failed: {exc}")
                _record_incidents(entry, incidents)
                write_status(status_path, status)
                if stage.failure_policy.on_failure == "abort":
                    raise PlanExecutionError(
                        f"plan {plan.name}: stage {name!r} failed during "
                        f"setup and its policy is abort: {exc}",
                        stage=name,
                    ) from exc
                if stage.failure_policy.on_failure == "skip-dependents":
                    failed_with_skip.append(name)
                emit(f"stage {name}: failed during setup ({exc}); continuing")
                continue
            entry["cells_total"] = len(jobs)
            policy = stage.failure_policy.supervisor_policy()
            try:
                with use_supervision(policy):
                    outcomes = run_jobs_cached(
                        jobs, n_jobs=n_jobs, log=log, journal=journal,
                        dispatch=dispatch,
                        endpoints=(
                            stage.endpoints if stage.endpoints else endpoints
                        ),
                    )
            except InterruptedRunError as exc:
                settled = exc.outcomes or []
                banked = _harvest(settled, results)
                entry["state"] = "interrupted"
                incidents.append(
                    f"interrupted by {exc.signal_name} with "
                    f"{len(exc.pending_keys)} cell(s) pending"
                )
                _record_incidents(entry, incidents)
                write_status(status_path, status)
                emit(
                    f"stage {name}: interrupted; banked {banked} settled "
                    f"cell(s) for --resume"
                )
                raise
            if any(not outcome.cached for outcome in outcomes):
                entry["attempts"] = entry["attempts"] + 1
            _harvest(outcomes, results)
            report.outcomes[name] = list(outcomes)
            failures = [outcome for outcome in outcomes if not outcome.ok]
            entry["cells_failed"] = len(failures)
            for outcome in failures[:8]:
                incidents.append(f"cell {outcome.job.key}: {outcome.error}")
            if len(failures) > 8:
                incidents.append(f"... and {len(failures) - 8} more failed cell(s)")
            if failures:
                entry["state"] = "failed"
                _record_incidents(entry, incidents)
                write_status(status_path, status)
                mode = stage.failure_policy.on_failure
                emit(
                    f"stage {name}: {len(failures)}/{len(jobs)} cell(s) "
                    f"failed (on_failure: {mode})"
                )
                if mode == "abort":
                    raise PlanExecutionError(
                        f"plan {plan.name}: stage {name!r} failed "
                        f"({len(failures)} of {len(jobs)} cells) and its "
                        "policy is abort; see the status file for incidents",
                        stage=name,
                    )
                if mode == "skip-dependents":
                    failed_with_skip.append(name)
                continue
            entry["state"] = "completed"
            _record_incidents(entry, incidents)
            write_status(status_path, status)
            served = sum(1 for outcome in outcomes if outcome.cached)
            emit(
                f"stage {name}: completed ({len(jobs)} cell(s), "
                f"{served} served from the store)"
            )

    if export_path is not None:
        write_export(export_path, report)
        emit(f"exported results to {export_path}")
    return report


@dataclass
class _null_ctx:
    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


def write_export(path: str, report: PlanRunReport) -> None:
    """Write the deterministic results export for one finished run.

    Contains only per-stage states and full per-cell result payloads —
    no wall-clock times, attempt counts, or host details — so an
    interrupted-then-resumed run exports bytes identical to an
    uninterrupted one (the CI plan-smoke job diffs exactly this file).
    """
    stages: Dict[str, Dict] = {}
    for name, entry in report.status["stages"].items():
        cells = {}
        for outcome in report.outcomes.get(name, []):
            if outcome.ok:
                cells[outcome.job.key] = result_to_state(outcome.result)
        stages[name] = {"state": entry["state"], "cells": cells}
    payload = {
        "kind": EXPORT_KIND,
        "version": EXPORT_VERSION,
        "plan": report.plan.name,
        "stages": stages,
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fp:
            json.dump(payload, fp, indent=2, sort_keys=True)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
