"""Content-addressed cache of finished :class:`RunResult`\\ s.

PR 3 memoized the *trace* layer: the five organizations of one
experiment cell replay one materialized access stream. This module
memoizes the *simulation* layer above it. Reproducing the full paper
re-simulates the same ``(organization, workload, config, seed,
accesses)`` cell many times — ``baseline`` and ``cameo`` appear in
nearly every figure runner — so each cell is keyed by a canonical
fingerprint and simulated once:

* **key** — sha256 over the organization name, canonicalized
  ``org_kwargs``, the full workload-spec knobs (one spec, or the
  per-context list of a heterogeneous mix), ``config.fingerprint()``,
  the resolved trace length, seed, ``use_l3``, a digest of the fault
  configuration, and a store schema version. Two cells share an entry
  exactly when :func:`repro.sim.runner.run_workload` would produce
  byte-identical results for both.
* **memory layer** — an LRU of *encoded* results inside the process;
  every hit decodes a fresh :class:`RunResult`, so a served result is
  byte-identical to a freshly simulated one and callers never alias the
  stored copy.
* **persistence layer (optional)** — a pluggable :class:`StoreBackend`.
  :class:`LocalDirBackend` keeps flat JSON files under
  ``~/.cache/repro/results`` (override with ``REPRO_RESULT_CACHE_DIR``);
  :class:`SharedDirBackend` keeps the same entries fingerprint-sharded
  (``<dir>/<fp[:2]>/<fp>.result.json``) for a directory many hosts
  mount at once, where thousands of entries in one flat listing would
  strain network filesystems. Both write atomically (tmp file in the
  destination directory + ``os.replace``) so any number of concurrent
  writers — parallel workers, or whole other hosts — can race on the
  same fingerprint and readers only ever see a complete entry. Corrupt,
  truncated, or stale-schema files are treated as misses and
  regenerated, never trusted.

The mode is selected by ``REPRO_RESULT_CACHE``: ``memory`` (the
default), ``disk`` (memory + local-dir), ``shared`` (memory +
shared-dir — point ``REPRO_RESULT_CACHE_DIR`` at the mounted
directory, and any host can resume a campaign another host started),
or ``off`` (every run simulates, the pre-store behavior). Cells whose
``org_kwargs`` hold values with no canonical encoding (e.g. a live
predictor object) have no fingerprint and always simulate — the store
refuses to guess at object state.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional

from ..core.llp import LlpCaseStats
from ..errors import ConfigurationError, EnvKnobError
from .results import RunProvenance, RunResult

#: Mode knob: "memory" (default), "disk", "shared", or "off".
MODE_ENV_VAR = "REPRO_RESULT_CACHE"
#: Disk-layer location override.
DIR_ENV_VAR = "REPRO_RESULT_CACHE_DIR"
#: Memory-layer entry budget (one entry = one encoded RunResult).
DEFAULT_MAX_ENTRIES = 1024

#: Bump whenever the fingerprint recipe, the encoded result layout, or
#: the simulation semantics behind a cell change: older disk entries
#: then miss (and are regenerated) instead of serving stale results.
RESULT_STORE_SCHEMA_VERSION = 1

_VALID_MODES = ("memory", "disk", "shared", "off")
_KIND = "repro-run-result"


def default_results_dir() -> str:
    """Where the disk layer lives (``REPRO_RESULT_CACHE_DIR`` overrides)."""
    override = os.environ.get(DIR_ENV_VAR)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "results")


def default_shared_results_dir() -> str:
    """Where ``shared`` mode lives when ``REPRO_RESULT_CACHE_DIR`` is unset.

    A sibling of the local-dir layout rather than the same directory:
    the two backends shard differently, and mixing flat and sharded
    entries in one tree would make ``clear(disk=True)`` ambiguous.
    Real multi-host deployments always set the env var to the mounted
    path; this default just keeps single-host ``shared`` runs working.
    """
    override = os.environ.get(DIR_ENV_VAR)
    if override:
        return override
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "results-shared",
    )


# -- Canonical cell fingerprints -----------------------------------------------


class UncacheableCell(Exception):
    """A cell input has no canonical encoding; the cell must simulate."""


def _canonical(value: object) -> object:
    """A JSON-stable form of one keyed input, or :class:`UncacheableCell`.

    Handles the values that legitimately appear in ``org_kwargs``:
    primitives, (frozen)sets (e.g. TLM-Oracle's ``hot_vpages``),
    sequences, string-keyed mappings, and frozen dataclasses. Anything
    else — a live predictor object, an open file — is uncacheable by
    design rather than keyed by ``repr``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": _canonical(dataclasses.asdict(value)),
        }
    if isinstance(value, Mapping):
        out = {}
        for key in sorted(value):
            if not isinstance(key, str):
                raise UncacheableCell(f"non-string mapping key {key!r}")
            out[key] = _canonical(value[key])
        return out
    if isinstance(value, (set, frozenset)):
        items = [_canonical(item) for item in value]
        return {
            "__set__": sorted(
                items, key=lambda item: json.dumps(item, sort_keys=True)
            )
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    raise UncacheableCell(f"no canonical encoding for {type(value).__name__}")


def cell_fingerprint(
    org_name: str,
    workloads: object,
    config,
    accesses_per_context: int,
    seed: int,
    use_l3: bool = False,
    org_kwargs: Optional[Mapping[str, object]] = None,
    fault_config: Optional[object] = None,
) -> Optional[str]:
    """The content address of one simulation cell, or None if uncacheable.

    ``workloads`` is one :class:`~repro.workloads.spec.WorkloadSpec`
    (rate mode) or a sequence of specs (heterogeneous mix — the
    per-context order is keyed, so permuted mixes do not collide).
    ``accesses_per_context`` must already be resolved: the environment
    default is an input to the simulation, not part of the key recipe.
    """
    mix = not _is_single_spec(workloads)
    specs = list(workloads) if mix else [workloads]
    try:
        key = {
            "kind": "repro-result-cell",
            "schema": RESULT_STORE_SCHEMA_VERSION,
            "organization": org_name,
            "mix": mix,
            "workloads": [_canonical(dataclasses.asdict(s)) for s in specs],
            "config": config.fingerprint(),
            "accesses_per_context": int(accesses_per_context),
            "seed": int(seed),
            "use_l3": bool(use_l3),
            "org_kwargs": _canonical(dict(org_kwargs or {})),
            "faults": _canonical(fault_config),
        }
    except UncacheableCell:
        return None
    blob = json.dumps(key, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def _is_single_spec(workloads: object) -> bool:
    from ..workloads.spec import WorkloadSpec

    return isinstance(workloads, WorkloadSpec)


def job_fingerprint(job) -> Optional[str]:
    """The cell fingerprint of one :class:`~repro.sim.parallel.SimJob`.

    Resolves the same defaults :func:`~repro.sim.runner.run_workload`
    resolves (workload name -> spec, default config, environment trace
    length), so a job and the run it describes always agree on the key.
    Returns None for uncacheable or malformed jobs — they simulate and
    report their own errors.
    """
    from ..config.system import scaled_paper_system
    from ..errors import ReproError
    from ..workloads.ingest import IngestedTrace, replay_spec
    from ..workloads.spec import WorkloadSpec, workload
    from .engine import default_accesses_per_context

    try:
        if isinstance(job.workload, WorkloadSpec):
            spec = job.workload
        elif isinstance(job.workload, IngestedTrace):
            # Ingested cells key on the surrogate spec, whose name embeds
            # the trace content checksum — same recipe run_workload uses.
            spec = replay_spec(job.workload)
        else:
            spec = workload(str(job.workload))
        config = job.config if job.config is not None else scaled_paper_system()
        n_accesses = (
            job.accesses_per_context
            if job.accesses_per_context is not None
            else default_accesses_per_context()
        )
    except ReproError:
        return None
    return cell_fingerprint(
        job.organization,
        spec,
        config,
        n_accesses,
        job.seed,
        use_l3=job.use_l3,
        org_kwargs=job.org_kwargs,
        fault_config=job.fault_config,
    )


# -- Full-fidelity RunResult codec ---------------------------------------------
#
# Unlike repro.sim.export (which deliberately drops provenance and
# derives display fields), this codec must round-trip every *measured*
# field so a cache-served result is indistinguishable from a fresh
# simulation. ``engine_stats`` is the one exception: it describes the
# process that simulated the run, and a store-served result engaged no
# engine in the serving process — None is the truthful value.


def result_to_state(result: RunResult) -> Dict:
    """Every field of a :class:`RunResult`, as JSON-safe plain data."""
    return {
        "workload": result.workload,
        "organization": result.organization,
        "total_cycles": result.total_cycles,
        "instructions": result.instructions,
        "accesses": result.accesses,
        "dram_bytes": dict(result.dram_bytes),
        "storage_bytes": result.storage_bytes,
        "page_faults": result.page_faults,
        "stacked_service_fraction": result.stacked_service_fraction,
        "line_swaps": result.line_swaps,
        "page_migrations": result.page_migrations,
        "llp_cases": (
            dataclasses.asdict(result.llp_cases)
            if result.llp_cases is not None
            else None
        ),
        "l3_miss_rate": result.l3_miss_rate,
        "device_summary": {
            device: dict(metrics)
            for device, metrics in result.device_summary.items()
        },
        "fault_summary": (
            dict(result.fault_summary)
            if result.fault_summary is not None
            else None
        ),
        "provenance": (
            dataclasses.asdict(result.provenance)
            if result.provenance is not None
            else None
        ),
    }


def result_from_state(state: Dict) -> RunResult:
    """Inverse of :func:`result_to_state`."""
    llp = state.get("llp_cases")
    provenance = state.get("provenance")
    return RunResult(
        workload=state["workload"],
        organization=state["organization"],
        total_cycles=state["total_cycles"],
        instructions=state["instructions"],
        accesses=state["accesses"],
        dram_bytes=dict(state["dram_bytes"]),
        storage_bytes=state["storage_bytes"],
        page_faults=state["page_faults"],
        stacked_service_fraction=state["stacked_service_fraction"],
        line_swaps=state["line_swaps"],
        page_migrations=state["page_migrations"],
        llp_cases=LlpCaseStats(**llp) if llp is not None else None,
        l3_miss_rate=state["l3_miss_rate"],
        device_summary={
            device: dict(metrics)
            for device, metrics in state["device_summary"].items()
        },
        fault_summary=(
            dict(state["fault_summary"])
            if state["fault_summary"] is not None
            else None
        ),
        provenance=(
            RunProvenance(**provenance) if provenance is not None else None
        ),
    )


def _encode_entry(fingerprint: str, result: RunResult) -> bytes:
    payload = {
        "kind": _KIND,
        "schema": RESULT_STORE_SCHEMA_VERSION,
        "fingerprint": fingerprint,
        "result": result_to_state(result),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def _decode_entry(payload: bytes, fingerprint: str) -> Optional[RunResult]:
    """Decode one stored entry; None for anything malformed or stale."""
    try:
        data = json.loads(payload.decode("utf-8"))
        if (
            not isinstance(data, dict)
            or data.get("kind") != _KIND
            or data.get("schema") != RESULT_STORE_SCHEMA_VERSION
            or data.get("fingerprint") != fingerprint
        ):
            return None
        return result_from_state(data["result"])
    except (ValueError, KeyError, TypeError, AttributeError):
        return None


# -- Persistence backends -------------------------------------------------------


class StoreBackend:
    """One persistence layer behind a :class:`ResultStore`.

    Implementations hold *encoded* entries (the bytes of
    :func:`_encode_entry`) keyed by fingerprint; validation and
    corruption handling stay in the store, which treats any entry that
    fails to decode as a miss and calls :meth:`discard` on it. Every
    method must be safe under concurrent writers — multiple processes,
    or multiple hosts against a shared directory — which in practice
    means atomic whole-entry writes and tolerating files vanishing
    between a listing and a read.
    """

    name = "abstract"

    def load(self, fingerprint: str) -> Optional[bytes]:
        """The stored bytes for this fingerprint, or None."""
        raise NotImplementedError

    def store(self, fingerprint: str, payload: bytes) -> None:
        """Persist one encoded entry atomically (replace is fine)."""
        raise NotImplementedError

    def contains(self, fingerprint: str) -> bool:
        """A cheap presence probe; may report entries that later fail
        validation (the planner predicts hits, ``get`` decides them)."""
        raise NotImplementedError

    def discard(self, fingerprint: str) -> None:
        """Drop one entry (used on corrupt files); missing is fine."""
        raise NotImplementedError

    def clear(self) -> None:
        """Drop every entry this backend owns."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class _DirBackendBase(StoreBackend):
    """Shared atomic-write discipline for directory-backed backends.

    Subclasses only choose where a fingerprint's file lives. Writes
    land in a temp file *in the destination directory* and move into
    place with ``os.replace`` — atomic on POSIX within one filesystem —
    so a reader can never observe a half-written entry, no matter how
    many processes (or hosts, for a mounted directory) race on the
    same fingerprint: last complete write wins, and every intermediate
    state is either the old complete entry or the new one.
    """

    def __init__(self, directory: str):
        if not directory:
            raise ConfigurationError(f"{self.name} backend needs a directory")
        self.directory = directory

    def _path(self, fingerprint: str) -> str:
        raise NotImplementedError

    def load(self, fingerprint: str) -> Optional[bytes]:
        try:
            with open(self._path(fingerprint), "rb") as fp:
                return fp.read()
        except OSError:
            return None

    def store(self, fingerprint: str, payload: bytes) -> None:
        path = self._path(fingerprint)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fp:
                fp.write(payload)
            os.replace(tmp_path, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_path)
            raise

    def contains(self, fingerprint: str) -> bool:
        return os.path.exists(self._path(fingerprint))

    def discard(self, fingerprint: str) -> None:
        with contextlib.suppress(OSError):
            os.unlink(self._path(fingerprint))

    def describe(self) -> str:
        return f"{self.name}:{self.directory}"


class LocalDirBackend(_DirBackendBase):
    """The original flat layout: ``<dir>/<fingerprint>.result.json``."""

    name = "local-dir"

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.directory, f"{fingerprint}.result.json")

    def clear(self) -> None:
        if not os.path.isdir(self.directory):
            return
        for name in os.listdir(self.directory):
            if name.endswith(".result.json"):
                with contextlib.suppress(OSError):
                    os.unlink(os.path.join(self.directory, name))


class SharedDirBackend(_DirBackendBase):
    """Fingerprint-sharded layout for a directory shared between hosts.

    ``<dir>/<fp[:2]>/<fp>.result.json`` — 256 shard directories keep
    any one listing small on network filesystems, and the two-hex
    prefix is uniform because fingerprints are sha256 hexdigests. The
    write discipline is exactly :class:`LocalDirBackend`'s; what a
    shared mount adds is *cross-host* resume — a fresh parent process
    on any machine pointed at the same directory serves every cell a
    previous host already simulated.
    """

    name = "shared-dir"

    def _path(self, fingerprint: str) -> str:
        return os.path.join(
            self.directory, fingerprint[:2], f"{fingerprint}.result.json",
        )

    def clear(self) -> None:
        if not os.path.isdir(self.directory):
            return
        for shard in os.listdir(self.directory):
            shard_dir = os.path.join(self.directory, shard)
            if len(shard) != 2 or not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                if name.endswith(".result.json"):
                    with contextlib.suppress(OSError):
                        os.unlink(os.path.join(shard_dir, name))


# -- The store -----------------------------------------------------------------


@dataclass
class ResultStoreStats:
    """Hit/miss accounting for one :class:`ResultStore`."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    disk_writes: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class ResultStore:
    """LRU of encoded run results, optionally backed by a :class:`StoreBackend`.

    ``disk_dir`` is the back-compatible spelling of "local-dir backend
    at this path"; pass ``backend`` for anything else (they are
    mutually exclusive).
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        disk_dir: Optional[str] = None,
        backend: Optional[StoreBackend] = None,
    ):
        if max_entries <= 0:
            raise ConfigurationError("result store needs at least one entry")
        if disk_dir and backend is not None:
            raise ConfigurationError(
                "pass either disk_dir or backend, not both"
            )
        self.max_entries = max_entries
        if backend is None and disk_dir:
            backend = LocalDirBackend(disk_dir)
        self.backend = backend
        #: The backing directory when the backend has one (kept for
        #: callers that predate the backend split), else None.
        self.disk_dir = getattr(backend, "directory", None)
        self.stats = ResultStoreStats()
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, fingerprint: str) -> Optional[RunResult]:
        """The stored result for this cell, decoded fresh, or None.

        Every hit decodes a new :class:`RunResult`, so callers can never
        mutate the stored copy through a served one.
        """
        payload = self._entries.get(fingerprint)
        if payload is not None:
            result = _decode_entry(payload, fingerprint)
            if result is not None:
                self._entries.move_to_end(fingerprint)
                self.stats.hits += 1
                return result
            # An in-memory entry that fails to decode is unreachable in
            # practice (we encoded it), but drop it rather than trust it.
            del self._entries[fingerprint]
        if self.backend is not None:
            payload = self.backend.load(fingerprint)
            if payload is not None:
                result = _decode_entry(payload, fingerprint)
                if result is not None:
                    self.stats.disk_hits += 1
                    self._remember(fingerprint, payload)
                    return result
                # Corrupt/truncated/stale-schema entry (e.g. a reader
                # racing a non-atomic copy into a shared mount):
                # regenerate, never trust.
                self.backend.discard(fingerprint)
        self.stats.misses += 1
        return None

    def contains(self, fingerprint: str) -> bool:
        """A cheap presence probe (no decode, no stats) for plan previews.

        An entry that later fails validation still counts here — the
        planner predicts hits, :meth:`get` decides them.
        """
        if fingerprint in self._entries:
            return True
        return self.backend is not None and self.backend.contains(fingerprint)

    def put(self, fingerprint: str, result: RunResult) -> None:
        """Store one finished result under its cell fingerprint."""
        payload = _encode_entry(fingerprint, result)
        self._remember(fingerprint, payload)
        if self.backend is not None:
            self.backend.store(fingerprint, payload)
            self.stats.disk_writes += 1

    def clear(self, disk: bool = False) -> None:
        """Drop the memory layer; with ``disk=True`` also the backend's."""
        self._entries.clear()
        if disk and self.backend is not None:
            self.backend.clear()

    # -- internals ---------------------------------------------------------

    def _remember(self, fingerprint: str, payload: bytes) -> None:
        self._entries[fingerprint] = payload
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1


# -- The process-wide default store --------------------------------------------

_default_store: Optional[ResultStore] = None
_default_store_mode: Optional[str] = None
_mode_override: Optional[str] = None
#: Sentinel-based instance override (``use_result_store``); the sentinel
#: distinguishes "no override" from "override with None/off".
_UNSET = object()
_store_override: object = _UNSET


def _env_mode() -> str:
    mode = os.environ.get(MODE_ENV_VAR, "memory").strip().lower()
    if mode not in _VALID_MODES:
        raise EnvKnobError(
            f"{MODE_ENV_VAR}={mode!r} is not a result-cache mode; "
            f"accepted values: {', '.join(_VALID_MODES)}"
        )
    return mode


def _backend_for_mode(mode: str) -> Optional[StoreBackend]:
    if mode == "disk":
        return LocalDirBackend(default_results_dir())
    if mode == "shared":
        return SharedDirBackend(default_shared_results_dir())
    return None


def default_result_store() -> Optional[ResultStore]:
    """The process-wide store, or None when result caching is off.

    The instance is created lazily from ``REPRO_RESULT_CACHE`` /
    ``REPRO_RESULT_CACHE_DIR`` and kept until the mode changes.
    """
    global _default_store, _default_store_mode
    if _store_override is not _UNSET:
        return _store_override  # type: ignore[return-value]
    mode = _mode_override if _mode_override is not None else _env_mode()
    if mode == "off":
        return None
    if _default_store is None or _default_store_mode != mode:
        _default_store = ResultStore(backend=_backend_for_mode(mode))
        _default_store_mode = mode
    return _default_store


def clear_default_result_store(disk: bool = False) -> None:
    """Reset the process-wide store (and optionally its disk files)."""
    global _default_store, _default_store_mode
    if _default_store is not None:
        _default_store.clear(disk=disk)
    _default_store = None
    _default_store_mode = None


@contextlib.contextmanager
def result_store_disabled() -> Iterator[None]:
    """Temporarily run with the result store off (always-simulate path)."""
    global _mode_override, _store_override
    previous_mode, previous_store = _mode_override, _store_override
    _mode_override, _store_override = "off", _UNSET
    try:
        yield
    finally:
        _mode_override, _store_override = previous_mode, previous_store


@contextlib.contextmanager
def use_result_store(
    store: Optional[ResultStore],
) -> Iterator[Optional[ResultStore]]:
    """Temporarily install a specific store instance as the default.

    Benchmarks and tests use this to measure or inspect an isolated
    store without touching the process-wide one (``None`` disables).
    """
    global _store_override
    previous = _store_override
    _store_override = store
    try:
        yield store
    finally:
        _store_override = previous
