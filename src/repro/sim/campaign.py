"""Crash-safe execution of multi-run experiment campaigns.

The figure-13/14/15 sweeps run dozens of (organization x workload x
seed) points; at paper scale each point takes minutes, and one hung or
crashed run used to lose the whole batch. :func:`run_campaign` executes
every point of a :class:`CampaignSpec` in an isolated subprocess worker
under the shared :class:`repro.sim.supervisor.Supervisor` (the same
core the parallel grid uses), with

* a **per-run timeout** and heartbeat-based **hang detection** (the
  worker is killed via bounded escalation, the point retried),
* **retry with exponential backoff** for crashed/timed-out points,
* a **JSON checkpoint** written atomically after every completion, so a
  killed campaign re-invoked with the same spec and checkpoint path
  resumes exactly where it stopped, re-running only incomplete points,
* **graceful interrupts**: SIGINT/SIGTERM stops the campaign after
  flushing every settled point to the checkpoint and raises
  :class:`~repro.errors.InterruptedRunError`,
* **partial-result aggregation**: whatever completed is always readable
  from the checkpoint, and the merged output of an interrupted-then-
  resumed campaign equals an uninterrupted run (each point is an
  independent deterministic simulation).

Results are stored as the flattened dicts of
:func:`repro.sim.export.result_to_dict`, so checkpoints double as the
campaign's machine-readable output.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..config.system import DEFAULT_SCALE_SHIFT, scaled_paper_system
from ..errors import CampaignError
from ..faults.model import FaultConfig, RetryPolicy
from .export import result_to_dict
from .supervisor import (
    IncidentJournal,
    SupervisedTask,
    Supervisor,
    SupervisorPolicy,
    TaskOutcome,
)

#: Checkpoint schema version (bumped on incompatible layout changes).
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class CampaignPoint:
    """One simulation of the campaign grid."""

    organization: str
    workload: str
    seed: int = 0

    @property
    def key(self) -> str:
        """Stable checkpoint key for this point."""
        return f"{self.organization}/{self.workload}/s{self.seed}"


@dataclass(frozen=True)
class CampaignSpec:
    """The full (organizations x workloads x seeds) grid plus run policy."""

    organizations: Tuple[str, ...]
    workloads: Tuple[str, ...]
    seeds: Tuple[int, ...] = (0,)
    accesses_per_context: Optional[int] = None
    scale_shift: int = DEFAULT_SCALE_SHIFT
    fault_config: Optional[FaultConfig] = None
    #: Wall-clock budget per point before the worker is killed.
    timeout_seconds: float = 300.0
    #: Total tries per point (first attempt + retries).
    max_attempts: int = 3
    #: Base of the exponential backoff between attempts of one point.
    backoff_seconds: float = 1.0

    def __post_init__(self) -> None:
        if not self.organizations or not self.workloads or not self.seeds:
            raise CampaignError("campaign grid must not be empty")
        if self.timeout_seconds <= 0:
            raise CampaignError("per-run timeout must be positive")
        if self.max_attempts <= 0:
            raise CampaignError("max_attempts must be positive")
        if self.backoff_seconds < 0:
            raise CampaignError("backoff must be non-negative")

    def points(self) -> Iterator[CampaignPoint]:
        for org in self.organizations:
            for workload in self.workloads:
                for seed in self.seeds:
                    yield CampaignPoint(org, workload, seed)

    @property
    def total_points(self) -> int:
        return len(self.organizations) * len(self.workloads) * len(self.seeds)

    def grid_dict(self) -> Dict:
        """The part of the spec a checkpoint must match to be resumable.

        Run policy (timeouts, retry budget, worker count) may change
        between invocations; the grid and the simulation inputs may not,
        or the merged results would mix incomparable runs.
        """
        return {
            "organizations": list(self.organizations),
            "workloads": list(self.workloads),
            "seeds": list(self.seeds),
            "accesses_per_context": self.accesses_per_context,
            "scale_shift": self.scale_shift,
            "fault_config": (
                asdict(self.fault_config) if self.fault_config is not None else None
            ),
        }


@dataclass
class CampaignResult:
    """Aggregated outcome of one (possibly resumed) campaign."""

    spec: CampaignSpec
    #: point key -> flattened RunResult dict.
    completed: Dict[str, Dict] = field(default_factory=dict)
    #: point key -> last error string, for points that exhausted retries.
    failed: Dict[str, str] = field(default_factory=dict)
    #: Points simulated by *this* invocation (the rest came from resume).
    executed_keys: List[str] = field(default_factory=list)

    @property
    def all_completed(self) -> bool:
        return len(self.completed) == self.spec.total_points

    def render(self) -> str:
        from ..analysis.report import format_table

        rows = []
        for point in self.spec.points():
            result = self.completed.get(point.key)
            if result is not None:
                rows.append([point.key, "ok", f"{result['ipc']:.3f}"])
            else:
                rows.append([point.key, "FAILED", self.failed.get(point.key, "?")])
        done = len(self.completed)
        return format_table(
            ["point", "status", "IPC"], rows,
            title=f"Campaign: {done}/{self.spec.total_points} points complete",
        )


# -- The supervised point body --------------------------------------------------


def _run_point(payload: Dict) -> Dict:
    """Simulate one campaign point; returns the flattened result dict.

    Top-level function so every multiprocessing start method can import
    it as the supervised worker target — and so the supervisor's
    in-process serial fallback runs the *same* code, bit-identically.
    """
    from .runner import run_workload

    fault_payload = payload.get("fault_config")
    fault_config = None
    if fault_payload is not None:
        # Copy before the pop: the supervisor re-runs this payload on
        # retry (and the serial fallback runs it in-parent), so the
        # caller's dict must survive intact.
        fault_payload = dict(fault_payload)
        retry = RetryPolicy(**fault_payload.pop("retry"))
        fault_config = FaultConfig(retry=retry, **fault_payload)
    config = scaled_paper_system(scale_shift=payload["scale_shift"])
    result = run_workload(
        payload["organization"],
        payload["workload"],
        config=config,
        accesses_per_context=payload["accesses_per_context"],
        seed=payload["seed"],
        fault_config=fault_config,
    )
    return result_to_dict(result)


def _point_payload(spec: CampaignSpec, point: CampaignPoint) -> Dict:
    return {
        "organization": point.organization,
        "workload": point.workload,
        "seed": point.seed,
        "accesses_per_context": spec.accesses_per_context,
        "scale_shift": spec.scale_shift,
        "fault_config": (
            asdict(spec.fault_config) if spec.fault_config is not None else None
        ),
    }


# -- Checkpointing ----------------------------------------------------------------


def _write_checkpoint(path: str, spec: CampaignSpec, completed: Dict, failed: Dict) -> None:
    """Atomically persist campaign state (tmp file + rename)."""
    payload = {
        "version": CHECKPOINT_VERSION,
        "spec": spec.grid_dict(),
        "completed": completed,
        "failed": failed,
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fp:
            json.dump(payload, fp, indent=2, sort_keys=True)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


#: Exactly the keys :func:`_write_checkpoint` emits; more or fewer means
#: the file was written by something else (or hand-edited) — rejected.
_CHECKPOINT_KEYS = ("version", "spec", "completed", "failed")


def load_checkpoint(path: str, spec: CampaignSpec) -> Dict[str, Dict]:
    """Read a checkpoint's completed results, validating it matches ``spec``.

    Returns an empty dict when the file does not exist (fresh campaign).

    Raises:
        CampaignError: for a corrupt checkpoint, a version mismatch, a
            key structure this module never wrote, or a checkpoint
            recorded under a different campaign grid. Structural
            problems fail here as a named error — never later as a
            ``KeyError`` while rendering results.
    """
    if not os.path.exists(path):
        return {}
    try:
        with open(path) as fp:
            payload = json.load(fp)
    except (OSError, json.JSONDecodeError) as exc:
        raise CampaignError(f"unreadable checkpoint {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise CampaignError(f"checkpoint {path} is not a JSON object")
    if payload.get("version") != CHECKPOINT_VERSION:
        raise CampaignError(
            f"checkpoint {path} has version {payload.get('version')}, "
            f"expected {CHECKPOINT_VERSION}"
        )
    unknown = sorted(set(payload) - set(_CHECKPOINT_KEYS))
    if unknown:
        raise CampaignError(
            f"checkpoint {path} has unknown key(s) {', '.join(unknown)}"
        )
    missing = sorted(set(_CHECKPOINT_KEYS) - set(payload))
    if missing:
        raise CampaignError(
            f"checkpoint {path} is missing key(s) {', '.join(missing)}"
        )
    if payload["spec"] != spec.grid_dict():
        raise CampaignError(
            f"checkpoint {path} was recorded for a different campaign grid; "
            "delete it or use a fresh --checkpoint path"
        )
    completed = payload["completed"]
    if not isinstance(completed, dict):
        raise CampaignError(f"checkpoint {path}: 'completed' must be a mapping")
    for key, result in completed.items():
        if not isinstance(result, dict) or not isinstance(
            result.get("ipc"), (int, float)
        ):
            raise CampaignError(
                f"checkpoint {path}: completed point {key!r} does not hold "
                "a flattened run result"
            )
    if not isinstance(payload["failed"], dict):
        raise CampaignError(f"checkpoint {path}: 'failed' must be a mapping")
    return dict(completed)


# -- The scheduler -----------------------------------------------------------------


def run_campaign(
    spec: CampaignSpec,
    checkpoint_path: str,
    max_workers: int = 1,
    log: Optional[Callable[[str], None]] = None,
    hang_timeout_seconds: Optional[float] = None,
    journal: Optional[IncidentJournal] = None,
) -> CampaignResult:
    """Execute (or resume) a campaign; returns the aggregated result.

    Points already recorded as completed in the checkpoint are skipped;
    previously *failed* points get a fresh retry budget — a resume is the
    operator saying "try again". The checkpoint is rewritten after every
    point completion or terminal failure, so killing this function at any
    moment loses at most the in-flight points. An operator SIGINT/SIGTERM
    stops the campaign gracefully (checkpoint already current) and raises
    :class:`~repro.errors.InterruptedRunError`.
    """
    if max_workers <= 0:
        raise CampaignError("max_workers must be positive")
    emit = log if log is not None else (lambda message: None)
    completed = load_checkpoint(checkpoint_path, spec)
    failed: Dict[str, str] = {}
    executed: List[str] = []

    todo: List[CampaignPoint] = [p for p in spec.points() if p.key not in completed]
    if completed:
        emit(f"resume: {len(completed)} points already complete, "
             f"{len(todo)} to run")
    if not todo:
        _write_checkpoint(checkpoint_path, spec, completed, failed)
        return CampaignResult(
            spec=spec, completed=completed, failed=failed, executed_keys=executed
        )

    tasks = [
        SupervisedTask(
            index=index, key=point.key,
            target=_run_point, payload=_point_payload(spec, point),
        )
        for index, point in enumerate(todo)
    ]
    policy = SupervisorPolicy(
        max_attempts=spec.max_attempts,
        timeout_seconds=spec.timeout_seconds,
        hang_timeout_seconds=hang_timeout_seconds,
        backoff_base_seconds=spec.backoff_seconds,
        # Ample budget: the per-point max_attempts cap is the campaign's
        # retry policy; the run-level budget exists only as a backstop.
        retry_budget=spec.max_attempts * len(tasks),
    )

    def on_settle(outcome: TaskOutcome) -> None:
        key = outcome.task.key
        if outcome.ok:
            completed[key] = outcome.value
            executed.append(key)
        else:
            failed[key] = outcome.error
        _write_checkpoint(checkpoint_path, spec, completed, failed)

    supervisor = Supervisor(policy, log=emit, journal=journal)
    # InterruptedRunError propagates to the caller: every settled point
    # is already in the checkpoint, so a re-invocation resumes cleanly.
    supervisor.run(tasks, n_workers=max_workers, on_settle=on_settle)

    _write_checkpoint(checkpoint_path, spec, completed, failed)
    return CampaignResult(
        spec=spec, completed=completed, failed=failed, executed_keys=executed
    )
