"""Re-export: the canonical :class:`MemoryRequest` lives in repro.request."""

from ..request import MemoryRequest

__all__ = ["MemoryRequest"]
