"""Parameter sweeps over organization or system knobs.

Used by the ablation benchmarks (congruence-group size, LLP table size,
TLM-Dynamic migration threshold) and available as a general tool. Both
sweeps accept ``n_jobs`` to fan the independent points out over
subprocess workers (see :mod:`repro.sim.parallel`); the default stays
serial and byte-identical. Points go through
:func:`repro.sim.plan.run_jobs_cached`, so with the result store active
an already-simulated point (e.g. the shared baseline of a re-run
ablation) is served from the store instead of re-simulated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..config.system import SystemConfig, scaled_paper_system
from ..errors import ConfigurationError
from .engine import default_accesses_per_context
from .parallel import SimJob, raise_on_failures
from .plan import run_jobs_cached
from .results import RunResult
from .runner import WorkloadLike, _resolve_spec


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the knob value and its run results."""

    value: object
    result: RunResult
    baseline: RunResult

    @property
    def speedup(self) -> float:
        return self.result.speedup_over(self.baseline)


def _require_matching_baseline(
    baseline: RunResult,
    workload_name: str,
    config: SystemConfig,
    accesses_per_context: Optional[int],
    seed: int,
) -> None:
    """Reject a reused baseline simulated under different inputs.

    A baseline without provenance (built below the runner layer, or
    loaded from an old export) cannot be checked and is accepted as
    before — the guarantee is only as strong as the stamp.
    """
    provenance = baseline.provenance
    if provenance is None:
        return
    expected_accesses = (
        accesses_per_context
        if accesses_per_context is not None
        else default_accesses_per_context()
    )
    fingerprint = config.fingerprint()
    if not provenance.matches(workload_name, fingerprint, expected_accesses, seed):
        raise ConfigurationError(
            "sweep baseline provenance mismatch: baseline ran "
            f"(workload={provenance.workload!r}, "
            f"config={provenance.config_fingerprint}, "
            f"accesses={provenance.accesses_per_context}, "
            f"seed={provenance.seed}) but this sweep needs "
            f"(workload={workload_name!r}, config={fingerprint}, "
            f"accesses={expected_accesses}, seed={seed}); "
            "re-simulate the baseline with the sweep's inputs"
        )


def sweep_org_parameter(
    org_name: str,
    param_name: str,
    values: Sequence[object],
    workload_like: WorkloadLike,
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
    baseline: Optional[RunResult] = None,
    n_jobs: Optional[int] = 1,
) -> List[SweepPoint]:
    """Sweep one constructor parameter of an organization.

    Example: ``sweep_org_parameter("tlm-dynamic", "migration_threshold",
    [1, 2, 4, 8], "milc")``.

    ``baseline`` lets callers reuse an already-simulated baseline run.
    It must come from the same workload/config/accesses/seed: when the
    baseline carries a provenance stamp (every ``run_workload`` result
    does) this is *enforced*, and a mismatch raises
    :class:`~repro.errors.ConfigurationError` instead of silently
    producing incomparable speedups. Without a reusable baseline, one
    baseline run is simulated here and shared by all points.

    ``n_jobs`` fans the points (and the baseline) out over subprocess
    workers; results are identical to the serial run.
    """
    spec = _resolve_spec(workload_like)
    if config is None:
        config = scaled_paper_system()
    if baseline is not None:
        _require_matching_baseline(
            baseline, spec.name, config, accesses_per_context, seed
        )
    jobs = []
    if baseline is None:
        jobs.append(SimJob("baseline", spec, config, accesses_per_context, seed))
    jobs.extend(
        SimJob(
            org_name,
            spec,
            config,
            accesses_per_context,
            seed,
            org_kwargs={param_name: value},
            tag=f"{param_name}={value}",
        )
        for value in values
    )
    outcomes = run_jobs_cached(jobs, n_jobs=n_jobs)
    raise_on_failures(outcomes, f"sweep({org_name}.{param_name})")
    results = [outcome.result for outcome in outcomes]
    if baseline is None:
        baseline, results = results[0], results[1:]
    return [
        SweepPoint(value=value, result=result, baseline=baseline)
        for value, result in zip(values, results)
    ]


def sweep_system(
    org_name: str,
    workload_like: WorkloadLike,
    configs: Dict[object, SystemConfig],
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
    n_jobs: Optional[int] = 1,
) -> List[SweepPoint]:
    """Sweep whole system configurations (e.g. stacked:total ratios).

    Each labelled config gets its own baseline run, since the baseline
    machine changes with the system. ``n_jobs`` parallelizes the
    2 x len(configs) independent runs.
    """
    labels = list(configs)
    jobs = []
    for label in labels:
        config = configs[label]
        jobs.append(SimJob(
            "baseline", workload_like, config, accesses_per_context, seed,
            tag=str(label),
        ))
        jobs.append(SimJob(
            org_name, workload_like, config, accesses_per_context, seed,
            tag=str(label),
        ))
    outcomes = run_jobs_cached(jobs, n_jobs=n_jobs)
    raise_on_failures(outcomes, f"sweep_system({org_name})")
    points = []
    for i, label in enumerate(labels):
        baseline = outcomes[2 * i].result
        result = outcomes[2 * i + 1].result
        points.append(SweepPoint(value=label, result=result, baseline=baseline))
    return points
