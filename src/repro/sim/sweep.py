"""Parameter sweeps over organization or system knobs.

Used by the ablation benchmarks (congruence-group size, LLP table size,
TLM-Dynamic migration threshold) and available as a general tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..config.system import SystemConfig, scaled_paper_system
from ..workloads.spec import WorkloadSpec
from .results import RunResult
from .runner import WorkloadLike, run_workload


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the knob value and its run results."""

    value: object
    result: RunResult
    baseline: RunResult

    @property
    def speedup(self) -> float:
        return self.result.speedup_over(self.baseline)


def sweep_org_parameter(
    org_name: str,
    param_name: str,
    values: Sequence[object],
    workload_like: WorkloadLike,
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
    baseline: Optional[RunResult] = None,
) -> List[SweepPoint]:
    """Sweep one constructor parameter of an organization.

    Example: ``sweep_org_parameter("tlm-dynamic", "migration_threshold",
    [1, 2, 4, 8], "milc")``.

    ``baseline`` lets callers reuse an already-simulated baseline run
    (it must come from the same workload/config/accesses/seed); without
    it one baseline run is simulated here and shared by all points.
    """
    if config is None:
        config = scaled_paper_system()
    if baseline is None:
        baseline = run_workload(
            "baseline", workload_like, config, accesses_per_context, seed
        )
    points = []
    for value in values:
        result = run_workload(
            org_name,
            workload_like,
            config,
            accesses_per_context,
            seed,
            org_kwargs={param_name: value},
        )
        points.append(SweepPoint(value=value, result=result, baseline=baseline))
    return points


def sweep_system(
    org_name: str,
    workload_like: WorkloadLike,
    configs: Dict[object, SystemConfig],
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
) -> List[SweepPoint]:
    """Sweep whole system configurations (e.g. stacked:total ratios).

    Each labelled config gets its own baseline run, since the baseline
    machine changes with the system.
    """
    points = []
    for label, config in configs.items():
        baseline = run_workload(
            "baseline", workload_like, config, accesses_per_context, seed
        )
        result = run_workload(
            org_name, workload_like, config, accesses_per_context, seed
        )
        points.append(SweepPoint(value=label, result=result, baseline=baseline))
    return points
