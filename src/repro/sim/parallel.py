"""Process-pool fan-out for embarrassingly parallel simulation grids.

Every figure, sweep, and benchmark walks an (organization x workload x
seed) grid of *independent deterministic* simulations, so the grid
scales with cores. :func:`run_many` executes a list of picklable
:class:`SimJob` specs across subprocess workers with

* **ordered collection** — outcome ``i`` always describes job ``i``,
  whatever order the workers finished in;
* **per-job error capture** — one failed cell becomes a
  :class:`JobOutcome` with an error string; it never kills the grid;
* **supervision** — workers run under :class:`repro.sim.supervisor.
  Supervisor`: heartbeat-based hang detection alongside the wall-clock
  timeout, retry with exponential backoff for transient failures
  (``max_attempts``), bounded kill escalation instead of an unbounded
  ``join()``, serial fallback when subprocess spawn is impossible,
  SIGINT/SIGTERM-safe shutdown (completed cells survive via
  ``on_outcome``), and an optional JSONL incident journal;
* **bit-identical results** — each job is the same
  :func:`repro.sim.runner.run_workload` call the serial code makes, so
  ``n_jobs``, retries, and fallbacks change wall time, never a single
  byte of a ``RunResult``. ``n_jobs=1`` runs in-process with no
  multiprocessing at all.

Workers are **persistent by default** (``dispatch="pool"``, see
:mod:`repro.sim.supervisor`): ``n_jobs`` long-lived processes import
``repro``, dlopen the compiled kernel, and open the trace cache *once*
(:func:`_init_worker`), then stream cells until the grid drains —
per-cell dispatch overhead drops from a full process spawn to one pipe
round-trip. ``dispatch="per-cell"`` restores the spawn-per-cell
lifecycle for comparison; results are byte-identical either way.

Before launching workers the parent pre-materializes each distinct
trace into the process-wide trace cache — and, whatever the
multiprocessing start method, into its content-addressed *disk* layer —
so fork children inherit traces copy-on-write and ``spawn``/
``forkserver`` children (no inherited memory) load them from disk
instead of regenerating per worker.
"""

from __future__ import annotations

import functools
import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass, replace
from typing import Callable, List, Mapping, Optional, Sequence

from ..errors import InterruptedRunError, ParallelError
from .results import RunResult
from .remote import Endpoint, resolve_endpoints
from .supervisor import (
    IncidentJournal,
    PoolReport,
    RemoteReport,
    SupervisedTask,
    Supervisor,
    SupervisorPolicy,
    TaskOutcome,
    _SignalRaised,
    current_supervision,
    deliver_signals_as_interrupts,
    resolve_dispatch,
)

#: The smallest enforceable ``timeout_seconds``. The pool supervises
#: workers by polling every few milliseconds, so a budget below this
#: floor cannot be distinguished from "kill immediately" and is
#: rejected up front with a message that names the floor.
MIN_TIMEOUT_SECONDS = 0.001


def derive_seed(*parts: object) -> int:
    """A deterministic 63-bit seed from any hashable description.

    Grid builders that want distinct seeds per cell (e.g. per-seed
    replications of a campaign) derive them from stable labels instead
    of Python's salted ``hash`` or shared-state RNGs::

        seed = derive_seed("figure13", org, workload, replication)

    Same parts, same seed — across processes, platforms, and runs.
    """
    blob = repr(parts).encode("utf-8")
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` knob: None -> 1, 0 or negative -> all cores."""
    if n_jobs is None:
        return 1
    if n_jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return n_jobs


@dataclass(frozen=True)
class SimJob:
    """One picklable simulation: the full argument set of ``run_workload``.

    ``workload`` is a Table II name or a :class:`WorkloadSpec`;
    ``config=None`` means the default scaled paper system. ``tag`` is
    free-form caller bookkeeping carried through to the outcome.
    """

    organization: str
    workload: object
    config: Optional[object] = None
    accesses_per_context: Optional[int] = None
    seed: int = 0
    use_l3: bool = False
    org_kwargs: Optional[Mapping[str, object]] = None
    fault_config: Optional[object] = None
    tag: Optional[str] = None

    @property
    def workload_name(self) -> str:
        return getattr(self.workload, "name", str(self.workload))

    @property
    def key(self) -> str:
        """Human-readable job label for logs and error reports."""
        label = f"{self.organization}/{self.workload_name}/s{self.seed}"
        return f"{label}/{self.tag}" if self.tag else label


@dataclass
class JobOutcome:
    """What happened to one grid cell."""

    job: SimJob
    result: Optional[RunResult] = None
    error: Optional[str] = None
    wall_seconds: float = 0.0
    #: True when the result was served by the result store (or shared
    #: with an identical cell that ran) instead of simulated for this
    #: specific job — see :func:`repro.sim.plan.run_jobs_cached`.
    cached: bool = False
    #: Tries the supervisor spent on this cell (1 = first try sufficed).
    attempts: int = 1
    #: Which worker served the final attempt (``w0``... in pool mode,
    #: ``pid<n>`` in per-cell mode, ``inline`` for the serial fallback,
    #: ``serial`` for ``n_jobs=1``).
    worker_id: Optional[str] = None
    #: Seconds spent inside the simulation itself, measured in the
    #: worker; ``None`` when the cell never ran (e.g. store hits).
    sim_seconds: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None

    @property
    def dispatch_overhead_seconds(self) -> Optional[float]:
        """Wall time spent *around* the simulation: spawn, pipe, polling.

        This is the number the persistent pool exists to shrink —
        per-cell mode pays a full process start here, pool mode one
        pipe round-trip.
        """
        if self.sim_seconds is None:
            return None
        return max(0.0, self.wall_seconds - self.sim_seconds)


def run_job(job: SimJob) -> RunResult:
    """Execute one job in this process (the serial path and the worker body).

    The engine-backend counters (kernel engagements, fallbacks) are
    process-local, so a subprocess worker's tallies would otherwise
    vanish when it exits and a parallel grid would report zero kernel
    runs however many cells lowered. The delta this job accumulated is
    stamped on the result envelope; the pool folds it back into the
    parent's counters as each cell settles.
    """
    from .engine_vector import backend_stats_since, snapshot_backend_stats
    from .runner import run_workload

    before = snapshot_backend_stats()
    result = run_workload(
        job.organization,
        job.workload,
        config=job.config,
        accesses_per_context=job.accesses_per_context,
        seed=job.seed,
        use_l3=job.use_l3,
        org_kwargs=job.org_kwargs,
        fault_config=job.fault_config,
    )
    result.engine_stats = backend_stats_since(before)
    return result


def warm_trace_cache(jobs: Sequence[SimJob], ensure_disk: bool = False) -> int:
    """Materialize every distinct trace the jobs will replay; returns count.

    Run in the parent before launching workers so traces are generated
    once: fork children inherit them copy-on-write, and with
    ``ensure_disk=True`` they are also written to the content-addressed
    disk layer so ``spawn``/``forkserver`` children — which inherit no
    memory — load them from disk instead of regenerating per worker. A
    job whose inputs are invalid is skipped — it will report its own
    error when it runs.
    """
    from ..config.system import scaled_paper_system
    from ..workloads.ingest import IngestedTrace, ingested_records
    from ..workloads.spec import WorkloadSpec, workload
    from ..workloads.trace_cache import (
        default_cache_dir,
        default_trace_cache,
        materialized_rate_mode_sources,
    )
    from .engine import default_accesses_per_context

    warmed_ingested = 0
    ingested_seen = set()
    for job in jobs:
        # Ingested traces warm their own memo (independent of the trace
        # cache mode) so forked workers inherit the records copy-on-write.
        if isinstance(job.workload, IngestedTrace):
            if job.workload.checksum not in ingested_seen:
                ingested_seen.add(job.workload.checksum)
                try:
                    ingested_records(job.workload)
                    warmed_ingested += 1
                except Exception:
                    continue
    cache = default_trace_cache()
    if cache is None:
        return warmed_ingested  # mode "off": the operator opted out
    if ensure_disk and not cache.disk_dir:
        # Memory-only mode, but the handoff to the workers needs the
        # disk layer: give the default cache one, so the traces warmed
        # below are also persisted where any start method can see them.
        cache.disk_dir = default_cache_dir()
    warmed_before = cache.stats.misses
    for job in jobs:
        try:
            if isinstance(job.workload, IngestedTrace):
                continue
            spec = (
                job.workload
                if isinstance(job.workload, WorkloadSpec)
                else workload(str(job.workload))
            )
            config = job.config if job.config is not None else scaled_paper_system()
            n_accesses = (
                job.accesses_per_context
                if job.accesses_per_context is not None
                else default_accesses_per_context()
            )
            materialized_rate_mode_sources(spec, config, job.seed, n_accesses, cache)
        except Exception:
            continue
    return warmed_ingested + cache.stats.misses - warmed_before


def _init_worker(trace_cache_mode: Optional[str]) -> None:
    """One-time warm-up inside a worker process (pool and per-cell).

    Everything a cold process would otherwise pay *per cell*: the trace
    cache mode override (so non-fork workers read the disk layer the
    parent pre-warmed), the heavy ``runner`` imports, and the compiled
    kernel dlopen. Every step is best-effort — a worker that fails to
    warm is slower, never wrong.
    """
    import contextlib

    if trace_cache_mode is not None:
        with contextlib.suppress(Exception):
            from ..workloads.trace_cache import set_default_trace_cache_mode

            set_default_trace_cache_mode(trace_cache_mode)
    with contextlib.suppress(Exception):
        from .runner import run_workload  # noqa: F401 — import cost only
    with contextlib.suppress(Exception):
        from ._kernel_build import kernel_available, load_kernel

        if kernel_available():
            load_kernel()


_last_pool_report: List[Optional[PoolReport]] = [None]
_last_remote_report: List[Optional[RemoteReport]] = [None]


def last_pool_report() -> Optional[PoolReport]:
    """The :class:`PoolReport` of this process's most recent pool run.

    ``None`` when no pool has run yet (or the last grid ran serial /
    per-cell). Bench uses this to publish workers-started, respawn, and
    cells-per-worker numbers next to the timing they explain.
    """
    return _last_pool_report[0]


def last_remote_report() -> Optional[RemoteReport]:
    """The :class:`RemoteReport` of this process's most recent grid run.

    ``None`` when the last grid used no remote endpoints. Sessions,
    reconnects, per-endpoint cell counts, quarantines, and whether the
    run degraded to local dispatch, for observability next to timing.
    """
    return _last_remote_report[0]


def _to_job_outcome(task_outcome: TaskOutcome) -> JobOutcome:
    """Map the supervisor's generic outcome back onto this layer's type."""
    job = task_outcome.task.payload
    return JobOutcome(
        job,
        result=task_outcome.value if task_outcome.ok else None,
        error=task_outcome.error,
        wall_seconds=task_outcome.wall_seconds,
        attempts=task_outcome.attempts,
        worker_id=task_outcome.worker_id,
        sim_seconds=task_outcome.sim_seconds,
    )


def run_many(
    jobs: Sequence[SimJob],
    n_jobs: Optional[int] = 1,
    timeout_seconds: Optional[float] = None,
    log: Optional[Callable[[str], None]] = None,
    max_attempts: Optional[int] = None,
    hang_timeout_seconds: Optional[float] = None,
    max_rss_bytes: Optional[int] = None,
    journal: Optional[IncidentJournal] = None,
    on_outcome: Optional[Callable[[int, JobOutcome], None]] = None,
    dispatch: Optional[str] = None,
    endpoints: Optional[Sequence] = None,
) -> List[JobOutcome]:
    """Run every job; return outcomes in job order.

    ``n_jobs=1`` (the default) executes in-process — the exact code path
    of a plain serial loop, so golden fixtures stay byte-identical.
    ``n_jobs>1`` fans out over subprocess workers under the shared
    :class:`~repro.sim.supervisor.Supervisor`; ``n_jobs<=0`` means one
    worker per core. ``dispatch`` picks the worker lifecycle for the
    fan-out (``"pool"`` — persistent workers, the default —
    ``"per-cell"``, or ``"remote"``); ``None`` defers to
    ``REPRO_DISPATCH``. Results are byte-identical in every mode.

    ``endpoints`` (``host:port`` strings or
    :class:`~repro.sim.remote.Endpoint`\\ s; ``None`` defers to
    ``REPRO_ENDPOINTS``) streams cells to remote ``repro worker
    serve`` processes first, degrading to the local lifecycle — and
    ultimately in-process serial — if every endpoint is lost. Any
    endpoint forces the supervised path even at ``n_jobs=1``
    (``n_jobs`` then only sizes the local fallback pool).

    Supervision knobs (parallel mode): ``timeout_seconds`` bounds each
    attempt's wall clock (floor: :data:`MIN_TIMEOUT_SECONDS`);
    ``hang_timeout_seconds`` bounds its *idle* time between worker
    heartbeats, so a slow-but-advancing cell survives what a hung one
    does not; ``max_attempts`` retries transiently failed cells with
    exponential backoff; ``max_rss_bytes`` kills a worker that exceeds
    the ceiling. Knobs left ``None`` inherit from the ambient
    :func:`~repro.sim.supervisor.use_supervision` policy, if any.

    ``on_outcome(index, outcome)`` fires the moment each job settles —
    callers use it to flush results incrementally so an interrupt loses
    only in-flight work. On SIGINT/SIGTERM (both modes) the run stops
    gracefully and raises :class:`~repro.errors.InterruptedRunError`
    carrying the partial outcome list.
    """
    jobs = list(jobs)
    n_jobs = resolve_n_jobs(n_jobs)
    if timeout_seconds is not None:
        if timeout_seconds <= 0:
            raise ParallelError("timeout_seconds must be positive")
        if timeout_seconds < MIN_TIMEOUT_SECONDS:
            raise ParallelError(
                f"timeout_seconds={timeout_seconds} is below the enforceable "
                f"floor MIN_TIMEOUT_SECONDS={MIN_TIMEOUT_SECONDS}; the pool "
                "cannot time a worker more finely than its polling interval"
            )
    emit = log if log is not None else (lambda message: None)
    if not jobs:
        return []
    ambient = current_supervision()
    base = ambient if ambient is not None else SupervisorPolicy()
    overrides = {}
    if timeout_seconds is not None:
        overrides["timeout_seconds"] = timeout_seconds
    if max_attempts is not None:
        overrides["max_attempts"] = max_attempts
    if hang_timeout_seconds is not None:
        overrides["hang_timeout_seconds"] = hang_timeout_seconds
    if max_rss_bytes is not None:
        overrides["max_rss_bytes"] = max_rss_bytes
    policy = replace(base, **overrides) if overrides else base
    endpoint_list = resolve_endpoints(endpoints)
    if n_jobs == 1 and not endpoint_list:
        _last_pool_report[0] = None
        _last_remote_report[0] = None
        return _run_serial_all(jobs, emit, on_outcome)
    return _run_pool(jobs, n_jobs, policy, emit, journal, on_outcome,
                     dispatch, endpoint_list)


def _run_serial_all(
    jobs: List[SimJob],
    emit: Callable[[str], None],
    on_outcome: Optional[Callable[[int, JobOutcome], None]],
) -> List[JobOutcome]:
    """The in-process loop: byte-identical to pre-supervision serial runs.

    The only additions are interrupt safety (SIGINT/SIGTERM between or
    during jobs becomes :class:`InterruptedRunError` with the settled
    prefix attached, instead of an abort that loses it) and the
    incremental ``on_outcome`` flush hook.
    """
    outcomes: List[JobOutcome] = []
    with deliver_signals_as_interrupts():
        try:
            for index, job in enumerate(jobs):
                outcome = _run_serial(job, emit)
                outcomes.append(outcome)
                if on_outcome is not None:
                    on_outcome(index, outcome)
        except _SignalRaised as exc:
            padded: List[Optional[JobOutcome]] = list(outcomes)
            padded.extend([None] * (len(jobs) - len(outcomes)))
            pending = [job.key for job in jobs[len(outcomes):]]
            raise InterruptedRunError(
                f"interrupted by {exc.signal_name}: {len(outcomes)} of "
                f"{len(jobs)} job(s) settled; completed work was flushed",
                signal_name=exc.signal_name,
                outcomes=padded,
                pending_keys=pending,
            ) from None
    return outcomes


def _run_serial(job: SimJob, emit: Callable[[str], None]) -> JobOutcome:
    start = time.perf_counter()
    try:
        result = run_job(job)
    except Exception as exc:
        wall = time.perf_counter() - start
        emit(f"failed: {job.key} ({type(exc).__name__}: {exc})")
        return JobOutcome(job, error=f"{type(exc).__name__}: {exc}",
                          wall_seconds=wall, worker_id="serial",
                          sim_seconds=wall)
    wall = time.perf_counter() - start
    emit(f"done: {job.key} ({wall:.2f}s)")
    return JobOutcome(job, result=result, wall_seconds=wall,
                      worker_id="serial", sim_seconds=wall)


def _run_pool(
    jobs: List[SimJob],
    n_jobs: int,
    policy: SupervisorPolicy,
    emit: Callable[[str], None],
    journal: Optional[IncidentJournal],
    on_outcome: Optional[Callable[[int, JobOutcome], None]],
    dispatch: Optional[str] = None,
    endpoints: Optional[Sequence[Endpoint]] = None,
) -> List[JobOutcome]:
    mode = resolve_dispatch(dispatch)
    ctx = multiprocessing.get_context()
    forked = ctx.get_start_method() == "fork"
    # Warm unconditionally: fork children inherit the in-memory traces
    # copy-on-write; spawn/forkserver children (no inherited memory)
    # need the content-addressed disk layer populated instead.
    warmed = warm_trace_cache(jobs, ensure_disk=not forked)
    if warmed:
        emit(f"pre-materialized {warmed} trace(s) for the workers")
    worker_cache_mode = None
    if not forked:
        from ..workloads.trace_cache import default_trace_cache_mode

        if default_trace_cache_mode() != "off":
            # Point cold workers at the disk layer the parent just
            # warmed ("off" stays off: the operator opted out).
            worker_cache_mode = "disk"
    tasks = [
        SupervisedTask(index=index, key=job.key, target=run_job, payload=job)
        for index, job in enumerate(jobs)
    ]
    supervisor = Supervisor(
        policy, log=emit, journal=journal, ctx=ctx,
        worker_setup=functools.partial(_init_worker, worker_cache_mode),
    )

    def on_settle(task_outcome: TaskOutcome) -> None:
        # Fold the worker's engine counters into this process the moment
        # the cell settles (exactly once per cell — the final collection
        # below maps the same outcomes again and must not re-merge).
        result = task_outcome.value if task_outcome.ok else None
        if isinstance(result, RunResult) and result.engine_stats:
            from .engine_vector import merge_backend_stats

            merge_backend_stats(result.engine_stats)
        if on_outcome is not None:
            on_outcome(task_outcome.task.index, _to_job_outcome(task_outcome))

    try:
        task_outcomes = supervisor.run(
            tasks, n_workers=n_jobs, on_settle=on_settle, dispatch=mode,
            endpoints=endpoints if endpoints is not None else [],
        )
    except InterruptedRunError as exc:
        partial = [
            _to_job_outcome(t) if t is not None else None
            for t in (exc.outcomes or [None] * len(jobs))
        ]
        raise InterruptedRunError(
            str(exc),
            signal_name=exc.signal_name,
            outcomes=partial,
            pending_keys=exc.pending_keys,
        ) from None
    finally:
        _last_pool_report[0] = supervisor.last_pool_report
        _last_remote_report[0] = supervisor.last_remote_report
    return [_to_job_outcome(t) for t in task_outcomes]


def raise_on_failures(outcomes: Sequence[JobOutcome], what: str) -> None:
    """Collapse failed outcomes into one :class:`ParallelError`.

    For grid consumers (matrices, sweeps) that need *every* cell: the
    whole grid has already run to completion, so the error lists every
    failed cell at once instead of dying on the first. Only the first 8
    failures are spelled out; the rest are summarized as "and N more"
    so a fully failed grid stays readable.
    """
    failures = [o for o in outcomes if not o.ok]
    if not failures:
        return

    def describe(o: JobOutcome) -> str:
        # Name the worker that served the cell so pool-mode failures are
        # attributable; the supervisor already tags errors it settles,
        # so only add the tag where it is missing (e.g. serial runs).
        error = o.error or "no result"
        if o.worker_id and "[worker " not in error:
            error = f"{error} [worker {o.worker_id}]"
        return f"{o.job.key}: {error}"

    details = "; ".join(describe(o) for o in failures[:8])
    more = f"; and {len(failures) - 8} more" if len(failures) > 8 else ""
    raise ParallelError(
        f"{len(failures)}/{len(outcomes)} {what} jobs failed: {details}{more}"
    )
