"""Process-pool fan-out for embarrassingly parallel simulation grids.

Every figure, sweep, and benchmark walks an (organization x workload x
seed) grid of *independent deterministic* simulations, so the grid
scales with cores. :func:`run_many` executes a list of picklable
:class:`SimJob` specs across subprocess workers with

* **ordered collection** — outcome ``i`` always describes job ``i``,
  whatever order the workers finished in;
* **per-job error capture** — one failed cell becomes a
  :class:`JobOutcome` with an error string; it never kills the grid;
* **per-job timeouts** — a hung worker is terminated and reported, the
  rest of the grid continues (the subprocess pattern shared with
  :mod:`repro.sim.campaign`, minus retry/checkpoint policy);
* **bit-identical results** — each job is the same
  :func:`repro.sim.runner.run_workload` call the serial code makes, so
  ``n_jobs`` changes wall time, never a single byte of a ``RunResult``.
  ``n_jobs=1`` runs in-process with no multiprocessing at all.

On fork-capable platforms the parent pre-materializes each distinct
trace into the process-wide trace cache before launching workers, so
the children inherit the traces copy-on-write instead of regenerating
them per process.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence

from ..errors import ParallelError
from .results import RunResult

#: Matches the engine's floor: a worker below this is considered hung.
MIN_TIMEOUT_SECONDS = 0.001


def derive_seed(*parts: object) -> int:
    """A deterministic 63-bit seed from any hashable description.

    Grid builders that want distinct seeds per cell (e.g. per-seed
    replications of a campaign) derive them from stable labels instead
    of Python's salted ``hash`` or shared-state RNGs::

        seed = derive_seed("figure13", org, workload, replication)

    Same parts, same seed — across processes, platforms, and runs.
    """
    blob = repr(parts).encode("utf-8")
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` knob: None -> 1, 0 or negative -> all cores."""
    if n_jobs is None:
        return 1
    if n_jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return n_jobs


@dataclass(frozen=True)
class SimJob:
    """One picklable simulation: the full argument set of ``run_workload``.

    ``workload`` is a Table II name or a :class:`WorkloadSpec`;
    ``config=None`` means the default scaled paper system. ``tag`` is
    free-form caller bookkeeping carried through to the outcome.
    """

    organization: str
    workload: object
    config: Optional[object] = None
    accesses_per_context: Optional[int] = None
    seed: int = 0
    use_l3: bool = False
    org_kwargs: Optional[Mapping[str, object]] = None
    fault_config: Optional[object] = None
    tag: Optional[str] = None

    @property
    def workload_name(self) -> str:
        return getattr(self.workload, "name", str(self.workload))

    @property
    def key(self) -> str:
        """Human-readable job label for logs and error reports."""
        label = f"{self.organization}/{self.workload_name}/s{self.seed}"
        return f"{label}/{self.tag}" if self.tag else label


@dataclass
class JobOutcome:
    """What happened to one grid cell."""

    job: SimJob
    result: Optional[RunResult] = None
    error: Optional[str] = None
    wall_seconds: float = 0.0
    #: True when the result was served by the result store (or shared
    #: with an identical cell that ran) instead of simulated for this
    #: specific job — see :func:`repro.sim.plan.run_jobs_cached`.
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None


def run_job(job: SimJob) -> RunResult:
    """Execute one job in this process (the serial path and the worker body)."""
    from .runner import run_workload

    return run_workload(
        job.organization,
        job.workload,
        config=job.config,
        accesses_per_context=job.accesses_per_context,
        seed=job.seed,
        use_l3=job.use_l3,
        org_kwargs=job.org_kwargs,
        fault_config=job.fault_config,
    )


def _job_worker(job: SimJob, conn) -> None:
    """Subprocess body: run one job, pipe back the result or the error.

    Top-level so every multiprocessing start method can import it; any
    exception is serialized to the parent instead of crashing the grid.
    """
    try:
        result = run_job(job)
        conn.send({"ok": True, "result": result})
    except BaseException as exc:  # noqa: BLE001 — must never escape the worker
        try:
            conn.send({"ok": False, "error": f"{type(exc).__name__}: {exc}"})
        except Exception:
            pass
    finally:
        conn.close()


def warm_trace_cache(jobs: Sequence[SimJob]) -> int:
    """Materialize every distinct trace the jobs will replay; returns count.

    Run in the parent before forking workers so traces are generated
    once and inherited copy-on-write, instead of once per worker. A job
    whose inputs are invalid is skipped — it will report its own error
    when it runs.
    """
    from ..config.system import scaled_paper_system
    from ..workloads.spec import WorkloadSpec, workload
    from ..workloads.trace_cache import (
        default_trace_cache,
        materialized_rate_mode_sources,
    )
    from .engine import default_accesses_per_context

    cache = default_trace_cache()
    if cache is None:
        return 0
    warmed_before = cache.stats.misses
    for job in jobs:
        try:
            spec = (
                job.workload
                if isinstance(job.workload, WorkloadSpec)
                else workload(str(job.workload))
            )
            config = job.config if job.config is not None else scaled_paper_system()
            n_accesses = (
                job.accesses_per_context
                if job.accesses_per_context is not None
                else default_accesses_per_context()
            )
            materialized_rate_mode_sources(spec, config, job.seed, n_accesses, cache)
        except Exception:
            continue
    return cache.stats.misses - warmed_before


@dataclass
class _Running:
    index: int
    job: SimJob
    process: multiprocessing.Process
    conn: object
    started_at: float


def run_many(
    jobs: Sequence[SimJob],
    n_jobs: Optional[int] = 1,
    timeout_seconds: Optional[float] = None,
    log: Optional[Callable[[str], None]] = None,
) -> List[JobOutcome]:
    """Run every job; return outcomes in job order.

    ``n_jobs=1`` (the default) executes in-process — the exact code path
    of a plain serial loop, so golden fixtures stay byte-identical.
    ``n_jobs>1`` fans out over subprocess workers; ``n_jobs<=0`` means
    one worker per core. ``timeout_seconds`` bounds each job's wall
    clock (parallel mode only; a serial in-process job cannot be safely
    interrupted).
    """
    jobs = list(jobs)
    n_jobs = resolve_n_jobs(n_jobs)
    if timeout_seconds is not None and timeout_seconds < MIN_TIMEOUT_SECONDS:
        raise ParallelError("timeout_seconds must be positive")
    emit = log if log is not None else (lambda message: None)
    if not jobs:
        return []
    if n_jobs == 1:
        return [_run_serial(job, emit) for job in jobs]
    return _run_pool(jobs, n_jobs, timeout_seconds, emit)


def _run_serial(job: SimJob, emit: Callable[[str], None]) -> JobOutcome:
    start = time.perf_counter()
    try:
        result = run_job(job)
    except Exception as exc:
        wall = time.perf_counter() - start
        emit(f"failed: {job.key} ({type(exc).__name__}: {exc})")
        return JobOutcome(job, error=f"{type(exc).__name__}: {exc}", wall_seconds=wall)
    wall = time.perf_counter() - start
    emit(f"done: {job.key} ({wall:.2f}s)")
    return JobOutcome(job, result=result, wall_seconds=wall)


def _run_pool(
    jobs: List[SimJob],
    n_jobs: int,
    timeout_seconds: Optional[float],
    emit: Callable[[str], None],
) -> List[JobOutcome]:
    ctx = multiprocessing.get_context()
    if ctx.get_start_method() == "fork":
        warmed = warm_trace_cache(jobs)
        if warmed:
            emit(f"pre-materialized {warmed} trace(s) for the workers")
    outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
    pending = deque(enumerate(jobs))
    running: List[_Running] = []

    def launch(index: int, job: SimJob) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_job_worker, args=(job, child_conn), daemon=True
        )
        process.start()
        child_conn.close()
        running.append(_Running(index, job, process, parent_conn, time.monotonic()))
        emit(f"start: {job.key}")

    def settle(entry: _Running, outcome: JobOutcome) -> None:
        outcomes[entry.index] = outcome
        running.remove(entry)
        status = "done" if outcome.ok else "failed"
        detail = "" if outcome.ok else f" ({outcome.error})"
        emit(f"{status}: {entry.job.key} ({outcome.wall_seconds:.2f}s){detail}")

    while pending or running:
        while pending and len(running) < n_jobs:
            index, job = pending.popleft()
            launch(index, job)
        progressed = False
        now = time.monotonic()
        for entry in list(running):
            wall = now - entry.started_at
            message = None
            if entry.conn.poll():
                try:
                    message = entry.conn.recv()
                except EOFError:
                    message = None
            if message is not None:
                entry.process.join()
                entry.conn.close()
                progressed = True
                if message.get("ok"):
                    settle(entry, JobOutcome(
                        entry.job, result=message["result"], wall_seconds=wall
                    ))
                else:
                    settle(entry, JobOutcome(
                        entry.job,
                        error=message.get("error", "worker error"),
                        wall_seconds=wall,
                    ))
                continue
            if not entry.process.is_alive():
                code = entry.process.exitcode
                entry.conn.close()
                progressed = True
                settle(entry, JobOutcome(
                    entry.job,
                    error=f"worker crashed (exit code {code})",
                    wall_seconds=wall,
                ))
                continue
            if timeout_seconds is not None and wall > timeout_seconds:
                entry.process.terminate()
                entry.process.join()
                entry.conn.close()
                progressed = True
                settle(entry, JobOutcome(
                    entry.job,
                    error=f"timeout after {timeout_seconds:.1f}s",
                    wall_seconds=wall,
                ))
        if not progressed and (pending or running):
            time.sleep(0.005)
    return list(outcomes)


def raise_on_failures(outcomes: Sequence[JobOutcome], what: str) -> None:
    """Collapse failed outcomes into one :class:`ParallelError`.

    For grid consumers (matrices, sweeps) that need *every* cell: the
    whole grid has already run to completion, so the error lists every
    failed cell at once instead of dying on the first.
    """
    failures = [o for o in outcomes if not o.ok]
    if not failures:
        return
    details = "; ".join(f"{o.job.key}: {o.error}" for o in failures[:8])
    more = f" (+{len(failures) - 8} more)" if len(failures) > 8 else ""
    raise ParallelError(
        f"{len(failures)}/{len(outcomes)} {what} jobs failed: {details}{more}"
    )
