"""High-level entry points: run one workload under one or many organizations.

This is the API the examples, benchmarks, and experiments build on::

    from repro import scaled_paper_system, run_workload
    result = run_workload("cameo", "milc")
    print(result.speedup_over(run_workload("baseline", "milc")))
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Union

from ..config.system import SystemConfig, scaled_paper_system
from ..faults.injector import FaultInjector
from ..faults.model import FaultConfig
from ..orgs.factory import build_organization
from ..workloads.ingest import IngestedTrace, replay_sources, replay_spec
from ..workloads.spec import WorkloadSpec, workload
from ..workloads.trace_cache import (
    materialized_mixed_sources,
    materialized_rate_mode_sources,
)
from .engine import default_accesses_per_context, run_trace
from .machine import Machine
from .result_store import cell_fingerprint, default_result_store
from .results import RunProvenance, RunResult, SpeedupReport

WorkloadLike = Union[str, WorkloadSpec, IngestedTrace]


def _resolve_spec(workload_like: WorkloadLike) -> WorkloadSpec:
    if isinstance(workload_like, WorkloadSpec):
        return workload_like
    if isinstance(workload_like, IngestedTrace):
        # An externally captured trace runs under a surrogate spec whose
        # name embeds the content checksum, so ingested cells are
        # content-addressed everywhere a workload name is keyed.
        return replay_spec(workload_like)
    return workload(workload_like)


def run_workload(
    org_name: str,
    workload_like: WorkloadLike,
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
    use_l3: bool = False,
    org_kwargs: Optional[Mapping[str, object]] = None,
    fault_config: Optional[FaultConfig] = None,
) -> RunResult:
    """Simulate one workload under one organization and return the result.

    ``fault_config`` attaches a deterministic fault injector to the
    organization and its DRAM devices (see :mod:`repro.faults`); the
    result then carries the fault/recovery counters in
    :attr:`~repro.sim.results.RunResult.fault_summary`. An all-zero-rate
    config reproduces the fault-free numbers bit-for-bit.

    The per-context access streams come from the process-wide trace
    cache (:mod:`repro.workloads.trace_cache`) when one is active: the
    five organizations of an experiment cell then replay one
    materialized trace instead of regenerating it, with byte-identical
    results either way. The returned result carries a
    :class:`~repro.sim.results.RunProvenance` stamp recording the exact
    recipe it came from.

    One level up, the result *store* (:mod:`repro.sim.result_store`)
    memoizes the whole simulation: when the cell's content fingerprint
    is already stored, the finished result is served without simulating
    — byte-identical to a fresh run — and a completed run is stored for
    the next caller. ``REPRO_RESULT_CACHE=off`` (or
    :func:`~repro.sim.result_store.result_store_disabled`) restores the
    always-simulate behavior.
    """
    spec = _resolve_spec(workload_like)
    if config is None:
        config = scaled_paper_system()
    n_accesses = (
        accesses_per_context
        if accesses_per_context is not None
        else default_accesses_per_context()
    )
    store = default_result_store()
    fingerprint = None
    if store is not None:
        fingerprint = cell_fingerprint(
            org_name, spec, config, n_accesses, seed,
            use_l3=use_l3, org_kwargs=org_kwargs, fault_config=fault_config,
        )
        if fingerprint is not None:
            cached = store.get(fingerprint)
            if cached is not None:
                return cached
    org = build_organization(org_name, config, **dict(org_kwargs or {}))
    if fault_config is not None:
        org.attach_fault_injector(FaultInjector(fault_config))
    machine = Machine(config, org, use_l3=use_l3, seed=seed)
    if isinstance(workload_like, IngestedTrace):
        # Replay bypasses the synthetic generators: every context walks
        # the validated record stream (rate-mode convention), so the
        # seed paces nothing — determinism comes from the trace itself.
        generators = replay_sources(workload_like, config, n_accesses)
    else:
        generators = materialized_rate_mode_sources(spec, config, seed, n_accesses)
    result = run_trace(machine, generators, spec, n_accesses)
    result.provenance = RunProvenance(
        organization=org_name,
        workload=spec.name,
        config_fingerprint=config.fingerprint(),
        accesses_per_context=n_accesses,
        seed=seed,
    )
    if store is not None and fingerprint is not None:
        store.put(fingerprint, result)
    return result


def mix_provenance_name(specs: Sequence[WorkloadSpec]) -> str:
    """The provenance encoding of a mix: the *per-context* workload list.

    Order matters (context 0's workload is not context 1's), so this is
    the full list, not the deduplicated display name ``run_trace`` puts
    on the result — ``mix:milc,astar`` and ``mix:astar,milc`` are
    different simulations and must never satisfy the same provenance
    check.
    """
    return "mix:" + ",".join(spec.name for spec in specs)


def run_mix(
    org_name: str,
    workload_likes: Sequence[WorkloadLike],
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
    org_kwargs: Optional[Mapping[str, object]] = None,
) -> RunResult:
    """Simulate a heterogeneous multi-programmed mix (one workload/context).

    An extension beyond the paper's rate-mode evaluation: each context
    runs a *different* Table II workload; pacing follows each workload's
    own MPKI. Mixes get the same memoization as rate-mode runs: the
    per-context streams replay through the trace cache (bit-for-bit
    equivalent to live generation), the result carries a
    :class:`~repro.sim.results.RunProvenance` stamp encoding the
    per-context workload list, and the finished result is served from /
    stored into the result store under its cell fingerprint.
    """
    specs = [_resolve_spec(w) for w in workload_likes]
    if config is None:
        config = scaled_paper_system()
    n_accesses = (
        accesses_per_context
        if accesses_per_context is not None
        else default_accesses_per_context()
    )
    store = default_result_store()
    fingerprint = None
    if store is not None:
        fingerprint = cell_fingerprint(
            org_name, specs, config, n_accesses, seed, org_kwargs=org_kwargs
        )
        if fingerprint is not None:
            cached = store.get(fingerprint)
            if cached is not None:
                return cached
    org = build_organization(org_name, config, **dict(org_kwargs or {}))
    machine = Machine(config, org, seed=seed)
    generators = materialized_mixed_sources(specs, config, seed, n_accesses)
    result = run_trace(machine, generators, specs, n_accesses)
    result.provenance = RunProvenance(
        organization=org_name,
        workload=mix_provenance_name(specs),
        config_fingerprint=config.fingerprint(),
        accesses_per_context=n_accesses,
        seed=seed,
    )
    if store is not None and fingerprint is not None:
        store.put(fingerprint, result)
    return result


def run_configs(
    org_names: Sequence[str],
    workload_like: WorkloadLike,
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
    org_kwargs_by_name: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> Dict[str, RunResult]:
    """Run one workload under several organizations (same trace each time)."""
    results = {}
    for org_name in org_names:
        kwargs = (org_kwargs_by_name or {}).get(org_name)
        results[org_name] = run_workload(
            org_name,
            workload_like,
            config=config,
            accesses_per_context=accesses_per_context,
            seed=seed,
            org_kwargs=kwargs,
        )
    return results


def build_speedup_report(
    org_names: Sequence[str],
    workload_likes: Iterable[WorkloadLike],
    config: Optional[SystemConfig] = None,
    accesses_per_context: Optional[int] = None,
    seed: int = 0,
    org_kwargs_by_name: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> SpeedupReport:
    """The paper's evaluation recipe: everything vs the no-stacked baseline.

    Runs the baseline plus every named organization on every workload and
    collects per-workload speedups into a :class:`SpeedupReport`.
    """
    report = SpeedupReport()
    for workload_like in workload_likes:
        spec = _resolve_spec(workload_like)
        baseline = run_workload(
            "baseline", spec, config, accesses_per_context, seed
        )
        for org_name in org_names:
            kwargs = (org_kwargs_by_name or {}).get(org_name)
            result = run_workload(
                org_name, spec, config, accesses_per_context, seed, org_kwargs=kwargs
            )
            report.add(spec.name, spec.category, org_name, result.speedup_over(baseline))
    return report
