"""Simulation engine: machines, the run loop, results, runners, sweeps,
supervised parallel fan-out, the content-addressed result store with its
deduplicating grid planner, and crash-safe multi-run campaigns."""

from .campaign import (
    CampaignPoint,
    CampaignResult,
    CampaignSpec,
    load_checkpoint,
    run_campaign,
)
from .export import report_to_dict, result_to_dict, result_to_json
from .engine import (
    ACCESSES_ENV_VAR,
    DEFAULT_ACCESSES_PER_CONTEXT,
    default_accesses_per_context,
    run_trace,
)
from .machine import Machine
from .parallel import (
    JobOutcome,
    SimJob,
    derive_seed,
    raise_on_failures,
    resolve_n_jobs,
    run_many,
)
from .plan import (
    GridPlan,
    GridRunReport,
    PlannedExperiment,
    build_grid_plan,
    execute_grid_plan,
    load_resume_manifest,
    run_jobs_cached,
    seed_store_from_manifest,
    write_resume_manifest,
)
from .request import MemoryRequest
from .result_store import (
    ResultStore,
    cell_fingerprint,
    clear_default_result_store,
    default_result_store,
    job_fingerprint,
    result_store_disabled,
    use_result_store,
)
from .results import RunProvenance, RunResult, SpeedupReport
from .runner import build_speedup_report, run_configs, run_mix, run_workload
from .supervisor import (
    IncidentJournal,
    SupervisedTask,
    Supervisor,
    SupervisorPolicy,
    TaskOutcome,
    current_supervision,
    escalate_kill,
    is_retryable_exception,
    journal_from_env,
    use_supervision,
)
from .sweep import SweepPoint, sweep_org_parameter, sweep_system

__all__ = [
    "ACCESSES_ENV_VAR",
    "CampaignPoint",
    "CampaignResult",
    "CampaignSpec",
    "DEFAULT_ACCESSES_PER_CONTEXT",
    "GridPlan",
    "GridRunReport",
    "IncidentJournal",
    "JobOutcome",
    "Machine",
    "MemoryRequest",
    "PlannedExperiment",
    "ResultStore",
    "RunProvenance",
    "RunResult",
    "SimJob",
    "SpeedupReport",
    "SupervisedTask",
    "Supervisor",
    "SupervisorPolicy",
    "SweepPoint",
    "TaskOutcome",
    "build_grid_plan",
    "build_speedup_report",
    "cell_fingerprint",
    "clear_default_result_store",
    "current_supervision",
    "default_accesses_per_context",
    "default_result_store",
    "derive_seed",
    "escalate_kill",
    "execute_grid_plan",
    "is_retryable_exception",
    "job_fingerprint",
    "journal_from_env",
    "load_checkpoint",
    "load_resume_manifest",
    "raise_on_failures",
    "report_to_dict",
    "resolve_n_jobs",
    "result_store_disabled",
    "result_to_dict",
    "result_to_json",
    "run_campaign",
    "run_configs",
    "run_jobs_cached",
    "run_many",
    "run_mix",
    "run_trace",
    "run_workload",
    "seed_store_from_manifest",
    "sweep_org_parameter",
    "sweep_system",
    "use_result_store",
    "use_supervision",
    "write_resume_manifest",
]
