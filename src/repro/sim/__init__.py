"""Simulation engine: machines, the run loop, results, runners, sweeps,
and crash-safe multi-run campaigns."""

from .campaign import (
    CampaignPoint,
    CampaignResult,
    CampaignSpec,
    load_checkpoint,
    run_campaign,
)
from .export import report_to_dict, result_to_dict, result_to_json
from .engine import (
    ACCESSES_ENV_VAR,
    DEFAULT_ACCESSES_PER_CONTEXT,
    default_accesses_per_context,
    run_trace,
)
from .machine import Machine
from .request import MemoryRequest
from .results import RunResult, SpeedupReport
from .runner import build_speedup_report, run_configs, run_mix, run_workload
from .sweep import SweepPoint, sweep_org_parameter, sweep_system

__all__ = [
    "ACCESSES_ENV_VAR",
    "CampaignPoint",
    "CampaignResult",
    "CampaignSpec",
    "DEFAULT_ACCESSES_PER_CONTEXT",
    "Machine",
    "MemoryRequest",
    "RunResult",
    "SpeedupReport",
    "SweepPoint",
    "build_speedup_report",
    "default_accesses_per_context",
    "load_checkpoint",
    "report_to_dict",
    "result_to_dict",
    "result_to_json",
    "run_campaign",
    "run_configs",
    "run_mix",
    "run_trace",
    "run_workload",
    "sweep_org_parameter",
    "sweep_system",
]
