"""Simulation engine: machines, the run loop, results, runners, sweeps,
parallel fan-out, and crash-safe multi-run campaigns."""

from .campaign import (
    CampaignPoint,
    CampaignResult,
    CampaignSpec,
    load_checkpoint,
    run_campaign,
)
from .export import report_to_dict, result_to_dict, result_to_json
from .engine import (
    ACCESSES_ENV_VAR,
    DEFAULT_ACCESSES_PER_CONTEXT,
    default_accesses_per_context,
    run_trace,
)
from .machine import Machine
from .parallel import (
    JobOutcome,
    SimJob,
    derive_seed,
    raise_on_failures,
    resolve_n_jobs,
    run_many,
)
from .request import MemoryRequest
from .results import RunProvenance, RunResult, SpeedupReport
from .runner import build_speedup_report, run_configs, run_mix, run_workload
from .sweep import SweepPoint, sweep_org_parameter, sweep_system

__all__ = [
    "ACCESSES_ENV_VAR",
    "CampaignPoint",
    "CampaignResult",
    "CampaignSpec",
    "DEFAULT_ACCESSES_PER_CONTEXT",
    "JobOutcome",
    "Machine",
    "MemoryRequest",
    "RunProvenance",
    "RunResult",
    "SimJob",
    "SpeedupReport",
    "SweepPoint",
    "build_speedup_report",
    "default_accesses_per_context",
    "derive_seed",
    "load_checkpoint",
    "raise_on_failures",
    "report_to_dict",
    "resolve_n_jobs",
    "result_to_dict",
    "result_to_json",
    "run_campaign",
    "run_configs",
    "run_many",
    "run_mix",
    "run_trace",
    "run_workload",
    "sweep_org_parameter",
    "sweep_system",
]
