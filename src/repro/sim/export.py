"""Structured (JSON-friendly) export of run results.

Everything a :class:`~repro.sim.results.RunResult` measured, flattened
into plain dicts/lists for logging, plotting, or regression-tracking
pipelines. The CLI's ``--json`` flag and downstream notebooks use this.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from .results import RunResult, SpeedupReport


def result_to_dict(result: RunResult, baseline: Optional[RunResult] = None) -> Dict:
    """Flatten one run; includes the speedup when a baseline is given."""
    payload: Dict = {
        "workload": result.workload,
        "organization": result.organization,
        "total_cycles": result.total_cycles,
        "instructions": result.instructions,
        "accesses": result.accesses,
        "ipc": result.ipc,
        "cpi": result.cpi,
        "dram_bytes": dict(result.dram_bytes),
        "storage_bytes": result.storage_bytes,
        "page_faults": result.page_faults,
        "stacked_service_fraction": result.stacked_service_fraction,
        "line_swaps": result.line_swaps,
        "page_migrations": result.page_migrations,
        "device_summary": {k: dict(v) for k, v in result.device_summary.items()},
    }
    if result.l3_miss_rate is not None:
        payload["l3_miss_rate"] = result.l3_miss_rate
    if result.fault_summary is not None:
        payload["fault_summary"] = dict(result.fault_summary)
    if result.llp_cases is not None and result.llp_cases.total:
        payload["llp"] = {
            "accuracy": result.llp_cases.accuracy,
            "cases": result.llp_cases.as_fractions(),
            "wasted_bandwidth_fraction": result.llp_cases.wasted_bandwidth_fraction,
            "extra_latency_fraction": result.llp_cases.extra_latency_fraction,
        }
    if baseline is not None:
        payload["speedup_over_baseline"] = result.speedup_over(baseline)
    return payload


def report_to_dict(report: SpeedupReport) -> Dict:
    """Flatten a speedup report (per-workload speedups + gmeans)."""
    return {
        "speedups": {w: dict(per_org) for w, per_org in report.speedups.items()},
        "categories": dict(report.categories),
        "gmeans": {
            "all": report.summary(None),
            "capacity": _maybe_summary(report, "capacity"),
            "latency": _maybe_summary(report, "latency"),
        },
    }


def _maybe_summary(report: SpeedupReport, category: str) -> Optional[Dict]:
    if not report.workloads(category):
        return None
    return report.summary(category)


def result_to_json(result: RunResult, baseline: Optional[RunResult] = None,
                   indent: int = 2) -> str:
    """JSON text of :func:`result_to_dict` (stable key order)."""
    return json.dumps(result_to_dict(result, baseline), indent=indent, sort_keys=True)
