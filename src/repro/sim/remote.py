"""Remote worker endpoints: supervised dispatch across host boundaries.

The persistent pool (:mod:`repro.sim.supervisor`) made workers
long-lived; this module makes them *remote*. A ``repro worker serve``
process on another host listens on TCP, and the parent's supervisor
streams cells to it over a small length-prefixed protocol, with every
supervision semantic promoted to host granularity: per-endpoint
heartbeat policing, classified retries when a connection drops
mid-cell, endpoint quarantine after repeated failures, and graceful
degradation to the local pool (and ultimately in-process serial) when
every remote is gone.

Protocol (version :data:`REMOTE_PROTOCOL_VERSION`)
--------------------------------------------------

Every frame is an 8-byte big-endian length followed by a pickled
Python object; frames above :data:`MAX_FRAME_BYTES` are rejected as
protocol corruption. One connection carries one *session*:

1. client → ``{"kind": "repro-remote-hello", "protocol": ...,
   "fingerprint": ...}``
2. server → ``{"kind": "repro-remote-welcome", ...}`` when both sides
   agree on protocol revision *and* code fingerprint, else a
   ``repro-remote-reject`` frame and a close. The fingerprint covers
   the package version, the protocol revision, and the result-store
   schema — two builds that could disagree on bytes never exchange
   cells, so distributed grids stay byte-identical by construction.
3. client → task frames ``{"target", "payload", "key", "attempt",
   "heartbeat_every"}``; server answers each with zero or more
   ``{"hb": n}`` heartbeats followed by exactly one final frame using
   the same schema as the local pool worker (``ok``/``value``/
   ``error``/``retryable``/``sim_seconds``/``wall_seconds``). Results
   carry their ``backend_stats`` delta inside the value, exactly as
   local workers do.
4. client → ``{"stop": True}`` ends the session; the server returns to
   ``accept()`` so a *different* parent (any host sharing the result
   store) can take over the campaign.

Clock skew never matters: no absolute timestamp crosses the wire. The
server reports durations measured on its own clock; the parent polices
timeouts and heartbeats by local arrival time only.

Like :mod:`multiprocessing.connection`, frames are unpickled — only
point endpoints at hosts you trust (a cooperating cluster), never at
the open internet.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
import select
import signal
import socket
import struct
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..errors import EnvKnobError, RemoteError, RemoteProtocolError

#: Bumped whenever a frame or message schema changes; both ends must
#: match exactly (there is no negotiation — simulation clusters deploy
#: one build, and byte-identity across builds is not a promise we can
#: keep).
REMOTE_PROTOCOL_VERSION = 1
#: Comma-separated ``host:port`` list; the CLI's ``--endpoints`` flag
#: exports it so nested fan-out inherits the endpoint roster.
ENDPOINTS_ENV_VAR = "REPRO_ENDPOINTS"
#: Ceiling on one frame's payload. Cells and results are kilobytes;
#: anything near this is a corrupt or hostile length header.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct(">Q")
_HELLO_KIND = "repro-remote-hello"
_WELCOME_KIND = "repro-remote-welcome"
_REJECT_KIND = "repro-remote-reject"
#: Handshake frames must arrive within this budget even when the
#: caller's connect timeout is unbounded; a listener whose single
#: session is wedged accepts nothing, and the parent must classify
#: that as endpoint failure rather than block forever.
_HANDSHAKE_TIMEOUT_SECONDS = 10.0


def code_fingerprint() -> str:
    """A digest two processes must share to exchange cells.

    Covers the package version, the wire-protocol revision, and the
    result-store schema version: the three coordinates that decide
    whether two builds produce interchangeable, byte-identical results.
    """
    from .. import __version__
    from .result_store import RESULT_STORE_SCHEMA_VERSION

    blob = repr((
        __version__,
        REMOTE_PROTOCOL_VERSION,
        RESULT_STORE_SCHEMA_VERSION,
    )).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


# -- Endpoint specs -------------------------------------------------------------


@dataclass(frozen=True)
class Endpoint:
    """One remote worker listener, as ``host:port``."""

    host: str
    port: int

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.address


def parse_endpoint(text: str) -> Endpoint:
    """Parse one ``host:port`` spec; raises :class:`RemoteError`."""
    spec = text.strip()
    host, sep, raw_port = spec.rpartition(":")
    if not sep or not host:
        raise RemoteError(
            f"endpoint {spec!r} is not host:port (e.g. 10.0.0.2:7463)"
        )
    try:
        port = int(raw_port)
    except ValueError as exc:
        raise RemoteError(
            f"endpoint {spec!r} has a non-numeric port {raw_port!r}"
        ) from exc
    if not 1 <= port <= 65535:
        raise RemoteError(
            f"endpoint {spec!r} port {port} is outside [1, 65535]"
        )
    return Endpoint(host=host, port=port)


def parse_endpoints(text: Optional[str]) -> List[Endpoint]:
    """Parse a comma-separated endpoint list; empty input → ``[]``."""
    if not text or not text.strip():
        return []
    endpoints = [
        parse_endpoint(part)
        for part in text.split(",")
        if part.strip()
    ]
    seen = set()
    for endpoint in endpoints:
        if endpoint.address in seen:
            raise RemoteError(
                f"endpoint {endpoint.address} is listed more than once"
            )
        seen.add(endpoint.address)
    return endpoints


def endpoints_from_env() -> List[Endpoint]:
    """Endpoints from ``REPRO_ENDPOINTS``, or ``[]`` when unset."""
    text = os.environ.get(ENDPOINTS_ENV_VAR)
    try:
        return parse_endpoints(text)
    except RemoteError as exc:
        raise EnvKnobError(
            f"{ENDPOINTS_ENV_VAR}={text!r} is invalid: {exc}; expected a "
            "comma-separated host:port list (e.g. 10.0.0.2:7463,10.0.0.3:7463)"
        ) from exc


def resolve_endpoints(
    endpoints: Optional[Sequence[Union[str, Endpoint]]],
) -> List[Endpoint]:
    """Normalize an explicit endpoint argument, or fall back to the env.

    ``None`` defers to :func:`endpoints_from_env`; an explicit (possibly
    empty) sequence wins over the environment, so a caller can force
    local dispatch with ``endpoints=[]`` even under ``REPRO_ENDPOINTS``.
    """
    if endpoints is None:
        return endpoints_from_env()
    resolved: List[Endpoint] = []
    seen = set()
    for item in endpoints:
        endpoint = item if isinstance(item, Endpoint) else parse_endpoint(item)
        if endpoint.address in seen:
            raise RemoteError(
                f"endpoint {endpoint.address} is listed more than once"
            )
        seen.add(endpoint.address)
        resolved.append(endpoint)
    return resolved


# -- Framing --------------------------------------------------------------------


class FramedConnection:
    """Length-prefixed pickle frames over one TCP socket.

    Exposes the same surface the supervisor uses on local pipes —
    ``send``/``recv``/``poll``/``fileno``/``close`` — so remote workers
    slot into the existing pump/police loops. ``recv`` raises
    :class:`EOFError` on a clean peer close and ``OSError`` on an
    unclean one, exactly the families the supervisor already classifies
    as retryable.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._closed = False
        with contextlib.suppress(OSError):
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def fileno(self) -> int:
        return self._sock.fileno()

    def send(self, obj: object) -> None:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        if len(payload) > MAX_FRAME_BYTES:
            raise RemoteProtocolError(
                f"refusing to send a {len(payload)}-byte frame "
                f"(limit {MAX_FRAME_BYTES})"
            )
        self._sock.sendall(_HEADER.pack(len(payload)) + payload)

    def _recv_exact(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(min(remaining, 1 << 20))
            if not chunk:
                raise EOFError("connection closed by peer")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self) -> object:
        header = self._recv_exact(_HEADER.size)
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise RemoteProtocolError(
                f"frame header claims {length} bytes (limit "
                f"{MAX_FRAME_BYTES}); stream is corrupt"
            )
        payload = self._recv_exact(length)
        try:
            return pickle.loads(payload)
        except Exception as exc:
            raise RemoteProtocolError(
                f"frame payload failed to unpickle: {exc}"
            ) from exc

    def poll(self, timeout: float = 0.0) -> bool:
        """Whether at least one byte is readable (frame *start*, not
        necessarily a whole frame; senders write frames atomically, so
        the remainder follows promptly)."""
        if self._closed:
            return False
        try:
            ready, _, _ = select.select([self._sock], [], [], timeout)
        except (OSError, ValueError):
            return True  # let recv() surface the real error
        return bool(ready)

    def settimeout(self, timeout: Optional[float]) -> None:
        self._sock.settimeout(timeout)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with contextlib.suppress(OSError):
            self._sock.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):
            self._sock.close()


# -- Client side (the parent's supervisor) --------------------------------------


def connect_endpoint(
    endpoint: Endpoint,
    timeout: float = 10.0,
) -> Tuple[FramedConnection, dict]:
    """Connect and handshake; returns ``(connection, welcome)``.

    Raises :class:`RemoteProtocolError` on version/fingerprint skew (a
    deterministic mismatch — callers quarantine the endpoint
    immediately) and ``OSError``/``EOFError`` on transient trouble
    (refused, reset, handshake timeout — callers retry with backoff).
    """
    sock = socket.create_connection(
        (endpoint.host, endpoint.port), timeout=timeout,
    )
    conn = FramedConnection(sock)
    try:
        conn.send({
            "kind": _HELLO_KIND,
            "protocol": REMOTE_PROTOCOL_VERSION,
            "fingerprint": code_fingerprint(),
        })
        welcome = conn.recv()
        if not isinstance(welcome, dict):
            raise RemoteProtocolError(
                f"endpoint {endpoint.address} answered the hello with "
                f"{type(welcome).__name__}, not a handshake frame"
            )
        if welcome.get("kind") == _REJECT_KIND:
            raise RemoteProtocolError(
                f"endpoint {endpoint.address} rejected the handshake: "
                f"{welcome.get('reason', 'no reason given')}"
            )
        if welcome.get("kind") != _WELCOME_KIND:
            raise RemoteProtocolError(
                f"endpoint {endpoint.address} sent frame kind "
                f"{welcome.get('kind')!r} where a welcome was expected"
            )
        # The server echoes its identity; verify symmetrically so a
        # *newer* server also refuses an older parent.
        if welcome.get("protocol") != REMOTE_PROTOCOL_VERSION:
            raise RemoteProtocolError(
                f"endpoint {endpoint.address} speaks protocol "
                f"{welcome.get('protocol')!r}, this parent speaks "
                f"{REMOTE_PROTOCOL_VERSION} (version skew)"
            )
        if welcome.get("fingerprint") != code_fingerprint():
            raise RemoteProtocolError(
                f"endpoint {endpoint.address} runs a different simulator "
                "build (fingerprint skew); results would not be "
                "byte-identical"
            )
    except BaseException:
        conn.close()
        raise
    # Handshake done: hand a blocking socket to the supervisor's
    # poll/recv loops.
    conn.settimeout(None)
    return conn, welcome


# -- Server side (`repro worker serve`) -----------------------------------------


class _SessionSabotaged(Exception):
    """Injected connection drop: abort this session, keep serving."""


def _maybe_inject_endpoint_fault(faults, key: str, attempt: int) -> None:
    """Chaos for the serving process, drawn per (cell, attempt).

    ``endpoint_kill`` takes the whole server down (host death);
    ``crash`` drops only this connection (the parent sees a mid-cell
    EOF and the server survives to ``accept()`` again); ``hang`` wedges
    the session so the parent's heartbeat police fires.
    """
    from .supervisor import INJECTED_CRASH_EXIT_CODE, _unit_hash

    if attempt > faults.max_attempt:
        return
    draw = _unit_hash("inject-worker", faults.seed, key, attempt)
    threshold = faults.endpoint_kill_rate
    if draw < threshold:
        os._exit(INJECTED_CRASH_EXIT_CODE)
    if draw < threshold + faults.crash_rate:
        raise _SessionSabotaged(f"injected connection drop on {key!r}")
    threshold += faults.crash_rate
    if draw < threshold + faults.hang_rate:
        while True:  # a genuine wedge: alive, silent, never returns
            time.sleep(3600)


def _serve_session(conn: FramedConnection, peer: str,
                   log: Callable[[str], None]) -> None:
    """One parent's session: handshake, then run cells until stop/EOF."""
    from .supervisor import (
        FAULTS_ENV_VAR,
        _install_heartbeat_hook,
        is_retryable_exception,
        parse_injected_faults,
    )

    conn.settimeout(_HANDSHAKE_TIMEOUT_SECONDS)
    try:
        hello = conn.recv()
    except (EOFError, OSError, RemoteProtocolError) as exc:
        log(f"rejected {peer}: no valid hello ({exc})")
        return
    if not isinstance(hello, dict) or hello.get("kind") != _HELLO_KIND:
        conn.send({"kind": _REJECT_KIND, "reason": "expected a hello frame"})
        log(f"rejected {peer}: not a repro-remote hello")
        return
    if hello.get("protocol") != REMOTE_PROTOCOL_VERSION:
        conn.send({
            "kind": _REJECT_KIND,
            "reason": (
                f"protocol {hello.get('protocol')!r} != server's "
                f"{REMOTE_PROTOCOL_VERSION} (version skew)"
            ),
        })
        log(f"rejected {peer}: protocol version skew")
        return
    if hello.get("fingerprint") != code_fingerprint():
        conn.send({
            "kind": _REJECT_KIND,
            "reason": "simulator build fingerprint mismatch "
                      "(results would not be byte-identical)",
        })
        log(f"rejected {peer}: build fingerprint skew")
        return
    conn.send({
        "kind": _WELCOME_KIND,
        "protocol": REMOTE_PROTOCOL_VERSION,
        "fingerprint": code_fingerprint(),
        "server": f"{socket.gethostname()}:{os.getpid()}",
    })
    conn.settimeout(None)
    log(f"session from {peer}")
    faults = parse_injected_faults(os.environ.get(FAULTS_ENV_VAR))
    cells = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, RemoteProtocolError) as exc:
            log(f"session from {peer} ended: {exc}")
            return
        if not isinstance(message, dict) or message.get("stop"):
            log(f"session from {peer} closed after {cells} cell(s)")
            return
        key = str(message.get("key", ""))
        attempt = int(message.get("attempt", 1))
        if faults is not None and faults.active:
            try:
                _maybe_inject_endpoint_fault(faults, key, attempt)
            except _SessionSabotaged as exc:
                log(f"chaos: {exc}")
                return  # abrupt close = connection drop mid-cell
        _install_heartbeat_hook(
            conn, int(message.get("heartbeat_every", 2000)),
        )
        started = time.perf_counter()
        try:
            value = message["target"](message["payload"])
            conn.send({
                "ok": True,
                "value": value,
                "sim_seconds": time.perf_counter() - started,
                # Durations only: this clock never leaves this host.
                "wall_seconds": time.perf_counter() - started,
            })
        except (EOFError, OSError):
            log(f"session from {peer} lost mid-result")
            return
        except BaseException as exc:  # noqa: BLE001 — the server must survive
            try:
                conn.send({
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                    "retryable": is_retryable_exception(exc),
                    "sim_seconds": time.perf_counter() - started,
                    "wall_seconds": time.perf_counter() - started,
                })
            except Exception:
                return
        cells += 1


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    log: Optional[Callable[[str], None]] = None,
    once: bool = False,
    on_bound: Optional[Callable[[Endpoint], None]] = None,
) -> None:
    """Serve simulation cells to remote parents until terminated.

    Binds ``host:port`` (``port=0`` picks a free one), reports the
    bound endpoint via ``on_bound`` and a ``listening on host:port``
    log line, then accepts one session at a time — when a parent
    disconnects (or dies) the server returns to ``accept()``, so a
    fresh parent on any host can resume the campaign. ``once`` exits
    after the first session instead (used by tests). SIGTERM exits
    cleanly.
    """
    emit = log if log is not None else (lambda message: None)
    listener = socket.create_server((host, port), backlog=4, reuse_port=False)
    bound = Endpoint(host=host, port=listener.getsockname()[1])
    if on_bound is not None:
        on_bound(bound)
    emit(f"listening on {bound.address} "
         f"(protocol {REMOTE_PROTOCOL_VERSION}, "
         f"fingerprint {code_fingerprint()})")

    def terminate(signum, frame):  # pragma: no cover - signal path
        raise SystemExit(0)

    with contextlib.suppress(ValueError, OSError):
        signal.signal(signal.SIGTERM, terminate)
    try:
        while True:
            try:
                sock, addr = listener.accept()
            except OSError as exc:
                emit(f"accept failed: {exc}")
                continue
            conn = FramedConnection(sock)
            try:
                _serve_session(conn, f"{addr[0]}:{addr[1]}", emit)
            finally:
                conn.close()
            if once:
                return
    finally:
        with contextlib.suppress(OSError):
            listener.close()


def _serve_reporting_port(host: str, report_conn) -> None:
    """Subprocess body for :func:`start_endpoint_process`."""
    serve(
        host=host,
        port=0,
        on_bound=lambda endpoint: report_conn.send(endpoint.port),
    )


def start_endpoint_process(host: str = "127.0.0.1", ctx=None):
    """Spawn a local ``serve()`` subprocess on a free port (for tests).

    Returns ``(process, endpoint)`` once the listener is bound; the
    caller owns termination.
    """
    import multiprocessing

    if ctx is None:
        ctx = multiprocessing.get_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=_serve_reporting_port, args=(host, child_conn), daemon=True,
    )
    process.start()
    child_conn.close()
    if not parent_conn.poll(30.0):
        process.terminate()
        raise RemoteError("worker endpoint process never bound its port")
    port = parent_conn.recv()
    parent_conn.close()
    return process, Endpoint(host=host, port=port)
