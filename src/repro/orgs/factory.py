"""Build any evaluated memory organization by name.

The names match the paper's configuration labels:

=====================  ======================================================
name                   configuration
=====================  ======================================================
``baseline``           no stacked DRAM (the speedup denominator)
``cache``              Alloy Cache (Section II-A)
``tlm-static``         Two-Level Memory, random static placement
``tlm-dynamic``        TLM with swap-on-touch page migration
``tlm-freq``           TLM with epoch frequency-based placement (Section VI-D)
``tlm-oracle``         TLM with profiled placement (Section VI-D)
``doubleuse``          idealistic cache + extra capacity (Section II-D)
``cameo``              Co-Located LLT + LLP — the full proposal
``cameo-sam``          Co-Located LLT, serial access (no prediction)
``cameo-perfect``      Co-Located LLT + oracle predictor
``cameo-ideal-llt``    zero-cost LLT bound (Figure 9)
``cameo-embedded-llt`` LLT embedded in stacked DRAM (Figure 9)
``cameo-sram-llt``     the impractical SRAM LLT (Section IV-C-1)
``cameo-freq-hint``    extension: swap only profiled-hot pages (Section VI-D)
``cameo-assoc``        extension: set-associative congruence groups
=====================  ======================================================
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..config.system import SystemConfig
from ..core.llp import LastLocationPredictor, PerfectPredictor, SamPredictor
from ..core.extensions import FreqHintCameo, SetAssociativeCameo
from ..core.llt_designs import (
    CoLocatedLltCameo,
    EmbeddedLltCameo,
    IdealLltCameo,
    SramLltCameo,
)
from ..errors import ConfigurationError
from .alloy import AlloyCacheOrg
from .base import MemoryOrganization
from .baseline import NoStackedBaseline
from .doubleuse import DoubleUse
from .tlm import TlmStatic
from .tlm_dynamic import TlmDynamic
from .tlm_freq import TlmFreq
from .tlm_oracle import TlmOracle

_BUILDERS: Dict[str, Callable[..., MemoryOrganization]] = {
    "baseline": NoStackedBaseline,
    "cache": AlloyCacheOrg,
    "tlm-static": TlmStatic,
    "tlm-dynamic": TlmDynamic,
    "tlm-freq": TlmFreq,
    "tlm-oracle": TlmOracle,
    "doubleuse": DoubleUse,
    "cameo": lambda config, **kw: CoLocatedLltCameo(
        config, **{"predictor": LastLocationPredictor(), **kw}
    ),
    "cameo-sam": lambda config, **kw: CoLocatedLltCameo(
        config, **{"predictor": SamPredictor(), **kw}
    ),
    "cameo-perfect": lambda config, **kw: CoLocatedLltCameo(
        config, **{"predictor": PerfectPredictor(), **kw}
    ),
    "cameo-ideal-llt": IdealLltCameo,
    "cameo-embedded-llt": EmbeddedLltCameo,
    "cameo-sram-llt": SramLltCameo,
    # Extensions beyond the paper (see repro.core.extensions).
    "cameo-freq-hint": FreqHintCameo,
    "cameo-assoc": SetAssociativeCameo,
}


def organization_names() -> List[str]:
    """All buildable configuration names."""
    return sorted(_BUILDERS)


def build_organization(
    name: str, config: SystemConfig, **kwargs: object
) -> MemoryOrganization:
    """Instantiate the named organization against ``config``.

    Extra keyword arguments flow to the specific organization (e.g.
    ``migration_threshold`` for ``tlm-dynamic``, ``hot_vpages`` for
    ``tlm-oracle``).

    Raises:
        ConfigurationError: for an unknown name.
    """
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ConfigurationError(
            f"unknown organization {name!r}; choose from {organization_names()}"
        )
    return builder(config, **kwargs)
