"""Stacked DRAM as a hardware cache: the Alloy Cache (Qureshi & Loh 2012).

The paper's "Cache" configuration (Sections II-A, III-A). Alloy Cache is
a direct-mapped, line-granularity DRAM cache that streams Tag-And-Data
(TAD) units in one burst, and uses a PC-indexed Memory Access Predictor
(MAP-I) to decide whether to launch the off-chip access in parallel with
the cache probe. The stacked DRAM is *not* part of the address space, so
the OS sees only the off-chip capacity — the property CAMEO removes.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config.system import SystemConfig
from ..dram.device import DramDevice
from ..errors import ConfigurationError
from ..request import MemoryRequest
from .base import AccessResult, MemoryOrganization

#: A TAD: 64 bytes of data plus 8 bytes of tag, streamed as one burst.
ALLOY_TAD_BYTES = 72


class MapIPredictor:
    """MAP-I: per-core PC-indexed 3-bit saturating hit/miss predictor.

    Counter >= threshold predicts "hit" (probe the cache serially);
    below threshold predicts "miss" (fetch memory in parallel).
    """

    def __init__(self, entries: int = 256, threshold: int = 4, max_value: int = 7):
        if not 0 < threshold <= max_value:
            raise ConfigurationError("threshold must be within the counter range")
        if max_value > 255:
            raise ConfigurationError("counters are byte-wide columnar state")
        self.entries = entries
        self.threshold = threshold
        self.max_value = max_value
        self._tables: Dict[int, bytearray] = {}
        self.predictions = 0
        self.correct = 0

    def _table(self, context_id: int) -> bytearray:
        table = self._tables.get(context_id)
        if table is None:
            # Optimistic initial state: saturated counters predict hit.
            table = bytearray((self.max_value,)) * self.entries
            self._tables[context_id] = table
        return table

    def columnar_tables(self, n_contexts: int) -> List[bytearray]:
        """Per-context counter tables for the compiled engine (zero-copy)."""
        return [self._table(context) for context in range(n_contexts)]

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.entries

    def predict_hit(self, context_id: int, pc: int) -> bool:
        return self._table(context_id)[self._index(pc)] >= self.threshold

    def update(self, context_id: int, pc: int, was_hit: bool) -> None:
        table = self._table(context_id)
        idx = self._index(pc)
        predicted_hit = table[idx] >= self.threshold
        self.predictions += 1
        if predicted_hit == was_hit:
            self.correct += 1
        if was_hit:
            table[idx] = min(self.max_value, table[idx] + 1)
        else:
            table[idx] = max(0, table[idx] - 1)

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 0.0
        return self.correct / self.predictions


@dataclass
class AlloyStats:
    """Cache-specific counters."""

    hits: int = 0
    misses: int = 0
    fills: int = 0
    dirty_victim_writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if not total:
            return 0.0
        return self.hits / total


class AlloyCacheOrg(MemoryOrganization):
    """Direct-mapped DRAM cache in front of off-chip memory."""

    name = "cache"

    def __init__(self, config: SystemConfig, offchip_bytes: Optional[int] = None):
        super().__init__(config)
        self.stacked = DramDevice(
            config.stacked_timing, config.stacked_bytes, config.line_bytes
        )
        self.offchip = DramDevice(
            config.offchip_timing,
            offchip_bytes if offchip_bytes is not None else config.offchip_bytes,
            config.line_bytes,
        )
        self.num_sets = config.stacked_lines
        self._tags = array("q", (-1,)) * self.num_sets
        self._dirty = bytearray(self.num_sets)
        self.predictor = MapIPredictor()
        self.alloy_stats = AlloyStats()

    def columnar_state(self) -> Tuple[array, bytearray]:
        """(tags, dirty) columns shared zero-copy with the compiled engine."""
        return self._tags, self._dirty

    # -- Capacity: the cache contributes nothing to the address space. ----------

    @property
    def visible_pages(self) -> int:
        return self.offchip.capacity_bytes // self.config.page_bytes

    # -- Set arithmetic -----------------------------------------------------------

    def _set_index(self, line_addr: int) -> int:
        return line_addr % self.num_sets

    def cache_probe(self, line_addr: int) -> bool:
        """Presence check without timing (used by paging and tests)."""
        return self._tags[self._set_index(line_addr)] == line_addr

    # -- Demand path ------------------------------------------------------------------

    def access(self, now: float, request: MemoryRequest) -> AccessResult:
        if request.is_write:
            result = self._service_write(now, request)
        else:
            result = self._service_read(now, request)
        self.stats.note(request, result.serviced_by_stacked)
        return result

    def _service_read(self, now: float, request: MemoryRequest) -> AccessResult:
        line = request.line_addr
        set_idx = self._set_index(line)
        hit = self._tags[set_idx] == line
        predicted_hit = self.predictor.predict_hit(request.context_id, request.pc)

        probe = self.stacked.access(now, set_idx, ALLOY_TAD_BYTES)
        if hit:
            self.alloy_stats.hits += 1
            if not predicted_hit:
                # MAP-I guessed miss: the parallel fetch is squashed when
                # the TAD's tag matches (bandwidth-only waste).
                self.offchip.speculative_access(now, line, self.config.line_bytes)
            latency = probe.latency
        else:
            self.alloy_stats.misses += 1
            if predicted_hit:
                # Serial: memory access waits for the failed probe.
                mem = self.offchip.access_line(now + probe.latency, line)
                latency = probe.latency + mem.latency
            else:
                mem = self.offchip.access_line(now, line)
                latency = max(probe.latency, mem.latency)
            self._fill(now + latency, line, dirty=False)
        self.predictor.update(request.context_id, request.pc, hit)
        return AccessResult(latency=latency, serviced_by_stacked=hit)

    def _service_write(self, now: float, request: MemoryRequest) -> AccessResult:
        """L3 writebacks install into the cache (write-allocate).

        The probe (TAD read) is needed to detect a dirty victim before it
        is overwritten; the install write is posted so only its bandwidth
        matters (writebacks are not demand traffic).
        """
        line = request.line_addr
        set_idx = self._set_index(line)
        hit = self._tags[set_idx] == line
        probe = self.stacked.access(now, set_idx, ALLOY_TAD_BYTES)
        if hit:
            self.alloy_stats.hits += 1
        else:
            self.alloy_stats.misses += 1
        self._fill(now + probe.latency, line, dirty=True)
        return AccessResult(latency=probe.latency, serviced_by_stacked=hit)

    def _fill(self, time: float, line_addr: int, dirty: bool) -> None:
        """Install ``line_addr``; evicts (and if dirty, writes back) the victim.

        All device traffic is posted at ``time`` (the fill queues of a
        real cache); tag metadata updates immediately.
        """
        set_idx = self._set_index(line_addr)
        victim = self._tags[set_idx]
        victim_dirty = bool(self._dirty[set_idx])
        writeback = victim != -1 and victim != line_addr and victim_dirty

        # Declarative micro-ops (the engine's compiled posted heap can
        # carry these): the victim's data already streamed out with the
        # probe, so its writeback is a plain line write, then the TAD
        # install burst.
        if writeback:
            operation = (
                (self.offchip, victim, self.config.line_bytes, True),
                (self.stacked, set_idx, ALLOY_TAD_BYTES, True),
            )
        else:
            operation = ((self.stacked, set_idx, ALLOY_TAD_BYTES, True),)
        self.post(time, operation)
        if writeback:
            self.alloy_stats.dirty_victim_writebacks += 1
        if victim != line_addr:
            self._dirty[set_idx] = 0
        self._tags[set_idx] = line_addr
        if dirty:
            self._dirty[set_idx] = 1
        self.alloy_stats.fills += 1

    # -- Paging ---------------------------------------------------------------------------

    def page_fill(self, now: float, frame: int) -> None:
        self.offchip.stream(
            now, frame * self.config.lines_per_page, self.config.lines_per_page, True
        )

    def page_drain(self, now: float, frame: int) -> None:
        """Flush cached lines of the departing frame, then stream it out."""
        for line in self._frame_lines(frame):
            set_idx = self._set_index(line)
            if self._tags[set_idx] == line:
                if self._dirty[set_idx]:
                    self.offchip.access_line(now, line, is_write=True)
                self._tags[set_idx] = -1
                self._dirty[set_idx] = 0
        self.offchip.stream(
            now, frame * self.config.lines_per_page, self.config.lines_per_page, False
        )

    def devices(self) -> Dict[str, DramDevice]:
        return {"stacked": self.stacked, "offchip": self.offchip}
