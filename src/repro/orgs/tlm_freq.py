"""TLM-Freq: epoch-based frequency-driven page placement (Section VI-D).

Dedicated hardware counts per-page accesses; periodically the OS swaps
the hottest off-chip pages with the coldest stacked pages. Matching the
paper's idealisation, TLB-shootdown and software sorting overheads are
ignored — only the page-transfer bandwidth is modelled.

The counters live in a dense per-frame column (shared zero-copy with
the compiled engine); candidate ordering breaks count ties by ascending
frame index, which is deterministic and identical in both backends.
"""

from __future__ import annotations

from array import array
from typing import Tuple

from ..config.system import SystemConfig
from ..errors import ConfigurationError
from ..request import MemoryRequest
from ..units import line_to_page
from .tlm import TlmBase


class TlmFreq(TlmBase):
    """Hottest-page promotion every ``epoch_accesses`` memory requests."""

    name = "tlm-freq"

    def __init__(
        self,
        config: SystemConfig,
        epoch_accesses: int = 2000,
        max_migrations_per_epoch: int = 64,
        hysteresis: float = 2.0,
        min_promote_count: int = 24,
    ):
        super().__init__(config)
        if epoch_accesses <= 0 or max_migrations_per_epoch <= 0:
            raise ConfigurationError("epoch length and migration budget must be positive")
        if hysteresis < 1.0:
            raise ConfigurationError("hysteresis below 1 would thrash borderline pages")
        self.epoch_accesses = epoch_accesses
        self.max_migrations_per_epoch = max_migrations_per_epoch
        self.hysteresis = hysteresis
        self.min_promote_count = min_promote_count
        self._counts = array("q", bytes(8 * config.total_pages))
        self._accesses_in_epoch = 0

    def columnar_state(self) -> Tuple[array]:
        """(counts,) column for the compiled engine (zero-copy)."""
        return (self._counts,)

    def _after_access(self, time: float, request: MemoryRequest) -> None:
        frame = line_to_page(request.line_addr, self.config.lines_per_page)
        self._counts[frame] += 1
        self._accesses_in_epoch += 1
        if self._accesses_in_epoch >= self.epoch_accesses:
            self.service_epoch(time)

    def service_epoch(self, time: float) -> None:
        """Rebalance at an epoch boundary, then decay the counters.

        Also the compiled engine's bail target: the kernel counts
        accesses into the shared columns and bails out at the epoch
        boundary so this exact code performs the placement decision.
        """
        self._rebalance(time)
        self._accesses_in_epoch = 0
        # Exponential decay rather than a hard clear: genuinely hot
        # pages accumulate history across epochs, so a single burst
        # of accesses to a cold page never outranks them.
        counts = self._counts
        for frame, count in enumerate(counts):
            if count:
                counts[frame] = count >> 1

    def _rebalance(self, time: float) -> None:
        """Swap hot off-chip pages with cold stacked pages."""
        boundary = self.config.stacked_pages
        counts = self._counts
        hot_offchip = sorted(
            (
                f for f in range(boundary, len(counts))
                if counts[f] >= self.min_promote_count
            ),
            key=counts.__getitem__,
            reverse=True,
        )[: self.max_migrations_per_epoch]
        if not hot_offchip:
            return
        # Cold stacked frames: untouched ones first, then ascending count.
        cold_stacked = [f for f in range(boundary) if not counts[f]]
        cold_stacked.extend(
            sorted(
                (f for f in range(boundary) if counts[f]),
                key=counts.__getitem__,
            )
        )

        for offchip_frame, stacked_frame in zip(hot_offchip, cold_stacked):
            hot_count = counts[offchip_frame]
            cold_count = counts[stacked_frame]
            # Hysteresis: a page must be clearly hotter than the victim,
            # else borderline pairs ping-pong every epoch and the 16 KB
            # swap traffic eats the benefit.
            if hot_count <= self.hysteresis * cold_count:
                break  # Remaining pairs are even colder; stop migrating.
            self.migrate_swap(time, offchip_frame, stacked_frame)
            counts[offchip_frame] = cold_count
            counts[stacked_frame] = hot_count
