"""The no-stacked-DRAM baseline every speedup is measured against.

Section III-C: "We report speedup of a given configuration as the ratio
of the execution time of the baseline (with no stacked DRAM) to the
execution time of that configuration." The baseline machine has only the
12 GB off-chip DRAM; capacity-limited workloads page-fault heavily here.
"""

from __future__ import annotations

from typing import Dict

from ..config.system import SystemConfig
from ..dram.device import DramDevice
from ..request import MemoryRequest
from .base import AccessResult, MemoryOrganization


class NoStackedBaseline(MemoryOrganization):
    """Off-chip DRAM only."""

    name = "baseline"

    def __init__(self, config: SystemConfig):
        super().__init__(config)
        self.offchip = DramDevice(
            config.offchip_timing, config.offchip_bytes, config.line_bytes
        )

    @property
    def visible_pages(self) -> int:
        return self.config.offchip_pages

    def access(self, now: float, request: MemoryRequest) -> AccessResult:
        res = self.offchip.access_line(now, request.line_addr, request.is_write)
        self.stats.note(request, serviced_by_stacked=False)
        return AccessResult(latency=res.latency, serviced_by_stacked=False)

    def page_fill(self, now: float, frame: int) -> None:
        self.offchip.stream(
            now, frame * self.config.lines_per_page, self.config.lines_per_page, True
        )

    def page_drain(self, now: float, frame: int) -> None:
        self.offchip.stream(
            now, frame * self.config.lines_per_page, self.config.lines_per_page, False
        )

    def devices(self) -> Dict[str, DramDevice]:
        return {"offchip": self.offchip}
