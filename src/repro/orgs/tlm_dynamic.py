"""TLM-Dynamic: OS page migration on touch (Section II-C).

"TLM-Dynamic retains recently accessed pages in stacked memory. It does
so by swapping a page that gets accessed in off-chip memory with a
victim page in stacked memory." The victim is picked by a second-chance
(clock) sweep over the stacked frames, approximating LRU the way a real
OS would. A configurable touch threshold (default 1 = the paper's
swap-on-access behaviour) is exposed for the ablation bench.
"""

from __future__ import annotations

from array import array
from typing import Tuple

from ..config.system import SystemConfig
from ..errors import ConfigurationError
from ..request import MemoryRequest
from ..units import line_to_page
from .tlm import TlmBase


class TlmDynamic(TlmBase):
    """Swap-on-touch page migration between off-chip and stacked regions."""

    name = "tlm-dynamic"

    def __init__(self, config: SystemConfig, migration_threshold: int = 1):
        super().__init__(config)
        if migration_threshold < 1:
            raise ConfigurationError("migration threshold must be at least 1")
        self.migration_threshold = migration_threshold
        # Dense per-frame columns (shared zero-copy with the compiled
        # engine): a touch counter per physical frame — only off-chip
        # frames ever count, a migrated frame's counter resets to 0 —
        # and the second-chance reference bits over the stacked region.
        self._touch_counts = array("q", bytes(8 * config.total_pages))
        self._referenced = bytearray(config.stacked_pages)
        self._clock_hand = 0

    def columnar_state(self) -> Tuple[bytearray, array]:
        """(referenced, touch_counts) columns for the compiled engine."""
        return self._referenced, self._touch_counts

    # -- Victim selection over the stacked region -----------------------------------

    def _select_stacked_victim(self) -> int:
        """Second-chance sweep over stacked frames."""
        n = self.config.stacked_pages
        for _ in range(2 * n):
            frame = self._clock_hand
            self._clock_hand = (self._clock_hand + 1) % n
            if self._referenced[frame]:
                self._referenced[frame] = 0
            else:
                return frame
        return self._clock_hand

    # -- Migration trigger ---------------------------------------------------------------

    def _after_access(self, time: float, request: MemoryRequest) -> None:
        frame = line_to_page(request.line_addr, self.config.lines_per_page)
        if self.is_stacked_frame(frame):
            self._referenced[frame] = 1
            return
        touches = self._touch_counts[frame] + 1
        if touches < self.migration_threshold:
            self._touch_counts[frame] = touches
            return
        self._touch_counts[frame] = 0
        victim = self._select_stacked_victim()
        self.migrate_swap(time, offchip_frame=frame, stacked_frame=victim)
        self._referenced[victim] = 1
