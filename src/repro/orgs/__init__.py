"""All evaluated memory organizations and their factory."""

from .alloy import ALLOY_TAD_BYTES, AlloyCacheOrg, AlloyStats, MapIPredictor
from .base import AccessResult, MemoryOrganization, OrgStats
from .baseline import NoStackedBaseline
from .doubleuse import DoubleUse
from .factory import build_organization, organization_names
from .tlm import TlmBase, TlmStatic
from .tlm_dynamic import TlmDynamic
from .tlm_freq import TlmFreq
from .tlm_oracle import TlmOracle

__all__ = [
    "ALLOY_TAD_BYTES",
    "AccessResult",
    "AlloyCacheOrg",
    "AlloyStats",
    "DoubleUse",
    "MapIPredictor",
    "MemoryOrganization",
    "NoStackedBaseline",
    "OrgStats",
    "TlmBase",
    "TlmDynamic",
    "TlmFreq",
    "TlmOracle",
    "TlmStatic",
    "build_organization",
    "organization_names",
]
