"""DoubleUse: the idealistic upper bound (Section II-D).

"an 'idealistic' configuration, called DoubleUse, which not only uses
stacked memory as a hardware cache but also increases the capacity of
off-chip memory by the size of stacked memory." It is an Alloy Cache
whose off-chip memory is magically as large as stacked + off-chip
combined — physically unrealisable, but the bound CAMEO is measured
against (CAMEO lands within ~4% of it).
"""

from __future__ import annotations

from ..config.system import SystemConfig
from .alloy import AlloyCacheOrg


class DoubleUse(AlloyCacheOrg):
    """Alloy Cache plus stacked-sized extra main-memory capacity."""

    name = "doubleuse"

    def __init__(self, config: SystemConfig):
        super().__init__(
            config, offchip_bytes=config.offchip_bytes + config.stacked_bytes
        )
