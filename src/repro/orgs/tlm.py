"""Two-Level Memory: stacked DRAM as OS-visible address space (Section II-B).

The physical page space is ``[0, stacked_pages)`` in stacked DRAM and
``[stacked_pages, total_pages)`` in off-chip DRAM. All TLM variants share
this addressing and paging logic; they differ only in *placement policy*:

* :class:`TlmStatic` — no migration; the memory manager's seeded-random
  allocation is exactly the paper's "randomly maps the pages".
* :class:`TlmDynamic` (own module) — swap-on-touch page migration.
* :class:`TlmFreq` / :class:`TlmOracle` (own modules) — frequency-based
  and profiled placement.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..config.system import SystemConfig
from ..dram.device import DramDevice
from ..request import MemoryRequest
from .base import AccessResult, MemoryOrganization


class TlmBase(MemoryOrganization):
    """Shared TLM machinery: region-split addressing and paging traffic."""

    name = "tlm-base"

    def __init__(self, config: SystemConfig):
        super().__init__(config)
        self.stacked = DramDevice(
            config.stacked_timing, config.stacked_bytes, config.line_bytes
        )
        self.offchip = DramDevice(
            config.offchip_timing, config.offchip_bytes, config.line_bytes
        )

    @property
    def visible_pages(self) -> int:
        return self.config.total_pages

    @property
    def stacked_visible_pages(self) -> int:
        return self.config.stacked_pages

    # -- Region arithmetic ----------------------------------------------------------

    def is_stacked_frame(self, frame: int) -> bool:
        return frame < self.config.stacked_pages

    def _route(self, line_addr: int) -> Tuple[DramDevice, int]:
        """Map a physical line to (device, device-local line)."""
        stacked_lines = self.config.stacked_lines
        if line_addr < stacked_lines:
            return self.stacked, line_addr
        return self.offchip, line_addr - stacked_lines

    # -- Demand path --------------------------------------------------------------------

    def access(self, now: float, request: MemoryRequest) -> AccessResult:
        device, local = self._route(request.line_addr)
        res = device.access_line(now, local, request.is_write)
        in_stacked = device is self.stacked
        self.stats.note(request, in_stacked)
        self._after_access(now + res.latency, request)
        return AccessResult(latency=res.latency, serviced_by_stacked=in_stacked)

    def _after_access(self, time: float, request: MemoryRequest) -> None:
        """Hook for migrating variants; static TLM does nothing."""

    # -- Paging -----------------------------------------------------------------------------

    def _stream_frame(self, now: float, frame: int, is_write: bool) -> float:
        device, local = self._route(frame * self.config.lines_per_page)
        return device.stream(now, local, self.config.lines_per_page, is_write)

    def page_fill(self, now: float, frame: int) -> None:
        self._stream_frame(now, frame, is_write=True)

    def page_drain(self, now: float, frame: int) -> None:
        self._stream_frame(now, frame, is_write=False)

    # -- Migration primitive shared by Dynamic and Freq --------------------------------------

    def migrate_swap(self, now: float, offchip_frame: int, stacked_frame: int) -> None:
        """Swap a page between the regions: 4 KB read + write on each device.

        This is the paper's "total memory activity of 16KB" per migration
        (Section II-C). The page table is updated so future translations
        land on the new frames.
        """
        per_page = self.config.lines_per_page
        stacked_local = stacked_frame * per_page
        offchip_local = offchip_frame * per_page - self.config.stacked_lines

        # Declarative stream micro-ops (read both pages, write both back)
        # so the compiled engine can carry the migration in its posted heap.
        line_bytes = self.config.line_bytes
        self.post(now, (
            (self.stacked, stacked_local, line_bytes, False, per_page),
            (self.offchip, offchip_local, line_bytes, False, per_page),
            (self.stacked, stacked_local, line_bytes, True, per_page),
            (self.offchip, offchip_local, line_bytes, True, per_page),
        ))
        if self.memory_manager is not None:
            self.memory_manager.swap_frames(offchip_frame, stacked_frame)
        self.stats.page_migrations += 1

    def devices(self) -> Dict[str, DramDevice]:
        return {"stacked": self.stacked, "offchip": self.offchip}


class TlmStatic(TlmBase):
    """TLM with no migration (Section II-B's TLM-Static)."""

    name = "tlm-static"
