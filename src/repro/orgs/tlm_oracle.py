"""TLM-Oracle: profiled page placement with no migration (Section VI-D).

"If the OS has oracular knowledge about page access frequencies, it can
place the frequently used pages in stacked memory, and thus avoid the
overheads of dynamic page migration." The oracle's knowledge comes from
a profiling pre-pass over the same trace (see
:func:`repro.experiments.common.profile_hot_vpages`); the organization
then steers those virtual pages to stacked frames at first touch via the
memory manager's placement hook.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, TYPE_CHECKING

from ..config.system import SystemConfig
from ..vm.page_table import VirtualPage
from .tlm import TlmBase

if TYPE_CHECKING:
    from ..vm.memory_manager import MemoryManager


class TlmOracle(TlmBase):
    """Static placement from a profiled hot-page set."""

    name = "tlm-oracle"

    def __init__(self, config: SystemConfig, hot_vpages: FrozenSet[VirtualPage] = frozenset()):
        super().__init__(config)
        self.hot_vpages = frozenset(hot_vpages)

    def bind_memory_manager(self, memory_manager: "MemoryManager") -> None:
        super().bind_memory_manager(memory_manager)
        memory_manager.frame_preference = self._prefer

    def _prefer(self, vpage: VirtualPage) -> Optional[str]:
        return "stacked" if vpage in self.hot_vpages else "offchip"
