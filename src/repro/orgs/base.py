"""Re-export of the organization interface.

The canonical definitions live in :mod:`repro.organization` (a top-level
module with no package-level dependencies) so that the CAMEO core can
implement the interface without importing the baseline organizations.
"""

from ..organization import AccessResult, MemoryOrganization, OrgStats

__all__ = ["AccessResult", "MemoryOrganization", "OrgStats"]
