"""Power and energy-delay-product models (Section VI-C / Figure 14)."""

from .power import (
    DRAM_STATIC_FRACTION,
    STACKED_ENERGY_PER_BYTE,
    PowerBreakdown,
    PowerModel,
)

__all__ = [
    "DRAM_STATIC_FRACTION",
    "PowerBreakdown",
    "PowerModel",
    "STACKED_ENERGY_PER_BYTE",
]
