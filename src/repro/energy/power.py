"""System power and energy-delay-product model (Section VI-C).

The paper's budget: "For Capacity-Limited workloads, we assume that the
processor consumes 60% of the power and the rest is split equally
between the storage and memory. For Latency-Limited workloads, we assume
processor consumes 70% of the power and memory consumes 30%."

Per-component scaling, normalised to the baseline (no stacked DRAM):

* processor power is constant;
* each DRAM's power is a static part (refresh/background; present
  whenever the device exists) plus a dynamic part proportional to bytes
  transferred relative to the baseline's off-chip traffic — stacked DRAM
  moves bytes at lower energy (TSVs instead of board traces);
* storage power is static plus dynamic proportional to storage bytes.

Energy = power x time, and EDP = energy x time, both reported relative
to the baseline as in Figure 14.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..sim.results import RunResult
from ..workloads.spec import CAPACITY, LATENCY

#: Fraction of DRAM power that is static (background/refresh).
DRAM_STATIC_FRACTION = 0.4
#: Energy per stacked byte relative to an off-chip byte.
STACKED_ENERGY_PER_BYTE = 0.5
#: Static power of the added stacked device, as a fraction of the
#: baseline memory power budget.
STACKED_STATIC_FRACTION = 0.25
#: Fraction of storage power that is static.
STORAGE_STATIC_FRACTION = 0.3


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-component power, normalised to total baseline power = 1.0."""

    processor: float
    offchip: float
    stacked: float
    storage: float

    @property
    def total(self) -> float:
        return self.processor + self.offchip + self.stacked + self.storage


class PowerModel:
    """Category-specific power budget and scaling rules."""

    def __init__(self, category: str):
        if category == CAPACITY:
            self.processor_fraction = 0.60
            self.memory_fraction = 0.20
            self.storage_fraction = 0.20
        elif category == LATENCY:
            self.processor_fraction = 0.70
            self.memory_fraction = 0.30
            self.storage_fraction = 0.0
        else:
            raise ConfigurationError(f"unknown workload category {category!r}")

    # -- Power ------------------------------------------------------------------

    def breakdown(self, result: RunResult, baseline: RunResult) -> PowerBreakdown:
        """Normalised power of ``result`` against its baseline run.

        Power compares like with like per unit time, so each dynamic term
        is a *bandwidth* ratio: bytes/cycle relative to the baseline.
        """
        base_offchip_bw = baseline.dram_bytes.get("offchip", 0) / baseline.total_cycles
        if base_offchip_bw <= 0:
            raise ConfigurationError("baseline run moved no off-chip bytes")

        mem = self.memory_fraction
        offchip_bw = result.dram_bytes.get("offchip", 0) / result.total_cycles
        offchip = mem * (
            DRAM_STATIC_FRACTION
            + (1 - DRAM_STATIC_FRACTION) * offchip_bw / base_offchip_bw
        )

        stacked_bytes = result.dram_bytes.get("stacked", 0)
        if stacked_bytes or "stacked" in result.dram_bytes:
            stacked_bw = stacked_bytes / result.total_cycles
            stacked = mem * (
                STACKED_STATIC_FRACTION
                + (1 - DRAM_STATIC_FRACTION)
                * STACKED_ENERGY_PER_BYTE
                * stacked_bw
                / base_offchip_bw
            )
        else:
            stacked = 0.0

        if self.storage_fraction:
            base_storage_bw = baseline.storage_bytes / baseline.total_cycles
            storage_bw = result.storage_bytes / result.total_cycles
            dynamic_ratio = storage_bw / base_storage_bw if base_storage_bw > 0 else 0.0
            storage = self.storage_fraction * (
                STORAGE_STATIC_FRACTION + (1 - STORAGE_STATIC_FRACTION) * dynamic_ratio
            )
        else:
            storage = 0.0

        return PowerBreakdown(
            processor=self.processor_fraction,
            offchip=offchip,
            stacked=stacked,
            storage=storage,
        )

    def normalized_power(self, result: RunResult, baseline: RunResult) -> float:
        """Total power of ``result`` / total power of the baseline."""
        return self.breakdown(result, baseline).total / self.breakdown(
            baseline, baseline
        ).total

    # -- Energy-delay product ----------------------------------------------------------

    def normalized_edp(self, result: RunResult, baseline: RunResult) -> float:
        """EDP relative to baseline: (P x T^2) ratio. Below 1.0 is better."""
        power_ratio = self.normalized_power(result, baseline)
        time_ratio = result.total_cycles / baseline.total_cycles
        return power_ratio * time_ratio * time_ratio
