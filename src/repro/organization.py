"""The contract every stacked-DRAM organization implements.

The simulation engine is organization-agnostic: it translates virtual
pages to frames, then hands each miss to a :class:`MemoryOrganization`
and charges the returned latency. Organizations own their DRAM devices
(so all bandwidth accounting lives in the device stats) and declare how
many pages the OS may allocate (the crux of the cache-vs-memory
trade-off the paper studies).
"""

from __future__ import annotations

import abc
import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from .config.system import SystemConfig
from .dram.device import DramDevice
from .errors import FaultError
from .request import MemoryRequest

if TYPE_CHECKING:
    from .faults.injector import FaultInjector
    from .vm.memory_manager import MemoryManager

#: One posted device operation in declarative form. Two shapes exist:
#:
#: * ``(device, line_addr, n_bytes, is_write)`` — a single access,
#:   executed as ``device.access(time, line_addr, n_bytes, is_write)``.
#: * ``(device, first_line, n_bytes, is_write, n_lines)`` — a page
#:   stream of ``n_lines`` whole lines, executed as
#:   ``device.stream(time, first_line, n_lines, is_write)`` (``n_bytes``
#:   documents the per-line size and is always ``line_bytes``).
#:
#: A posted entry is either a callable (legacy form, still supported) or
#: a sequence of these micro-ops, executed in order. The declarative
#: forms are what the vectorized engine can move in and out of its
#: compiled posted-operation heap.
PostedOp = Tuple[DramDevice, int, int, bool]
PostedStreamOp = Tuple[DramDevice, int, int, bool, int]
PostedOperation = Callable[[float], None]


def _execute_posted_ops(time: float, operation) -> None:
    for op in operation:
        if len(op) == 5:
            device, first_line, _n_bytes, is_write, n_lines = op
            device.stream(time, first_line, n_lines, is_write)
        else:
            device, line_addr, n_bytes, is_write = op
            device.access(time, line_addr, n_bytes, is_write)


class AccessResult:
    """Timing outcome of one memory request.

    A ``__slots__`` record rather than a dataclass: one is allocated per
    simulated miss, which puts its constructor on the hot path.
    """

    __slots__ = ("latency", "serviced_by_stacked")

    def __init__(self, latency: float, serviced_by_stacked: bool = False):
        self.latency = latency
        #: True when the demand data came from stacked DRAM.
        self.serviced_by_stacked = serviced_by_stacked

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AccessResult(latency={self.latency}, "
                f"serviced_by_stacked={self.serviced_by_stacked})")


@dataclass
class OrgStats:
    """Organization-level counters common to all designs.

    Demand requests and writebacks are counted separately: the paper's
    hit-rate metric (:attr:`stacked_service_fraction`) is defined over
    demand requests only, while L3 dirty-victim writebacks
    (``request.is_writeback``) still move bytes and are tallied in
    :attr:`writeback_accesses`.
    """

    accesses: int = 0
    reads: int = 0
    writes: int = 0
    stacked_services: int = 0
    offchip_services: int = 0
    line_swaps: int = 0
    page_migrations: int = 0
    #: L3 dirty-victim writebacks (and OS shootdown flushes) reaching
    #: memory; excluded from every demand counter above.
    writeback_accesses: int = 0
    writeback_stacked_services: int = 0

    @property
    def stacked_service_fraction(self) -> float:
        """Fraction of demand requests serviced by stacked DRAM."""
        if not self.accesses:
            return 0.0
        return self.stacked_services / self.accesses

    def note(self, request: MemoryRequest, serviced_by_stacked: bool) -> None:
        if request.is_writeback:
            self.writeback_accesses += 1
            if serviced_by_stacked:
                self.writeback_stacked_services += 1
            return
        self.accesses += 1
        if request.is_write:
            self.writes += 1
        else:
            self.reads += 1
        if serviced_by_stacked:
            self.stacked_services += 1
        else:
            self.offchip_services += 1


class MemoryOrganization(abc.ABC):
    """Base class: owns devices, services misses, reports capacity."""

    #: Registry key and display name; subclasses override.
    name: str = "base"

    def __init__(self, config: SystemConfig):
        self.config = config
        self.stats = OrgStats()
        self.memory_manager: Optional["MemoryManager"] = None
        self.fault_injector: Optional["FaultInjector"] = None
        # Posted (off-critical-path) device operations — swap writes, cache
        # fills, victim writebacks, migrations — keyed by the simulated
        # time they become ready. The engine holds a reference to this
        # list across the whole run (see posted_queue), so it is created
        # once here and never reassigned; ``_posted`` is a read-only
        # property and any subclass that tries ``self._posted = []``
        # fails loudly instead of silently desyncing writeback flushing.
        self.__posted: List[Tuple[float, int, object]] = []
        self._post_seq = 0

    # -- Posted operations ---------------------------------------------------------
    #
    # Device timing uses monotonic per-channel/bank horizons, which is only
    # accurate when operations are issued in non-decreasing time order. An
    # operation that *completes* in the future (a swap write scheduled for
    # when its demand read returns) therefore must not touch the devices
    # immediately; it is queued here and replayed once simulated time
    # catches up, i.e. at the next demand access.

    @property
    def _posted(self) -> List[Tuple[float, int, object]]:
        return self.__posted

    def posted_queue(self) -> List[Tuple[float, int, object]]:
        """The posted-operation heap (stable identity for the whole run).

        This is the engine's contract: the same list object is returned
        for the organization's entire lifetime, so the hot loop may hold
        it once and use emptiness checks without re-fetching. Entries are
        ``(ready_time, seq, operation)`` where ``operation`` is a
        callable or a sequence of :data:`PostedOp` micro-ops.
        """
        return self.__posted

    def post(self, time: float, operation) -> None:
        """Schedule ``operation`` to run once ``now`` reaches ``time``.

        ``operation`` is either a callable invoked as ``operation(time)``
        or a sequence of ``(device, line_addr, n_bytes, is_write)``
        micro-ops executed in order (the declarative form that the
        compiled engine backend can interpret without Python).
        """
        self._post_seq += 1
        heapq.heappush(self.__posted, (time, self._post_seq, operation))

    def flush_posted(self, now: float) -> None:
        """Execute every posted operation due at or before ``now``."""
        posted = self.__posted
        while posted and posted[0][0] <= now:
            time, _, operation = heapq.heappop(posted)
            self._run_posted(time, operation)

    def drain_posted(self) -> None:
        """Run out the posted queue (end of run, for complete accounting)."""
        posted = self.__posted
        while posted:
            time, _, operation = heapq.heappop(posted)
            self._run_posted(time, operation)

    def _run_posted(self, time: float, operation) -> None:
        """Run one posted operation, absorbing faults when injection is on.

        Posted traffic (swap writebacks, fills, migrations) is off the
        critical path; a fault there aborts the rest of that operation —
        the damage is discovered and recovered on the demand path — so
        fault injection never crashes the run from inside the queue.
        """
        if self.fault_injector is None:
            if callable(operation):
                operation(time)
            else:
                _execute_posted_ops(time, operation)
            return
        try:
            if callable(operation):
                operation(time)
            else:
                _execute_posted_ops(time, operation)
        except FaultError:
            self.fault_injector.stats.posted_aborts += 1

    # -- Capacity ---------------------------------------------------------------

    @property
    @abc.abstractmethod
    def visible_pages(self) -> int:
        """DRAM pages the OS may allocate under this organization."""

    @property
    def stacked_visible_pages(self) -> int:
        """Of :attr:`visible_pages`, how many live in stacked DRAM.

        Zero for cache organizations (the stacked DRAM is not part of the
        address space) and for the no-stacked baseline.
        """
        return 0

    # -- The demand path -----------------------------------------------------------

    @abc.abstractmethod
    def access(self, now: float, request: MemoryRequest) -> AccessResult:
        """Service one miss arriving at time ``now``; returns its latency."""

    # -- The paging path -------------------------------------------------------------

    @abc.abstractmethod
    def page_fill(self, now: float, frame: int) -> None:
        """A page just arrived from storage into ``frame``; charge DRAM writes."""

    @abc.abstractmethod
    def page_drain(self, now: float, frame: int) -> None:
        """``frame`` is being reclaimed; charge the DRAM reads to extract it."""

    # -- Wiring and reporting -----------------------------------------------------------

    def bind_memory_manager(self, memory_manager: "MemoryManager") -> None:
        """Give migrating organizations access to the page table."""
        self.memory_manager = memory_manager

    def attach_fault_injector(self, injector: "FaultInjector") -> None:
        """Share one fault injector with this organization and its devices.

        Subclasses with recovery machinery of their own (CAMEO's
        decommission/audit logic) extend this. Attaching an injector with
        all-zero rates is guaranteed to leave results bit-for-bit
        unchanged.
        """
        self.fault_injector = injector
        for device in self.devices().values():
            device.fault_injector = injector

    @abc.abstractmethod
    def devices(self) -> Dict[str, DramDevice]:
        """Named DRAM devices, for bandwidth reporting ("stacked"/"offchip")."""

    def bytes_by_device(self) -> Dict[str, int]:
        """Bytes transferred per device since the run started (Table IV)."""
        return {name: dev.stats.bytes_transferred for name, dev in self.devices().items()}

    # -- Helpers shared by subclasses --------------------------------------------------

    def _frame_lines(self, frame: int) -> range:
        """The physical line addresses composing ``frame``."""
        per_page = self.config.lines_per_page
        start = frame * per_page
        return range(start, start + per_page)
