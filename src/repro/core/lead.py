"""LEAD (Location Entry And Data) layout arithmetic (Section IV-D).

The Co-Located LLT appends the location-table entry to each stacked data
line, forming a 66-byte LEAD. A 2 KB stacked row then holds 31 LEADs
instead of 32 plain lines (one line's worth of space per row pays for the
31 location entries), and each LEAD is fetched with a burst of five
16-byte beats (80 bytes on the bus, 66 useful).

The visible->device address shift — visible stacked line X lives at
device line ``X + X // 31`` so that device slot 31 of every row is
skipped — is the paper's footnote-5 formula. The CAMEO controller charges
stacked traffic at LEAD granularity using :data:`LEAD_BYTES`; this module
additionally provides the exact remap for layout-level tests and tools.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import paper
from ..errors import ConfigurationError

#: Bytes of one LEAD: 64 data + 2 location metadata.
LEAD_BYTES = paper.PAPER_LEAD_BYTES
#: Useful LEADs per stacked row.
LEADS_PER_ROW = paper.PAPER_LEADS_PER_ROW
#: Line slots per stacked row.
LINES_PER_ROW = paper.PAPER_LINES_PER_ROW


@dataclass(frozen=True)
class LeadLayout:
    """Layout of LEADs over a stacked DRAM of ``device_lines`` line slots."""

    device_lines: int
    leads_per_row: int = LEADS_PER_ROW
    lines_per_row: int = LINES_PER_ROW

    def __post_init__(self) -> None:
        if self.device_lines % self.lines_per_row:
            raise ConfigurationError("device capacity must be a whole number of rows")
        if not 0 < self.leads_per_row < self.lines_per_row:
            raise ConfigurationError("each row must sacrifice at least one line slot")

    @property
    def num_rows(self) -> int:
        return self.device_lines // self.lines_per_row

    @property
    def visible_lines(self) -> int:
        """Data lines the device can hold once each row donates a slot."""
        return self.num_rows * self.leads_per_row

    @property
    def capacity_fraction(self) -> float:
        """31/32 = 97% for the paper layout."""
        return self.leads_per_row / self.lines_per_row

    def device_line(self, visible_line: int) -> int:
        """Map a visible stacked line to its device line slot.

        Footnote 5: ``X + X/31`` skips the reserved last slot of each row.
        """
        if not 0 <= visible_line < self.visible_lines:
            raise ConfigurationError(
                f"visible line {visible_line} outside {self.visible_lines}-line space"
            )
        return visible_line + visible_line // self.leads_per_row

    def visible_line(self, device_line: int) -> int:
        """Inverse of :meth:`device_line`.

        Raises:
            ConfigurationError: if ``device_line`` is a reserved slot.
        """
        if not 0 <= device_line < self.device_lines:
            raise ConfigurationError(f"device line {device_line} out of range")
        row, slot = divmod(device_line, self.lines_per_row)
        if slot >= self.leads_per_row:
            raise ConfigurationError(f"device line {device_line} is a reserved LLT slot")
        return row * self.leads_per_row + slot

    def is_reserved_slot(self, device_line: int) -> bool:
        """True for the per-row slots holding location entries."""
        return device_line % self.lines_per_row >= self.leads_per_row
