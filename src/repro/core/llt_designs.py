"""The LLT storage designs (Sections IV-C through IV-E).

* :class:`IdealLltCameo` — zero-cost LLT (theoretical bound; Figure 8's
  "Ideal-LLT"). The controller knows every line's location instantly.
* :class:`EmbeddedLltCameo` — the LLT lives in a reserved region of
  stacked DRAM; every request first reads its LLT entry, then the data
  (the "indirection latency" design of Figure 6b).
* :class:`CoLocatedLltCameo` — the LLT entry rides with the stacked data
  line as a 66-byte LEAD; stacked-resident requests need one access, and
  an optional :class:`~repro.core.llp.LocationPredictor` parallelises the
  off-chip case (Section V). This is the full CAMEO design.
* :class:`SramLltCameo` — the Section IV-C-1 strawman: instant location
  knowledge after a fixed SRAM (L3-sized) lookup, at an impossible
  64 MB SRAM cost. Kept for the design-space comparison.
"""

from __future__ import annotations

from ..config.system import SystemConfig
from ..core.lead import LEAD_BYTES, LINES_PER_ROW
from ..organization import AccessResult
from ..request import MemoryRequest
from .cameo import CameoController
from .llp import LocationPredictor


class IdealLltCameo(CameoController):
    """CAMEO with a free, instant LLT: the performance upper bound."""

    name = "cameo-ideal-llt"

    #: Fixed lookup latency before any data access (0 = ideal). The
    #: SRAM-LLT subclass charges an L3-like lookup here.
    LOOKUP_CYCLES = 0.0

    @property
    def reserved_pages(self) -> int:
        return 0  # Idealized: the table costs nothing, stores nowhere.

    def _service_read(self, now, request, group, requested_slot, actual_slot):
        start = now + self.LOOKUP_CYCLES
        if actual_slot == 0:
            res = self.stacked.access_line(start, self._stacked_device_line(group))
            return AccessResult(
                latency=self.LOOKUP_CYCLES + res.latency, serviced_by_stacked=True
            )
        res = self.offchip.access_line(
            start, self._offchip_device_line(group, actual_slot)
        )
        latency = self.LOOKUP_CYCLES + res.latency
        # Victim must still be read out of stacked before being displaced.
        self._perform_swap(
            now + latency, group, requested_slot, actual_slot, victim_prefetched=False
        )
        return AccessResult(latency=latency, serviced_by_stacked=False)

    def _service_write_in_place(self, now, group, actual_slot):
        if actual_slot == 0:
            res = self.stacked.access(
                now, self._stacked_device_line(group), self.config.line_bytes, True
            )
            return AccessResult(latency=res.latency, serviced_by_stacked=True)
        res = self.offchip.access_line(
            now, self._offchip_device_line(group, actual_slot), is_write=True
        )
        return AccessResult(latency=res.latency, serviced_by_stacked=False)

    def _service_write_swap(self, now, request, group, requested_slot, actual_slot):
        stacked_line = self._stacked_device_line(group)
        if actual_slot == 0:
            res = self.stacked.access(now, stacked_line, self.config.line_bytes, True)
            return AccessResult(latency=res.latency, serviced_by_stacked=True)
        offchip_line = self._offchip_device_line(group, actual_slot)
        n_bytes = self.config.line_bytes
        self.post(now, (
            (self.stacked, stacked_line, n_bytes, False),  # read the victim out
            (self.stacked, stacked_line, n_bytes, True),
            (self.offchip, offchip_line, n_bytes, True),
        ))
        self.llt.swap_to_stacked(group, requested_slot)
        self.stats.line_swaps += 1
        return AccessResult(latency=0.0, serviced_by_stacked=False)


class EmbeddedLltCameo(CameoController):
    """LLT stored in a reserved slice of stacked DRAM; serial indirection."""

    name = "cameo-embedded-llt"

    #: One-byte entries, so one 64-byte line holds 64 group entries.
    ENTRIES_PER_LINE = 64

    @property
    def reserved_pages(self) -> int:
        # The LLT occupies llt_bytes of stacked DRAM that the OS cannot use.
        return -(-self.config.llt_bytes // self.config.page_bytes)

    def _llt_device_line(self, group: int) -> int:
        # Keep the LLT region away from the hot low groups: place it at the
        # top of the device so LLT reads and data reads contend realistically
        # rather than landing in the same rows.
        return self.config.stacked_lines - 1 - (group // self.ENTRIES_PER_LINE)

    def _probe_llt(self, now: float, group: int) -> float:
        """Read the group's LLT entry; returns the completion time."""
        res = self.stacked.access_line(now, self._llt_device_line(group))
        return now + res.latency

    def _service_read(self, now, request, group, requested_slot, actual_slot):
        data_start = self._probe_llt(now, group)
        if actual_slot == 0:
            res = self.stacked.access_line(data_start, self._stacked_device_line(group))
            return AccessResult(
                latency=(data_start - now) + res.latency, serviced_by_stacked=True
            )
        res = self.offchip.access_line(
            data_start, self._offchip_device_line(group, actual_slot)
        )
        finish = data_start + res.latency
        self._perform_swap(finish, group, requested_slot, actual_slot, victim_prefetched=False)
        # The swap also rewrites the LLT entry in the reserved region.
        llt_line = self._llt_device_line(group)
        self.post(
            finish, ((self.stacked, llt_line, self.config.line_bytes, True),)
        )
        return AccessResult(latency=finish - now, serviced_by_stacked=False)

    def _service_write_in_place(self, now, group, actual_slot):
        data_start = self._probe_llt(now, group)
        n_bytes = self.config.line_bytes
        if actual_slot == 0:
            line = self._stacked_device_line(group)
            self.post(data_start, ((self.stacked, line, n_bytes, True),))
            return AccessResult(latency=data_start - now, serviced_by_stacked=True)
        line = self._offchip_device_line(group, actual_slot)
        self.post(data_start, ((self.offchip, line, n_bytes, True),))
        return AccessResult(latency=data_start - now, serviced_by_stacked=False)

    def _service_write_swap(self, now, request, group, requested_slot, actual_slot):
        data_start = self._probe_llt(now, group)
        stacked_line = self._stacked_device_line(group)
        n_bytes = self.config.line_bytes
        if actual_slot == 0:
            self.post(data_start, ((self.stacked, stacked_line, n_bytes, True),))
            return AccessResult(latency=data_start - now, serviced_by_stacked=True)
        offchip_line = self._offchip_device_line(group, actual_slot)
        llt_line = self._llt_device_line(group)
        self.post(data_start, (
            (self.stacked, stacked_line, n_bytes, False),  # read the victim out
            (self.stacked, stacked_line, n_bytes, True),
            (self.offchip, offchip_line, n_bytes, True),
            (self.stacked, llt_line, n_bytes, True),  # LLT update
        ))
        self.llt.swap_to_stacked(group, requested_slot)
        self.stats.line_swaps += 1
        return AccessResult(latency=data_start - now, serviced_by_stacked=False)


class CoLocatedLltCameo(CameoController):
    """The practical CAMEO: LEADs in stacked DRAM plus location prediction.

    Every request probes the stacked slot of its congruence group; the
    returned LEAD carries both the group's location entry and whatever
    data line is stacked-resident. Off-chip residents are fetched either
    serially after the probe (SAM / mispredicted-stacked) or in parallel
    at the predictor's slot (Figure 10b).
    """

    name = "cameo"

    @property
    def reserved_pages(self) -> int:
        # One line slot per 32-line row is donated to location entries:
        # 1/32 of stacked capacity disappears from the address space.
        return self.config.stacked_pages // LINES_PER_ROW

    def _stacked_read_bytes(self) -> int:
        return LEAD_BYTES

    def _stacked_write_bytes(self) -> int:
        return LEAD_BYTES

    def _service_read(self, now, request, group, requested_slot, actual_slot):
        # Hot path: device-line helpers are inlined (stacked slot of group
        # g is device line g; off-chip slot s is ((s-1) << group_bits) | g).
        context_id = request.context_id
        pc = request.pc
        group_bits = self._group_bits
        predictor = self.predictor
        predicted_slot = predictor.predict(context_id, pc, actual_slot)
        self.case_stats.record(actual_slot, predicted_slot)

        # The LEAD probe always happens: it is the LLT lookup, and for
        # stacked residents it is also the data access.
        probe = self.stacked.access(now, group, LEAD_BYTES)

        if actual_slot == 0:
            if predicted_slot != 0:
                # Case 2: useless parallel off-chip fetch — squashed once
                # the LEAD shows the line is stacked (bandwidth-only cost).
                self.offchip.speculative_access(
                    now,
                    ((predicted_slot - 1) << group_bits) | group,
                    self.config.line_bytes,
                )
            predictor.update(context_id, pc, actual_slot)
            return AccessResult(latency=probe.latency, serviced_by_stacked=True)

        if predicted_slot == actual_slot:
            # Case 4: correct parallel fetch; latency hides the probe.
            res = self.offchip.access_line(
                now, ((actual_slot - 1) << group_bits) | group
            )
            latency = max(probe.latency, res.latency)
        else:
            if predicted_slot != 0:
                # Case 5: wrong off-chip guess — squashed fetch, then serial.
                self.offchip.speculative_access(
                    now,
                    ((predicted_slot - 1) << group_bits) | group,
                    self.config.line_bytes,
                )
            # Case 3 (and the tail of case 5): wait for the LEAD's entry,
            # then fetch the true location.
            res = self.offchip.access_line(
                now + probe.latency, ((actual_slot - 1) << group_bits) | group
            )
            latency = probe.latency + res.latency

        # The LEAD probe already delivered the victim's data, so the swap
        # needs no extra stacked read.
        self._perform_swap(now + latency, group, requested_slot, actual_slot,
                           victim_prefetched=True)
        predictor.update(context_id, pc, actual_slot)
        return AccessResult(latency=latency, serviced_by_stacked=False)

    def _service_write_in_place(self, now, group, actual_slot):
        # A writeback must locate its line: probe the LEAD, then write
        # (the write itself is posted; writebacks are not demand traffic).
        probe = self.stacked.access(now, self._stacked_device_line(group), LEAD_BYTES)
        t_located = now + probe.latency
        if actual_slot == 0:
            line = self._stacked_device_line(group)
            self.post(t_located, ((self.stacked, line, LEAD_BYTES, True),))
            return AccessResult(latency=probe.latency, serviced_by_stacked=True)
        line = self._offchip_device_line(group, actual_slot)
        self.post(t_located, ((self.offchip, line, self.config.line_bytes, True),))
        return AccessResult(latency=probe.latency, serviced_by_stacked=False)

    def _service_write_swap(self, now, request, group, requested_slot, actual_slot):
        # The LEAD probe locates the line *and* fetches the victim's data.
        # Writebacks also observe the LLT entry, so they train the LLP
        # (but are not counted in Table III, which is about demand reads).
        self.predictor.update(request.context_id, request.pc, actual_slot)
        stacked_line = self._stacked_device_line(group)
        probe = self.stacked.access(now, stacked_line, LEAD_BYTES)
        t_located = now + probe.latency
        if actual_slot == 0:
            self.post(t_located, ((self.stacked, stacked_line, LEAD_BYTES, True),))
            return AccessResult(latency=probe.latency, serviced_by_stacked=True)
        offchip_line = self._offchip_device_line(group, actual_slot)
        self.post(t_located, (
            (self.stacked, stacked_line, LEAD_BYTES, True),
            (self.offchip, offchip_line, self.config.line_bytes, True),
        ))
        self.llt.swap_to_stacked(group, requested_slot)
        self.stats.line_swaps += 1
        return AccessResult(latency=probe.latency, serviced_by_stacked=False)


class SramLltCameo(IdealLltCameo):
    """The impractical SRAM-LLT of Section IV-C-1, for completeness.

    "designing a LLT made of SRAM would incur unacceptably high overhead
    (in essence, sacrificing the L3 cache for storing LLT). Furthermore,
    accessing the LLT would still incur a latency overhead of as high as
    the L3 cache (24 cycles)." So: an Ideal-LLT that charges a fixed
    24-cycle lookup before every access and no DRAM-side table traffic.
    The 64 MB of SRAM it would cost is exactly why the paper calls it
    "only of theoretical importance".
    """

    name = "cameo-sram-llt"

    LOOKUP_CYCLES = 24.0

    @property
    def sram_bytes(self) -> int:
        """What the table would cost in SRAM (paper: 64 MB unscaled)."""
        return self.config.llt_bytes
