"""Line Location Predictors (Section V).

The Co-Located LLT removes the table-lookup latency for stacked-resident
lines but still serialises off-chip accesses behind the stacked probe. An
LLP guesses the line's physical slot from history so the off-chip access
can launch in parallel:

* :class:`SamPredictor` — no prediction: always "stacked", i.e. Serial
  Access Memory (Figure 10a).
* :class:`LastLocationPredictor` — the paper's LLP: a per-core, 256-entry
  PC-indexed table of 2-bit Line Location Registers, each remembering the
  physical slot the LLT reported last time that instruction missed.
* :class:`PerfectPredictor` — 100%-accurate oracle bound.

Prediction outcomes fall into the paper's five cases (Section V-D),
tallied by :class:`LlpCaseStats` to regenerate Table III.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List

from ..config import paper
from ..errors import ConfigurationError


class LocationPredictor(abc.ABC):
    """Interface: guess which physical slot (0 = stacked) holds a line."""

    name: str = "base"

    @abc.abstractmethod
    def predict(self, context_id: int, pc: int, actual_slot: int) -> int:
        """Return the predicted physical slot for this miss.

        ``actual_slot`` is supplied so the oracle bound can be expressed
        through the same interface; real predictors must ignore it.
        """

    @abc.abstractmethod
    def update(self, context_id: int, pc: int, actual_slot: int) -> None:
        """Train on the slot the LLT actually reported."""

    @property
    def storage_bits_per_core(self) -> int:
        """Hardware budget, for the paper's overhead claims."""
        return 0


class SamPredictor(LocationPredictor):
    """Serial Access Memory: always access stacked DRAM first."""

    name = "sam"

    def predict(self, context_id: int, pc: int, actual_slot: int) -> int:
        return 0

    def update(self, context_id: int, pc: int, actual_slot: int) -> None:
        pass


class PerfectPredictor(LocationPredictor):
    """Oracle: always right. Upper bound of Figure 12."""

    name = "perfect"

    def predict(self, context_id: int, pc: int, actual_slot: int) -> int:
        return actual_slot

    def update(self, context_id: int, pc: int, actual_slot: int) -> None:
        pass


class LastLocationPredictor(LocationPredictor):
    """The paper's LLP: per-core PC-indexed last-time location table.

    Each entry is a Line Location Register (LLR) holding the physical
    slot (2 bits for K = 4) most recently observed for misses caused by
    PCs hashing to that entry. 256 entries x 2 bits = 64 bytes per core.
    """

    name = "llp"

    def __init__(self, entries: int = paper.PAPER_LLP_ENTRIES, initial_slot: int = 0):
        if entries <= 0:
            raise ConfigurationError("LLP table needs at least one entry")
        if not 0 <= initial_slot <= 255:
            raise ConfigurationError("LLR entries are byte-sized slot indices")
        self.entries = entries
        self.initial_slot = initial_slot
        # One flat byte column per core: slot indices are tiny (2 bits in
        # hardware), so the whole per-core table is a bytearray that the
        # vectorized engine can hand to its compiled kernel unchanged.
        self._tables: Dict[int, bytearray] = {}

    def _table(self, context_id: int) -> bytearray:
        table = self._tables.get(context_id)
        if table is None:
            table = bytearray((self.initial_slot,)) * self.entries
            self._tables[context_id] = table
        return table

    def columnar_tables(self, n_contexts: int) -> List[bytearray]:
        """Materialize (and return) the tables for contexts ``0..n-1``.

        The vectorized engine calls this once at setup so the kernel sees
        every core's table even before that core's first miss.
        """
        return [self._table(context_id) for context_id in range(n_contexts)]

    def _index(self, pc: int) -> int:
        # Drop the low two bits (instruction alignment), keep log2(entries).
        return (pc >> 2) % self.entries

    def predict(self, context_id: int, pc: int, actual_slot: int) -> int:
        table = self._tables.get(context_id)
        if table is None:
            table = self._table(context_id)
        return table[(pc >> 2) % self.entries]

    def update(self, context_id: int, pc: int, actual_slot: int) -> None:
        table = self._tables.get(context_id)
        if table is None:
            table = self._table(context_id)
        table[(pc >> 2) % self.entries] = actual_slot

    @property
    def storage_bits_per_core(self) -> int:
        return self.entries * paper.PAPER_LLP_BITS_PER_ENTRY


@dataclass
class LlpCaseStats:
    """Tallies of the five prediction scenarios of Section V-D.

    Case 1: stacked, predicted stacked (correct).
    Case 2: stacked, predicted off-chip (wasted off-chip bandwidth).
    Case 3: off-chip, predicted stacked (serialised: extra latency).
    Case 4: off-chip, predicted the correct off-chip slot (correct).
    Case 5: off-chip, predicted a wrong off-chip slot (waste + latency).
    """

    case1_stacked_correct: int = 0
    case2_stacked_predicted_offchip: int = 0
    case3_offchip_predicted_stacked: int = 0
    case4_offchip_correct: int = 0
    case5_offchip_wrong_slot: int = 0

    def record(self, actual_slot: int, predicted_slot: int) -> None:
        if actual_slot == 0:
            if predicted_slot == 0:
                self.case1_stacked_correct += 1
            else:
                self.case2_stacked_predicted_offchip += 1
        elif predicted_slot == 0:
            self.case3_offchip_predicted_stacked += 1
        elif predicted_slot == actual_slot:
            self.case4_offchip_correct += 1
        else:
            self.case5_offchip_wrong_slot += 1

    @property
    def total(self) -> int:
        return (
            self.case1_stacked_correct
            + self.case2_stacked_predicted_offchip
            + self.case3_offchip_predicted_stacked
            + self.case4_offchip_correct
            + self.case5_offchip_wrong_slot
        )

    @property
    def accuracy(self) -> float:
        """Fraction of cases 1 and 4 (the paper's overall accuracy row)."""
        if not self.total:
            return 0.0
        return (self.case1_stacked_correct + self.case4_offchip_correct) / self.total

    @property
    def wasted_bandwidth_fraction(self) -> float:
        """Cases 2 and 5: a useless parallel off-chip access was issued."""
        if not self.total:
            return 0.0
        return (
            self.case2_stacked_predicted_offchip + self.case5_offchip_wrong_slot
        ) / self.total

    @property
    def extra_latency_fraction(self) -> float:
        """Cases 3 and 5: the off-chip access ended up serialised."""
        if not self.total:
            return 0.0
        return (
            self.case3_offchip_predicted_stacked + self.case5_offchip_wrong_slot
        ) / self.total

    def as_fractions(self) -> Dict[str, float]:
        """Table III's rows, as fractions of all memory requests."""
        total = self.total or 1
        return {
            "stacked/stacked": self.case1_stacked_correct / total,
            "stacked/offchip": self.case2_stacked_predicted_offchip / total,
            "offchip/stacked": self.case3_offchip_predicted_stacked / total,
            "offchip/offchip-ok": self.case4_offchip_correct / total,
            "offchip/offchip-wrong": self.case5_offchip_wrong_slot / total,
        }
