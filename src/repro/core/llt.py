"""The Line Location Table: the logical mapping CAMEO maintains (Section IV-B).

For every congruence group, the LLT records which *physical slot* each
*requested slot* currently occupies. Each per-group record is a
permutation of ``0..K-1`` (there is exactly one copy of every line in
memory, so two requested lines can never share a physical slot).

This module is the *contents* of the table. How the table is stored and
what its lookups cost (SRAM / embedded / co-located with data) is
modelled separately in :mod:`repro.core.llt_designs`.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import SimulationError
from .congruence import CongruenceSpace


class LineLocationTable:
    """Per-group requested-slot -> physical-slot permutations.

    Storage is a flat ``bytearray`` of ``N * K`` two-bit-conceptual (one
    byte actual) entries, matching the paper's one-byte-per-group budget
    for K = 4 at Python-friendly granularity.
    """

    def __init__(self, space: CongruenceSpace):
        self.space = space
        k = space.group_size
        self._k = k  # hot-path copy of the group size
        # Identity mapping: requested slot s starts at physical slot s
        # (Figure 5's initial state).
        self._table = bytearray(
            s for _ in range(space.num_groups) for s in range(k)
        )
        # Cached inverse for the hot path: which requested slot sits in
        # physical slot 0 of each group. Identity mapping -> requested 0.
        self._resident = bytearray(space.num_groups)
        # Groups whose record may no longer be a permutation (fault
        # injection); lookups there fall back to scanning the record so
        # corruption keeps its observable semantics.
        self._suspect_groups = set()

    # -- Lookups ---------------------------------------------------------------

    def location_of(self, group: int, requested_slot: int) -> int:
        """Physical slot currently holding ``requested_slot`` of ``group``."""
        return self._table[group * self._k + requested_slot]

    def resident_requested_slot(self, group: int) -> int:
        """Which requested slot currently occupies the stacked slot (0).

        O(1) via the cached inverse; corrupted groups (fault injection)
        fall back to scanning the stored record.
        """
        if group in self._suspect_groups:
            return self._scan_resident(group)
        return self._resident[group]

    def _scan_resident(self, group: int) -> int:
        base = group * self.space.group_size
        k = self.space.group_size
        for requested in range(k):
            if self._table[base + requested] == 0:
                return requested
        raise SimulationError(f"group {group} has no stacked-resident line")

    def group_mapping(self, group: int) -> Tuple[int, ...]:
        """The full requested->physical permutation of ``group``."""
        base = group * self.space.group_size
        return tuple(self._table[base : base + self.space.group_size])

    def is_stacked_resident(self, group: int, requested_slot: int) -> bool:
        return self.location_of(group, requested_slot) == 0

    # -- The swap (Figure 5) -----------------------------------------------------

    def swap_to_stacked(self, group: int, requested_slot: int) -> int:
        """Upgrade ``requested_slot`` into the stacked slot of its group.

        The line previously in the stacked slot moves to wherever the
        upgraded line was (which is how Line B ends up at Line D's
        original off-chip location in Figure 5).

        Returns:
            The physical slot the upgraded line vacated, i.e. where the
            demoted (victim) line must be written.
        """
        base = group * self.space.group_size
        old_slot = self._table[base + requested_slot]
        if old_slot == 0:
            return 0  # Already stacked-resident; nothing to do.
        victim_requested = self.resident_requested_slot(group)
        self._table[base + requested_slot] = 0
        self._table[base + victim_requested] = old_slot
        self._resident[group] = requested_slot
        return old_slot

    # -- Fault modeling (used by repro.faults) -------------------------------------

    def corrupt_entry(self, group: int, requested_slot: int, value: int) -> None:
        """Overwrite one location entry with an arbitrary slot value.

        Models a bit flip in the stored entry: the value still *looks*
        valid (it indexes a real slot) but the group may silently stop
        being a permutation. Only the fault injector calls this.
        """
        if not 0 <= value < self.space.group_size:
            raise SimulationError(f"corrupt value {value} is not a slot index")
        self._table[group * self.space.group_size + requested_slot] = value
        # The cached inverse can no longer be trusted for this group.
        self._suspect_groups.add(group)

    def repair_group(self, group: int) -> None:
        """Rebuild a corrupted group's record as the identity permutation.

        Models a scrub that re-reads every line of the group and rewrites
        the entry from the lines' self-identifying tags (the data knows
        which requested slot it is); the caller charges that traffic. The
        simulator has no per-line data to recover, so the repaired state
        is deterministically the identity mapping.
        """
        base = group * self.space.group_size
        self._table[base : base + self.space.group_size] = bytes(
            range(self.space.group_size)
        )
        self._resident[group] = 0
        self._suspect_groups.discard(group)

    # -- Invariants (used by tests and debug assertions) --------------------------

    def check_group_invariant(self, group: int) -> None:
        """Raise :class:`SimulationError` if the group is not a permutation."""
        mapping = self.group_mapping(group)
        if sorted(mapping) != list(range(self.space.group_size)):
            raise SimulationError(
                f"group {group} mapping {mapping} is not a permutation"
            )

    def stacked_residency_histogram(self) -> List[int]:
        """Count, per requested slot index, how many groups hold it stacked.

        Index 0 of the result counts groups still holding their "home"
        line; a heavily-swapped run shifts weight to higher slots.
        """
        counts = [0] * self.space.group_size
        for group in range(self.space.num_groups):
            counts[self.resident_requested_slot(group)] += 1
        return counts
