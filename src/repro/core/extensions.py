"""CAMEO extensions beyond the paper's evaluated design.

Two directions the paper explicitly points at:

* :class:`FreqHintCameo` — Section VI-D closes with "if page frequency
  information is available, CAMEO can retain lines from only heavily
  used pages in stacked DRAM". This variant takes the same profiled
  hot-page set TLM-Oracle uses and *filters the swap*: off-chip reads to
  lines of cold pages are serviced in place, so streaming sweeps stop
  evicting the hot set and stop paying swap bandwidth.

* :class:`SetAssociativeCameo` — footnote 3 blames CAMEO/DoubleUse
  conflict misses on the direct-mapped congruence structure (libquantum
  loses to TLM-Dynamic purely through conflicts). This variant groups
  ``ways`` adjacent congruence groups into one super-group whose lines
  may occupy any of its ``ways`` stacked slots, with LRU among them —
  trading an occasional second stacked probe for fewer conflicts, the
  same trade DRAM-cache papers (and CAMEO's follow-ons) explore.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, TYPE_CHECKING

from ..config.system import SystemConfig
from ..dram.device import DramDevice
from ..errors import ConfigurationError, SimulationError
from ..organization import AccessResult, MemoryOrganization
from ..request import MemoryRequest
from ..units import log2_exact
from ..vm.page_table import VirtualPage
from .lead import LEAD_BYTES
from .llp import LocationPredictor, SamPredictor
from .llt_designs import CoLocatedLltCameo

if TYPE_CHECKING:
    from ..vm.memory_manager import MemoryManager


class FreqHintCameo(CoLocatedLltCameo):
    """Co-Located CAMEO that only retains lines of profiled-hot pages.

    The filter applies to the *swap decision*: cold-page lines are still
    read from wherever they live (timing identical to a SAM/LLP
    off-chip access), they just do not displace a stacked-resident line.
    """

    name = "cameo-freq-hint"

    def __init__(
        self,
        config: SystemConfig,
        predictor: Optional[LocationPredictor] = None,
        hot_vpages: FrozenSet[VirtualPage] = frozenset(),
        swap_on_write: bool = True,
    ):
        super().__init__(
            config,
            predictor=predictor if predictor is not None else SamPredictor(),
            swap_on_write=swap_on_write,
        )
        self.hot_vpages = frozenset(hot_vpages)
        self.filtered_swaps = 0

    def _frame_is_hot(self, frame: int) -> bool:
        if self.memory_manager is None:
            return True  # Unbound (unit tests): behave like plain CAMEO.
        info = self.memory_manager.page_table.frames[frame]
        return info.vpage is not None and info.vpage in self.hot_vpages

    def _perform_swap(self, time, group, requested_slot, actual_slot,
                      victim_prefetched):
        frame = self.space.join(group, requested_slot) // self.config.lines_per_page
        if not self._frame_is_hot(frame):
            self.filtered_swaps += 1
            return
        super()._perform_swap(
            time, group, requested_slot, actual_slot, victim_prefetched
        )


class SuperGroupTable:
    """Requested-slot -> physical-slot permutations over super-groups.

    A super-group has ``ways * group_size`` line slots; physical slots
    ``0..ways-1`` are its stacked-DRAM locations.
    """

    def __init__(self, num_supergroups: int, ways: int, group_size: int):
        self.num_supergroups = num_supergroups
        self.ways = ways
        self.slots = ways * group_size
        self._table = bytearray(
            s for _ in range(num_supergroups) for s in range(self.slots)
        )
        # LRU state: the least-recently-filled stacked way per super-group.
        self._lru_way = bytearray(num_supergroups)

    def location_of(self, supergroup: int, requested_slot: int) -> int:
        return self._table[supergroup * self.slots + requested_slot]

    def is_stacked(self, supergroup: int, requested_slot: int) -> bool:
        return self.location_of(supergroup, requested_slot) < self.ways

    def victim_way(self, supergroup: int) -> int:
        return self._lru_way[supergroup]

    def note_use(self, supergroup: int, way: int) -> None:
        """Mark ``way`` as MRU (two-way LRU: the other way becomes victim)."""
        if self.ways == 2:
            self._lru_way[supergroup] = 1 - way
        else:
            self._lru_way[supergroup] = (way + 1) % self.ways

    def resident_requested_slot(self, supergroup: int, way: int) -> int:
        base = supergroup * self.slots
        for requested in range(self.slots):
            if self._table[base + requested] == way:
                return requested
        raise SimulationError(
            f"super-group {supergroup} has no line in stacked way {way}"
        )

    def swap_to_way(self, supergroup: int, requested_slot: int, way: int) -> int:
        """Move ``requested_slot`` into stacked ``way``; returns the slot
        it vacated (where the displaced line now lives)."""
        base = supergroup * self.slots
        old_slot = self._table[base + requested_slot]
        if old_slot == way:
            return old_slot
        victim_requested = self.resident_requested_slot(supergroup, way)
        self._table[base + requested_slot] = way
        self._table[base + victim_requested] = old_slot
        return old_slot

    def check_invariant(self, supergroup: int) -> None:
        base = supergroup * self.slots
        mapping = sorted(self._table[base : base + self.slots])
        if mapping != list(range(self.slots)):
            raise SimulationError(
                f"super-group {supergroup} mapping is not a permutation"
            )


class SetAssociativeCameo(MemoryOrganization):
    """A ``ways``-associative CAMEO with co-located-LLT-style timing.

    Address math: with N stacked lines and W ways, there are N/W
    super-groups selected by the low ``log2(N/W)`` bits of the line
    address; the remaining high bits index one of ``W * K`` slots.

    Timing model: the controller probes the MRU stacked way (a LEAD
    read, which carries the super-group's full location entry). A line
    in the other stacked way costs a second stacked access; an off-chip
    line is fetched serially after the probe (SAM — associativity and
    prediction compose, but SAM isolates the associativity effect).
    """

    name = "cameo-assoc"

    def __init__(self, config: SystemConfig, ways: int = 2,
                 swap_on_write: bool = True):
        super().__init__(config)
        if ways < 1 or config.stacked_lines % ways:
            raise ConfigurationError("ways must divide the stacked line count")
        self.ways = ways
        self.swap_on_write = swap_on_write
        self.num_supergroups = config.stacked_lines // ways
        if self.num_supergroups & (self.num_supergroups - 1):
            raise ConfigurationError("super-group count must be a power of two")
        self._sg_bits = log2_exact(self.num_supergroups)
        self.slots = ways * config.group_size
        self.table = SuperGroupTable(self.num_supergroups, ways, config.group_size)
        self.stacked = DramDevice(
            config.stacked_timing, config.stacked_bytes, config.line_bytes
        )
        self.offchip = DramDevice(
            config.offchip_timing, config.offchip_bytes, config.line_bytes
        )
        self.second_probe_count = 0

    # -- Capacity (same 1/32 LEAD reservation as co-located CAMEO) ------------

    @property
    def reserved_pages(self) -> int:
        return self.config.stacked_pages // 32

    @property
    def visible_pages(self) -> int:
        return self.config.total_pages - self.reserved_pages

    @property
    def stacked_visible_pages(self) -> int:
        return self.config.stacked_pages

    # -- Address math -----------------------------------------------------------

    def split(self, line_addr: int):
        return line_addr & (self.num_supergroups - 1), line_addr >> self._sg_bits

    def _stacked_device_line(self, supergroup: int, way: int) -> int:
        return (way << self._sg_bits) | supergroup

    def _offchip_device_line(self, supergroup: int, phys_slot: int) -> int:
        return ((phys_slot - self.ways) << self._sg_bits) | supergroup

    # -- Demand path ---------------------------------------------------------------

    def access(self, now: float, request: MemoryRequest) -> AccessResult:
        supergroup, requested_slot = self.split(request.line_addr)
        phys = self.table.location_of(supergroup, requested_slot)
        if request.is_write and self.swap_on_write:
            result = self._service_write_swap(now, supergroup, requested_slot, phys)
        elif request.is_write:
            result = self._service_write_in_place(now, supergroup, phys)
        else:
            result = self._service_read(now, supergroup, requested_slot, phys)
        self.stats.note(request, result.serviced_by_stacked)
        return result

    def _probe(self, now: float, supergroup: int, way: int):
        return self.stacked.access(
            now, self._stacked_device_line(supergroup, way), LEAD_BYTES
        )

    def _service_read(self, now, supergroup, requested_slot, phys):
        mru_way = (self.table.victim_way(supergroup) + 1) % max(self.ways, 1) \
            if self.ways > 1 else 0
        probe = self._probe(now, supergroup, mru_way)
        if phys < self.ways:
            if phys == mru_way:
                latency = probe.latency
            else:
                # Second stacked probe: the associativity tax.
                self.second_probe_count += 1
                second = self._probe(now + probe.latency, supergroup, phys)
                latency = probe.latency + second.latency
            self.table.note_use(supergroup, phys)
            return AccessResult(latency=latency, serviced_by_stacked=True)

        # Off-chip: serial fetch, then swap into the LRU way.
        res = self.offchip.access_line(
            now + probe.latency, self._offchip_device_line(supergroup, phys)
        )
        latency = probe.latency + res.latency
        self._swap_in(now + latency, supergroup, requested_slot, phys)
        return AccessResult(latency=latency, serviced_by_stacked=False)

    def _swap_in(self, time, supergroup, requested_slot, phys):
        way = self.table.victim_way(supergroup)
        stacked_line = self._stacked_device_line(supergroup, way)
        offchip_line = self._offchip_device_line(supergroup, phys)

        def do_swap_traffic(t: float) -> None:
            self.stacked.access(t, stacked_line, LEAD_BYTES)        # victim out
            self.stacked.access(t, stacked_line, LEAD_BYTES, True)  # line in
            self.offchip.access_line(t, offchip_line, True)         # victim home

        self.post(time, do_swap_traffic)
        self.table.swap_to_way(supergroup, requested_slot, way)
        self.table.note_use(supergroup, way)
        self.stats.line_swaps += 1

    def _service_write_swap(self, now, supergroup, requested_slot, phys):
        probe = self._probe(now, supergroup, 0)
        if phys < self.ways:
            line = self._stacked_device_line(supergroup, phys)
            self.post(
                now + probe.latency,
                lambda t: self.stacked.access(t, line, LEAD_BYTES, True),
            )
            self.table.note_use(supergroup, phys)
            return AccessResult(latency=probe.latency, serviced_by_stacked=True)
        self._swap_in(now + probe.latency, supergroup, requested_slot, phys)
        return AccessResult(latency=probe.latency, serviced_by_stacked=False)

    def _service_write_in_place(self, now, supergroup, phys):
        probe = self._probe(now, supergroup, 0)
        if phys < self.ways:
            line = self._stacked_device_line(supergroup, phys)
            self.post(
                now + probe.latency,
                lambda t: self.stacked.access(t, line, LEAD_BYTES, True),
            )
            return AccessResult(latency=probe.latency, serviced_by_stacked=True)
        line = self._offchip_device_line(supergroup, phys)
        self.post(
            now + probe.latency,
            lambda t: self.offchip.access_line(t, line, is_write=True),
        )
        return AccessResult(latency=probe.latency, serviced_by_stacked=False)

    # -- Paging ---------------------------------------------------------------------

    def _split_frame_lines(self, frame: int):
        stacked_lines = 0
        offchip_lines = 0
        for line in self._frame_lines(frame):
            supergroup, requested_slot = self.split(line)
            if self.table.is_stacked(supergroup, requested_slot):
                stacked_lines += 1
            else:
                offchip_lines += 1
        return stacked_lines, offchip_lines

    def page_fill(self, now: float, frame: int) -> None:
        n_stacked, n_offchip = self._split_frame_lines(frame)
        first = frame * self.config.lines_per_page
        if n_stacked:
            self.stacked.stream(now, first, n_stacked, is_write=True)
        if n_offchip:
            self.offchip.stream(now, first, n_offchip, is_write=True)

    def page_drain(self, now: float, frame: int) -> None:
        n_stacked, n_offchip = self._split_frame_lines(frame)
        first = frame * self.config.lines_per_page
        if n_stacked:
            self.stacked.stream(now, first, n_stacked, is_write=False)
        if n_offchip:
            self.offchip.stream(now, first, n_offchip, is_write=False)

    def devices(self) -> Dict[str, DramDevice]:
        return {"stacked": self.stacked, "offchip": self.offchip}

    def check_invariants(self, sample: int = 64) -> None:
        step = max(1, self.num_supergroups // sample)
        for supergroup in range(0, self.num_supergroups, step):
            self.table.check_invariant(supergroup)
