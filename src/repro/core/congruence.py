"""Congruence-group address arithmetic (Section IV-A).

With N lines of stacked DRAM and K*N lines of total (stacked + off-chip)
memory, the combined physical line space is partitioned into N
*congruence groups* of K lines each: requested line X belongs to group
``X mod N`` (the bottom ``log2(N)`` address bits) and occupies *slot*
``X div N`` within that group. Slot 0 is the group's stacked-DRAM
location; slots ``1..K-1`` are its off-chip locations. CAMEO only ever
swaps lines within a group, exactly like lines contending for one set of
a hardware cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import ConfigurationError
from ..units import is_power_of_two, log2_exact


@dataclass(frozen=True)
class CongruenceSpace:
    """Maps requested line addresses to (group, slot) pairs and back.

    Attributes:
        num_groups: N, the number of stacked-DRAM line slots.
        group_size: K, lines per group (paper: 4 for 4 GB + 12 GB).
    """

    num_groups: int
    group_size: int

    def __post_init__(self) -> None:
        if not is_power_of_two(self.num_groups):
            raise ConfigurationError(
                "the congruence group is selected by the low address bits, so the "
                "number of groups must be a power of two"
            )
        if self.group_size < 2:
            raise ConfigurationError(
                "a group needs at least one stacked and one off-chip slot"
            )
        # Precomputed address arithmetic for the per-access hot path
        # (``object.__setattr__`` because the dataclass is frozen; these
        # are derived caches, not fields).
        object.__setattr__(self, "group_bits", log2_exact(self.num_groups))
        object.__setattr__(self, "group_mask", self.num_groups - 1)
        object.__setattr__(self, "total_lines", self.num_groups * self.group_size)

    def split(self, line_addr: int) -> Tuple[int, int]:
        """Return ``(group, slot)`` for a requested line address."""
        if not 0 <= line_addr < self.total_lines:
            raise ConfigurationError(
                f"line {line_addr} outside the {self.total_lines}-line space"
            )
        return line_addr & self.group_mask, line_addr >> self.group_bits

    def join(self, group: int, slot: int) -> int:
        """Return the line address occupying ``slot`` of ``group``."""
        if not 0 <= group < self.num_groups:
            raise ConfigurationError(f"group {group} out of range")
        if not 0 <= slot < self.group_size:
            raise ConfigurationError(f"slot {slot} out of range")
        return (slot << self.group_bits) | group

    def group_members(self, group: int) -> Tuple[int, ...]:
        """All requested line addresses in ``group`` (paper's A, B, C, D)."""
        return tuple(self.join(group, s) for s in range(self.group_size))

    def is_stacked_slot(self, slot: int) -> bool:
        """Slot 0 is the stacked-DRAM location of every group."""
        return slot == 0

    def offchip_device_line(self, group: int, slot: int) -> int:
        """Device-local line index within off-chip DRAM for an off-chip slot."""
        if slot == 0:
            raise ConfigurationError("slot 0 is in stacked DRAM, not off-chip")
        return ((slot - 1) << self.group_bits) | group
