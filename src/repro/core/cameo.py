"""The CAMEO memory organization controller (Sections IV and V).

CAMEO exposes stacked + off-chip DRAM as one OS-visible space and swaps
recently-used lines into stacked DRAM within congruence groups. The
controller here owns the two DRAM devices, the logical
:class:`~repro.core.llt.LineLocationTable`, and a
:class:`~repro.core.llp.LocationPredictor`; subclasses in
:mod:`repro.core.llt_designs` specialise the *timing* of LLT access
(ideal / embedded / co-located) while sharing the swap and paging logic
implemented here.

Device address mapping note: group ``g``'s stacked slot is charged at
device line ``g``. The Co-Located design's 31-LEADs-per-row shift
(:mod:`repro.core.lead`) only changes which row a group lands in, a
second-order row-locality effect under line-interleaved channels, so the
capacity cost is modelled exactly (reserved pages + 66-byte bursts) while
device addressing stays identity.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Set, TYPE_CHECKING

from ..config.system import SystemConfig
from ..dram.device import DramDevice
from ..errors import ConfigurationError, FaultError, SimulationError
from ..organization import AccessResult, MemoryOrganization
from ..request import MemoryRequest
from .congruence import CongruenceSpace
from .llp import LlpCaseStats, LocationPredictor, SamPredictor
from .llt import LineLocationTable

if TYPE_CHECKING:
    from ..faults.auditor import InvariantAuditor
    from ..faults.injector import FaultInjector


class CameoController(MemoryOrganization):
    """Shared CAMEO machinery: congruence space, LLT contents, swap, paging."""

    name = "cameo"

    def __init__(
        self,
        config: SystemConfig,
        predictor: LocationPredictor = None,
        swap_on_write: bool = True,
    ):
        super().__init__(config)
        self.space = CongruenceSpace(
            num_groups=config.stacked_lines, group_size=config.group_size
        )
        # Hot-path copies of the (frozen) space's address arithmetic.
        self._group_mask = self.space.group_mask
        self._group_bits = self.space.group_bits
        self._total_lines = self.space.total_lines
        self.llt = LineLocationTable(self.space)
        # Aliases for the fault-free demand path: the LLT's backing
        # bytearray is mutated in place, never reassigned.
        self._llt_table = self.llt._table
        self._k = self.space.group_size
        self.predictor = predictor if predictor is not None else SamPredictor()
        self.swap_on_write = swap_on_write
        self.case_stats = LlpCaseStats()
        self.stacked = DramDevice(
            config.stacked_timing, config.stacked_bytes, config.line_bytes
        )
        self.offchip = DramDevice(
            config.offchip_timing, config.offchip_bytes, config.line_bytes
        )
        # Fault-recovery state (inert without an attached injector):
        # groups whose stacked slot failed permanently, and the surviving
        # off-chip line each one is remapped to (None = beyond salvage).
        self.decommissioned: Set[int] = set()
        self._remap: Dict[int, Optional[int]] = {}
        self.auditor: Optional["InvariantAuditor"] = None

    # -- Capacity ----------------------------------------------------------------

    @property
    def reserved_pages(self) -> int:
        """Pages hidden from the OS to pay for LLT storage (design-specific)."""
        return 0

    @property
    def visible_pages(self) -> int:
        return self.config.total_pages - self.reserved_pages

    @property
    def stacked_visible_pages(self) -> int:
        # The whole stacked capacity counts toward the address space; the
        # reservation is taken off the top (highest page numbers, which
        # are off-chip). Frames < stacked_pages start stacked-resident.
        return self.config.stacked_pages

    # -- Address helpers ------------------------------------------------------------

    def _stacked_device_line(self, group: int) -> int:
        return group

    def _offchip_device_line(self, group: int, slot: int) -> int:
        return self.space.offchip_device_line(group, slot)

    # -- Demand path -------------------------------------------------------------------

    def access(self, now: float, request: MemoryRequest) -> AccessResult:
        line_addr = request.line_addr
        if 0 <= line_addr < self._total_lines:
            group = line_addr & self._group_mask
            requested_slot = line_addr >> self._group_bits
        else:  # Out of range: split() raises the canonical error.
            group, requested_slot = self.space.split(line_addr)
        if self.fault_injector is None:
            # _dispatch inlined (with the LLT lookup) on the fault-free
            # demand path; the injected path below keeps the full stack.
            actual_slot = self._llt_table[group * self._k + requested_slot]
            if request.is_write:
                if self.swap_on_write:
                    result = self._service_write_swap(
                        now, request, group, requested_slot, actual_slot
                    )
                else:
                    result = self._service_write_in_place(now, group, actual_slot)
            else:
                result = self._service_read(
                    now, request, group, requested_slot, actual_slot
                )
        else:
            result = self._faulty_access(now, request, group, requested_slot)
        self.stats.note(request, result.serviced_by_stacked)
        return result

    def _dispatch(
        self, now: float, request: MemoryRequest, group: int, requested_slot: int
    ) -> AccessResult:
        """The fault-free service path (LLT lookup + design-specific timing)."""
        actual_slot = self.llt.location_of(group, requested_slot)
        if request.is_write:
            if self.swap_on_write:
                return self._service_write_swap(
                    now, request, group, requested_slot, actual_slot
                )
            return self._service_write_in_place(now, group, actual_slot)
        return self._service_read(now, request, group, requested_slot, actual_slot)

    def _faulty_access(
        self, now: float, request: MemoryRequest, group: int, requested_slot: int
    ) -> AccessResult:
        """The demand path under fault injection: inject, audit, recover.

        Permanent faults (stuck rows, exhausted retries) decommission the
        group and fall back to off-chip-only service; an LLT record so
        corrupted that the swap logic trips over it is scrubbed on the
        spot and the access retried once.
        """
        injector = self.fault_injector
        injector.maybe_corrupt_llt(self.llt)
        if self.auditor is not None:
            self.auditor.tick(now)
        if group in self.decommissioned:
            return self._service_decommissioned(now, request, group)
        try:
            return self._dispatch(now, request, group, requested_slot)
        except FaultError:
            self._decommission_group(now, group)
            return self._service_decommissioned(now, request, group)
        except SimulationError:
            # A corrupted group record broke the swap bookkeeping before
            # the audit caught it: scrub the group, then retry once.
            self._repair_group(now, group)
            try:
                return self._dispatch(now, request, group, requested_slot)
            except FaultError:
                self._decommission_group(now, group)
                return self._service_decommissioned(now, request, group)

    @abc.abstractmethod
    def _service_read(
        self,
        now: float,
        request: MemoryRequest,
        group: int,
        requested_slot: int,
        actual_slot: int,
    ) -> AccessResult:
        """Design-specific demand-read timing (includes swap on off-chip hit)."""

    @abc.abstractmethod
    def _service_write_in_place(
        self, now: float, group: int, actual_slot: int
    ) -> AccessResult:
        """Design-specific writeback timing (no location change)."""

    @abc.abstractmethod
    def _service_write_swap(
        self,
        now: float,
        request: MemoryRequest,
        group: int,
        requested_slot: int,
        actual_slot: int,
    ) -> AccessResult:
        """Writeback that upgrades the line into stacked DRAM.

        A writeback is an access too, so by default CAMEO retains the
        written line in stacked memory. Unlike a read swap there is no
        demand fetch: the incoming data fully overwrites the line, so the
        off-chip side of the swap is just the victim's write-out.
        """

    # -- The swap (Section IV-A, "Line Swapping") ------------------------------------------

    def _perform_swap(
        self,
        time: float,
        group: int,
        requested_slot: int,
        actual_slot: int,
        victim_prefetched: bool,
    ) -> None:
        """Move the requested line into the stacked slot, victim out.

        Unlike a cache eviction, the victim is the *only* copy of its
        line, so the off-chip write always happens. ``victim_prefetched``
        is True when the stacked probe already returned the victim's data
        (the Co-Located LEAD read), saving one stacked read. The swap
        uses the writeback/fill queues, i.e. it is off the critical path:
        its device traffic is *posted* at the demand access's completion
        time, so only its bandwidth (device occupancy) affects later
        requests.
        """
        stacked_line = self._stacked_device_line(group)
        offchip_line = self._offchip_device_line(group, actual_slot)
        write_bytes = self._stacked_write_bytes()
        line_bytes = self.config.line_bytes

        # Declarative micro-op record (not a closure): the swap traffic
        # is pure device accesses, so the compiled engine backend can
        # carry it through its own posted heap.
        if victim_prefetched:
            swap_traffic = (
                (self.stacked, stacked_line, write_bytes, True),
                (self.offchip, offchip_line, line_bytes, True),
            )
        else:
            swap_traffic = (
                (self.stacked, stacked_line, line_bytes, False),
                (self.stacked, stacked_line, write_bytes, True),
                (self.offchip, offchip_line, line_bytes, True),
            )
        self.post(time, swap_traffic)
        self.llt.swap_to_stacked(group, requested_slot)
        self.stats.line_swaps += 1

    def _stacked_write_bytes(self) -> int:
        """Bytes per stacked data write (66 for LEAD designs, else 64)."""
        return self.config.line_bytes

    def _stacked_read_bytes(self) -> int:
        """Bytes per stacked data read."""
        return self.config.line_bytes

    # -- Paging traffic ---------------------------------------------------------------------

    def _split_frame_lines(self, frame: int):
        """Partition a frame's lines into stacked- and off-chip-resident."""
        stacked_lines = 0
        offchip_lines = 0
        for line in self._frame_lines(frame):
            group, requested_slot = self.space.split(line)
            if group not in self.decommissioned and (
                self.llt.location_of(group, requested_slot) == 0
            ):
                stacked_lines += 1
            else:
                offchip_lines += 1
        return stacked_lines, offchip_lines

    def page_fill(self, now: float, frame: int) -> None:
        n_stacked, n_offchip = self._split_frame_lines(frame)
        first = frame * self.config.lines_per_page
        if n_stacked:
            self.stacked.stream(now, first, n_stacked, is_write=True)
        if n_offchip:
            self.offchip.stream(now, first, n_offchip, is_write=True)

    def page_drain(self, now: float, frame: int) -> None:
        n_stacked, n_offchip = self._split_frame_lines(frame)
        first = frame * self.config.lines_per_page
        if n_stacked:
            self.stacked.stream(now, first, n_stacked, is_write=False)
        if n_offchip:
            self.offchip.stream(now, first, n_offchip, is_write=False)

    def devices(self) -> Dict[str, DramDevice]:
        return {"stacked": self.stacked, "offchip": self.offchip}

    # -- Fault recovery (Section: robustness extension; docs/robustness.md) ----------------------

    def attach_fault_injector(self, injector: "FaultInjector") -> None:
        """Wire the injector into both devices and start the LLT auditor."""
        super().attach_fault_injector(injector)
        from ..faults.auditor import InvariantAuditor

        self.auditor = InvariantAuditor(
            self.llt,
            repair=self._repair_group,
            interval=injector.config.audit_interval_accesses,
            groups_per_audit=injector.config.audit_groups,
            stats=injector.stats,
        )

    def _repair_group(self, now: float, group: int) -> None:
        """Scrub one corrupted group: rebuild its LLT record, charge traffic.

        The scrub re-reads every line of the group (each line's tag says
        which requested slot it is) and rewrites the stacked entry; that
        traffic is posted — repair is patrol work, not demand work.
        """
        self.llt.repair_group(group)
        if self.fault_injector is not None:
            self.fault_injector.stats.llt_repairs += 1
        stacked_line = self._stacked_device_line(group)
        line_bytes = self.config.line_bytes
        scrub = (
            [(self.stacked, stacked_line, self._stacked_read_bytes(), False)]
            + [
                (self.offchip, self._offchip_device_line(group, slot), line_bytes, False)
                for slot in range(1, self.space.group_size)
            ]
            + [(self.stacked, stacked_line, self._stacked_write_bytes(), True)]
        )
        self.post(now, tuple(scrub))

    def _pick_service_line(self, group: int) -> Optional[int]:
        """A surviving off-chip line to serve a decommissioned group from."""
        for slot in range(1, self.space.group_size):
            line = self._offchip_device_line(group, slot)
            if not self.offchip.is_stuck_line(line):
                return line
        return None

    def _decommission_group(self, now: float, group: int) -> None:
        """Retire a group's stacked slot; degrade to off-chip-only service.

        The stacked-resident line is salvaged (best-effort read, then a
        write into the OS spare pool — modelled at the surviving off-chip
        slot for timing purposes) and the group permanently stops using stacked
        DRAM: no more probes, no more swaps. Idempotent.
        """
        if group in self.decommissioned:
            return
        self.decommissioned.add(group)
        if self.fault_injector is not None:
            self.fault_injector.stats.decommissioned_groups += 1
        service_line = self._pick_service_line(group)
        self._remap[group] = service_line
        if service_line is None:
            return
        stacked_line = self._stacked_device_line(group)
        self.post(now, (
            (self.stacked, stacked_line, self._stacked_read_bytes(), False),
            (self.offchip, service_line, self.config.line_bytes, True),
        ))

    def _service_decommissioned(
        self, now: float, request: MemoryRequest, group: int
    ) -> AccessResult:
        """Serve a retired group entirely from off-chip DRAM.

        If the remap target has since failed too, pick another survivor;
        with no survivors left the access is charged a nominal off-chip
        row-conflict latency (the data now lives only in the OS's page
        cache / storage path) and counted as a dead-group service.
        """
        line = self._remap.get(group)
        if line is not None:
            try:
                res = self.offchip.access_line(now, line, is_write=request.is_write)
                return AccessResult(latency=res.latency, serviced_by_stacked=False)
            except FaultError:
                line = self._pick_service_line(group)
                self._remap[group] = line
                if line is not None:
                    try:
                        res = self.offchip.access_line(
                            now, line, is_write=request.is_write
                        )
                        return AccessResult(
                            latency=res.latency, serviced_by_stacked=False
                        )
                    except FaultError:
                        self._remap[group] = None
        if self.fault_injector is not None:
            self.fault_injector.stats.dead_group_services += 1
        nominal = self.offchip.timing.row_conflict_cycles(self.config.line_bytes)
        return AccessResult(latency=nominal, serviced_by_stacked=False)

    # -- Invariants ------------------------------------------------------------------------------

    def check_invariants(self, sample_groups: int = 64) -> None:
        """Spot-check LLT permutations (cheap enough to call in tests)."""
        step = max(1, self.space.num_groups // sample_groups)
        for group in range(0, self.space.num_groups, step):
            self.llt.check_group_invariant(group)
