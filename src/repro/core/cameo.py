"""The CAMEO memory organization controller (Sections IV and V).

CAMEO exposes stacked + off-chip DRAM as one OS-visible space and swaps
recently-used lines into stacked DRAM within congruence groups. The
controller here owns the two DRAM devices, the logical
:class:`~repro.core.llt.LineLocationTable`, and a
:class:`~repro.core.llp.LocationPredictor`; subclasses in
:mod:`repro.core.llt_designs` specialise the *timing* of LLT access
(ideal / embedded / co-located) while sharing the swap and paging logic
implemented here.

Device address mapping note: group ``g``'s stacked slot is charged at
device line ``g``. The Co-Located design's 31-LEADs-per-row shift
(:mod:`repro.core.lead`) only changes which row a group lands in, a
second-order row-locality effect under line-interleaved channels, so the
capacity cost is modelled exactly (reserved pages + 66-byte bursts) while
device addressing stays identity.
"""

from __future__ import annotations

import abc
from typing import Dict

from ..config.system import SystemConfig
from ..dram.device import DramDevice
from ..errors import ConfigurationError
from ..organization import AccessResult, MemoryOrganization
from ..request import MemoryRequest
from .congruence import CongruenceSpace
from .llp import LlpCaseStats, LocationPredictor, SamPredictor
from .llt import LineLocationTable


class CameoController(MemoryOrganization):
    """Shared CAMEO machinery: congruence space, LLT contents, swap, paging."""

    name = "cameo"

    def __init__(
        self,
        config: SystemConfig,
        predictor: LocationPredictor = None,
        swap_on_write: bool = True,
    ):
        super().__init__(config)
        self.space = CongruenceSpace(
            num_groups=config.stacked_lines, group_size=config.group_size
        )
        self.llt = LineLocationTable(self.space)
        self.predictor = predictor if predictor is not None else SamPredictor()
        self.swap_on_write = swap_on_write
        self.case_stats = LlpCaseStats()
        self.stacked = DramDevice(
            config.stacked_timing, config.stacked_bytes, config.line_bytes
        )
        self.offchip = DramDevice(
            config.offchip_timing, config.offchip_bytes, config.line_bytes
        )

    # -- Capacity ----------------------------------------------------------------

    @property
    def reserved_pages(self) -> int:
        """Pages hidden from the OS to pay for LLT storage (design-specific)."""
        return 0

    @property
    def visible_pages(self) -> int:
        return self.config.total_pages - self.reserved_pages

    @property
    def stacked_visible_pages(self) -> int:
        # The whole stacked capacity counts toward the address space; the
        # reservation is taken off the top (highest page numbers, which
        # are off-chip). Frames < stacked_pages start stacked-resident.
        return self.config.stacked_pages

    # -- Address helpers ------------------------------------------------------------

    def _stacked_device_line(self, group: int) -> int:
        return group

    def _offchip_device_line(self, group: int, slot: int) -> int:
        return self.space.offchip_device_line(group, slot)

    # -- Demand path -------------------------------------------------------------------

    def access(self, now: float, request: MemoryRequest) -> AccessResult:
        group, requested_slot = self.space.split(request.line_addr)
        actual_slot = self.llt.location_of(group, requested_slot)
        if request.is_write:
            if self.swap_on_write:
                result = self._service_write_swap(now, request, group, requested_slot, actual_slot)
            else:
                result = self._service_write_in_place(now, group, actual_slot)
        else:
            result = self._service_read(now, request, group, requested_slot, actual_slot)
        self.stats.note(request, result.serviced_by_stacked)
        return result

    @abc.abstractmethod
    def _service_read(
        self,
        now: float,
        request: MemoryRequest,
        group: int,
        requested_slot: int,
        actual_slot: int,
    ) -> AccessResult:
        """Design-specific demand-read timing (includes swap on off-chip hit)."""

    @abc.abstractmethod
    def _service_write_in_place(
        self, now: float, group: int, actual_slot: int
    ) -> AccessResult:
        """Design-specific writeback timing (no location change)."""

    @abc.abstractmethod
    def _service_write_swap(
        self,
        now: float,
        request: MemoryRequest,
        group: int,
        requested_slot: int,
        actual_slot: int,
    ) -> AccessResult:
        """Writeback that upgrades the line into stacked DRAM.

        A writeback is an access too, so by default CAMEO retains the
        written line in stacked memory. Unlike a read swap there is no
        demand fetch: the incoming data fully overwrites the line, so the
        off-chip side of the swap is just the victim's write-out.
        """

    # -- The swap (Section IV-A, "Line Swapping") ------------------------------------------

    def _perform_swap(
        self,
        time: float,
        group: int,
        requested_slot: int,
        actual_slot: int,
        victim_prefetched: bool,
    ) -> None:
        """Move the requested line into the stacked slot, victim out.

        Unlike a cache eviction, the victim is the *only* copy of its
        line, so the off-chip write always happens. ``victim_prefetched``
        is True when the stacked probe already returned the victim's data
        (the Co-Located LEAD read), saving one stacked read. The swap
        uses the writeback/fill queues, i.e. it is off the critical path:
        its device traffic is *posted* at the demand access's completion
        time, so only its bandwidth (device occupancy) affects later
        requests.
        """
        stacked_line = self._stacked_device_line(group)
        offchip_line = self._offchip_device_line(group, actual_slot)
        write_bytes = self._stacked_write_bytes()

        def do_swap_traffic(t: float) -> None:
            if not victim_prefetched:
                self.stacked.access_line(t, stacked_line)
            self.stacked.access(t, stacked_line, write_bytes, True)
            self.offchip.access_line(t, offchip_line, True)

        self.post(time, do_swap_traffic)
        self.llt.swap_to_stacked(group, requested_slot)
        self.stats.line_swaps += 1

    def _stacked_write_bytes(self) -> int:
        """Bytes per stacked data write (66 for LEAD designs, else 64)."""
        return self.config.line_bytes

    def _stacked_read_bytes(self) -> int:
        """Bytes per stacked data read."""
        return self.config.line_bytes

    # -- Paging traffic ---------------------------------------------------------------------

    def _split_frame_lines(self, frame: int):
        """Partition a frame's lines into stacked- and off-chip-resident."""
        stacked_lines = 0
        offchip_lines = 0
        for line in self._frame_lines(frame):
            group, requested_slot = self.space.split(line)
            if self.llt.location_of(group, requested_slot) == 0:
                stacked_lines += 1
            else:
                offchip_lines += 1
        return stacked_lines, offchip_lines

    def page_fill(self, now: float, frame: int) -> None:
        n_stacked, n_offchip = self._split_frame_lines(frame)
        first = frame * self.config.lines_per_page
        if n_stacked:
            self.stacked.stream(now, first, n_stacked, is_write=True)
        if n_offchip:
            self.offchip.stream(now, first, n_offchip, is_write=True)

    def page_drain(self, now: float, frame: int) -> None:
        n_stacked, n_offchip = self._split_frame_lines(frame)
        first = frame * self.config.lines_per_page
        if n_stacked:
            self.stacked.stream(now, first, n_stacked, is_write=False)
        if n_offchip:
            self.offchip.stream(now, first, n_offchip, is_write=False)

    def devices(self) -> Dict[str, DramDevice]:
        return {"stacked": self.stacked, "offchip": self.offchip}

    # -- Invariants ------------------------------------------------------------------------------

    def check_invariants(self, sample_groups: int = 64) -> None:
        """Spot-check LLT permutations (cheap enough to call in tests)."""
        step = max(1, self.space.num_groups // sample_groups)
        for group in range(0, self.space.num_groups, step):
            self.llt.check_group_invariant(group)
