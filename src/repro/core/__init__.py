"""CAMEO core: congruence groups, LLT, LEAD layout, LLP, controllers."""

from .cameo import CameoController
from .congruence import CongruenceSpace
from .extensions import FreqHintCameo, SetAssociativeCameo, SuperGroupTable
from .lead import LEAD_BYTES, LEADS_PER_ROW, LINES_PER_ROW, LeadLayout
from .llp import (
    LastLocationPredictor,
    LlpCaseStats,
    LocationPredictor,
    PerfectPredictor,
    SamPredictor,
)
from .llt import LineLocationTable
from .llt_designs import (
    CoLocatedLltCameo,
    EmbeddedLltCameo,
    IdealLltCameo,
    SramLltCameo,
)

__all__ = [
    "CameoController",
    "CoLocatedLltCameo",
    "CongruenceSpace",
    "FreqHintCameo",
    "SetAssociativeCameo",
    "SuperGroupTable",
    "EmbeddedLltCameo",
    "IdealLltCameo",
    "LEAD_BYTES",
    "LEADS_PER_ROW",
    "LINES_PER_ROW",
    "LastLocationPredictor",
    "LeadLayout",
    "LineLocationTable",
    "LlpCaseStats",
    "LocationPredictor",
    "PerfectPredictor",
    "SamPredictor",
    "SramLltCameo",
]
