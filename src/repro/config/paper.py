"""Verbatim constants from Table I of the paper (baseline configuration).

These are the *unscaled* paper values. :mod:`repro.config.system` derives
runnable (scaled-down) configurations from them; nothing else in the
library should hard-code a Table I number.
"""

from __future__ import annotations

from ..units import GIB, KIB, MIB

# --- Processors -----------------------------------------------------------
PAPER_NUM_CORES = 32
PAPER_CPU_FREQ_GHZ = 3.2
PAPER_CORE_WIDTH = 2

# --- Last Level Cache -----------------------------------------------------
PAPER_L3_BYTES = 32 * MIB
PAPER_L3_WAYS = 16
PAPER_L3_LATENCY_CYCLES = 24

# --- Stacked DRAM ---------------------------------------------------------
PAPER_STACKED_BYTES = 4 * GIB
PAPER_STACKED_BUS_GHZ = 1.6          # DDR 3.2 GHz effective
PAPER_STACKED_CHANNELS = 16
PAPER_STACKED_BANKS_PER_CHANNEL = 16
PAPER_STACKED_BUS_BITS = 128         # per channel
PAPER_STACKED_ROW_BUFFER_BYTES = 2 * KIB   # Section IV-D

# --- Off-chip DRAM --------------------------------------------------------
PAPER_OFFCHIP_BYTES = 12 * GIB
PAPER_OFFCHIP_BUS_GHZ = 0.8          # DDR 1.6 GHz effective
PAPER_OFFCHIP_CHANNELS = 8
PAPER_OFFCHIP_BANKS_PER_CHANNEL = 8
PAPER_OFFCHIP_BUS_BITS = 64          # per channel
PAPER_OFFCHIP_ROW_BUFFER_BYTES = 8 * KIB   # typical DDR3 rank (not in Table I)

# Shared DRAM core timings, in bus cycles (both devices use 9-9-9-36).
PAPER_TCAS = 9
PAPER_TRCD = 9
PAPER_TRP = 9
PAPER_TRAS = 36

# --- SSD storage ----------------------------------------------------------
PAPER_PAGE_FAULT_CYCLES = 100_000    # 32 microseconds at 3.2 GHz

# --- CAMEO structural constants (Sections IV-C/IV-D) -----------------------
#: Lines per congruence group in the evaluated 4 GB + 12 GB system.
PAPER_CONGRUENCE_GROUP_SIZE = 4
#: Bytes of location metadata used per LLT entry (one byte holds four
#: two-bit slots; a second byte is "reserved for future use").
PAPER_LLT_ENTRY_BYTES = 1
#: A LEAD is a 64-byte data line plus 2 bytes of location metadata.
PAPER_LEAD_BYTES = 66
#: LEADs that fit in one 2 KB stacked row (one line sacrificed per row).
PAPER_LEADS_PER_ROW = 31
PAPER_LINES_PER_ROW = 32
#: Stacked-DRAM burst length used to fetch one LEAD (5 x 16 B = 80 B).
PAPER_LEAD_BURST_BEATS = 5
#: Per-core LLP geometry (Section V-B).
PAPER_LLP_ENTRIES = 256
PAPER_LLP_BITS_PER_ENTRY = 2

# --- Headline results (Section VI-A), used as shape targets ---------------
PAPER_SPEEDUP_CACHE = 1.50
PAPER_SPEEDUP_TLM_STATIC = 1.33
PAPER_SPEEDUP_TLM_DYNAMIC = 1.50
PAPER_SPEEDUP_CAMEO = 1.78
PAPER_SPEEDUP_DOUBLEUSE = 1.82
PAPER_SPEEDUP_TLM_FREQ = 1.61
PAPER_SPEEDUP_CAMEO_SAM = 1.74
PAPER_SPEEDUP_CAMEO_PERFECT = 1.80
PAPER_LLP_ACCURACY = 0.917
PAPER_SAM_STACKED_FRACTION = 0.703
