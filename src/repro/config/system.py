"""System geometry: the scaled-down counterpart of the paper's machine.

The paper evaluates 4 GB of stacked DRAM in front of 12 GB of off-chip
DRAM under 20-billion-instruction SPEC slices. A pure-Python simulator
cannot hold that, so :func:`scaled_paper_system` shrinks every *capacity*
by ``2**scale_shift`` while keeping every *ratio* the mechanisms depend
on intact:

* stacked : off-chip stays 1 : 3, so the congruence-group size is still 4;
* line (64 B) and page (4 KB) sizes are unchanged, so a page is still 64
  lines and spatial-locality effects are preserved;
* DRAM timings are unchanged, so the latency and bandwidth gaps between
  the two devices match Table I;
* workload footprints (Table II) are scaled by the same factor in
  :mod:`repro.workloads.spec`, so footprint/DRAM pressure is preserved.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..units import LINE_BYTES, PAGE_BYTES, is_power_of_two, log2_exact
from . import paper
from .timing import DramTimingParams, paper_offchip_timing, paper_stacked_timing

#: Default capacity scale: 2**12 = 4096x smaller than the paper machine
#: (4 GB stacked becomes 1 MiB; 12 GB off-chip becomes 3 MiB).
DEFAULT_SCALE_SHIFT = 12


@dataclass(frozen=True)
class L3Config:
    """Shared last-level cache parameters (Table I)."""

    capacity_bytes: int
    ways: int
    latency_cycles: int
    line_bytes: int = LINE_BYTES

    def __post_init__(self) -> None:
        if self.capacity_bytes % (self.ways * self.line_bytes):
            raise ConfigurationError("L3 capacity must be a whole number of sets")

    @property
    def num_sets(self) -> int:
        return self.capacity_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class SystemConfig:
    """Complete hardware description for one simulated machine.

    Instances are immutable; derive variants with :meth:`replace`.
    """

    stacked_bytes: int
    offchip_bytes: int
    stacked_timing: DramTimingParams
    offchip_timing: DramTimingParams
    l3: L3Config
    line_bytes: int = LINE_BYTES
    page_bytes: int = PAGE_BYTES
    num_contexts: int = 4
    cpi_base: float = 0.5
    memory_level_parallelism: float = 2.0
    page_fault_cycles: int = paper.PAPER_PAGE_FAULT_CYCLES
    clock_random_probes: int = 5
    scale_shift: int = DEFAULT_SCALE_SHIFT

    def __post_init__(self) -> None:
        if self.stacked_bytes % self.line_bytes or self.offchip_bytes % self.line_bytes:
            raise ConfigurationError("DRAM capacities must be line-aligned")
        if self.page_bytes % self.line_bytes:
            raise ConfigurationError("page size must be a multiple of the line size")
        if not is_power_of_two(self.stacked_lines):
            raise ConfigurationError(
                "stacked capacity must be a power-of-two number of lines so the "
                "congruence group is selected by the low address bits (Section IV-A)"
            )
        if self.offchip_bytes % self.stacked_bytes:
            raise ConfigurationError(
                "off-chip capacity must be a multiple of stacked capacity so every "
                "congruence group has the same number of lines"
            )
        if self.stacked_bytes % self.page_bytes or self.offchip_bytes % self.page_bytes:
            raise ConfigurationError("DRAM capacities must be page-aligned")
        if self.num_contexts <= 0:
            raise ConfigurationError("num_contexts must be positive")
        if self.memory_level_parallelism < 1.0:
            raise ConfigurationError("MLP factor below 1 would amplify latencies")

    # -- Line-space geometry -------------------------------------------------

    @property
    def lines_per_page(self) -> int:
        return self.page_bytes // self.line_bytes

    @property
    def stacked_lines(self) -> int:
        return self.stacked_bytes // self.line_bytes

    @property
    def offchip_lines(self) -> int:
        return self.offchip_bytes // self.line_bytes

    @property
    def total_lines(self) -> int:
        """Lines in the combined (TLM/CAMEO) physical address space."""
        return self.stacked_lines + self.offchip_lines

    @property
    def group_size(self) -> int:
        """Lines per congruence group (paper: 4 for a 4 GB + 12 GB system)."""
        return self.total_lines // self.stacked_lines

    @property
    def num_groups(self) -> int:
        """Number of congruence groups (= number of stacked lines)."""
        return self.stacked_lines

    @property
    def group_index_bits(self) -> int:
        """Low address bits selecting the congruence group."""
        return log2_exact(self.stacked_lines)

    # -- Page-space geometry ---------------------------------------------------

    @property
    def stacked_pages(self) -> int:
        return self.stacked_bytes // self.page_bytes

    @property
    def offchip_pages(self) -> int:
        return self.offchip_bytes // self.page_bytes

    @property
    def total_pages(self) -> int:
        return self.stacked_pages + self.offchip_pages

    # -- Derived structure sizes (Section IV-C) --------------------------------

    @property
    def llt_entries(self) -> int:
        """One LLT entry per congruence group."""
        return self.num_groups

    @property
    def llt_bytes(self) -> int:
        """Total LLT size (paper: 64 MB for the 16 GB machine)."""
        return self.llt_entries * paper.PAPER_LLT_ENTRY_BYTES

    def replace(self, **overrides: object) -> "SystemConfig":
        """Return a copy with the given fields overridden."""
        return dataclasses.replace(self, **overrides)

    def fingerprint(self) -> str:
        """A stable content hash of every configuration field.

        Two configs fingerprint equal exactly when they describe the
        same machine; run provenance uses this to verify that results
        being compared (e.g. a sweep against a reused baseline) came
        from the same system.
        """
        import hashlib
        import json

        blob = json.dumps(
            dataclasses.asdict(self), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]


def scaled_paper_system(
    scale_shift: int = DEFAULT_SCALE_SHIFT,
    num_contexts: int = 4,
    memory_level_parallelism: float = 2.0,
    scale_channels_to_contexts: bool = True,
) -> SystemConfig:
    """Build the Table I machine with capacities divided by ``2**scale_shift``.

    ``scale_shift=0`` reproduces the paper geometry exactly (4 GB + 12 GB,
    32 MB L3); the default ``12`` yields a 1 MiB + 3 MiB machine that runs
    in seconds. Timings are never scaled.

    ``scale_channels_to_contexts`` keeps the paper's *cores-per-channel*
    pressure (32 cores over 16 stacked / 8 off-chip channels) when fewer
    contexts are simulated, by shrinking both channel counts by the same
    factor — the 8x stacked:off-chip bandwidth ratio is preserved. Without
    it, a handful of contexts cannot saturate a 32-core memory system and
    every bandwidth effect in the paper disappears.
    """
    if scale_shift < 0:
        raise ConfigurationError("scale_shift must be non-negative")
    factor = 1 << scale_shift
    stacked = paper.PAPER_STACKED_BYTES // factor
    offchip = paper.PAPER_OFFCHIP_BYTES // factor
    l3_bytes = max(
        paper.PAPER_L3_BYTES // factor,
        paper.PAPER_L3_WAYS * LINE_BYTES,
    )
    if stacked < PAGE_BYTES:
        raise ConfigurationError(f"scale_shift={scale_shift} shrinks stacked DRAM below one page")
    stacked_timing = paper_stacked_timing()
    offchip_timing = paper_offchip_timing()
    if scale_channels_to_contexts and num_contexts < paper.PAPER_NUM_CORES:
        stacked_timing = dataclasses.replace(
            stacked_timing,
            channels=max(1, stacked_timing.channels * num_contexts // paper.PAPER_NUM_CORES),
        )
        offchip_timing = dataclasses.replace(
            offchip_timing,
            channels=max(1, offchip_timing.channels * num_contexts // paper.PAPER_NUM_CORES),
        )
    return SystemConfig(
        stacked_bytes=stacked,
        offchip_bytes=offchip,
        stacked_timing=stacked_timing,
        offchip_timing=offchip_timing,
        l3=L3Config(
            capacity_bytes=l3_bytes,
            ways=paper.PAPER_L3_WAYS,
            latency_cycles=paper.PAPER_L3_LATENCY_CYCLES,
        ),
        num_contexts=num_contexts,
        memory_level_parallelism=memory_level_parallelism,
        scale_shift=scale_shift,
    )
