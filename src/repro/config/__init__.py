"""Configuration layer: Table I constants, DRAM timings, scaled systems."""

from .paper import (
    PAPER_CONGRUENCE_GROUP_SIZE,
    PAPER_LEAD_BYTES,
    PAPER_LEADS_PER_ROW,
    PAPER_LLP_ENTRIES,
    PAPER_PAGE_FAULT_CYCLES,
)
from .system import DEFAULT_SCALE_SHIFT, L3Config, SystemConfig, scaled_paper_system
from .timing import DramTimingParams, paper_offchip_timing, paper_stacked_timing

__all__ = [
    "DEFAULT_SCALE_SHIFT",
    "DramTimingParams",
    "L3Config",
    "PAPER_CONGRUENCE_GROUP_SIZE",
    "PAPER_LEAD_BYTES",
    "PAPER_LEADS_PER_ROW",
    "PAPER_LLP_ENTRIES",
    "PAPER_PAGE_FAULT_CYCLES",
    "SystemConfig",
    "paper_offchip_timing",
    "paper_stacked_timing",
    "scaled_paper_system",
]
