"""DRAM timing parameter sets and the CPU-cycle latency arithmetic.

Table I specifies bus frequencies, channel widths, and the 9-9-9-36 core
timings for both DRAM devices. This module turns those into CPU-cycle
latencies for the three row-buffer outcomes (hit, closed-row, conflict)
plus data-transfer time for an arbitrary burst, which is all the
:mod:`repro.dram` device model needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from . import paper


@dataclass(frozen=True)
class DramTimingParams:
    """Timing and geometry of one DRAM device (stacked or off-chip).

    Attributes:
        name: Human-readable device name ("stacked" / "offchip").
        channels: Independent channels (each with its own bus).
        banks_per_channel: Banks per channel, each with one row buffer.
        bus_cycle_cpu_cycles: CPU cycles per DRAM bus cycle.
        bytes_per_beat: Bytes moved per half-bus-cycle (DDR beat).
        tcas: Column access latency, in bus cycles.
        trcd: RAS-to-CAS delay, in bus cycles.
        trp: Row precharge latency, in bus cycles.
        tras: Row active time, in bus cycles.
        row_buffer_bytes: Row buffer size; determines row locality.
    """

    name: str
    channels: int
    banks_per_channel: int
    bus_cycle_cpu_cycles: float
    bytes_per_beat: int
    tcas: int
    trcd: int
    trp: int
    tras: int
    row_buffer_bytes: int
    #: Refresh interval and refresh-cycle time, in CPU cycles. Zero
    #: disables refresh (the default: Table I does not specify it and
    #: it is a second-order effect; enable for sensitivity studies).
    refresh_interval_cycles: float = 0.0
    refresh_duration_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.channels <= 0 or self.banks_per_channel <= 0:
            raise ConfigurationError(f"{self.name}: channels/banks must be positive")
        if self.bus_cycle_cpu_cycles <= 0:
            raise ConfigurationError(f"{self.name}: bus cycle time must be positive")
        if self.bytes_per_beat <= 0 or self.row_buffer_bytes <= 0:
            raise ConfigurationError(f"{self.name}: widths must be positive")
        if self.refresh_interval_cycles < 0 or self.refresh_duration_cycles < 0:
            raise ConfigurationError(f"{self.name}: refresh timings must be non-negative")
        if self.refresh_duration_cycles and not self.refresh_interval_cycles:
            raise ConfigurationError(
                f"{self.name}: refresh duration without an interval"
            )

    @property
    def refresh_enabled(self) -> bool:
        return self.refresh_interval_cycles > 0 and self.refresh_duration_cycles > 0

    # -- Derived latencies, all in CPU cycles -------------------------------

    def transfer_cycles(self, n_bytes: int) -> float:
        """CPU cycles to stream ``n_bytes`` over one channel's bus.

        DDR moves ``bytes_per_beat`` twice per bus cycle; partial beats
        still occupy a full beat slot (burst-of-five for an 80-byte LEAD
        takes 2.5 bus cycles on a 16-byte bus).
        """
        if n_bytes <= 0:
            raise ConfigurationError("transfer size must be positive")
        beats = -(-n_bytes // self.bytes_per_beat)
        return beats * self.bus_cycle_cpu_cycles / 2.0

    def row_hit_cycles(self, n_bytes: int) -> float:
        """Latency when the target row is already open (tCAS + transfer)."""
        return self.tcas * self.bus_cycle_cpu_cycles + self.transfer_cycles(n_bytes)

    def row_closed_cycles(self, n_bytes: int) -> float:
        """Latency when the bank has no open row (tRCD + tCAS + transfer)."""
        return (self.trcd + self.tcas) * self.bus_cycle_cpu_cycles + self.transfer_cycles(n_bytes)

    def row_conflict_cycles(self, n_bytes: int) -> float:
        """Latency when another row is open (tRP + tRCD + tCAS + transfer)."""
        cycles = (self.trp + self.trcd + self.tcas) * self.bus_cycle_cpu_cycles
        return cycles + self.transfer_cycles(n_bytes)

    def peak_bandwidth_bytes_per_cycle(self) -> float:
        """Aggregate peak bandwidth across channels, bytes per CPU cycle."""
        per_channel = 2.0 * self.bytes_per_beat / self.bus_cycle_cpu_cycles
        return per_channel * self.channels


def paper_stacked_timing() -> DramTimingParams:
    """Table I stacked-DRAM timing at a 3.2 GHz CPU clock."""
    return DramTimingParams(
        name="stacked",
        channels=paper.PAPER_STACKED_CHANNELS,
        banks_per_channel=paper.PAPER_STACKED_BANKS_PER_CHANNEL,
        bus_cycle_cpu_cycles=paper.PAPER_CPU_FREQ_GHZ / paper.PAPER_STACKED_BUS_GHZ,
        bytes_per_beat=paper.PAPER_STACKED_BUS_BITS // 8,
        tcas=paper.PAPER_TCAS,
        trcd=paper.PAPER_TRCD,
        trp=paper.PAPER_TRP,
        tras=paper.PAPER_TRAS,
        row_buffer_bytes=paper.PAPER_STACKED_ROW_BUFFER_BYTES,
    )


def paper_offchip_timing() -> DramTimingParams:
    """Table I off-chip DDR3 timing at a 3.2 GHz CPU clock."""
    return DramTimingParams(
        name="offchip",
        channels=paper.PAPER_OFFCHIP_CHANNELS,
        banks_per_channel=paper.PAPER_OFFCHIP_BANKS_PER_CHANNEL,
        bus_cycle_cpu_cycles=paper.PAPER_CPU_FREQ_GHZ / paper.PAPER_OFFCHIP_BUS_GHZ,
        bytes_per_beat=paper.PAPER_OFFCHIP_BUS_BITS // 8,
        tcas=paper.PAPER_TCAS,
        trcd=paper.PAPER_TRCD,
        trp=paper.PAPER_TRP,
        tras=paper.PAPER_TRAS,
        row_buffer_bytes=paper.PAPER_OFFCHIP_ROW_BUFFER_BYTES,
    )
