"""Exception hierarchy for the CAMEO reproduction library.

All library-specific failures derive from :class:`ReproError` so callers
can catch the whole family with one handler while still distinguishing
configuration mistakes from runtime simulation faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A system or experiment configuration is inconsistent.

    Examples: a stacked-DRAM capacity that is not a power-of-two number
    of lines, or a workload footprint of zero pages.
    """


class SimulationError(ReproError):
    """The simulation reached an internally inconsistent state.

    These indicate bugs (e.g. the LLT mapping lost its permutation
    property), never bad user input, so they should not be caught and
    ignored.
    """


class WorkloadError(ReproError):
    """A workload name is unknown or its parameters are invalid."""
