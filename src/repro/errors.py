"""Exception hierarchy for the CAMEO reproduction library.

All library-specific failures derive from :class:`ReproError` so callers
can catch the whole family with one handler while still distinguishing
configuration mistakes from runtime simulation faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A system or experiment configuration is inconsistent.

    Examples: a stacked-DRAM capacity that is not a power-of-two number
    of lines, or a workload footprint of zero pages.
    """


class EnvKnobError(ConfigurationError):
    """An environment knob holds a value outside its accepted set.

    Raised when a mode-selecting environment variable (e.g.
    ``REPRO_DISPATCH`` or ``REPRO_RESULT_CACHE``) names a value this
    build does not understand. The message always names the variable,
    the offending value, and the full accepted set, and the CLI maps it
    to exit code 2 — a typo in an env knob must fail loudly up front,
    never silently fall back to a default the operator did not choose.
    """


class RemoteError(ReproError):
    """A remote worker endpoint could not serve cells.

    The transient family (connection refused/reset, handshake timeout)
    is handled inside the supervisor by reconnect-with-backoff and
    endpoint quarantine; what escapes to callers is configuration-level:
    an endpoint spec that cannot be parsed, or ``dispatch="remote"``
    with no endpoints at all.
    """


class RemoteProtocolError(RemoteError):
    """The two ends of a remote-dispatch connection cannot cooperate.

    Version skew (different protocol revisions), fingerprint skew
    (different simulator builds — results would not be byte-identical),
    or a malformed frame. Deterministic by nature: reconnecting the
    same two builds reproduces it, so the endpoint is quarantined
    immediately instead of burning the retry budget.
    """


class SimulationError(ReproError):
    """The simulation reached an internally inconsistent state.

    These indicate bugs (e.g. the LLT mapping lost its permutation
    property), never bad user input, so they should not be caught and
    ignored.
    """


class WorkloadError(ReproError):
    """A workload name is unknown or its parameters are invalid."""


class FaultError(ReproError):
    """A modeled hardware fault was detected and could not be corrected.

    Raised by the DRAM device model when SECDED detects corruption it
    cannot fix (an uncorrectable transient, or any read of a stuck-at
    row). The memory organization catches these and applies its recovery
    policy — retry, or congruence-group decommission for ``permanent``
    faults — so under fault injection they are control flow, not bugs.
    """

    def __init__(
        self,
        message: str,
        device: str = "",
        line_addr: int = -1,
        permanent: bool = False,
    ):
        super().__init__(message)
        self.device = device
        self.line_addr = line_addr
        self.permanent = permanent


class RecoveryExhaustedError(FaultError):
    """Every recovery avenue for an access failed.

    Bounded retry-with-backoff ran out of attempts, or a decommissioned
    congruence group has no surviving off-chip slot left to serve from.
    Treated like a permanent fault by callers.
    """

    def __init__(self, message: str, device: str = "", line_addr: int = -1):
        super().__init__(message, device=device, line_addr=line_addr, permanent=True)


class CampaignError(ReproError):
    """A campaign run cannot proceed (e.g. a checkpoint from another spec)."""


class PlanError(ReproError):
    """A campaign plan file, status file, or resume manifest is invalid.

    Raised at parse/validation time with the offending file (and line,
    where one exists) named in the message — a malformed plan must fail
    loudly before anything simulates, never as a mid-run ``KeyError``.
    """


class PlanExecutionError(PlanError):
    """A plan stage failed and its ``on_failure: abort`` policy stopped the run.

    Carries the stage name and the aggregated cell failures; stages that
    fail under ``continue``/``skip-dependents`` policies do not raise —
    they are reported through the status file instead.
    """

    def __init__(self, message: str, stage: str = ""):
        super().__init__(message)
        self.stage = stage


class IngestError(WorkloadError):
    """An external trace file failed strict ingestion validation.

    Every message names the file and, for record-level problems, the
    1-based line number; a trace that is truncated, fails its checksum,
    or exceeds its malformed-record budget is rejected whole — ingestion
    never silently yields a partial trace.
    """


class ParallelError(ReproError):
    """A parallel grid could not produce every required cell.

    Raised *after* the whole grid has run, aggregating every failed
    job's error, so one bad cell reports alongside its peers instead of
    killing the fan-out mid-flight.
    """


class InterruptedRunError(ReproError):
    """A supervised run was stopped by SIGINT/SIGTERM before completing.

    Not a failure: every cell that finished before the signal has
    already been settled (and, on the grid path, flushed to the result
    store), so the run can be completed later. ``outcomes`` holds the
    partial per-job outcome list (``None`` for cells that never
    finished) and ``pending_keys`` names the unfinished cells. The CLI
    maps this to its own distinct exit code and, for ``repro paper``,
    writes a resume manifest first.
    """

    def __init__(
        self,
        message: str,
        signal_name: str = "SIGINT",
        outcomes=None,
        pending_keys=(),
    ):
        super().__init__(message)
        self.signal_name = signal_name
        self.outcomes = outcomes
        self.pending_keys = list(pending_keys)
