"""A generic set-associative, write-back, write-allocate SRAM cache.

This is the substrate used for the shared L3 in front of every memory
organization. It works purely on line addresses; timing lives in the
simulation engine (the L3 has a fixed pipeline latency from Table I).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import ConfigurationError
from .replacement import LruPolicy, ReplacementPolicy


@dataclass
class CacheLineState:
    """Metadata for one way of one set."""

    valid: bool = False
    tag: int = 0
    dirty: bool = False


@dataclass(frozen=True)
class CacheAccessResult:
    """What happened on one cache access."""

    hit: bool
    #: Line address of a dirty line displaced by this access, if any.
    writeback_line: Optional[int] = None
    #: Line address of any line displaced (dirty or clean), if any.
    evicted_line: Optional[int] = None


class SetAssociativeCache:
    """Line-granularity set-associative cache with pluggable replacement."""

    def __init__(
        self,
        capacity_bytes: int,
        ways: int,
        line_bytes: int = 64,
        policy: Optional[ReplacementPolicy] = None,
    ):
        if capacity_bytes <= 0 or ways <= 0:
            raise ConfigurationError("cache capacity and ways must be positive")
        if capacity_bytes % (ways * line_bytes):
            raise ConfigurationError("cache capacity must be a whole number of sets")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = capacity_bytes // (ways * line_bytes)
        self.policy = policy if policy is not None else LruPolicy()
        self._sets: List[List[CacheLineState]] = [
            [CacheLineState() for _ in range(ways)] for _ in range(self.num_sets)
        ]
        self._policy_state = [self.policy.new_set(ways) for _ in range(self.num_sets)]

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.ways

    def _index(self, line_addr: int) -> int:
        return line_addr % self.num_sets

    def _tag(self, line_addr: int) -> int:
        return line_addr // self.num_sets

    def _line_addr(self, set_idx: int, tag: int) -> int:
        return tag * self.num_sets + set_idx

    def probe(self, line_addr: int) -> bool:
        """Non-destructive presence check (no replacement-state update)."""
        set_idx = self._index(line_addr)
        tag = self._tag(line_addr)
        return any(w.valid and w.tag == tag for w in self._sets[set_idx])

    def access(self, line_addr: int, is_write: bool = False) -> CacheAccessResult:
        """Reference ``line_addr``; on a miss, allocate it (write-allocate).

        Returns whether it hit and which line, if any, was displaced.
        """
        set_idx = self._index(line_addr)
        tag = self._tag(line_addr)
        ways = self._sets[set_idx]
        state = self._policy_state[set_idx]

        for way, entry in enumerate(ways):
            if entry.valid and entry.tag == tag:
                if is_write:
                    entry.dirty = True
                self.policy.on_access(state, way)
                return CacheAccessResult(hit=True)

        # Miss: prefer an invalid way, else evict the policy's victim.
        victim_way = next((w for w, e in enumerate(ways) if not e.valid), None)
        writeback = None
        evicted = None
        if victim_way is None:
            victim_way = self.policy.choose_victim(state)
            victim = ways[victim_way]
            evicted = self._line_addr(set_idx, victim.tag)
            if victim.dirty:
                writeback = evicted
        entry = ways[victim_way]
        entry.valid = True
        entry.tag = tag
        entry.dirty = is_write
        self.policy.on_fill(state, victim_way)
        return CacheAccessResult(hit=False, writeback_line=writeback, evicted_line=evicted)

    def invalidate(self, line_addr: int) -> bool:
        """Drop ``line_addr`` if present; returns True when it was cached."""
        set_idx = self._index(line_addr)
        tag = self._tag(line_addr)
        for entry in self._sets[set_idx]:
            if entry.valid and entry.tag == tag:
                entry.valid = False
                entry.dirty = False
                return True
        return False

    def resident_lines(self) -> List[int]:
        """All currently-cached line addresses (for tests and invariants)."""
        lines = []
        for set_idx, ways in enumerate(self._sets):
            for entry in ways:
                if entry.valid:
                    lines.append(self._line_addr(set_idx, entry.tag))
        return lines
