"""A generic set-associative, write-back, write-allocate SRAM cache.

This is the substrate used for the shared L3 in front of every memory
organization. It works purely on line addresses; timing lives in the
simulation engine (the L3 has a fixed pipeline latency from Table I).

Hot-path layout: way metadata lives in parallel flat arrays indexed by
``set * ways + way`` (``bytearray`` valid/dirty bits, a plain list of
tags) rather than per-way objects, and :meth:`access` returns one
reusable :class:`CacheAccessResult` — the per-access allocations that a
miss-level simulation multiplies by hundreds of millions are gone. The
result object is only valid until the next ``access`` call on the same
cache; callers must consume it immediately (the engine does).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import List, Optional

from ..errors import ConfigurationError
from .replacement import LruPolicy, ReplacementPolicy


@dataclass
class CacheLineState:
    """Metadata for one way of one set (reporting/introspection view).

    The cache itself stores flat arrays; :meth:`SetAssociativeCache.line_state`
    materializes one of these on demand for tests and debugging.
    """

    valid: bool = False
    tag: int = 0
    dirty: bool = False


class CacheAccessResult:
    """What happened on one cache access.

    Mutable and reused by the owning cache: read ``hit`` /
    ``writeback_line`` / ``evicted_line`` before the next access.
    """

    __slots__ = ("hit", "writeback_line", "evicted_line")

    def __init__(
        self,
        hit: bool,
        writeback_line: Optional[int] = None,
        evicted_line: Optional[int] = None,
    ):
        self.hit = hit
        #: Line address of a dirty line displaced by this access, if any.
        self.writeback_line = writeback_line
        #: Line address of any line displaced (dirty or clean), if any.
        self.evicted_line = evicted_line

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CacheAccessResult(hit={self.hit}, "
                f"writeback_line={self.writeback_line}, "
                f"evicted_line={self.evicted_line})")


class SetAssociativeCache:
    """Line-granularity set-associative cache with pluggable replacement."""

    def __init__(
        self,
        capacity_bytes: int,
        ways: int,
        line_bytes: int = 64,
        policy: Optional[ReplacementPolicy] = None,
    ):
        if capacity_bytes <= 0 or ways <= 0:
            raise ConfigurationError("cache capacity and ways must be positive")
        if capacity_bytes % (ways * line_bytes):
            raise ConfigurationError("cache capacity must be a whole number of sets")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = capacity_bytes // (ways * line_bytes)
        self.policy = policy if policy is not None else LruPolicy()
        total = self.num_sets * ways
        self._valid = bytearray(total)
        self._dirty = bytearray(total)
        self._tags = array("q", (0,)) * total
        # Columnar LRU: for the (default) plain-LRU policy the per-set
        # recency stacks live in one flat bytearray — ``_lru_order[set *
        # ways + pos]`` is the way at recency position ``pos`` (0 = MRU,
        # ways-1 = LRU victim). Semantics are identical to
        # :class:`LruPolicy`'s per-set lists, but the whole replacement
        # state is a single buffer the vectorized engine can share with
        # its compiled kernel. Other policies keep the object path.
        self._flat_lru = type(self.policy) is LruPolicy and ways <= 255
        if self._flat_lru:
            self._lru_order = bytearray(bytes(range(ways)) * self.num_sets)
            self._policy_state: Optional[list] = None
        else:
            self._lru_order = bytearray(0)
            self._policy_state = [self.policy.new_set(ways) for _ in range(self.num_sets)]
        self._result = CacheAccessResult(hit=False)

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.ways

    def _index(self, line_addr: int) -> int:
        return line_addr % self.num_sets

    def _tag(self, line_addr: int) -> int:
        return line_addr // self.num_sets

    def _line_addr(self, set_idx: int, tag: int) -> int:
        return tag * self.num_sets + set_idx

    def line_state(self, set_idx: int, way: int) -> CacheLineState:
        """Materialize one way's metadata (tests/introspection only)."""
        idx = set_idx * self.ways + way
        return CacheLineState(
            valid=bool(self._valid[idx]),
            tag=self._tags[idx],
            dirty=bool(self._dirty[idx]),
        )

    def probe(self, line_addr: int) -> bool:
        """Non-destructive presence check (no replacement-state update)."""
        set_idx = line_addr % self.num_sets
        tag = line_addr // self.num_sets
        base = set_idx * self.ways
        valid = self._valid
        tags = self._tags
        for idx in range(base, base + self.ways):
            if valid[idx] and tags[idx] == tag:
                return True
        return False

    def access(self, line_addr: int, is_write: bool = False) -> CacheAccessResult:
        """Reference ``line_addr``; on a miss, allocate it (write-allocate).

        Returns whether it hit and which line, if any, was displaced.
        The returned object is reused on the next call.
        """
        num_sets = self.num_sets
        ways = self.ways
        set_idx = line_addr % num_sets
        tag = line_addr // num_sets
        base = set_idx * ways
        valid = self._valid
        tags = self._tags
        result = self._result

        flat_lru = self._flat_lru
        for idx in range(base, base + ways):
            if valid[idx] and tags[idx] == tag:
                if is_write:
                    self._dirty[idx] = 1
                if flat_lru:
                    self._touch_lru(base, idx - base)
                else:
                    self.policy.on_access(self._policy_state[set_idx], idx - base)
                result.hit = True
                result.writeback_line = None
                result.evicted_line = None
                return result

        # Miss: prefer an invalid way, else evict the policy's victim.
        victim_way = -1
        for idx in range(base, base + ways):
            if not valid[idx]:
                victim_way = idx - base
                break
        writeback = None
        evicted = None
        if victim_way < 0:
            if flat_lru:
                victim_way = self._lru_order[base + ways - 1]
            else:
                victim_way = self.policy.choose_victim(self._policy_state[set_idx])
            idx = base + victim_way
            evicted = tags[idx] * num_sets + set_idx
            if self._dirty[idx]:
                writeback = evicted
        idx = base + victim_way
        valid[idx] = 1
        tags[idx] = tag
        self._dirty[idx] = 1 if is_write else 0
        if flat_lru:
            self._touch_lru(base, victim_way)
        else:
            self.policy.on_fill(self._policy_state[set_idx], victim_way)
        result.hit = False
        result.writeback_line = writeback
        result.evicted_line = evicted
        return result

    def _touch_lru(self, base: int, way: int) -> None:
        """Move ``way`` to the MRU position of the set starting at ``base``.

        The bytearray equivalent of ``state.remove(way);
        state.insert(0, way)`` — the slice shift copies, so overlap is
        safe. Note external evictions (:meth:`evict_line`) deliberately
        do NOT touch recency: a shot-down way keeps its stack position,
        matching the historical list-based behaviour.
        """
        order = self._lru_order
        pos = order.index(way, base, base + self.ways)
        if pos != base:
            order[base + 1:pos + 1] = order[base:pos]
            order[base] = way

    def invalidate(self, line_addr: int) -> bool:
        """Drop ``line_addr`` if present; returns True when it was cached."""
        return self.evict_line(line_addr) is not None

    def evict_line(self, line_addr: int) -> Optional[bool]:
        """Drop ``line_addr``; returns None if absent, else its dirty flag.

        Unlike :meth:`access`-driven replacement this is an external
        eviction (OS page shootdown); the caller is responsible for
        writing back a dirty line's data.
        """
        set_idx = line_addr % self.num_sets
        tag = line_addr // self.num_sets
        base = set_idx * self.ways
        valid = self._valid
        tags = self._tags
        for idx in range(base, base + self.ways):
            if valid[idx] and tags[idx] == tag:
                dirty = bool(self._dirty[idx])
                valid[idx] = 0
                self._dirty[idx] = 0
                return dirty
        return None

    def columnar_state(self):
        """Flat metadata buffers for the vectorized engine.

        ``(valid, dirty, tags, lru_order)`` — shared storage, mutations
        by a compiled kernel are visible to the object API and vice
        versa. ``lru_order`` is empty unless the cache runs the flat-LRU
        path (plain :class:`LruPolicy`, <= 255 ways); callers must check
        :attr:`_flat_lru` before lowering replacement into a kernel.
        """
        return self._valid, self._dirty, self._tags, self._lru_order

    def resident_lines(self) -> List[int]:
        """All currently-cached line addresses (for tests and invariants)."""
        lines = []
        num_sets = self.num_sets
        ways = self.ways
        for idx, is_valid in enumerate(self._valid):
            if is_valid:
                set_idx, _ = divmod(idx, ways)
                lines.append(self._tags[idx] * num_sets + set_idx)
        return lines
