"""The shared L3 (last-level cache) model with miss accounting.

Every memory organization in the paper sits behind the same 32 MB 16-way
L3 (Table I). The L3 here filters the reference stream and produces the
miss stream the organizations see; it also keeps the counters needed to
report MPKI against an instruction count supplied by the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config.system import L3Config
from .set_assoc import CacheAccessResult, SetAssociativeCache


@dataclass
class L3Stats:
    """Reference-stream counters for MPKI/miss-rate reporting."""

    accesses: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    def mpki(self, instructions: int) -> float:
        """Misses per thousand instructions (Table II's workload metric)."""
        if instructions <= 0:
            return 0.0
        return self.misses * 1000.0 / instructions


class L3Cache:
    """Thin wrapper: a set-associative cache plus L3-specific stats."""

    def __init__(self, config: L3Config):
        self.config = config
        self._cache = SetAssociativeCache(
            capacity_bytes=config.capacity_bytes,
            ways=config.ways,
            line_bytes=config.line_bytes,
        )
        self.stats = L3Stats()

    @property
    def latency_cycles(self) -> int:
        return self.config.latency_cycles

    def access(self, line_addr: int, is_write: bool = False) -> CacheAccessResult:
        """Reference a line; misses allocate and may displace a dirty line."""
        result = self._cache.access(line_addr, is_write)
        self.stats.accesses += 1
        if not result.hit:
            self.stats.misses += 1
            if result.writeback_line is not None:
                self.stats.writebacks += 1
        return result

    def probe(self, line_addr: int) -> bool:
        return self._cache.probe(line_addr)

    def invalidate(self, line_addr: int) -> bool:
        return self._cache.invalidate(line_addr)

    def evict_line(self, line_addr: int) -> Optional[bool]:
        """Drop a line; None if absent, else whether it held dirty data."""
        return self._cache.evict_line(line_addr)
