"""SRAM cache substrate: replacement policies, set-associative cache, L3."""

from .l3 import L3Cache, L3Stats
from .replacement import LruPolicy, NruPolicy, RandomPolicy, ReplacementPolicy
from .set_assoc import CacheAccessResult, CacheLineState, SetAssociativeCache

__all__ = [
    "CacheAccessResult",
    "CacheLineState",
    "L3Cache",
    "L3Stats",
    "LruPolicy",
    "NruPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SetAssociativeCache",
]
