"""Replacement policies for set-associative SRAM caches.

Policies are small strategy objects operating on an opaque per-set state
created by :meth:`ReplacementPolicy.new_set`. The cache calls
``on_access`` for hits, ``on_fill`` for installs, and ``choose_victim``
when a set is full.
"""

from __future__ import annotations

import abc
import random
from typing import Any, List


class ReplacementPolicy(abc.ABC):
    """Interface every replacement policy implements."""

    @abc.abstractmethod
    def new_set(self, ways: int) -> Any:
        """Create per-set bookkeeping state for a set with ``ways`` ways."""

    @abc.abstractmethod
    def on_access(self, state: Any, way: int) -> None:
        """Update state after a hit in ``way``."""

    @abc.abstractmethod
    def on_fill(self, state: Any, way: int) -> None:
        """Update state after a new line is installed in ``way``."""

    @abc.abstractmethod
    def choose_victim(self, state: Any) -> int:
        """Pick the way to evict from a full set."""


class LruPolicy(ReplacementPolicy):
    """True least-recently-used: per-set recency stack.

    State is a list of way indices ordered from MRU (front) to LRU (back).
    """

    def new_set(self, ways: int) -> List[int]:
        return list(range(ways))

    def on_access(self, state: List[int], way: int) -> None:
        state.remove(way)
        state.insert(0, way)

    def on_fill(self, state: List[int], way: int) -> None:
        self.on_access(state, way)

    def choose_victim(self, state: List[int]) -> int:
        return state[-1]


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection (seeded for reproducibility)."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def new_set(self, ways: int) -> int:
        return ways

    def on_access(self, state: int, way: int) -> None:
        pass

    def on_fill(self, state: int, way: int) -> None:
        pass

    def choose_victim(self, state: int) -> int:
        return self._rng.randrange(state)


class NruPolicy(ReplacementPolicy):
    """Not-recently-used: one reference bit per way, cleared on saturation.

    A cheap LRU approximation; included because large LLCs rarely afford
    true LRU and it is a useful ablation for the L3 model.
    """

    def new_set(self, ways: int) -> List[bool]:
        return [False] * ways

    def on_access(self, state: List[bool], way: int) -> None:
        state[way] = True
        if all(state):
            for i in range(len(state)):
                state[i] = i == way

    def on_fill(self, state: List[bool], way: int) -> None:
        self.on_access(state, way)

    def choose_victim(self, state: List[bool]) -> int:
        for way, referenced in enumerate(state):
            if not referenced:
                return way
        return 0
