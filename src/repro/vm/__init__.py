"""Virtual-memory substrate: page tables, clock reclaim, SSD paging."""

from .clock import ClockReplacer
from .memory_manager import MemoryManager, TranslationResult, VmStats
from .page_table import FrameInfo, PageTable, VirtualPage
from .ssd import SsdModel, SsdStats

__all__ = [
    "ClockReplacer",
    "FrameInfo",
    "MemoryManager",
    "PageTable",
    "SsdModel",
    "SsdStats",
    "TranslationResult",
    "VirtualPage",
    "VmStats",
]
