"""Forward and inverted page tables.

Virtual pages are keyed by ``(asid, vpage)`` so rate-mode contexts (the
paper runs 32 copies of the same benchmark) never share physical frames:
"The virtual-to-physical mapping ensures that multiple benchmarks do not
map to the same physical address" (Section III-B).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

VirtualPage = Tuple[int, int]  # (address-space id, virtual page number)


class FrameInfo:
    """Per-frame metadata used by the clock replacement algorithm.

    ``__slots__``: one per physical frame, touched on every translation.
    """

    __slots__ = ("vpage", "referenced", "dirty")

    def __init__(
        self,
        vpage: Optional[VirtualPage] = None,
        referenced: bool = False,
        dirty: bool = False,
    ):
        self.vpage = vpage
        self.referenced = referenced
        self.dirty = dirty

    @property
    def valid(self) -> bool:
        return self.vpage is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FrameInfo(vpage={self.vpage}, referenced={self.referenced}, "
                f"dirty={self.dirty})")


class PageTable:
    """Bidirectional vpage <-> frame mapping with frame metadata."""

    def __init__(self, num_frames: int):
        self.num_frames = num_frames
        self._forward: Dict[VirtualPage, int] = {}
        self.frames = [FrameInfo() for _ in range(num_frames)]

    def lookup(self, vpage: VirtualPage) -> Optional[int]:
        """Return the frame holding ``vpage``, or None when not resident."""
        return self._forward.get(vpage)

    def map(self, vpage: VirtualPage, frame: int) -> None:
        """Install ``vpage`` into ``frame`` (which must be empty)."""
        info = self.frames[frame]
        if info.valid:
            raise ValueError(f"frame {frame} already holds {info.vpage}")
        if vpage in self._forward:
            raise ValueError(f"{vpage} is already mapped")
        info.vpage = vpage
        info.referenced = True
        info.dirty = False
        self._forward[vpage] = frame

    def unmap_frame(self, frame: int) -> FrameInfo:
        """Evict whatever occupies ``frame``; returns its prior metadata."""
        info = self.frames[frame]
        if info.valid:
            del self._forward[info.vpage]
        evicted = FrameInfo(vpage=info.vpage, referenced=info.referenced, dirty=info.dirty)
        info.vpage = None
        info.referenced = False
        info.dirty = False
        return evicted

    def touch(self, frame: int, is_write: bool) -> None:
        """Mark reference (and dirty) bits for an access to ``frame``."""
        info = self.frames[frame]
        info.referenced = True
        if is_write:
            info.dirty = True

    def resident_count(self) -> int:
        return len(self._forward)

    def swap_frames(self, frame_a: int, frame_b: int) -> None:
        """Exchange the contents of two frames (used by TLM page migration)."""
        info_a, info_b = self.frames[frame_a], self.frames[frame_b]
        if info_a.vpage is not None:
            self._forward[info_a.vpage] = frame_b
        if info_b.vpage is not None:
            self._forward[info_b.vpage] = frame_a
        self.frames[frame_a], self.frames[frame_b] = info_b, info_a
