"""Forward and inverted page tables.

Virtual pages are keyed by ``(asid, vpage)`` so rate-mode contexts (the
paper runs 32 copies of the same benchmark) never share physical frames:
"The virtual-to-physical mapping ensures that multiple benchmarks do not
map to the same physical address" (Section III-B).

Frame metadata is columnar: the referenced and dirty bits live in two
flat ``bytearray`` columns indexed by frame (plus a plain list for the
owning virtual page), which is what the vectorized engine shares with
its compiled kernel and what the clock replacer scans. A
:class:`FrameInfo` is a view over one frame's slots; standalone
instances (snapshots returned by :meth:`PageTable.unmap_frame`, test
fixtures) own one-element backing columns.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

VirtualPage = Tuple[int, int]  # (address-space id, virtual page number)


class FrameInfo:
    """Per-frame metadata used by the clock replacement algorithm.

    A view over one slot of the page table's columnar metadata; the
    translation hot path writes the columns directly and skips these
    properties.
    """

    __slots__ = ("_vpages", "_ref", "_dirty", "_idx")

    def __init__(
        self,
        vpage: Optional[VirtualPage] = None,
        referenced: bool = False,
        dirty: bool = False,
    ):
        self._vpages: List[Optional[VirtualPage]] = [vpage]
        self._ref = bytearray((1 if referenced else 0,))
        self._dirty = bytearray((1 if dirty else 0,))
        self._idx = 0

    @classmethod
    def view(
        cls,
        vpages: List[Optional[VirtualPage]],
        referenced: bytearray,
        dirty: bytearray,
        idx: int,
    ) -> "FrameInfo":
        """A view over slot ``idx`` of a table's columnar frame state."""
        info = cls.__new__(cls)
        info._vpages = vpages
        info._ref = referenced
        info._dirty = dirty
        info._idx = idx
        return info

    @property
    def vpage(self) -> Optional[VirtualPage]:
        return self._vpages[self._idx]

    @vpage.setter
    def vpage(self, value: Optional[VirtualPage]) -> None:
        self._vpages[self._idx] = value

    @property
    def referenced(self) -> bool:
        return bool(self._ref[self._idx])

    @referenced.setter
    def referenced(self, value: bool) -> None:
        self._ref[self._idx] = 1 if value else 0

    @property
    def dirty(self) -> bool:
        return bool(self._dirty[self._idx])

    @dirty.setter
    def dirty(self, value: bool) -> None:
        self._dirty[self._idx] = 1 if value else 0

    @property
    def valid(self) -> bool:
        return self._vpages[self._idx] is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FrameInfo(vpage={self.vpage}, referenced={self.referenced}, "
                f"dirty={self.dirty})")


class PageTable:
    """Bidirectional vpage <-> frame mapping with frame metadata."""

    def __init__(self, num_frames: int):
        self.num_frames = num_frames
        self._forward: Dict[VirtualPage, int] = {}
        # Columnar frame metadata — single source of truth; the
        # FrameInfo views in ``frames`` wrap these same columns.
        self._vpages: List[Optional[VirtualPage]] = [None] * num_frames
        self.referenced = bytearray(num_frames)
        self.dirty = bytearray(num_frames)
        self.frames = [
            FrameInfo.view(self._vpages, self.referenced, self.dirty, i)
            for i in range(num_frames)
        ]

    def lookup(self, vpage: VirtualPage) -> Optional[int]:
        """Return the frame holding ``vpage``, or None when not resident."""
        return self._forward.get(vpage)

    def map(self, vpage: VirtualPage, frame: int) -> None:
        """Install ``vpage`` into ``frame`` (which must be empty)."""
        occupant = self._vpages[frame]
        if occupant is not None:
            raise ValueError(f"frame {frame} already holds {occupant}")
        if vpage in self._forward:
            raise ValueError(f"{vpage} is already mapped")
        self._vpages[frame] = vpage
        self.referenced[frame] = 1
        self.dirty[frame] = 0
        self._forward[vpage] = frame

    def unmap_frame(self, frame: int) -> FrameInfo:
        """Evict whatever occupies ``frame``; returns its prior metadata."""
        vpage = self._vpages[frame]
        if vpage is not None:
            del self._forward[vpage]
        evicted = FrameInfo(
            vpage=vpage,
            referenced=bool(self.referenced[frame]),
            dirty=bool(self.dirty[frame]),
        )
        self._vpages[frame] = None
        self.referenced[frame] = 0
        self.dirty[frame] = 0
        return evicted

    def touch(self, frame: int, is_write: bool) -> None:
        """Mark reference (and dirty) bits for an access to ``frame``."""
        self.referenced[frame] = 1
        if is_write:
            self.dirty[frame] = 1

    def resident_count(self) -> int:
        return len(self._forward)

    def swap_frames(self, frame_a: int, frame_b: int) -> None:
        """Exchange the contents of two frames (used by TLM page migration)."""
        vpages = self._vpages
        vpage_a, vpage_b = vpages[frame_a], vpages[frame_b]
        if vpage_a is not None:
            self._forward[vpage_a] = frame_b
        if vpage_b is not None:
            self._forward[vpage_b] = frame_a
        vpages[frame_a], vpages[frame_b] = vpage_b, vpage_a
        ref = self.referenced
        ref[frame_a], ref[frame_b] = ref[frame_b], ref[frame_a]
        dirty = self.dirty
        dirty[frame_a], dirty[frame_b] = dirty[frame_b], dirty[frame_a]
