"""The SSD backing store that services page faults.

Section III-A: "Page faults in our system are assumed to be serviced by
a solid-state disk with a latency of 32 microsecond (10^5 cycles)". The
model charges that fixed latency per fault and counts the bytes moved so
Table IV can report storage-bandwidth usage (a page read per fault, plus
a page write when the evicted page was dirty).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass
class SsdStats:
    """Byte and operation counters for the backing store."""

    page_reads: int = 0
    page_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def bytes_transferred(self) -> int:
        return self.bytes_read + self.bytes_written


class SsdModel:
    """Fixed-latency paging device with byte accounting."""

    def __init__(self, fault_latency_cycles: int, page_bytes: int):
        if fault_latency_cycles <= 0 or page_bytes <= 0:
            raise ConfigurationError("SSD latency and page size must be positive")
        self.fault_latency_cycles = fault_latency_cycles
        self.page_bytes = page_bytes
        self.stats = SsdStats()

    def read_page(self) -> float:
        """Fetch one page from storage; returns the latency in cycles."""
        self.stats.page_reads += 1
        self.stats.bytes_read += self.page_bytes
        return float(self.fault_latency_cycles)

    def write_page(self) -> float:
        """Write one dirty page back to storage.

        The write is buffered (asynchronous) so it adds traffic but no
        demand latency, matching the usual OS treatment of dirty
        writeback during reclaim.
        """
        self.stats.page_writes += 1
        self.stats.bytes_written += self.page_bytes
        return 0.0

    def reset_stats(self) -> None:
        self.stats = SsdStats()
