"""The OS memory manager: frame allocation, faults, and reclaim.

This ties the page table, the clock replacer, and the SSD together. The
physical frame number *is* the physical page number: frames
``[0, stacked_frames)`` live in stacked DRAM and the rest in off-chip
DRAM (the paper's "memory space starts from stacked memory and grows to
the region of off-chip memory", Section IV-A).

Organizations that care where a page lands (TLM-Oracle's profiled
placement) install a :attr:`frame_preference` callback; everything else
gets the default policy of handing out frames in a seeded-random order,
which is exactly TLM-Static's "randomly maps the pages across the memory
address space" (Section II-B).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..errors import ConfigurationError
from .clock import ClockReplacer
from .page_table import PageTable, VirtualPage
from .ssd import SsdModel


class TranslationResult:
    """Outcome of one virtual-to-physical translation.

    Hit-path results are reused by the owning :class:`MemoryManager`
    (translation is once-per-simulated-access): consume the fields before
    the next ``translate`` call. Fault results are freshly allocated.
    """

    __slots__ = ("frame", "faulted", "fault_latency", "evicted", "evicted_frame")

    def __init__(
        self,
        frame: int,
        faulted: bool,
        fault_latency: float,
        evicted: Optional[Tuple[VirtualPage, bool]] = None,
        evicted_frame: Optional[int] = None,
    ):
        self.frame = frame
        self.faulted = faulted
        self.fault_latency = fault_latency
        #: Virtual page evicted to make room, with its dirty bit (None if
        #: no eviction was needed).
        self.evicted = evicted
        #: Frame the evicted page vacated (== ``frame`` on a reclaim fault).
        self.evicted_frame = evicted_frame

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TranslationResult(frame={self.frame}, faulted={self.faulted}, "
                f"fault_latency={self.fault_latency}, evicted={self.evicted}, "
                f"evicted_frame={self.evicted_frame})")


@dataclass
class VmStats:
    """Fault-path counters."""

    translations: int = 0
    faults: int = 0
    evictions: int = 0
    dirty_evictions: int = 0

    @property
    def fault_rate(self) -> float:
        if not self.translations:
            return 0.0
        return self.faults / self.translations


class MemoryManager:
    """Allocates frames, services faults, and drives reclaim."""

    def __init__(
        self,
        num_frames: int,
        ssd: SsdModel,
        stacked_frames: int = 0,
        random_probes: int = 5,
        allocation: str = "random",
        seed: int = 0,
    ):
        if num_frames <= 0:
            raise ConfigurationError("a memory of zero frames cannot back any workload")
        if not 0 <= stacked_frames <= num_frames:
            raise ConfigurationError("stacked_frames must be within [0, num_frames]")
        if allocation not in ("random", "sequential"):
            raise ConfigurationError(f"unknown allocation policy {allocation!r}")
        self.num_frames = num_frames
        self.stacked_frames = stacked_frames
        self.ssd = ssd
        self.page_table = PageTable(num_frames)
        self.replacer = ClockReplacer(self.page_table, random_probes, seed=seed)
        self.stats = VmStats()
        #: Optional placement hook: maps a vpage to "stacked", "offchip",
        #: or None (no preference). Consulted on first-touch allocation.
        self.frame_preference: Optional[Callable[[VirtualPage], Optional[str]]] = None

        frames = list(range(num_frames))
        if allocation == "random":
            random.Random(seed).shuffle(frames)
        self._free_stacked: List[int] = [f for f in frames if f < stacked_frames]
        self._free_offchip: List[int] = [f for f in frames if f >= stacked_frames]
        self._free_set = set(frames)
        # Reused for every non-faulting translation (the common case).
        self._hit_result = TranslationResult(0, False, 0.0)

    # -- Frame bookkeeping ------------------------------------------------------

    def is_stacked_frame(self, frame: int) -> bool:
        return frame < self.stacked_frames

    def _pop_free(self, preference: Optional[str]) -> Optional[int]:
        pools = [self._free_stacked, self._free_offchip]
        if preference == "offchip":
            pools.reverse()
        elif preference is None:
            # No preference: interleave by whichever pool is fuller so the
            # random shuffle's uniformity is preserved.
            pools.sort(key=len, reverse=True)
        for pool in pools:
            # Entries may have been consumed by a frame swap; skip those.
            while pool:
                frame = pool.pop()
                if frame in self._free_set:
                    self._free_set.discard(frame)
                    return frame
        return None

    def swap_frames(self, frame_a: int, frame_b: int) -> None:
        """Exchange two frames' contents, keeping the free lists coherent.

        Page-migrating organizations (TLM-Dynamic/Freq) must use this
        instead of touching the page table directly: a migration into a
        still-free frame moves the "free" status to the vacated frame.
        """
        self.page_table.swap_frames(frame_a, frame_b)
        a_free = frame_a in self._free_set
        b_free = frame_b in self._free_set
        if a_free == b_free:
            return
        newly_free = frame_a if b_free else frame_b
        self._free_set.discard(frame_a if a_free else frame_b)
        self._free_set.add(newly_free)
        pool = (
            self._free_stacked
            if newly_free < self.stacked_frames
            else self._free_offchip
        )
        pool.append(newly_free)

    def reconcile_external_swap(self, frame_a: int, frame_b: int) -> None:
        """Mirror :meth:`swap_frames` for a swap the compiled kernel performed.

        The vector engine's kernel swaps the shared referenced/dirty
        columns and its own dense forward/inverse maps in place, then
        journals the frame pair. Replaying the journal here updates the
        python-side mapping dict, the per-frame virtual-page records,
        and the free lists — everything except the already-swapped
        columns.
        """
        table = self.page_table
        vpages = table._vpages
        vpage_a, vpage_b = vpages[frame_a], vpages[frame_b]
        if vpage_a is not None:
            table._forward[vpage_a] = frame_b
        if vpage_b is not None:
            table._forward[vpage_b] = frame_a
        vpages[frame_a], vpages[frame_b] = vpage_b, vpage_a
        a_free = frame_a in self._free_set
        b_free = frame_b in self._free_set
        if a_free == b_free:
            return
        newly_free = frame_a if b_free else frame_b
        self._free_set.discard(frame_a if a_free else frame_b)
        self._free_set.add(newly_free)
        pool = (
            self._free_stacked
            if newly_free < self.stacked_frames
            else self._free_offchip
        )
        pool.append(newly_free)

    # -- The translation/fault path ---------------------------------------------

    def translate(self, vpage: VirtualPage, is_write: bool = False) -> TranslationResult:
        """Translate ``vpage``; faults allocate/reclaim and charge the SSD."""
        self.stats.translations += 1
        table = self.page_table
        frame = table._forward.get(vpage)
        if frame is not None:
            # Inlined PageTable.touch (direct column writes) + reused hit
            # result: this branch runs once per simulated access.
            table.referenced[frame] = 1
            if is_write:
                table.dirty[frame] = 1
            hit = self._hit_result
            hit.frame = frame
            return hit

        self.stats.faults += 1
        preference = self.frame_preference(vpage) if self.frame_preference else None
        evicted = None
        evicted_frame = None
        frame = self._pop_free(preference)
        if frame is None:
            frame = self.replacer.select_victim()
            # The clock's random probes may land on a free frame; claim it.
            self._free_set.discard(frame)
            info = self.page_table.unmap_frame(frame)
            if info.vpage is not None:
                self.stats.evictions += 1
                evicted = (info.vpage, info.dirty)
                evicted_frame = frame
                if info.dirty:
                    self.stats.dirty_evictions += 1
                    self.ssd.write_page()

        latency = self.ssd.read_page()
        self.page_table.map(vpage, frame)
        self.page_table.touch(frame, is_write)
        return TranslationResult(
            frame=frame,
            faulted=True,
            fault_latency=latency,
            evicted=evicted,
            evicted_frame=evicted_frame,
        )

    def resident_pages(self) -> int:
        return self.page_table.resident_count()
