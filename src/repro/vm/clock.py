"""Victim-frame selection: random probing plus the clock algorithm.

Section III-A: "The victim page is selected using a clock algorithm (if
an invalid page is not found after probing five random locations)". We
implement exactly that: on each reclaim, probe N random frames for an
invalid (free) one; only when all probes hit valid frames does the clock
hand sweep, clearing reference bits until it finds an unreferenced frame.
"""

from __future__ import annotations

import random

from ..errors import ConfigurationError
from .page_table import PageTable


class ClockReplacer:
    """Stateful victim selector over a :class:`PageTable`'s frames."""

    def __init__(self, page_table: PageTable, random_probes: int = 5, seed: int = 0):
        if random_probes < 0:
            raise ConfigurationError("random_probes must be non-negative")
        self.page_table = page_table
        self.random_probes = random_probes
        self._rng = random.Random(seed)
        self._hand = 0

    def select_victim(self) -> int:
        """Return the frame to reclaim (free if the probes find one)."""
        frames = self.page_table.frames
        n = len(frames)
        if n == 0:
            raise ConfigurationError("cannot reclaim from a zero-frame memory")

        for _ in range(self.random_probes):
            probe = self._rng.randrange(n)
            if not frames[probe].valid:
                return probe

        # Clock sweep: give referenced frames a second chance.
        for _ in range(2 * n):
            frame = self._hand
            self._hand = (self._hand + 1) % n
            info = frames[frame]
            if not info.valid:
                return frame
            if info.referenced:
                info.referenced = False
            else:
                return frame
        # Every frame was referenced twice in a row; take the hand position.
        victim = self._hand
        self._hand = (self._hand + 1) % n
        return victim
