"""Closed-form LLT latency comparison (Figure 8).

"The analysis considers a single memory request serviced in isolation"
with stacked DRAM costing one unit of latency and off-chip DRAM two. The
H case is a line resident in stacked DRAM; M is an off-chip resident.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import ConfigurationError


@dataclass(frozen=True)
class LltLatency:
    """Isolated-request latency of one LLT design, in abstract units."""

    design: str
    hit_units: float    # line resident in stacked DRAM (case H)
    miss_units: float   # line resident in off-chip DRAM (case M)


def llt_latency_model(
    stacked_unit: float = 1.0, offchip_unit: float = 2.0
) -> Dict[str, LltLatency]:
    """Figure 8's four bars, parameterised by the two device latencies.

    * baseline: every request goes to off-chip memory.
    * ideal: location known instantly; pay only the owning device.
    * embedded: LLT read (stacked) serialises before *every* data access.
    * colocated: the stacked probe *is* the LLT read; only off-chip
      residents pay the serialisation.
    """
    if stacked_unit <= 0 or offchip_unit <= 0:
        raise ConfigurationError("latency units must be positive")
    return {
        "baseline": LltLatency("baseline", offchip_unit, offchip_unit),
        "ideal": LltLatency("ideal", stacked_unit, offchip_unit),
        "embedded": LltLatency(
            "embedded", stacked_unit + stacked_unit, stacked_unit + offchip_unit
        ),
        "colocated": LltLatency(
            "colocated", stacked_unit, stacked_unit + offchip_unit
        ),
    }


def expected_latency(design: str, hit_fraction: float,
                     stacked_unit: float = 1.0, offchip_unit: float = 2.0) -> float:
    """Average units for a given stacked-residency (hit) fraction.

    Useful for reasoning about when embedded beats co-located (never, in
    these units) and when co-located beats the baseline (whenever the
    hit fraction exceeds (offchip-stacked)/offchip... see tests).
    """
    if not 0 <= hit_fraction <= 1:
        raise ConfigurationError("hit_fraction must be within [0, 1]")
    model = llt_latency_model(stacked_unit, offchip_unit)
    if design not in model:
        raise ConfigurationError(
            f"unknown design {design!r}; choose from {sorted(model)}"
        )
    entry = model[design]
    return hit_fraction * entry.hit_units + (1 - hit_fraction) * entry.miss_units
