"""Figure 3: the DRAM capacity/bandwidth landscape.

The paper's Figure 3 plots capacity versus bandwidth for commodity and
stacked DRAM parts "collected from various specifications" (HMC, HBM,
DDR3, DDR4, LPDDR). Those public datasheet numbers are tabulated here so
the figure can be regenerated without network access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..units import GIB


@dataclass(frozen=True)
class DramPart:
    """One point of Figure 3."""

    name: str
    family: str            # "stacked" or "commodity"
    capacity_bytes: int
    bandwidth_gbs: float   # GB/s per device/module


#: Datasheet points (per-module capacity, peak bandwidth).
DRAM_PARTS: Tuple[DramPart, ...] = (
    DramPart("HMC Gen1", "stacked", int(0.5 * GIB), 128.0),
    DramPart("HMC Gen2", "stacked", 2 * GIB, 160.0),
    DramPart("HBM (JESD235)", "stacked", 1 * GIB, 128.0),
    DramPart("DDR3-1600 UDIMM", "commodity", 4 * GIB, 12.8),
    DramPart("DDR3-1866 RDIMM", "commodity", 8 * GIB, 14.9),
    DramPart("DDR4-2400 RDIMM", "commodity", 16 * GIB, 19.2),
    DramPart("LPDDR2-800", "commodity", 1 * GIB, 3.2),
)


def landscape(family: Optional[str] = None) -> List[DramPart]:
    """All points, optionally filtered by family."""
    return [p for p in DRAM_PARTS if family in (None, p.family)]


def bandwidth_gap() -> float:
    """Peak stacked bandwidth / peak commodity bandwidth (paper: ~8x)."""
    stacked = max(p.bandwidth_gbs for p in landscape("stacked"))
    commodity = max(p.bandwidth_gbs for p in landscape("commodity"))
    return stacked / commodity


def capacity_gap() -> float:
    """Peak commodity capacity / peak stacked capacity (why caches exist)."""
    stacked = max(p.capacity_bytes for p in landscape("stacked"))
    commodity = max(p.capacity_bytes for p in landscape("commodity"))
    return commodity / stacked
