"""Terminal (ASCII) plotting for experiment outputs.

No plotting dependency is available offline, so figures render as
monospace scatter/series plots. Good enough to see crossovers and
trends in a terminal or a CI log; export the JSON (``repro.sim.export``)
for real figures.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

Point = Tuple[float, float]


def ascii_scatter(
    points: Sequence[Tuple[float, float, str]],
    width: int = 60,
    height: int = 18,
    log_x: bool = False,
    log_y: bool = False,
    title: Optional[str] = None,
) -> str:
    """Scatter-plot labelled points: each is ``(x, y, marker)``.

    Markers are single characters; collisions keep the last marker.
    """
    if not points:
        raise ConfigurationError("nothing to plot")
    if width < 10 or height < 5:
        raise ConfigurationError("plot area too small")

    def tx(v: float) -> float:
        if not log_x:
            return v
        if v <= 0:
            raise ConfigurationError("log_x requires positive x values")
        return math.log10(v)

    def ty(v: float) -> float:
        if not log_y:
            return v
        if v <= 0:
            raise ConfigurationError("log_y requires positive y values")
        return math.log10(v)

    xs = [tx(p[0]) for p in points]
    ys = [ty(p[1]) for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (x, y, marker), tx_v, ty_v in zip(points, xs, ys):
        col = int(round((tx_v - x_lo) / x_span * (width - 1)))
        row = int(round((ty_v - y_lo) / y_span * (height - 1)))
        grid[height - 1 - row][col] = (marker or "*")[0]

    lines = [title] if title else []
    lines.append(f"y: {_fmt(y_hi, log_y)}")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        f"y: {_fmt(y_lo, log_y)}   x: {_fmt(x_lo, log_x)} .. {_fmt(x_hi, log_x)}"
        + ("  (log x)" if log_x else "")
        + ("  (log y)" if log_y else "")
    )
    return "\n".join(lines)


def ascii_series(
    series: Sequence[Tuple[str, Sequence[Point]]],
    width: int = 60,
    height: int = 16,
    title: Optional[str] = None,
) -> str:
    """Overlay several named (x, y) series, one marker per series."""
    if not series:
        raise ConfigurationError("nothing to plot")
    markers = "ox+#@%&*"
    points: List[Tuple[float, float, str]] = []
    legend = []
    for i, (name, pts) in enumerate(series):
        marker = markers[i % len(markers)]
        legend.append(f"{marker} = {name}")
        points.extend((x, y, marker) for x, y in pts)
    plot = ascii_scatter(points, width=width, height=height, title=title)
    return plot + "\nlegend: " + ", ".join(legend)


def _fmt(value: float, is_log: bool) -> str:
    if is_log:
        return f"1e{value:.1f}"
    return f"{value:.3g}"
