"""Automated paper-vs-measured verification (the EXPERIMENTS.md engine).

The paper makes a set of headline quantitative claims and a larger set
of *qualitative* shape claims. This module encodes both as checkable
:class:`Claim` objects: each has a paper value (or relation), extracts a
measured value from experiment results, and reports its verdict. The
benchmarks assert the qualitative claims; this module additionally
quantifies how far the measured values sit from the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..config import paper
from .report import format_table


@dataclass(frozen=True)
class Claim:
    """One verifiable statement from the paper."""

    source: str            # e.g. "Fig.13" or "Tab.III"
    description: str
    paper_value: Optional[float]   # None for purely relational claims
    measured_value: float
    #: Relational claims pass on the relation alone; scalar claims pass
    #: when measured is within ``tolerance`` (relative) of the paper.
    holds: bool
    tolerance: float = 0.25

    @property
    def deviation(self) -> Optional[float]:
        """Relative deviation from the paper value (None if relational)."""
        if self.paper_value is None or self.paper_value == 0:
            return None
        return (self.measured_value - self.paper_value) / self.paper_value

    @property
    def verdict(self) -> str:
        return "OK" if self.holds else "DEVIATES"


def scalar_claim(source: str, description: str, paper_value: float,
                 measured_value: float, tolerance: float = 0.25) -> Claim:
    """A numeric claim: measured within ``tolerance`` of the paper."""
    holds = abs(measured_value - paper_value) <= tolerance * abs(paper_value)
    return Claim(source, description, paper_value, measured_value, holds, tolerance)


def shape_claim(source: str, description: str, measured_value: float,
                predicate: Callable[[float], bool]) -> Claim:
    """A qualitative claim: a predicate over the measured value."""
    return Claim(source, description, None, measured_value, predicate(measured_value))


def headline_claims(gmeans: dict) -> List[Claim]:
    """The Section VI-A headline numbers, given Figure 13 Gmean-ALL values.

    ``gmeans`` maps organization name -> measured gmean speedup.
    """
    claims = [
        scalar_claim("Fig.13", "CAMEO overall speedup",
                     paper.PAPER_SPEEDUP_CAMEO, gmeans["cameo"], tolerance=0.10),
        scalar_claim("Fig.13", "Cache overall speedup",
                     paper.PAPER_SPEEDUP_CACHE, gmeans["cache"], tolerance=0.25),
        scalar_claim("Fig.13", "TLM-Static overall speedup",
                     paper.PAPER_SPEEDUP_TLM_STATIC, gmeans["tlm-static"],
                     tolerance=0.25),
        scalar_claim("Fig.13", "TLM-Dynamic overall speedup",
                     paper.PAPER_SPEEDUP_TLM_DYNAMIC, gmeans["tlm-dynamic"],
                     tolerance=0.25),
        scalar_claim("Fig.13", "DoubleUse overall speedup",
                     paper.PAPER_SPEEDUP_DOUBLEUSE, gmeans["doubleuse"],
                     tolerance=0.15),
        shape_claim("Fig.13", "CAMEO beats every baseline design",
                    gmeans["cameo"],
                    lambda v: v > max(gmeans["cache"], gmeans["tlm-static"],
                                      gmeans["tlm-dynamic"])),
        shape_claim("Fig.13", "CAMEO within 10% of DoubleUse",
                    gmeans["cameo"] / gmeans["doubleuse"],
                    lambda v: v > 0.90),
    ]
    return claims


def llp_claims(sam_accuracy: float, llp_accuracy: float) -> List[Claim]:
    """Table III's accuracy numbers."""
    return [
        scalar_claim("Tab.III", "SAM accuracy (stacked fraction)",
                     paper.PAPER_SAM_STACKED_FRACTION, sam_accuracy,
                     tolerance=0.15),
        scalar_claim("Tab.III", "LLP accuracy",
                     paper.PAPER_LLP_ACCURACY, llp_accuracy, tolerance=0.05),
        shape_claim("Tab.III", "LLP recovers most off-chip accesses",
                    llp_accuracy - sam_accuracy, lambda v: v > 0.10),
    ]


def render_claims(claims: List[Claim], title: str = "Verification") -> str:
    """A monospace verdict table."""
    rows = []
    for claim in claims:
        paper_cell = "-" if claim.paper_value is None else f"{claim.paper_value:.3f}"
        dev = claim.deviation
        dev_cell = "-" if dev is None else f"{dev:+.1%}"
        rows.append(
            [claim.source, claim.description, paper_cell,
             f"{claim.measured_value:.3f}", dev_cell, claim.verdict]
        )
    return format_table(
        ["source", "claim", "paper", "measured", "deviation", "verdict"],
        rows,
        title=title,
    )
