"""Analysis helpers: analytical models, landscape data, text rendering."""

from .dram_landscape import DRAM_PARTS, DramPart, bandwidth_gap, capacity_gap, landscape
from .latency_model import LltLatency, expected_latency, llt_latency_model
from .plots import ascii_scatter, ascii_series
from .report import format_bar_chart, format_speedup_bar, format_table
from .verification import (
    Claim,
    headline_claims,
    llp_claims,
    render_claims,
    scalar_claim,
    shape_claim,
)

__all__ = [
    "Claim",
    "ascii_scatter",
    "ascii_series",
    "DRAM_PARTS",
    "headline_claims",
    "llp_claims",
    "render_claims",
    "scalar_claim",
    "shape_claim",
    "DramPart",
    "LltLatency",
    "bandwidth_gap",
    "capacity_gap",
    "expected_latency",
    "format_bar_chart",
    "format_speedup_bar",
    "format_table",
    "landscape",
    "llt_latency_model",
]
