"""Plain-text table rendering for experiment outputs.

Every benchmark prints its figure/table through these helpers so the
terminal output of ``pytest benchmarks/`` reads like the paper's
evaluation section.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned monospace table."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_speedup_bar(label: str, speedup: float, width: int = 40, scale: float = 2.5) -> str:
    """A single ASCII bar: ``label |#####     | 1.78x``."""
    filled = min(width, max(0, int(round(width * speedup / scale))))
    return f"{label:<22s} |{'#' * filled}{' ' * (width - filled)}| {speedup:.2f}x"


def format_bar_chart(
    items: Sequence[tuple], title: Optional[str] = None, scale: float = 2.5
) -> str:
    """ASCII bar chart of ``(label, speedup)`` pairs."""
    lines = [title] if title else []
    lines.extend(format_speedup_bar(label, value, scale=scale) for label, value in items)
    return "\n".join(lines)
