"""Size, address, and aggregation arithmetic used across the simulator.

Everything in the simulator is expressed in three base units:

* **bytes** for capacities and bus traffic,
* **lines** (64 bytes by default) for data movement and the CAMEO
  congruence-group math,
* **CPU cycles** for time.

The helpers here keep those conversions in one place so individual
modules never hand-roll shifts or divisions.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Cache-line size used throughout the paper (Section I).
LINE_BYTES = 64

#: OS page size used throughout the paper (Section I: "4KB in our study").
PAGE_BYTES = 4 * KIB

#: Lines per page: 4096 / 64.
LINES_PER_PAGE = PAGE_BYTES // LINE_BYTES


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return ``log2(value)`` for an exact power of two.

    Raises:
        ValueError: if ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ValueError(f"expected a power of two, got {value}")
    return value.bit_length() - 1


def bytes_to_lines(n_bytes: int, line_bytes: int = LINE_BYTES) -> int:
    """Convert a byte count into a whole number of lines.

    Raises:
        ValueError: if ``n_bytes`` is not line-aligned.
    """
    if n_bytes % line_bytes:
        raise ValueError(f"{n_bytes} bytes is not a multiple of {line_bytes}")
    return n_bytes // line_bytes


def lines_to_bytes(n_lines: int, line_bytes: int = LINE_BYTES) -> int:
    """Convert a line count into bytes."""
    return n_lines * line_bytes


def bytes_to_pages(n_bytes: int, page_bytes: int = PAGE_BYTES) -> int:
    """Convert a byte count into pages, rounding up partial pages."""
    return -(-n_bytes // page_bytes)


def line_to_page(line_addr: int, lines_per_page: int = LINES_PER_PAGE) -> int:
    """Return the page number containing ``line_addr``."""
    return line_addr // lines_per_page


def page_to_first_line(page: int, lines_per_page: int = LINES_PER_PAGE) -> int:
    """Return the first line address of ``page``."""
    return page * lines_per_page


def line_offset_in_page(line_addr: int, lines_per_page: int = LINES_PER_PAGE) -> int:
    """Return the line's index within its page."""
    return line_addr % lines_per_page


def geomean(values: Iterable[float]) -> float:
    """Geometric mean, the paper's aggregation for speedups (Section VI-A).

    Raises:
        ValueError: on an empty sequence or any non-positive value.
    """
    items = list(values)
    if not items:
        raise ValueError("geomean of an empty sequence is undefined")
    total = 0.0
    for v in items:
        if v <= 0:
            raise ValueError(f"geomean requires positive values, got {v}")
        total += math.log(v)
    return math.exp(total / len(items))


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean.

    Raises:
        ValueError: on an empty sequence.
    """
    if not values:
        raise ValueError("mean of an empty sequence is undefined")
    return sum(values) / len(values)


def format_bytes(n_bytes: int) -> str:
    """Render a byte count with a binary-unit suffix (e.g. ``4.0GiB``)."""
    value = float(n_bytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or suffix == "TiB":
            if suffix == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{suffix}"
        value /= 1024
    raise AssertionError("unreachable")


def percent(fraction: float) -> str:
    """Render a 0-1 fraction as a percentage string."""
    return f"{fraction * 100:.1f}%"
