"""Tests for the set-associative cache substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.set_assoc import SetAssociativeCache
from repro.errors import ConfigurationError


def small_cache(ways=4, sets=8):
    return SetAssociativeCache(capacity_bytes=ways * sets * 64, ways=ways)


class TestBasicOperation:
    def test_first_access_misses(self):
        cache = small_cache()
        assert not cache.access(0).hit

    def test_second_access_hits(self):
        cache = small_cache()
        cache.access(0)
        assert cache.access(0).hit

    def test_probe_is_non_destructive(self):
        cache = small_cache()
        cache.access(0)
        assert cache.probe(0)
        assert not cache.probe(1)

    def test_distinct_sets_dont_interfere(self):
        cache = small_cache(ways=1, sets=8)
        cache.access(0)
        cache.access(1)
        assert cache.probe(0) and cache.probe(1)

    def test_capacity_lines(self):
        assert small_cache(ways=4, sets=8).capacity_lines == 32


class TestEviction:
    def test_lru_eviction_in_one_set(self):
        cache = small_cache(ways=2, sets=1)
        cache.access(0)
        cache.access(1)
        result = cache.access(2)
        assert not result.hit
        assert result.evicted_line == 0
        assert not cache.probe(0)

    def test_clean_eviction_has_no_writeback(self):
        cache = small_cache(ways=1, sets=1)
        cache.access(0)
        result = cache.access(1)
        assert result.evicted_line == 0
        assert result.writeback_line is None

    def test_dirty_eviction_requests_writeback(self):
        cache = small_cache(ways=1, sets=1)
        cache.access(0, is_write=True)
        result = cache.access(1)
        assert result.writeback_line == 0

    def test_write_hit_marks_dirty(self):
        cache = small_cache(ways=1, sets=1)
        cache.access(0)
        cache.access(0, is_write=True)
        assert cache.access(1).writeback_line == 0


class TestInvalidate:
    def test_invalidate_present_line(self):
        cache = small_cache()
        cache.access(5)
        assert cache.invalidate(5)
        assert not cache.probe(5)

    def test_invalidate_absent_line(self):
        assert not small_cache().invalidate(5)

    def test_invalidate_clears_dirty(self):
        cache = small_cache(ways=1, sets=1)
        cache.access(0, is_write=True)
        cache.invalidate(0)
        cache.access(0)
        assert cache.access(1).writeback_line is None


class TestResidency:
    def test_resident_lines_tracks_contents(self):
        cache = small_cache()
        for line in (0, 9, 17):
            cache.access(line)
        assert sorted(cache.resident_lines()) == [0, 9, 17]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=255), max_size=100))
    def test_residency_never_exceeds_capacity(self, lines):
        cache = small_cache(ways=2, sets=4)
        for line in lines:
            cache.access(line)
        resident = cache.resident_lines()
        assert len(resident) <= cache.capacity_lines
        assert len(set(resident)) == len(resident)  # no duplicates

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=100))
    def test_most_recent_line_always_resident(self, lines):
        cache = small_cache(ways=2, sets=4)
        for line in lines:
            cache.access(line)
        assert cache.probe(lines[-1])


class TestValidation:
    def test_rejects_fractional_sets(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(capacity_bytes=1000, ways=3)

    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(capacity_bytes=1024, ways=0)
