"""Tests for cache replacement policies."""

from repro.cache.replacement import LruPolicy, NruPolicy, RandomPolicy


class TestLru:
    def test_victim_is_least_recent(self):
        lru = LruPolicy()
        state = lru.new_set(4)
        for way in (0, 1, 2, 3):
            lru.on_access(state, way)
        assert lru.choose_victim(state) == 0

    def test_access_refreshes_recency(self):
        lru = LruPolicy()
        state = lru.new_set(3)
        lru.on_access(state, 0)
        lru.on_access(state, 1)
        lru.on_access(state, 0)
        # 2 was never touched after init; it is the stalest of the touched
        # ordering [0, 1, 2-initial...]; victim should be 2.
        assert lru.choose_victim(state) == 2

    def test_fill_counts_as_access(self):
        lru = LruPolicy()
        state = lru.new_set(2)
        lru.on_fill(state, 1)
        assert lru.choose_victim(state) == 0

    def test_state_is_permutation(self):
        lru = LruPolicy()
        state = lru.new_set(8)
        for way in (3, 1, 3, 7, 0):
            lru.on_access(state, way)
        assert sorted(state) == list(range(8))


class TestRandom:
    def test_victim_in_range(self):
        policy = RandomPolicy(seed=1)
        state = policy.new_set(4)
        for _ in range(100):
            assert 0 <= policy.choose_victim(state) < 4

    def test_seeded_reproducibility(self):
        a = RandomPolicy(seed=42)
        b = RandomPolicy(seed=42)
        state = 8
        assert [a.choose_victim(state) for _ in range(20)] == [
            b.choose_victim(state) for _ in range(20)
        ]

    def test_covers_all_ways_eventually(self):
        policy = RandomPolicy(seed=3)
        seen = {policy.choose_victim(4) for _ in range(200)}
        assert seen == {0, 1, 2, 3}


class TestNru:
    def test_unreferenced_way_is_victim(self):
        nru = NruPolicy()
        state = nru.new_set(4)
        nru.on_access(state, 0)
        nru.on_access(state, 2)
        assert nru.choose_victim(state) in (1, 3)

    def test_saturation_clears_others(self):
        nru = NruPolicy()
        state = nru.new_set(2)
        nru.on_access(state, 0)
        nru.on_access(state, 1)  # saturates; only way 1 stays referenced
        assert state == [False, True]
        assert nru.choose_victim(state) == 0

    def test_all_referenced_falls_back(self):
        nru = NruPolicy()
        state = [True, True]
        assert nru.choose_victim(state) == 0
