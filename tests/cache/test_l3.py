"""Tests for the L3 model and its MPKI accounting."""

import pytest

from repro.cache.l3 import L3Cache
from repro.config.system import L3Config


@pytest.fixture
def l3():
    return L3Cache(L3Config(capacity_bytes=16 * 1024, ways=16, latency_cycles=24))


class TestL3Stats:
    def test_miss_then_hit(self, l3):
        assert not l3.access(0).hit
        assert l3.access(0).hit
        assert l3.stats.accesses == 2
        assert l3.stats.misses == 1
        assert l3.stats.hits == 1

    def test_miss_rate(self, l3):
        for line in range(10):
            l3.access(line)
        assert l3.stats.miss_rate == 1.0
        for line in range(10):
            l3.access(line)
        assert l3.stats.miss_rate == pytest.approx(0.5)

    def test_mpki(self, l3):
        for line in range(8):
            l3.access(line)
        assert l3.stats.mpki(1000) == pytest.approx(8.0)
        assert l3.stats.mpki(0) == 0.0

    def test_writeback_counted(self, l3):
        # Fill one set (16 ways) with dirty lines, then overflow it.
        sets = l3.config.num_sets
        for way in range(16):
            l3.access(way * sets, is_write=True)
        l3.access(16 * sets)
        assert l3.stats.writebacks == 1

    def test_latency_from_config(self, l3):
        assert l3.latency_cycles == 24

    def test_invalidate_and_probe(self, l3):
        l3.access(7)
        assert l3.probe(7)
        assert l3.invalidate(7)
        assert not l3.probe(7)

    def test_empty_miss_rate_zero(self, l3):
        assert l3.stats.miss_rate == 0.0
