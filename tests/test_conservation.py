"""Cross-stack conservation and consistency invariants.

These catch whole classes of accounting bugs: bytes that appear from
nowhere, demand traffic that doesn't match the access count, residency
that doesn't sum, swaps that don't balance.
"""

import pytest

from repro import run_workload, scaled_paper_system
from repro.config.system import scaled_paper_system as make_system
from repro.orgs.factory import build_organization
from repro.request import MemoryRequest
from repro.sim.engine import run_trace
from repro.sim.machine import Machine
from repro.workloads.mixes import rate_mode_generators
from repro.workloads.spec import workload

N = 800


def run(org_name, workload_name="xalancbmk", config=None):
    config = config or make_system(num_contexts=2)
    org = build_organization(org_name, config)
    machine = Machine(config, org)
    spec = workload(workload_name)
    result = run_trace(machine, rate_mode_generators(spec, config), spec,
                       accesses_per_context=N)
    return machine, result


class TestTrafficConservation:
    def test_baseline_moves_one_line_per_access(self):
        machine, result = run("baseline", "sphinx3")
        # Counter reset happens when the *last* context finishes warmup,
        # so up to (contexts - 1) early events are excluded from device
        # stats while still counted as measured accesses.
        slack = machine.config.num_contexts * 2
        assert abs(machine.org.offchip.stats.accesses - result.accesses) <= slack
        assert abs(result.dram_bytes["offchip"] - result.accesses * 64) <= slack * 64

    def test_cameo_every_read_probes_stacked(self):
        machine, result = run("cameo", "sphinx3")
        # Every demand access (reads and writes) starts with a LEAD probe,
        # so stacked accesses >= demand accesses.
        assert machine.org.stacked.stats.accesses >= result.accesses

    def test_swap_traffic_balances(self):
        machine, result = run("cameo", "xalancbmk")
        org = machine.org
        # Each read swap writes the victim off-chip; each write-swap too.
        # Off-chip writes therefore must be at least the number of swaps
        # minus the in-place write traffic (which is zero under
        # swap_on_write=True).
        assert org.offchip.stats.writes >= result.line_swaps - result.page_faults * 64

    def test_tlm_dynamic_migration_bytes(self):
        machine, result = run("tlm-dynamic", "xalancbmk")
        org = machine.org
        # Each migration moves a page in AND out of each device: at least
        # 8 KB per device per migration (plus demand traffic).
        for dev in ("stacked", "offchip"):
            assert result.dram_bytes[dev] >= result.page_migrations * 8192

    def test_storage_bytes_match_fault_path(self):
        machine, result = run("baseline", "mcf")
        stats = machine.ssd.stats
        assert result.storage_bytes == stats.bytes_transferred
        assert stats.page_reads >= result.page_faults  # measured window only


class TestResidencyConservation:
    @pytest.mark.parametrize("org_name", ["cameo", "cameo-ideal-llt", "cameo-embedded-llt"])
    def test_llt_histogram_sums_to_groups(self, org_name):
        machine, _ = run(org_name, "xalancbmk")
        org = machine.org
        hist = org.llt.stacked_residency_histogram()
        assert sum(hist) == org.space.num_groups
        org.check_invariants(sample_groups=256)

    def test_page_table_residency_bounded(self):
        machine, _ = run("baseline", "mcf")
        mm = machine.memory_manager
        assert mm.resident_pages() <= mm.num_frames

    def test_frame_split_sums_to_page(self):
        machine, _ = run("cameo", "xalancbmk")
        org = machine.org
        for frame in (0, 7, 100):
            stacked, offchip = org._split_frame_lines(frame)
            assert stacked + offchip == 64


class TestWarmupConsistency:
    def test_longer_warmup_never_increases_measured_accesses(self):
        config = make_system(num_contexts=2)
        spec = workload("sphinx3")
        short = run_trace(
            Machine(config, build_organization("baseline", config)),
            rate_mode_generators(spec, config), spec,
            accesses_per_context=N, warmup_fraction=0.1,
        )
        long = run_trace(
            Machine(config, build_organization("baseline", config)),
            rate_mode_generators(spec, config), spec,
            accesses_per_context=N, warmup_fraction=0.5,
        )
        assert long.accesses < short.accesses
        assert long.total_cycles < short.total_cycles

    def test_warmup_excludes_cold_effects(self):
        # With warmup, the measured LLP accuracy should be at least as
        # good as the cold-start (zero-warmup) accuracy.
        config = make_system(num_contexts=2)
        spec = workload("xalancbmk")

        def accuracy(warmup):
            org = build_organization("cameo", config)
            result = run_trace(
                Machine(config, org), rate_mode_generators(spec, config),
                spec, accesses_per_context=N, warmup_fraction=warmup,
            )
            return result.llp_cases.accuracy

        assert accuracy(0.25) >= accuracy(0.0) - 0.02
