"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, main
from repro.sim._kernel_build import kernel_available


class TestList:
    def test_list_prints_orgs_and_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cameo" in out
        assert "mcf" in out and "astar" in out


class TestRun:
    def test_run_prints_telemetry(self, capsys):
        assert main(["run", "cameo", "astar", "--accesses", "300"]) == 0
        out = capsys.readouterr().out
        assert "speedup over baseline" in out
        assert "LLP accuracy" in out

    def test_unknown_org_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nonsense", "astar"])

    def test_baseline_run_has_no_llp_row(self, capsys):
        assert main(["run", "baseline", "astar", "--accesses", "300"]) == 0
        assert "LLP accuracy" not in capsys.readouterr().out


class TestCompare:
    def test_compare_prints_bars(self, capsys):
        assert main(["compare", "astar", "--accesses", "300"]) == 0
        out = capsys.readouterr().out
        for org in ("cache", "tlm-static", "tlm-dynamic", "cameo", "doubleuse"):
            assert org in out


class TestFigure:
    def test_registry_covers_the_paper(self):
        assert set(FIGURES) == {"2", "3", "8", "9", "12", "13", "14", "15",
                                "table3", "table4"}

    def test_analytic_figures_render(self, capsys):
        assert main(["figure", "8"]) == 0
        assert "colocated" in capsys.readouterr().out
        assert main(["figure", "3"]) == 0
        assert "HMC" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_no_result_cache_flag_accepted(self, capsys):
        assert main(["figure", "8", "--no-result-cache"]) == 0
        assert "colocated" in capsys.readouterr().out

    def test_json_emits_every_cell(self, capsys):
        import json

        assert main(["figure", "13", "--accesses", "120", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        for per_org in payload.values():
            assert "baseline" in per_org and "cameo" in per_org
            assert per_org["cameo"]["organization"] == "cameo"

    def test_json_rejected_for_analytic_figures(self, capsys):
        assert main(["figure", "8", "--json"]) == 2
        assert "analytical" in capsys.readouterr().err


class TestPaper:
    def test_dry_run_prints_the_dedup_accounting(self, capsys):
        assert main([
            "paper", "--experiments", "figure13,table4",
            "--accesses", "120", "--dry-run",
        ]) == 0
        out = capsys.readouterr().out
        assert "204 cells requested" in out
        assert "unique cells:    102" in out
        assert "dedup saves 50%" in out
        assert "figure13: 102 cells" in out
        assert "table4: 102 cells" in out

    def test_executes_and_renders_each_experiment(self, capsys):
        assert main([
            "paper", "--experiments", "figure13", "--accesses", "120",
            "--no-result-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 13" in out
        assert "ran 102 of 102 cells" in out

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["paper", "--experiments", "figure99", "--dry-run"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestMix:
    def test_mix_runs(self, capsys):
        import os
        os.environ["REPRO_ACCESSES_PER_CONTEXT"] = "300"
        try:
            assert main(["mix", "gcc", "astar"]) == 0
        finally:
            del os.environ["REPRO_ACCESSES_PER_CONTEXT"]
        out = capsys.readouterr().out
        assert "gcc+astar" in out
        assert "speedup over baseline" in out


class TestBenchRequireKernel:
    BENCH_ARGS = ["bench", "--orgs", "cameo", "--workloads", "astar",
                  "--accesses", "200", "--repeats", "1", "--require-kernel"]

    @pytest.mark.skipif(
        not kernel_available(), reason="no C compiler / kernel unavailable"
    )
    def test_passes_when_every_cell_lowers(self, tmp_path, monkeypatch, capsys):
        import json

        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        output = tmp_path / "BENCH_X.json"
        assert main(self.BENCH_ARGS + ["--output", str(output)]) == 0
        assert "every lowerable cell" in capsys.readouterr().out
        payload = json.loads(output.read_text())
        # The flag implies the vector engine and the cells prove it.
        assert payload["config"]["engine"] == "vector"
        assert all(e["backend"] == "vector" for e in payload["results"])

    def test_exits_2_when_the_kernel_cannot_engage(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.sim import _kernel_build

        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        monkeypatch.setenv(_kernel_build.DISABLE_ENV_VAR, "1")
        _kernel_build.reset_for_tests()
        try:
            output = tmp_path / "BENCH_X.json"
            assert main(self.BENCH_ARGS + ["--output", str(output)]) == 2
        finally:
            _kernel_build.reset_for_tests()
        out = capsys.readouterr().out
        assert "require-kernel: cameo/astar" in out
        assert "disabled" in out


class TestTrace:
    def test_trace_dump_roundtrips(self, tmp_path, capsys):
        path = tmp_path / "out.trace"
        assert main(["trace", "astar", str(path), "-n", "150"]) == 0
        assert "wrote 150 records" in capsys.readouterr().out

        from repro.workloads.replay import ReplayTraceSource

        with open(path) as fp:
            source = ReplayTraceSource.from_file(fp)
        assert len(source) == 150

    def test_trace_rejects_unknown_workload(self, tmp_path, capsys):
        # Library errors are reported, not raised (see TestErrorHandling).
        assert main(["trace", "doom", str(tmp_path / "x")]) == 2
        assert "error:" in capsys.readouterr().err


class TestJsonFlag:
    def test_run_json_is_valid(self, capsys):
        import json

        assert main(["run", "cameo", "astar", "--accesses", "300", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["organization"] == "cameo"
        assert payload["speedup_over_baseline"] > 0


class TestErrorHandling:
    def test_repro_error_exits_2_with_one_line_message(self, capsys):
        assert main(["run", "cameo", "unknown-workload", "--accesses", "300"]) == 2
        captured = capsys.readouterr()
        lines = [l for l in captured.err.splitlines() if l]
        assert len(lines) == 1
        assert lines[0].startswith("error:")
        assert "Traceback" not in captured.err

    def test_campaign_spec_error_exits_2(self, tmp_path, capsys):
        # An empty grid is a CampaignError, surfaced the same way.
        assert main([
            "campaign", "--checkpoint", str(tmp_path / "c.json"),
            "--timeout", "-1",
        ]) == 2
        assert "error:" in capsys.readouterr().err


class TestArgumentValidation:
    @pytest.mark.parametrize("value", ["0", "-5", "three"])
    def test_non_positive_accesses_rejected_at_parse_time(self, value):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "cameo", "astar", "--accesses", value])
        assert excinfo.value.code == 2

    @pytest.mark.parametrize("value", ["-1", "nope"])
    def test_negative_seed_rejected_at_parse_time(self, value):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "cameo", "astar", "--seed", value])
        assert excinfo.value.code == 2

    def test_trace_record_count_must_be_positive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "astar", str(tmp_path / "x"), "-n", "0"])

    def test_fault_rates_must_be_probabilities(self):
        with pytest.raises(SystemExit):
            main(["faults", "cameo", "astar", "--transient-rate", "1.5"])

    def test_campaign_seed_list_must_be_integers(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["campaign", "--checkpoint", str(tmp_path / "c.json"),
                  "--seeds", "0,two"])


class TestFaultsCommand:
    def test_prints_recovery_telemetry(self, capsys):
        assert main([
            "faults", "cameo", "astar", "--accesses", "400",
            "--transient-rate", "0.05", "--uncorrectable", "0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "fault injection on" in out
        assert "ecc_corrected" in out
        assert "decommissioned_groups" in out

    def test_json_carries_fault_summary(self, capsys):
        import json

        assert main([
            "faults", "cameo", "astar", "--accesses", "400", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "fault_summary" in payload
        assert payload["fault_summary"]["audits"] >= 0


class TestCampaignCommand:
    def test_campaign_runs_and_resumes(self, tmp_path, capsys):
        checkpoint = str(tmp_path / "campaign.json")
        argv = [
            "campaign", "--checkpoint", checkpoint,
            "--orgs", "baseline,cameo", "--workloads", "astar",
            "--accesses", "40", "--scale-shift", "14",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "2/2 points complete" in first

        # Re-invoking with the same checkpoint re-runs nothing.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "resume: 2 points already complete" in second
        assert "start:" not in second

    def test_failed_points_flip_the_exit_code(self, tmp_path, capsys):
        assert main([
            "campaign", "--checkpoint", str(tmp_path / "c.json"),
            "--orgs", "baseline,no-such-org", "--workloads", "astar",
            "--accesses", "40", "--scale-shift", "14", "--attempts", "1",
        ]) == 1
        assert "FAILED" in capsys.readouterr().out


class TestPlanCommand:
    def write_plan(self, tmp_path, text=None):
        path = tmp_path / "p.yaml"
        path.write_text(text or (
            "plan: repro-campaign-plan\n"
            "version: 1\n"
            "name: cli-test\n"
            "defaults: {accesses: 200}\n"
            "stages:\n"
            "  - name: only\n"
            "    grid:\n"
            "      orgs: [baseline, cameo]\n"
            "      workloads: [mcf]\n"
        ))
        return str(path)

    def test_validate_prints_the_shape(self, tmp_path, capsys):
        assert main(["plan", "validate", self.write_plan(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "plan is valid" in out
        assert "2 cell(s)" in out

    def test_validate_rejects_bad_plans_with_exit_2(self, tmp_path, capsys):
        path = tmp_path / "bad.yaml"
        path.write_text("plan: repro-campaign-plan\nversion: 7\nname: x\nstages:\n  - name: a\n")
        assert main(["plan", "validate", str(path)]) == 2
        assert "version" in capsys.readouterr().err

    def test_run_status_resume_cycle(self, tmp_path, capsys):
        plan = self.write_plan(tmp_path)
        status = str(tmp_path / "s.json")
        export1 = str(tmp_path / "e1.json")
        assert main(["plan", "run", plan, "--status", status,
                     "--export", export1]) == 0
        out = capsys.readouterr().out
        assert "2 cell(s) simulated" in out

        assert main(["plan", "status", status]) == 0
        assert "completed" in capsys.readouterr().out

        export2 = str(tmp_path / "e2.json")
        assert main(["plan", "run", plan, "--status", status, "--resume",
                     "--export", export2]) == 0
        assert "2 served from the store" in capsys.readouterr().out
        with open(export1, "rb") as a, open(export2, "rb") as b:
            assert a.read() == b.read()

    def test_failed_stage_flips_the_exit_code(self, tmp_path, capsys):
        plan = self.write_plan(tmp_path, (
            "plan: repro-campaign-plan\n"
            "version: 1\n"
            "name: cli-fail\n"
            "stages:\n"
            "  - name: broken\n"
            "    failure_policy: {on_failure: continue}\n"
            "    grid:\n"
            "      orgs: [cameo]\n"
            "      trace: missing.trace\n"
        ))
        assert main(["plan", "run", plan]) == 1
        assert "failed" in capsys.readouterr().out


class TestIngestCommand:
    def write_trace(self, tmp_path):
        out = str(tmp_path / "t.trace")
        assert main(["trace", "mcf", out, "-n", "120",
                     "--footprint-pages", "8"]) == 0
        return out

    def test_trace_dump_is_ingestable(self, tmp_path, capsys):
        path = self.write_trace(tmp_path)
        capsys.readouterr()
        assert main(["ingest", path]) == 0
        out = capsys.readouterr().out
        assert "120 record(s)" in out
        assert "sha256:" in out

    def test_json_report_and_quarantine_file(self, tmp_path, capsys):
        import json

        path = self.write_trace(tmp_path)
        lines = open(path).read().splitlines(True)
        lines[-1] = "broken line\n"
        open(path, "w").writelines(lines)
        capsys.readouterr()
        quarantine = str(tmp_path / "q.txt")
        assert main(["ingest", path, "--json", "--error-budget", "2",
                     "--quarantine", quarantine]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["quarantined"] == 1
        assert payload["checksum_verified"] is False
        assert payload["quarantine"][0]["text"] == "broken line"
        assert "broken line" in open(quarantine).read()

    def test_budget_exceeded_exits_2(self, tmp_path, capsys):
        path = self.write_trace(tmp_path)
        lines = open(path).read().splitlines(True)
        for i in range(1, 4):
            lines[-i] = "bad\n"
        open(path, "w").writelines(lines)
        capsys.readouterr()
        assert main(["ingest", path, "--error-budget", "1"]) == 2
        assert "budget" in capsys.readouterr().err
