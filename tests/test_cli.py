"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, main


class TestList:
    def test_list_prints_orgs_and_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cameo" in out
        assert "mcf" in out and "astar" in out


class TestRun:
    def test_run_prints_telemetry(self, capsys):
        assert main(["run", "cameo", "astar", "--accesses", "300"]) == 0
        out = capsys.readouterr().out
        assert "speedup over baseline" in out
        assert "LLP accuracy" in out

    def test_unknown_org_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nonsense", "astar"])

    def test_baseline_run_has_no_llp_row(self, capsys):
        assert main(["run", "baseline", "astar", "--accesses", "300"]) == 0
        assert "LLP accuracy" not in capsys.readouterr().out


class TestCompare:
    def test_compare_prints_bars(self, capsys):
        assert main(["compare", "astar", "--accesses", "300"]) == 0
        out = capsys.readouterr().out
        for org in ("cache", "tlm-static", "tlm-dynamic", "cameo", "doubleuse"):
            assert org in out


class TestFigure:
    def test_registry_covers_the_paper(self):
        assert set(FIGURES) == {"2", "3", "8", "9", "12", "13", "14", "15",
                                "table3", "table4"}

    def test_analytic_figures_render(self, capsys):
        assert main(["figure", "8"]) == 0
        assert "colocated" in capsys.readouterr().out
        assert main(["figure", "3"]) == 0
        assert "HMC" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestMix:
    def test_mix_runs(self, capsys):
        import os
        os.environ["REPRO_ACCESSES_PER_CONTEXT"] = "300"
        try:
            assert main(["mix", "gcc", "astar"]) == 0
        finally:
            del os.environ["REPRO_ACCESSES_PER_CONTEXT"]
        out = capsys.readouterr().out
        assert "gcc+astar" in out
        assert "speedup over baseline" in out


class TestTrace:
    def test_trace_dump_roundtrips(self, tmp_path, capsys):
        path = tmp_path / "out.trace"
        assert main(["trace", "astar", str(path), "-n", "150"]) == 0
        assert "wrote 150 records" in capsys.readouterr().out

        from repro.workloads.replay import ReplayTraceSource

        with open(path) as fp:
            source = ReplayTraceSource.from_file(fp)
        assert len(source) == 150

    def test_trace_rejects_unknown_workload(self, tmp_path):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            main(["trace", "doom", str(tmp_path / "x")])


class TestJsonFlag:
    def test_run_json_is_valid(self, capsys):
        import json

        assert main(["run", "cameo", "astar", "--accesses", "300", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["organization"] == "cameo"
        assert payload["speedup_over_baseline"] > 0
