"""End-to-end energy-model behaviour over real runs of both categories."""

import pytest

from repro import run_workload, scaled_paper_system
from repro.energy.power import PowerModel
from repro.workloads.spec import CAPACITY, LATENCY

N = 1200


@pytest.fixture(scope="module")
def config():
    return scaled_paper_system(num_contexts=2)


class TestLatencyCategory:
    def test_cameo_edp_beats_baseline(self, config):
        model = PowerModel(LATENCY)
        base = run_workload("baseline", "sphinx3", config, accesses_per_context=N)
        cameo = run_workload("cameo", "sphinx3", config, accesses_per_context=N)
        assert model.normalized_power(cameo, base) > 1.0
        assert model.normalized_edp(cameo, base) < 1.0

    def test_latency_model_has_no_storage_term(self, config):
        model = PowerModel(LATENCY)
        base = run_workload("baseline", "sphinx3", config, accesses_per_context=N)
        breakdown = model.breakdown(base, base)
        assert breakdown.storage == 0.0


class TestCapacityCategory:
    def test_storage_power_falls_with_fault_reduction(self, config):
        model = PowerModel(CAPACITY)
        base = run_workload("baseline", "lbm", config, accesses_per_context=N)
        cameo = run_workload("cameo", "lbm", config, accesses_per_context=N)
        base_breakdown = model.breakdown(base, base)
        cameo_breakdown = model.breakdown(cameo, base)
        assert cameo_breakdown.storage <= base_breakdown.storage + 1e-9

    def test_tlm_dynamic_pays_migration_power(self, config):
        model = PowerModel(LATENCY)
        base = run_workload("baseline", "milc", config, accesses_per_context=N)
        static = run_workload("tlm-static", "milc", config, accesses_per_context=N)
        dynamic = run_workload("tlm-dynamic", "milc", config, accesses_per_context=N)
        assert model.normalized_power(dynamic, base) > model.normalized_power(
            static, base
        )

    def test_processor_share_is_constant(self, config):
        model = PowerModel(CAPACITY)
        base = run_workload("baseline", "lbm", config, accesses_per_context=N)
        cameo = run_workload("cameo", "lbm", config, accesses_per_context=N)
        assert model.breakdown(cameo, base).processor == model.breakdown(
            base, base
        ).processor
