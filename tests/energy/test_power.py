"""Tests for the Section VI-C power/EDP model."""

import pytest

from repro.energy.power import PowerModel
from repro.errors import ConfigurationError
from repro.sim.results import RunResult
from repro.workloads.spec import CAPACITY, LATENCY


def make_result(cycles=1000.0, offchip=64_000, stacked=None, storage=0):
    dram = {"offchip": offchip}
    if stacked is not None:
        dram["stacked"] = stacked
    return RunResult(
        workload="w",
        organization="o",
        total_cycles=cycles,
        instructions=1000,
        accesses=100,
        dram_bytes=dram,
        storage_bytes=storage,
        page_faults=0,
        stacked_service_fraction=0.0,
    )


class TestBudgets:
    def test_capacity_budget_60_20_20(self):
        model = PowerModel(CAPACITY)
        assert model.processor_fraction == 0.60
        assert model.memory_fraction == 0.20
        assert model.storage_fraction == 0.20

    def test_latency_budget_70_30(self):
        model = PowerModel(LATENCY)
        assert model.processor_fraction == 0.70
        assert model.memory_fraction == 0.30
        assert model.storage_fraction == 0.0

    def test_unknown_category_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerModel("medium")


class TestPower:
    def test_baseline_is_unity(self):
        model = PowerModel(LATENCY)
        base = make_result()
        assert model.normalized_power(base, base) == pytest.approx(1.0)

    def test_adding_stacked_increases_power(self):
        model = PowerModel(LATENCY)
        base = make_result()
        with_stacked = make_result(stacked=64_000)
        assert model.normalized_power(with_stacked, base) > 1.0

    def test_stacked_bytes_cost_less_than_offchip(self):
        model = PowerModel(LATENCY)
        base = make_result()
        stacked_heavy = make_result(offchip=0, stacked=64_000)
        offchip_heavy = make_result(offchip=128_000, stacked=0)
        p_s = model.breakdown(stacked_heavy, base)
        p_o = model.breakdown(offchip_heavy, base)
        assert p_s.stacked < p_o.offchip

    def test_breakdown_sums_to_total(self):
        model = PowerModel(CAPACITY)
        base = make_result(storage=4096)
        result = make_result(stacked=32_000, storage=2048)
        breakdown = model.breakdown(result, base)
        assert breakdown.total == pytest.approx(
            breakdown.processor + breakdown.offchip + breakdown.stacked + breakdown.storage
        )

    def test_baseline_without_traffic_rejected(self):
        model = PowerModel(LATENCY)
        empty = make_result(offchip=0)
        with pytest.raises(ConfigurationError):
            model.normalized_power(empty, empty)


class TestEdp:
    def test_speedup_wins_edp_despite_power(self):
        # Half the runtime at modestly higher power must improve EDP.
        model = PowerModel(LATENCY)
        base = make_result(cycles=1000.0)
        fast = make_result(cycles=500.0, stacked=64_000)
        assert model.normalized_edp(fast, base) < 1.0

    def test_edp_scales_with_time_squared(self):
        model = PowerModel(LATENCY)
        base = make_result(cycles=1000.0)
        slow = make_result(cycles=2000.0, offchip=64_000)
        edp = model.normalized_edp(slow, base)
        power = model.normalized_power(slow, base)
        assert edp == pytest.approx(power * 4.0)

    def test_baseline_edp_is_unity(self):
        model = PowerModel(CAPACITY)
        base = make_result(storage=4096)
        assert model.normalized_edp(base, base) == pytest.approx(1.0)
