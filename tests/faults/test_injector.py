"""Tests for the fault model, injector determinism, and the LLT auditor."""

import random

import pytest

from repro.core.congruence import CongruenceSpace
from repro.core.llt import LineLocationTable
from repro.errors import ConfigurationError, SimulationError
from repro.faults import (
    FaultConfig,
    FaultEvent,
    FaultInjector,
    FaultKind,
    InvariantAuditor,
    RetryPolicy,
)

KEY = ("stacked", 0, 0, 0)


class TestFaultConfig:
    def test_defaults_inject_nothing(self):
        assert not FaultConfig().injects_anything

    def test_any_rate_makes_it_inject(self):
        assert FaultConfig(transient_flip_rate=0.1).injects_anything
        assert FaultConfig(stuck_row_rate=0.1).injects_anything
        assert FaultConfig(channel_timeout_rate=0.1).injects_anything
        assert FaultConfig(llt_corruption_rate=0.1).injects_anything

    def test_uncorrectable_fraction_alone_is_inert(self):
        # It only shapes transient flips; with no flips it is a no-op.
        assert not FaultConfig(uncorrectable_fraction=1.0).injects_anything

    @pytest.mark.parametrize("field", [
        "transient_flip_rate",
        "uncorrectable_fraction",
        "stuck_row_rate",
        "channel_timeout_rate",
        "llt_corruption_rate",
    ])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rates_outside_unit_interval_rejected(self, field, bad):
        with pytest.raises(ConfigurationError):
            FaultConfig(**{field: bad})

    def test_negative_penalties_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(ecc_correction_cycles=-1.0)
        with pytest.raises(ConfigurationError):
            FaultConfig(timeout_penalty_cycles=-1.0)

    def test_audit_knobs_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(audit_interval_accesses=0)
        with pytest.raises(ConfigurationError):
            FaultConfig(audit_groups=0)


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base_cycles=100.0, backoff_factor=2.0)
        assert policy.backoff_cycles(0) == 100.0
        assert policy.backoff_cycles(1) == 200.0
        assert policy.backoff_cycles(2) == 400.0

    def test_bad_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base_cycles=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)


class TestInjectorDraws:
    def test_zero_rates_never_fault_and_never_use_rng(self):
        injector = FaultInjector(FaultConfig())
        state_before = injector._rng.getstate()
        for i in range(500):
            assert injector.draw_read_fault(("stacked", 0, 0, i)) is None
        assert injector._rng.getstate() == state_before
        assert injector.stats.total_injected == 0

    def test_certain_flip_rate_always_faults(self):
        injector = FaultInjector(
            FaultConfig(transient_flip_rate=1.0, uncorrectable_fraction=0.0)
        )
        event = injector.draw_read_fault(KEY)
        assert event == FaultEvent(FaultKind.TRANSIENT_FLIP, correctable=True)
        assert injector.stats.transient_flips == 1

    def test_uncorrectable_fraction_one_defeats_ecc(self):
        injector = FaultInjector(
            FaultConfig(transient_flip_rate=1.0, uncorrectable_fraction=1.0)
        )
        event = injector.draw_read_fault(KEY)
        assert event.kind is FaultKind.TRANSIENT_FLIP
        assert not event.correctable

    def test_stuck_row_registered_permanently(self):
        injector = FaultInjector(FaultConfig(stuck_row_rate=1.0))
        event = injector.draw_read_fault(KEY)
        assert event.kind is FaultKind.STUCK_ROW
        assert injector.is_stuck_row(KEY)
        assert injector.stuck_row_count == 1
        # Marking again is idempotent.
        injector.mark_stuck_row(KEY)
        assert injector.stats.stuck_rows == 1

    def test_timeout_drawn_when_only_timeout_rate_set(self):
        injector = FaultInjector(FaultConfig(channel_timeout_rate=1.0))
        event = injector.draw_read_fault(KEY)
        assert event.kind is FaultKind.CHANNEL_TIMEOUT
        assert injector.stats.channel_timeouts == 1

    def test_same_seed_reproduces_event_stream(self):
        config = FaultConfig(
            seed=7,
            transient_flip_rate=0.3,
            uncorrectable_fraction=0.5,
            channel_timeout_rate=0.2,
        )
        def stream():
            injector = FaultInjector(config)
            return [injector.draw_read_fault(KEY) for _ in range(200)]
        assert stream() == stream()

    def test_different_seeds_diverge(self):
        def stream(seed):
            injector = FaultInjector(
                FaultConfig(seed=seed, transient_flip_rate=0.3)
            )
            return [injector.draw_read_fault(KEY) for _ in range(200)]
        assert stream(1) != stream(2)

    def test_injector_rng_is_private(self):
        # Drawing faults must not touch the module-level RNG.
        random.seed(42)
        expected = random.random()
        random.seed(42)
        injector = FaultInjector(FaultConfig(transient_flip_rate=0.5))
        for _ in range(50):
            injector.draw_read_fault(KEY)
        assert random.random() == expected


def small_llt(num_groups=8, group_size=4):
    return LineLocationTable(
        CongruenceSpace(num_groups=num_groups, group_size=group_size)
    )


class TestLltCorruption:
    def test_zero_rate_never_corrupts(self):
        llt = small_llt()
        injector = FaultInjector(FaultConfig())
        assert injector.maybe_corrupt_llt(llt) is None
        for group in range(llt.space.num_groups):
            llt.check_group_invariant(group)

    def test_certain_rate_breaks_a_permutation(self):
        llt = small_llt()
        injector = FaultInjector(FaultConfig(llt_corruption_rate=1.0))
        damaged = None
        # A corruption may coincidentally rewrite an entry to its current
        # value; a few draws always produce a detectable break.
        for _ in range(20):
            group = injector.maybe_corrupt_llt(llt)
            assert group is not None
            try:
                llt.check_group_invariant(group)
            except SimulationError:
                damaged = group
                break
        assert damaged is not None
        assert injector.stats.llt_corruptions >= 1

    def test_corrupt_entry_rejects_non_slot_values(self):
        llt = small_llt()
        with pytest.raises(SimulationError):
            llt.corrupt_entry(0, 0, llt.space.group_size)

    def test_repair_group_restores_identity(self):
        llt = small_llt()
        llt.swap_to_stacked(3, 2)
        llt.corrupt_entry(3, 0, 0)
        llt.repair_group(3)
        assert llt.group_mapping(3) == tuple(range(llt.space.group_size))
        llt.check_group_invariant(3)


class TestInvariantAuditor:
    def repairs(self):
        calls = []

        def repair(now, group):
            calls.append(group)
            self.llt.repair_group(group)

        return calls, repair

    def test_audit_finds_and_repairs_corruption(self):
        self.llt = small_llt()
        self.llt.corrupt_entry(2, 1, 0)
        calls, repair = self.repairs()
        auditor = InvariantAuditor(self.llt, repair, interval=4, groups_per_audit=8)
        repaired = auditor.audit(now=0.0)
        assert repaired == 1
        assert calls == [2]
        self.llt.check_group_invariant(2)
        assert auditor.stats.audits == 1

    def test_tick_audits_only_on_interval(self):
        self.llt = small_llt()
        calls, repair = self.repairs()
        auditor = InvariantAuditor(self.llt, repair, interval=4, groups_per_audit=8)
        for _ in range(3):
            auditor.tick(0.0)
        assert auditor.stats.audits == 0
        auditor.tick(0.0)
        assert auditor.stats.audits == 1

    def test_cursor_rotates_over_all_groups(self):
        self.llt = small_llt(num_groups=8)
        # Damage a group the first window (groups 0..3) cannot see.
        self.llt.corrupt_entry(6, 1, 0)
        calls, repair = self.repairs()
        auditor = InvariantAuditor(self.llt, repair, interval=1, groups_per_audit=4)
        assert auditor.audit(0.0) == 0
        assert auditor.audit(0.0) == 1
        assert calls == [6]

    def test_full_sweep_catches_everything(self):
        self.llt = small_llt(num_groups=8)
        self.llt.corrupt_entry(1, 0, 1)
        self.llt.corrupt_entry(7, 2, 0)
        calls, repair = self.repairs()
        auditor = InvariantAuditor(self.llt, repair, interval=100, groups_per_audit=1)
        assert auditor.full_sweep(0.0) == 2
        assert sorted(calls) == [1, 7]

    def test_bad_interval_rejected(self):
        self.llt = small_llt()
        with pytest.raises(SimulationError):
            InvariantAuditor(self.llt, lambda now, group: None, interval=0)
