"""Recovery-path tests: device ECC/retry and CAMEO graceful degradation."""

import pytest

from repro.config.timing import paper_stacked_timing
from repro.dram.device import DramDevice
from repro.errors import FaultError, RecoveryExhaustedError
from repro.faults import FaultConfig, FaultEvent, FaultInjector, FaultKind, RetryPolicy
from repro.orgs.factory import build_organization
from repro.request import MemoryRequest
from repro.sim.runner import run_workload
from repro.units import MIB
from tests.conftest import make_config

CORRECTED = FaultEvent(FaultKind.TRANSIENT_FLIP, correctable=True)
UNCORRECTED = FaultEvent(FaultKind.TRANSIENT_FLIP, correctable=False)
TIMEOUT = FaultEvent(FaultKind.CHANNEL_TIMEOUT)
STUCK = FaultEvent(FaultKind.STUCK_ROW)


class ScriptedInjector(FaultInjector):
    """Deterministic injector replaying a fixed event script (tests only)."""

    def __init__(self, events, config=None):
        super().__init__(config)
        self._events = list(events)

    def draw_read_fault(self, key):
        if not self._events:
            return None
        event = self._events.pop(0)
        if event is not None and event.kind is FaultKind.STUCK_ROW:
            self.mark_stuck_row(key)
        return event


def device_with(events, config=None):
    device = DramDevice(paper_stacked_timing(), capacity_bytes=1 * MIB)
    device.fault_injector = ScriptedInjector(events, config)
    return device


class TestDeviceEccPath:
    def test_fault_free_latency_unchanged_by_injector(self):
        clean = DramDevice(paper_stacked_timing(), capacity_bytes=1 * MIB)
        faulty = device_with([None])
        assert faulty.access_line(0.0, 0).latency == clean.access_line(0.0, 0).latency

    def test_corrected_flip_adds_ecc_latency(self):
        clean = DramDevice(paper_stacked_timing(), capacity_bytes=1 * MIB)
        config = FaultConfig(ecc_correction_cycles=5.0)
        faulty = device_with([CORRECTED], config)
        baseline = clean.access_line(0.0, 0).latency
        result = faulty.access_line(0.0, 0)
        assert result.latency == pytest.approx(baseline + 5.0)
        assert faulty.fault_injector.stats.ecc_corrected == 1

    def test_uncorrectable_flip_retries_then_succeeds(self):
        faulty = device_with([UNCORRECTED, None])
        clean = DramDevice(paper_stacked_timing(), capacity_bytes=1 * MIB)
        baseline = clean.access_line(0.0, 0).latency
        result = faulty.access_line(0.0, 0)
        stats = faulty.fault_injector.stats
        assert stats.ecc_detected == 1
        assert stats.retries == 1
        assert stats.retry_successes == 1
        # The successful retry paid the first access, the backoff, and a
        # second full access.
        assert result.latency > baseline

    def test_retry_backoff_charged(self):
        policy = RetryPolicy(max_retries=3, backoff_base_cycles=10_000.0)
        config = FaultConfig(retry=policy)
        faulty = device_with([UNCORRECTED, None], config)
        result = faulty.access_line(0.0, 0)
        assert result.latency > 10_000.0

    def test_timeout_pays_penalty_then_retries(self):
        config = FaultConfig(timeout_penalty_cycles=50_000.0)
        faulty = device_with([TIMEOUT, None], config)
        result = faulty.access_line(0.0, 0)
        stats = faulty.fault_injector.stats
        assert stats.retry_successes == 1
        assert result.latency > 50_000.0

    def test_exhausted_retries_raise(self):
        policy = RetryPolicy(max_retries=2)
        config = FaultConfig(retry=policy)
        faulty = device_with([UNCORRECTED, UNCORRECTED, UNCORRECTED], config)
        with pytest.raises(RecoveryExhaustedError):
            faulty.access_line(0.0, 0)
        stats = faulty.fault_injector.stats
        assert stats.retries == 2
        assert stats.recoveries_exhausted == 1

    def test_recovery_exhausted_is_permanent_fault_error(self):
        faulty = device_with([UNCORRECTED] * 10)
        with pytest.raises(FaultError) as excinfo:
            faulty.access_line(0.0, 0)
        assert excinfo.value.permanent
        assert excinfo.value.device == "stacked"
        assert excinfo.value.line_addr == 0

    def test_stuck_row_discovered_during_retry(self):
        faulty = device_with([UNCORRECTED, STUCK])
        with pytest.raises(FaultError) as excinfo:
            faulty.access_line(0.0, 0)
        assert excinfo.value.permanent
        assert faulty.is_stuck_line(0)


class TestDeviceStuckRows:
    def make_stuck(self):
        device = device_with([])
        device.fault_injector.mark_stuck_row(device._row_key(0))
        return device

    def test_read_of_stuck_row_raises_permanent(self):
        device = self.make_stuck()
        with pytest.raises(FaultError) as excinfo:
            device.access_line(0.0, 0)
        assert excinfo.value.permanent
        assert device.fault_injector.stats.ecc_detected == 1

    def test_write_to_stuck_row_is_dropped_not_raised(self):
        device = self.make_stuck()
        device.access_line(0.0, 0, is_write=True)
        assert device.fault_injector.stats.dropped_writes == 1

    def test_other_rows_unaffected(self):
        device = self.make_stuck()
        other = device.lines_per_row * device.timing.channels  # next row, ch 0
        assert not device.is_stuck_line(other)
        device.access_line(0.0, other)

    def test_is_stuck_line_false_without_injector(self):
        device = DramDevice(paper_stacked_timing(), capacity_bytes=1 * MIB)
        assert not device.is_stuck_line(0)


def faulty_run(workload="astar", n=600, **fault_kwargs):
    config = make_config(stacked_pages=4, num_contexts=2)
    return run_workload(
        "cameo", workload, config, accesses_per_context=n,
        fault_config=FaultConfig(**fault_kwargs),
    )


class TestCameoDegradation:
    def test_zero_rate_config_is_bit_for_bit_baseline(self):
        config = make_config(stacked_pages=4, num_contexts=2)
        clean = run_workload("cameo", "astar", config, accesses_per_context=600)
        inert = run_workload(
            "cameo", "astar", config, accesses_per_context=600,
            fault_config=FaultConfig(),
        )
        assert inert.total_cycles == clean.total_cycles
        assert inert.dram_bytes == clean.dram_bytes
        assert inert.line_swaps == clean.line_swaps
        assert inert.stacked_service_fraction == clean.stacked_service_fraction
        assert inert.fault_summary is not None
        assert clean.fault_summary is None
        assert sum(inert.fault_summary.values()) == inert.fault_summary["audits"]

    def test_transient_faults_absorbed_without_crashing(self):
        result = faulty_run(transient_flip_rate=0.05, uncorrectable_fraction=0.5)
        summary = result.fault_summary
        assert summary["transient_flips"] > 0
        assert summary["ecc_corrected"] > 0
        assert summary["ecc_detected"] > 0
        assert summary["retries"] > 0
        assert result.total_cycles > 0

    def test_stuck_rows_decommission_groups(self):
        result = faulty_run(stuck_row_rate=0.01)
        summary = result.fault_summary
        assert summary["stuck_rows"] > 0
        assert summary["decommissioned_groups"] > 0
        assert result.total_cycles > 0

    def test_mixed_campaign_per_acceptance_criteria(self):
        # Transient + permanent faults together: the run must complete
        # with nonzero detected/corrected/retried/decommissioned counts.
        result = faulty_run(
            transient_flip_rate=0.05,
            uncorrectable_fraction=0.5,
            stuck_row_rate=0.005,
            channel_timeout_rate=0.01,
        )
        summary = result.fault_summary
        assert summary["ecc_detected"] > 0
        assert summary["ecc_corrected"] > 0
        assert summary["retries"] > 0
        assert summary["decommissioned_groups"] > 0

    def test_llt_corruption_repaired_by_auditor(self):
        config = make_config(stacked_pages=4, num_contexts=2)
        result = run_workload(
            "cameo", "astar", config, accesses_per_context=800,
            fault_config=FaultConfig(
                llt_corruption_rate=0.2,
                audit_interval_accesses=8,
                audit_groups=256,
            ),
        )
        summary = result.fault_summary
        assert summary["llt_corruptions"] > 0
        assert summary["llt_repairs"] > 0
        assert summary["audits"] > 0

    def test_faulty_runs_are_deterministic(self):
        kwargs = dict(
            transient_flip_rate=0.05,
            uncorrectable_fraction=0.5,
            stuck_row_rate=0.005,
            llt_corruption_rate=0.01,
        )
        a = faulty_run(**kwargs)
        b = faulty_run(**kwargs)
        assert a.total_cycles == b.total_cycles
        assert a.fault_summary == b.fault_summary


class TestControllerDecommission:
    def build(self):
        config = make_config(stacked_pages=4, num_contexts=2)
        org = build_organization("cameo", config)
        org.attach_fault_injector(FaultInjector(FaultConfig()))
        return org

    def read(self, org, line_addr, now=0.0):
        return org.access(now, MemoryRequest(0, 0x400, line_addr))

    def test_stuck_stacked_row_degrades_to_offchip(self):
        org = self.build()
        injector = org.fault_injector
        group, _slot = org.space.split(0)
        stacked_line = org._stacked_device_line(group)
        injector.mark_stuck_row(org.stacked._row_key(stacked_line))
        result = self.read(org, 0)
        assert group in org.decommissioned
        assert not result.serviced_by_stacked
        assert injector.stats.decommissioned_groups >= 1
        # Later accesses to the group stay off-chip and do not re-count.
        before = injector.stats.decommissioned_groups
        again = self.read(org, 0, now=1e6)
        assert not again.serviced_by_stacked
        assert injector.stats.decommissioned_groups == before

    def test_all_slots_dead_still_serviced(self):
        org = self.build()
        injector = org.fault_injector
        group, _slot = org.space.split(0)
        injector.mark_stuck_row(
            org.stacked._row_key(org._stacked_device_line(group))
        )
        for slot in range(1, org.space.group_size):
            injector.mark_stuck_row(
                org.offchip._row_key(org._offchip_device_line(group, slot))
            )
        result = self.read(org, 0)
        assert result.latency > 0
        assert injector.stats.dead_group_services >= 1

    def test_attach_wires_devices_and_auditor(self):
        org = self.build()
        assert org.stacked.fault_injector is org.fault_injector
        assert org.offchip.fault_injector is org.fault_injector
        assert org.auditor is not None
        assert org.auditor.stats is org.fault_injector.stats
