"""Tests for the timed DRAM device model."""

import pytest

from repro.config.timing import paper_offchip_timing, paper_stacked_timing
from repro.dram.bank import RowOutcome
from repro.dram.device import DramDevice
from repro.errors import ConfigurationError
from repro.units import MIB


@pytest.fixture
def stacked():
    return DramDevice(paper_stacked_timing(), capacity_bytes=1 * MIB)


@pytest.fixture
def offchip():
    return DramDevice(paper_offchip_timing(), capacity_bytes=3 * MIB)


class TestAddressMapping:
    def test_consecutive_lines_hit_different_channels(self, stacked):
        channels = {stacked.map_address(line)[0] for line in range(16)}
        assert len(channels) == stacked.timing.channels

    def test_mapping_is_deterministic(self, stacked):
        assert stacked.map_address(1234) == stacked.map_address(1234)

    def test_rows_partition_channel_lines(self, stacked):
        # Lines of one channel map to consecutive rows of lines_per_row.
        ch0_lines = [l for l in range(4096) if stacked.map_address(l)[0] == 0]
        rows = [stacked.map_address(l)[2] for l in ch0_lines]
        assert rows == sorted(rows)

    def test_out_of_range_rejected(self, stacked):
        with pytest.raises(ConfigurationError):
            stacked.map_address(stacked.capacity_lines)
        with pytest.raises(ConfigurationError):
            stacked.map_address(-1)

    def test_capacity_lines(self, stacked):
        assert stacked.capacity_lines == MIB // 64


class TestReadTiming:
    def test_cold_read_pays_closed_row(self, stacked):
        result = stacked.access_line(0.0, 0)
        assert result.outcome is RowOutcome.CLOSED
        assert result.latency == pytest.approx(
            stacked.timing.row_closed_cycles(64)
        )

    def test_row_hit_after_open(self, stacked):
        stacked.access_line(0.0, 0)
        # Same row (different line within the row) after the bank frees up.
        lines_per_row = stacked.lines_per_row
        same_row_line = stacked.timing.channels * 1  # channel 0, next line in row
        result = stacked.access_line(1000.0, same_row_line)
        assert result.outcome is RowOutcome.HIT

    def test_row_conflict_after_other_row(self, stacked):
        stacked.access_line(0.0, 0)
        # Jump far: same channel/bank but a different row.
        conflict_line = stacked.timing.channels * stacked.lines_per_row * stacked.timing.banks_per_channel
        ch0, bank0, row0 = stacked.map_address(0)
        ch1, bank1, row1 = stacked.map_address(conflict_line)
        assert (ch0, bank0) == (ch1, bank1) and row0 != row1
        result = stacked.access_line(1000.0, conflict_line)
        assert result.outcome is RowOutcome.CONFLICT

    def test_back_to_back_same_bank_queues(self, stacked):
        first = stacked.access_line(0.0, 0)
        second = stacked.access_line(0.0, 0)
        assert second.latency > first.latency - 1e-9

    def test_different_banks_overlap(self, stacked):
        a = stacked.access_line(0.0, 0)
        # Same channel, different bank: only the bus is shared.
        other_bank = stacked.timing.channels * stacked.lines_per_row
        b = stacked.access_line(0.0, other_bank)
        assert b.latency < a.latency + stacked.timing.row_closed_cycles(64)

    def test_offchip_slower_than_stacked(self, stacked, offchip):
        s = stacked.access_line(0.0, 0)
        o = offchip.access_line(0.0, 0)
        assert o.latency > 1.5 * s.latency


class TestWriteTiming:
    def test_write_charges_bytes(self, stacked):
        stacked.access_line(0.0, 0, is_write=True)
        assert stacked.stats.bytes_written == 64
        assert stacked.stats.writes == 1

    def test_buffered_write_does_not_delay_read(self, stacked):
        # Saturating writes to one channel must not stall an immediate read
        # (while under the buffer depth).
        for _ in range(3):
            stacked.access(0.0, 0, 64, is_write=True)
        read = stacked.access_line(0.0, stacked.timing.channels * stacked.lines_per_row)
        assert read.latency <= stacked.timing.row_closed_cycles(64) + 1e-9

    def test_write_leaves_row_open_for_reads(self, stacked):
        stacked.access_line(0.0, 0, is_write=True)
        result = stacked.access_line(500.0, 0)
        assert result.outcome is RowOutcome.HIT


class TestStream:
    def test_stream_charges_all_bytes(self, offchip):
        offchip.stream(0.0, 0, 64, is_write=True)
        assert offchip.stats.bytes_written == 64 * 64

    def test_stream_occupies_buses(self, offchip):
        latency = offchip.stream(0.0, 0, 64, is_write=False)
        assert latency > 0
        read = offchip.access_line(0.0, 0)
        # Demand read right after a page stream queues behind it.
        assert read.latency > offchip.timing.row_conflict_cycles(64)

    def test_stream_rejects_empty(self, offchip):
        with pytest.raises(ConfigurationError):
            offchip.stream(0.0, 0, 0)

    def test_stream_latency_scales_with_length(self, offchip):
        short = DramDevice(paper_offchip_timing(), capacity_bytes=3 * MIB)
        long = DramDevice(paper_offchip_timing(), capacity_bytes=3 * MIB)
        assert short.stream(0.0, 0, 16) < long.stream(0.0, 0, 256)


class TestStats:
    def test_reset_preserves_bank_state(self, stacked):
        stacked.access_line(0.0, 0)
        stacked.reset_stats()
        assert stacked.stats.accesses == 0
        result = stacked.access_line(1000.0, 0)
        assert result.outcome is RowOutcome.HIT  # row survived the reset

    def test_row_hit_rate(self, stacked):
        stacked.access_line(0.0, 0)
        stacked.access_line(1000.0, 0)
        assert stacked.stats.row_hit_rate == pytest.approx(0.5)

    def test_average_latency_idle_is_zero(self, stacked):
        assert stacked.stats.average_latency == 0.0

    def test_validation_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            DramDevice(paper_stacked_timing(), capacity_bytes=100)
