"""Property-based tests on channel bus accounting (bandwidth conservation)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.channel import Channel

operations = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0),   # inter-arrival gap
        st.floats(min_value=1.0, max_value=40.0),   # duration
        st.booleans(),                              # is_write
    ),
    min_size=1,
    max_size=50,
)


class TestBusConservation:
    @settings(max_examples=80, deadline=None)
    @given(operations, st.floats(min_value=10.0, max_value=200.0))
    def test_no_work_is_lost(self, ops, buffer_cycles):
        """Horizon advance plus outstanding debt equals total work issued."""
        ch = Channel.with_banks(1)
        now = 0.0
        total_work = 0.0
        idle_capacity = 0.0  # bus-idle cycles that passed unused
        for gap, duration, is_write in ops:
            now += gap
            before = ch.bus_busy_until
            if is_write:
                ch.buffer_write(now, duration, buffer_cycles)
            else:
                ch.reserve_bus(now, duration)
            total_work += duration
        # Everything issued is either already on the horizon or still debt.
        accounted = ch.bus_busy_until + ch.write_debt
        # The horizon includes idle gaps that genuinely elapsed; it can
        # exceed total work but never fall below the un-drained share.
        assert accounted + 1e-6 >= total_work
        assert ch.write_debt >= 0.0

    @settings(max_examples=80, deadline=None)
    @given(operations, st.floats(min_value=10.0, max_value=200.0))
    def test_debt_bounded_by_buffer(self, ops, buffer_cycles):
        ch = Channel.with_banks(1)
        now = 0.0
        for gap, duration, is_write in ops:
            now += gap
            if is_write:
                ch.buffer_write(now, duration, buffer_cycles)
            else:
                ch.reserve_bus(now, duration)
            assert ch.write_debt <= buffer_cycles + 1e-9

    @settings(max_examples=80, deadline=None)
    @given(operations)
    def test_reads_start_no_earlier_than_arrival(self, ops):
        ch = Channel.with_banks(1)
        now = 0.0
        for gap, duration, is_write in ops:
            now += gap
            if is_write:
                ch.buffer_write(now, duration, 100.0)
            else:
                start = ch.reserve_bus(now, duration)
                assert start >= now - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(operations)
    def test_horizon_is_monotone(self, ops):
        ch = Channel.with_banks(1)
        now = 0.0
        last_horizon = 0.0
        for gap, duration, is_write in ops:
            now += gap
            if is_write:
                ch.buffer_write(now, duration, 100.0)
            else:
                ch.reserve_bus(now, duration)
            assert ch.bus_busy_until >= last_horizon - 1e-9
            last_horizon = ch.bus_busy_until
