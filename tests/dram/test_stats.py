"""Tests for DRAM traffic/locality counters."""

import pytest

from repro.dram.bank import RowOutcome
from repro.dram.stats import DramStats


class TestDramStats:
    def test_record_read(self):
        stats = DramStats()
        stats.record(False, 64, RowOutcome.HIT, wait=5.0, service=20.0)
        assert stats.reads == 1 and stats.writes == 0
        assert stats.bytes_read == 64 and stats.bytes_written == 0
        assert stats.row_hits == 1

    def test_record_write(self):
        stats = DramStats()
        stats.record(True, 80, RowOutcome.CONFLICT, 0.0, 30.0)
        assert stats.writes == 1
        assert stats.bytes_written == 80
        assert stats.row_conflicts == 1

    def test_bytes_transferred_sums(self):
        stats = DramStats()
        stats.record(False, 64, RowOutcome.CLOSED, 0, 1)
        stats.record(True, 66, RowOutcome.CLOSED, 0, 1)
        assert stats.bytes_transferred == 130
        assert stats.row_closed == 2

    def test_row_hit_rate(self):
        stats = DramStats()
        stats.record(False, 64, RowOutcome.HIT, 0, 1)
        stats.record(False, 64, RowOutcome.CONFLICT, 0, 1)
        assert stats.row_hit_rate == pytest.approx(0.5)

    def test_average_latency(self):
        stats = DramStats()
        stats.record(False, 64, RowOutcome.HIT, wait=10.0, service=30.0)
        stats.record(False, 64, RowOutcome.HIT, wait=0.0, service=20.0)
        assert stats.average_latency == pytest.approx(30.0)

    def test_idle_stats_are_zero(self):
        stats = DramStats()
        assert stats.accesses == 0
        assert stats.row_hit_rate == 0.0
        assert stats.average_latency == 0.0
