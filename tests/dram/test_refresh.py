"""Tests for DRAM refresh modelling."""

import dataclasses

import pytest

from repro.config.timing import paper_offchip_timing
from repro.dram.bank import RowOutcome
from repro.dram.device import DramDevice
from repro.errors import ConfigurationError
from repro.units import MIB


def refreshing_device(interval=10_000.0, duration=1_000.0):
    timing = dataclasses.replace(
        paper_offchip_timing(),
        refresh_interval_cycles=interval,
        refresh_duration_cycles=duration,
    )
    return DramDevice(timing, capacity_bytes=3 * MIB)


class TestRefresh:
    def test_disabled_by_default(self):
        assert not paper_offchip_timing().refresh_enabled

    def test_refresh_closes_rows(self):
        dev = refreshing_device()
        dev.access_line(0.0, 0)
        # Cross a refresh boundary: the previously-open row must be gone.
        result = dev.access_line(12_000.0, 0)
        assert result.outcome is RowOutcome.CLOSED

    def test_access_during_refresh_waits(self):
        dev = refreshing_device()
        baseline = dev.access_line(0.0, 0).latency
        dev2 = refreshing_device()
        # Arrive exactly when the refresh at t=10000 begins.
        delayed = dev2.access_line(10_000.0, 0).latency
        assert delayed >= baseline + 999.0

    def test_row_survives_within_interval(self):
        dev = refreshing_device()
        dev.access_line(0.0, 0)
        result = dev.access_line(5_000.0, 0)
        assert result.outcome is RowOutcome.HIT

    def test_multiple_intervals_catch_up(self):
        dev = refreshing_device(interval=1_000.0, duration=100.0)
        # Jumping far ahead must not leave stale refresh debt behind.
        result = dev.access_line(50_000.0, 0)
        assert result.latency < 5_000.0  # paid at most a tail refresh, not 50

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(
                paper_offchip_timing(), refresh_duration_cycles=10.0
            )
        with pytest.raises(ConfigurationError):
            dataclasses.replace(
                paper_offchip_timing(), refresh_interval_cycles=-1.0
            )

    def test_refresh_slows_a_run_end_to_end(self):
        import repro
        from repro.config.system import scaled_paper_system

        config = scaled_paper_system()
        refreshed = config.replace(
            offchip_timing=dataclasses.replace(
                config.offchip_timing,
                refresh_interval_cycles=25_000.0,
                refresh_duration_cycles=1_100.0,
            )
        )
        normal = repro.run_workload("baseline", "sphinx3", config,
                                    accesses_per_context=1500)
        slowed = repro.run_workload("baseline", "sphinx3", refreshed,
                                    accesses_per_context=1500)
        assert slowed.total_cycles > normal.total_cycles
