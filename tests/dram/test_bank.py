"""Tests for the bank row-buffer state machine."""

from repro.dram.bank import Bank, RowOutcome


class TestClassify:
    def test_fresh_bank_is_closed(self):
        assert Bank().classify(7) is RowOutcome.CLOSED

    def test_same_row_hits(self):
        bank = Bank()
        bank.open_and_occupy(7, until=10.0)
        assert bank.classify(7) is RowOutcome.HIT

    def test_different_row_conflicts(self):
        bank = Bank()
        bank.open_and_occupy(7, until=10.0)
        assert bank.classify(8) is RowOutcome.CONFLICT

    def test_precharge_closes(self):
        bank = Bank()
        bank.open_and_occupy(7, until=10.0)
        bank.precharge()
        assert bank.classify(7) is RowOutcome.CLOSED


class TestOccupancy:
    def test_busy_until_advances(self):
        bank = Bank()
        bank.open_and_occupy(1, until=100.0)
        assert bank.busy_until == 100.0

    def test_busy_until_never_regresses(self):
        bank = Bank()
        bank.open_and_occupy(1, until=100.0)
        bank.open_and_occupy(2, until=50.0)
        assert bank.busy_until == 100.0
        assert bank.open_row == 2

    def test_open_page_policy_keeps_row(self):
        bank = Bank()
        bank.open_and_occupy(3, until=10.0)
        bank.classify(3)
        assert bank.open_row == 3
